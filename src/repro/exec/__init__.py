"""Rank-execution subsystem: serial or threaded per-rank supersteps."""

from .executor import (
    ENV_VAR,
    RankExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)

__all__ = [
    "ENV_VAR",
    "RankExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
]
