"""Pluggable rank execution: run per-rank superstep closures.

The paper's BSP structure makes the per-rank work of a superstep
independent until the collective: each rank reads and writes only its
own :class:`~repro.core.context.RankContext` state and charges only
its own :class:`~repro.comm.clocks.VirtualClocks` lane.  The simulator
exploits that the same way a real multi-GPU runtime does — by fanning
the per-rank closures out across workers and barriering before the
collective.  Since the hot per-rank work is numpy (which releases the
GIL), plain threads give real concurrency on multi-core hosts without
any pickling or shared-memory choreography.

Determinism contract (see ``docs/PERF.md``):

* a closure passed to :meth:`RankExecutor.map` touches only the state
  owned by its rank — its context arrays, its clock lane, and data
  reachable from its item;
* results are returned **in submission order**, regardless of
  completion order;
* collectives never run inside the executor — they mutate shared
  counters and perform cross-rank clock synchronization, and stay
  sequential in the engine.

Under this contract every algorithm produces bit-identical values,
``TimingReport`` totals, and ``CommCounters`` whichever executor runs
it (enforced by ``tests/exec/test_determinism.py``).

Selection::

    Engine(graph, n_ranks=16, executor="threads")      # explicit
    REPRO_EXECUTOR=threads:8 python -m repro perf ...  # environment
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "RankExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``Engine(executor=None)``.
ENV_VAR = "REPRO_EXECUTOR"


class RankExecutor:
    """Interface: run a closure over per-rank items, results in order."""

    #: short name recorded in bench metadata
    name = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; return results in item order.

        Implementations must complete *every* call before returning
        (the superstep barrier) and must not reorder results.
        """
        raise NotImplementedError

    @property
    def workers(self) -> int:
        """Degree of concurrency (1 for serial execution)."""
        return 1

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(RankExecutor):
    """Run every rank in submission order on the calling thread.

    This is the historical behavior of the ``for ctx in engine:``
    loops and the default executor.
    """

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadedExecutor(RankExecutor):
    """Fan per-rank closures across a shared ``ThreadPoolExecutor``.

    The pool is created lazily on first use and reused across
    supersteps (pool startup per superstep would dwarf the per-rank
    work).  Results are collected by waiting on each future in
    submission order — a full barrier that also preserves rank order,
    so callers see exactly the serial result list.

    ``max_workers=None`` sizes the pool to ``os.cpu_count()``.  With a
    single worker (or a single item) the closure runs inline, so a
    threaded engine on a 1-CPU host degenerates to serial execution
    without pool overhead.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"invalid executor spec ThreadedExecutor(max_workers="
                f"{max_workers!r}): worker count must be >= 1; "
                f"valid forms: 'serial', 'threads', 'threads:N' "
                f"(integer N >= 1)"
            )
        # Explicit None check: ``max_workers or ...`` would silently
        # turn a (hypothetical future) falsy value into the CPU count.
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._max_workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self._max_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-rank",
            )
        futures = [self._pool.submit(fn, item) for item in items]
        # .result() re-raises worker exceptions; collecting in
        # submission order is both the barrier and the ordering.
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def resolve_executor(spec: "RankExecutor | str | None" = None) -> RankExecutor:
    """Turn an executor spec into a :class:`RankExecutor`.

    ``spec`` may be an executor instance (returned as-is), a string
    (``"serial"``, ``"threads"``, or ``"threads:N"`` for an explicit
    worker count), or ``None`` — in which case the ``REPRO_EXECUTOR``
    environment variable is consulted and an unset variable means
    serial execution.
    """
    if isinstance(spec, RankExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "serial"
    if not isinstance(spec, str):
        raise TypeError(
            f"executor must be a RankExecutor, a string, or None; got {spec!r}"
        )
    text = spec.strip().lower()
    if text in ("", "serial"):
        return SerialExecutor()
    if text == "threads":
        return ThreadedExecutor()
    valid = "valid forms: 'serial', 'threads', 'threads:N' (integer N >= 1)"
    if text.startswith("threads:"):
        raw = text.split(":", 1)[1]
        try:
            count = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid executor spec {spec!r}: worker count {raw!r} "
                f"is not an integer; {valid}"
            ) from None
        if count < 1:
            raise ValueError(
                f"invalid executor spec {spec!r}: worker count must be "
                f">= 1, got {count}; {valid}"
            )
        return ThreadedExecutor(max_workers=count)
    raise ValueError(f"unknown executor spec {spec!r}; {valid}")
