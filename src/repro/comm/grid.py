"""2D process grid geometry (paper §2.2, Fig. 1).

The adjacency matrix is blocked into ``C`` block-rows x ``R``
block-columns, one block per rank.  Following the paper's variable
names (Table 1):

* ``R`` — ranks in each **row group** (= number of block-columns),
* ``C`` — ranks in each **column group** (= number of block-rows),
* ``ID_R`` — the rank's row-group id (its block-row index, in ``[0, C)``),
* ``ID_C`` — the rank's column-group id (its block-column index, in ``[0, R)``),
* ``Rank_R`` — the rank's position within its row group (= ``ID_C``),
* ``Rank_C`` — the rank's position within its column group (= ``ID_R``).

Ranks are numbered row-major: ``rank = ID_R * R + ID_C``.  A *row
group* therefore occupies consecutive global ranks — which places it on
as few physical nodes as possible — while a column group strides by
``R``.  Communication happens exclusively along these two groups, which
is what reduces message counts from O(p^2) to O(p).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Grid2D", "square_grid", "factor_pairs", "squarest_grid"]


@dataclass(frozen=True)
class Grid2D:
    """A fixed ``C x R`` blocking of the adjacency matrix.

    Parameters
    ----------
    R:
        Ranks per row group (number of block-columns).
    C:
        Ranks per column group (number of block-rows).
    """

    R: int
    C: int

    def __post_init__(self) -> None:
        if self.R < 1 or self.C < 1:
            raise ValueError(f"grid dimensions must be positive, got {self.R}x{self.C}")

    @property
    def n_ranks(self) -> int:
        """Total ranks ``p = R * C``."""
        return self.R * self.C

    @property
    def n_row_groups(self) -> int:
        return self.C

    @property
    def n_col_groups(self) -> int:
        return self.R

    @property
    def is_square(self) -> bool:
        return self.R == self.C

    # ------------------------------------------------------------------
    # rank <-> coordinates
    # ------------------------------------------------------------------
    def rank_of(self, id_r: int, id_c: int) -> int:
        """Rank at block-row ``id_r``, block-column ``id_c``."""
        if not (0 <= id_r < self.C and 0 <= id_c < self.R):
            raise ValueError(f"block ({id_r}, {id_c}) outside {self.C}x{self.R} grid")
        return id_r * self.R + id_c

    def coords(self, rank: int) -> tuple[int, int]:
        """``(ID_R, ID_C)`` of a rank."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return divmod(rank, self.R)

    def row_group_ranks(self, id_r: int) -> list[int]:
        """All ranks in row group ``id_r`` (in Rank_R order)."""
        return [self.rank_of(id_r, j) for j in range(self.R)]

    def col_group_ranks(self, id_c: int) -> list[int]:
        """All ranks in column group ``id_c`` (in Rank_C order)."""
        return [self.rank_of(i, id_c) for i in range(self.C)]

    def row_group_of(self, rank: int) -> list[int]:
        return self.row_group_ranks(self.coords(rank)[0])

    def col_group_of(self, rank: int) -> list[int]:
        return self.col_group_ranks(self.coords(rank)[1])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Grid2D(C={self.C} block-rows x R={self.R} block-cols, p={self.n_ranks})"


def square_grid(n_ranks: int) -> Grid2D:
    """The square ``sqrt(p) x sqrt(p)`` grid for a perfect-square ``p``."""
    side = int(round(n_ranks**0.5))
    if side * side != n_ranks:
        raise ValueError(f"{n_ranks} is not a perfect square; pass an explicit Grid2D")
    return Grid2D(R=side, C=side)


def factor_pairs(n_ranks: int) -> list[Grid2D]:
    """All ``C x R`` grids with ``R * C == n_ranks`` (paper Fig. 7 sweep)."""
    out = []
    for c in range(1, n_ranks + 1):
        if n_ranks % c == 0:
            out.append(Grid2D(R=n_ranks // c, C=c))
    return out


def squarest_grid(n_ranks: int) -> Grid2D:
    """The most square grid for *any* ``n_ranks`` (not just perfect
    squares): the factor pair minimizing ``|R - C|``, preferring the
    smaller ``R`` on ties (fewer ranks per row group — the paper's
    Fig. 7 bias toward cheap row reductions)."""
    return min(factor_pairs(n_ranks), key=lambda g: (abs(g.R - g.C), g.R))
