"""NCCL-like collectives over simulated ranks.

Each operation *really* moves/reduces NumPy data between per-rank
buffers — so algorithm results are exact — while charging virtual time
from the :class:`~repro.cluster.costmodel.CostModel` and recording
message/byte counters.  Buffers are typically views into per-rank state
arrays, so in-place assignment updates rank state directly, the way an
NCCL collective writes into device memory.

Supported reduction ops mirror what the paper's patterns need: ``sum``,
``min``, ``max``, ``prod``, plus ``or``/``and`` on boolean state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..cluster.costmodel import CostModel
from .clocks import InflightCollective, VirtualClocks
from .counters import CommCounters

__all__ = ["BroadcastCall", "CollectiveHandle", "Communicator", "REDUCE_OPS"]

REDUCE_OPS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda stacked: np.add.reduce(stacked, axis=0),
    "min": lambda stacked: np.minimum.reduce(stacked, axis=0),
    "max": lambda stacked: np.maximum.reduce(stacked, axis=0),
    "prod": lambda stacked: np.multiply.reduce(stacked, axis=0),
    "or": lambda stacked: np.logical_or.reduce(stacked, axis=0),
    "and": lambda stacked: np.logical_and.reduce(stacked, axis=0),
}


@dataclass
class BroadcastCall:
    """One broadcast inside an aggregated NCCL group call.

    ``src`` is the root's payload; ``dests`` are the destination views
    (one per non-root group member) that receive a copy.
    """

    src: np.ndarray
    dests: list[np.ndarray]


@dataclass
class CollectiveHandle:
    """An in-flight split-phase collective (see ``start_*`` methods).

    ``result`` holds the simulated payload — data movement happens
    eagerly at issue so results stay bit-identical to the blocking
    path.  A real split-phase collective delivers it incrementally
    (segment by segment along the ring), so a consumer that reads
    ``result`` before :meth:`Communicator.wait` returns it models a
    pipelined receive-and-apply and must therefore process it in a
    segment-order-independent way (element-wise reductions and
    assignments qualify; see docs/MODEL.md).  Time is charged only at
    ``wait``.
    """

    kind: str
    ranks: tuple[int, ...]
    inflight: InflightCollective
    result: object = None


class Communicator:
    """Executes collectives with time/counter accounting.

    Every blocking collective has a split-phase twin (``start_X`` +
    :meth:`wait`) that separates *issue* from *completion*: the data
    moves and the counters record at issue, but the virtual-time charge
    is deferred to ``wait``, where the clocks charge
    ``max(compute_elapsed, comm_cost)`` for the overlapped window (the
    comm lane still receives the full blocking cost; the hidden part
    lands in the ``overlap`` lane).  Issuing and waiting immediately is
    bit-identical to the blocking call — values, counters, *and*
    clocks.
    """

    def __init__(
        self,
        costmodel: CostModel,
        clocks: VirtualClocks,
        counters: CommCounters | None = None,
    ):
        self.costmodel = costmodel
        self.clocks = clocks
        self.counters = counters if counters is not None else CommCounters()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_group(
        ranks: Sequence[int],
        buffers: Sequence[np.ndarray],
        uniform: bool = False,
    ) -> None:
        """Validate a collective's group, loudly and precisely.

        Always checks the rank/buffer pairing; with ``uniform=True``
        (element-wise reductions) additionally requires every buffer to
        share the first buffer's shape and dtype, and names the
        offending ranks when they don't — a shape/dtype skew would
        otherwise surface as an inscrutable ``np.stack`` error.
        """
        if len(ranks) != len(buffers):
            raise ValueError(
                f"collective group mismatch: {len(ranks)} ranks "
                f"{list(ranks)} but {len(buffers)} buffers supplied"
            )
        if uniform and len(buffers) > 1:
            ref = np.asarray(buffers[0])
            offenders = [
                f"rank {r}: shape {a.shape}, dtype {a.dtype}"
                for r, b in zip(ranks, buffers)
                if (a := np.asarray(b)).shape != ref.shape or a.dtype != ref.dtype
            ]
            if offenders:
                raise ValueError(
                    "collective buffers disagree with rank "
                    f"{ranks[0]} (shape {ref.shape}, dtype {ref.dtype}): "
                    + "; ".join(offenders)
                )

    @staticmethod
    def _check_dtypes(ranks: Sequence[int], buffers: Sequence[np.ndarray]) -> None:
        """Require one dtype across variable-size send buffers.

        A skewed dtype would silently promote through
        ``np.concatenate`` and corrupt structured consumers; fail
        instead, naming the offending ranks.
        """
        if len(buffers) < 2:
            return
        ref = np.asarray(buffers[0]).dtype
        offenders = [
            f"rank {r}: dtype {a.dtype}"
            for r, b in zip(ranks, buffers)
            if (a := np.asarray(b)).dtype != ref
        ]
        if offenders:
            raise ValueError(
                f"variable-size collective needs one dtype, but rank "
                f"{ranks[0]} sends {ref} while " + "; ".join(offenders)
            )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _allreduce_core(
        self,
        ranks: Sequence[int],
        buffers: Sequence[np.ndarray],
        op: str,
        nic_sharing: int,
    ) -> float:
        """Validate, move data, record counters; return the comm cost."""
        self._check_group(ranks, buffers, uniform=True)
        if op not in REDUCE_OPS:
            raise ValueError(f"unknown op {op!r}; choose from {sorted(REDUCE_OPS)}")
        k = len(ranks)
        nbytes = buffers[0].nbytes if buffers else 0
        if k > 1:
            stacked = np.stack([np.asarray(b) for b in buffers])
            result = REDUCE_OPS[op](stacked)
            for b in buffers:
                b[...] = result
        t = self.costmodel.allreduce_time(ranks, nbytes, nic_sharing=nic_sharing)
        self.counters.record(
            "allreduce",
            serial_messages=2 * (k - 1),
            transfers=2 * k * (k - 1),
            nbytes=2 * nbytes * (k - 1) if k > 1 else 0,
        )
        return t

    def allreduce(
        self,
        ranks: Sequence[int],
        buffers: Sequence[np.ndarray],
        op: str = "sum",
        nic_sharing: int = 1,
    ) -> None:
        """In-place AllReduce: every buffer ends up holding the
        element-wise reduction of all of them."""
        t = self._allreduce_core(ranks, buffers, op, nic_sharing)
        self.clocks.sync_group(ranks, t)

    def broadcast(
        self,
        ranks: Sequence[int],
        buffers: Sequence[np.ndarray],
        root_pos: int,
        nic_sharing: int = 1,
    ) -> None:
        """In-place Broadcast from ``buffers[root_pos]`` to the rest."""
        self._check_group(ranks, buffers)
        k = len(ranks)
        if not 0 <= root_pos < k:
            raise ValueError(f"root position {root_pos} out of range")
        src = np.asarray(buffers[root_pos])
        for i, b in enumerate(buffers):
            if i != root_pos:
                b[...] = src
        t = self.costmodel.broadcast_time(ranks, src.nbytes, nic_sharing=nic_sharing)
        self.clocks.sync_group(ranks, t)
        self.counters.record(
            "broadcast",
            serial_messages=k - 1,
            transfers=k - 1,
            nbytes=src.nbytes * (k - 1) if k > 1 else 0,
        )

    def grouped_broadcast(
        self,
        ranks: Sequence[int],
        calls: Sequence[BroadcastCall],
        nic_sharing: int = 1,
    ) -> None:
        """Multiple broadcasts over one group in a single aggregated
        launch (NCCL group call; paper §3.3.1 for the R != C case)."""
        if not calls:
            return
        sizes = []
        for call in calls:
            src = np.asarray(call.src)
            for dest in call.dests:
                dest[...] = src
            sizes.append(src.nbytes)
        t = self.costmodel.grouped_broadcast_time(ranks, sizes, nic_sharing=nic_sharing)
        self.clocks.sync_group(ranks, t)
        k = len(ranks)
        total_dests = sum(len(c.dests) for c in calls)
        self.counters.record(
            "grouped_broadcast",
            serial_messages=(k - 1) if self.costmodel.profile.grouped_calls
            else len(calls) * (k - 1),
            transfers=total_dests,
            nbytes=sum(
                np.asarray(c.src).nbytes * len(c.dests) for c in calls
            ),
        )

    def allgatherv(
        self,
        ranks: Sequence[int],
        send_buffers: Sequence[np.ndarray],
        nic_sharing: int = 1,
    ) -> np.ndarray:
        """Variable-size AllGather: every rank receives the
        concatenation (in group-rank order) of all send buffers.

        Implemented by the paper as an NCCL AllGather plus grouped
        broadcasts; modeled here as one ring allgather over the total
        payload.  Returns the concatenated array (identical on every
        rank, so a single shared copy is returned).
        """
        result, t = self._allgatherv_core(ranks, send_buffers, nic_sharing)
        self.clocks.sync_group(ranks, t)
        return result

    def _allgatherv_core(
        self,
        ranks: Sequence[int],
        send_buffers: Sequence[np.ndarray],
        nic_sharing: int,
    ) -> tuple[np.ndarray, float]:
        """Validate, move data, record counters; return (result, cost)."""
        self._check_group(ranks, send_buffers)
        self._check_dtypes(ranks, send_buffers)
        k = len(ranks)
        arrays = [np.asarray(b) for b in send_buffers]
        # Preserve the send-buffer dtype even when every buffer is empty
        # (structured consumers index fields like rbuf["gid"], which a
        # plain float64 np.empty(0) would break).
        result = (
            np.concatenate(arrays)
            if any(a.size for a in arrays)
            else np.empty(0, dtype=arrays[0].dtype if arrays else np.float64)
        )
        total = int(sum(a.nbytes for a in arrays))
        t = self.costmodel.allgather_time(ranks, total, nic_sharing=nic_sharing)
        self.counters.record(
            "allgatherv",
            serial_messages=k - 1,
            transfers=k * (k - 1),
            nbytes=total * (k - 1) if k > 1 else 0,
        )
        return result, t

    def sendrecv(self, src_rank: int, dst_rank: int, payload: np.ndarray) -> np.ndarray:
        """Point-to-point transfer; returns the received copy."""
        payload = np.asarray(payload)
        t = self.costmodel.sendrecv_time(src_rank, dst_rank, payload.nbytes)
        self.clocks.sync_group([src_rank, dst_rank], t)
        self.counters.record(
            "sendrecv", serial_messages=1, transfers=1, nbytes=payload.nbytes
        )
        return payload.copy()

    def alltoallv(
        self,
        ranks: Sequence[int],
        send_matrix: Sequence[Sequence[np.ndarray]],
        nic_sharing: int = 1,
    ) -> list[np.ndarray]:
        """All-to-all exchange for the 1D baseline engine.

        ``send_matrix[i][j]`` is what group member ``i`` sends to group
        member ``j``.  Returns, per member, the concatenation of
        everything addressed to it.  Charged with the O(p^2)-message
        model the paper ascribes to 1D distributions.
        """
        received, t = self._alltoallv_core(ranks, send_matrix, nic_sharing)
        self.clocks.sync_group(ranks, t)
        return received

    def _alltoallv_core(
        self,
        ranks: Sequence[int],
        send_matrix: Sequence[Sequence[np.ndarray]],
        nic_sharing: int,
    ) -> tuple[list[np.ndarray], float]:
        """Validate, move data, record counters; return (result, cost)."""
        k = len(ranks)
        if len(send_matrix) != k or any(len(row) != k for row in send_matrix):
            shape = f"{len(send_matrix)} x {[len(row) for row in send_matrix]}"
            raise ValueError(
                f"send_matrix must be {k} x {k} for group {list(ranks)}; "
                f"got {shape}"
            )
        for row in send_matrix:
            self._check_dtypes(ranks, row)
        received: list[np.ndarray] = []
        max_pair = 0
        total = 0
        for j in range(k):
            parts = [np.asarray(send_matrix[i][j]) for i in range(k)]
            # As in allgatherv: an all-empty column keeps its dtype.
            received.append(
                np.concatenate(parts)
                if any(p.size for p in parts)
                else np.empty(0, dtype=parts[0].dtype if parts else np.float64)
            )
            for p in parts:
                total += p.nbytes
                max_pair = max(max_pair, p.nbytes)
        t = self.costmodel.alltoall_time(ranks, max_pair, nic_sharing=nic_sharing)
        self.counters.record(
            "alltoallv",
            serial_messages=k * (k - 1),
            transfers=k * (k - 1),
            nbytes=total,
        )
        return received, t

    # ------------------------------------------------------------------
    # split-phase collectives (issue now, charge time at wait)
    # ------------------------------------------------------------------
    def start_allreduce(
        self,
        ranks: Sequence[int],
        buffers: Sequence[np.ndarray],
        op: str = "sum",
        nic_sharing: int = 1,
    ) -> CollectiveHandle:
        """Issue an AllReduce; complete it with :meth:`wait`.

        The buffers hold the reduced values from issue onward (eager
        simulated data movement); callers must not mutate them until
        the matching ``wait``.
        """
        t = self._allreduce_core(ranks, buffers, op, nic_sharing)
        return CollectiveHandle(
            "allreduce", tuple(ranks), self.clocks.issue_collective(ranks, t)
        )

    def start_allgatherv(
        self,
        ranks: Sequence[int],
        send_buffers: Sequence[np.ndarray],
        nic_sharing: int = 1,
    ) -> CollectiveHandle:
        """Issue a variable-size AllGather; complete with :meth:`wait`.

        ``handle.result`` carries the concatenated array (see
        :class:`CollectiveHandle` for the pipelined-consumption
        contract); send buffers may be recycled once this returns.
        """
        result, t = self._allgatherv_core(ranks, send_buffers, nic_sharing)
        return CollectiveHandle(
            "allgatherv", tuple(ranks), self.clocks.issue_collective(ranks, t), result
        )

    def start_alltoallv(
        self,
        ranks: Sequence[int],
        send_matrix: Sequence[Sequence[np.ndarray]],
        nic_sharing: int = 1,
    ) -> CollectiveHandle:
        """Issue a personalized exchange; complete with :meth:`wait`.

        ``handle.result`` carries the per-member received buffers.
        """
        received, t = self._alltoallv_core(ranks, send_matrix, nic_sharing)
        return CollectiveHandle(
            "alltoallv", tuple(ranks), self.clocks.issue_collective(ranks, t), received
        )

    def wait(self, handle: CollectiveHandle):
        """Complete a split-phase collective; returns its result.

        Charges the overlapped window to the participants' clocks (see
        :meth:`VirtualClocks.complete_collective`): the comm lane pays
        the full blocking cost, the total only its exposed remainder.
        Each handle completes exactly once.
        """
        self.clocks.complete_collective(handle.inflight)
        return handle.result
