"""Per-rank virtual clocks for BSP time accounting.

Every rank carries a virtual clock.  Local kernels advance only that
rank's clock; a collective synchronizes the participating group to the
*maximum* clock in the group (stragglers gate everyone — the BSP
model the paper uses) and then advances all members by the modeled
collective time.  Reported times follow the paper's convention: the
maximum over all ranks (paper §5.1: "reported as the maximum time over
all ranks"), with computation and communication tracked separately
(paper Figs. 3 and 5 plot the split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .counters import CommCounters, CounterSnapshot

__all__ = ["InflightCollective", "PhaseTimes", "VirtualClocks"]


@dataclass(frozen=True)
class PhaseTimes:
    """A (total, computation, communication) time triple in seconds.

    ``overlap`` (optional, default 0) annotates how much communication
    time was hidden behind computation by split-phase collectives; like
    the recovery/regrid lanes it is not an additional component of
    ``total`` — it is the part of ``comm`` that does *not* appear in
    ``total``.
    """

    total: float
    compute: float
    comm: float
    overlap: float = 0.0

    def __sub__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            total=self.total - other.total,
            compute=self.compute - other.compute,
            comm=self.comm - other.comm,
            overlap=self.overlap - other.overlap,
        )


@dataclass
class InflightCollective:
    """Clock-side record of one issued-but-uncompleted collective.

    Created by :meth:`VirtualClocks.issue_collective`; consumed exactly
    once by :meth:`VirtualClocks.complete_collective`.  ``issued_at`` is
    the group-max clock at issue (the moment the last member's send
    buffer was ready); ``comm_seconds`` is the modeled cost the
    collective would charge if it ran blocking.
    """

    idx: np.ndarray
    issued_at: float
    comm_seconds: float
    completed: bool = False


class VirtualClocks:
    """Virtual time state for ``n_ranks`` simulated ranks.

    When ``counters`` is supplied, every :meth:`mark_iteration`
    additionally snapshots the counters, so per-iteration traffic can
    later be reconstructed *exactly* (consecutive-snapshot deltas sum
    to run totals by construction — the invariant
    :class:`~repro.core.trace.TraceRecorder` relies on).
    """

    def __init__(self, n_ranks: int, counters: Optional["CommCounters"] = None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.counters = counters
        self.clock = np.zeros(n_ranks)
        self.compute = np.zeros(n_ranks)
        self.comm = np.zeros(n_ranks)
        # Recovery lane: time spent on fault handling (straggler stalls,
        # retry backoff).  Always a subset annotation — stall seconds
        # land in the total only, retry seconds in comm as well — so
        # fault-free runs keep it at exactly zero.
        self.recovery = np.zeros(n_ranks)
        # Regrid lane: elastic-recovery migration cost (checkpoint
        # gather, re-partition, scatter onto the surviving grid).  Like
        # ``recovery`` it annotates time already contained in the total.
        self.regrid = np.zeros(n_ranks)
        # Overlap lane: communication seconds *hidden* behind
        # computation by split-phase collectives.  The inverse
        # annotation of recovery/regrid: hidden seconds are contained
        # in ``comm`` but NOT in the total (`total = compute + exposed
        # comm + idle`, and `exposed comm = comm - overlap`).  Blocking
        # runs keep it at exactly zero.
        self.overlap = np.zeros(n_ranks)
        # Certify lane: integrity-verification cost (ledger digest
        # exchanges at superstep boundaries, end-of-run result
        # certifiers).  Like recovery/regrid it annotates time already
        # contained in the total; runs without an attached ledger or
        # certification keep it at exactly zero.
        self.certify = np.zeros(n_ranks)
        self.iteration_marks: list[PhaseTimes] = []
        self.counter_marks: list["CounterSnapshot"] = []

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def add_compute(self, rank: int, seconds: float) -> None:
        """Advance one rank's clock by local kernel time."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds}")
        self.clock[rank] += seconds
        self.compute[rank] += seconds

    def sync_group(self, ranks: Sequence[int], seconds: float) -> None:
        """Synchronize a group and charge a collective of ``seconds``.

        All members first wait for the slowest member, then advance
        together; the collective duration is attributed to
        communication time.  (Wait time is attributed to neither — it
        is idle time, which the max-over-ranks report absorbs.)
        """
        if seconds < 0:
            raise ValueError(f"negative comm time {seconds}")
        idx = np.fromiter(ranks, dtype=np.int64)
        t = float(self.clock[idx].max()) + seconds
        self.clock[idx] = t
        self.comm[idx] += seconds

    def add_stall(self, rank: int, seconds: float) -> None:
        """Idle one rank for ``seconds`` (an injected straggler delay).

        Stall time advances the rank's clock — so it gates the next
        collective the rank participates in, exactly like a real
        straggler — but is attributed to neither compute nor comm; the
        ``recovery`` lane records it so fault reports can expose it.
        """
        if seconds < 0:
            raise ValueError(f"negative stall time {seconds}")
        self.clock[rank] += seconds
        self.recovery[rank] += seconds

    def charge_recovery(self, ranks: Sequence[int], seconds: float) -> None:
        """Charge fault-recovery time (retry backoff, retransmits) to a
        group.

        Semantically a failed collective attempt: the group
        synchronizes, burns ``seconds`` together, and the cost counts
        as communication time (it occupies the fabric) *and* is
        mirrored into the ``recovery`` lane so timing reports can show
        how much of the comm share was recovery overhead.
        """
        if seconds < 0:
            raise ValueError(f"negative recovery time {seconds}")
        idx = np.fromiter(ranks, dtype=np.int64)
        t = float(self.clock[idx].max()) + seconds
        self.clock[idx] = t
        self.comm[idx] += seconds
        self.recovery[idx] += seconds

    def charge_regrid(self, ranks: Sequence[int], seconds: float) -> None:
        """Charge elastic-migration time (checkpoint gather, graph
        re-partition, state scatter) to a group.

        Semantically a barrier followed by a bulk data movement on the
        surviving ranks: the group synchronizes, burns ``seconds``
        together, and the cost counts as communication time *and* is
        mirrored into the ``regrid`` lane so timing reports can show
        how much of a degraded run went to the migration itself.
        """
        if seconds < 0:
            raise ValueError(f"negative regrid time {seconds}")
        idx = np.fromiter(ranks, dtype=np.int64)
        t = float(self.clock[idx].max()) + seconds
        self.clock[idx] = t
        self.comm[idx] += seconds
        self.regrid[idx] += seconds

    def charge_certify(self, ranks: Sequence[int], seconds: float) -> None:
        """Charge integrity-verification time (ledger digest exchange,
        result certification) to a group.

        Semantically a small collective: the group synchronizes, burns
        ``seconds`` together, and the cost counts as communication time
        (digests and certification invariants cross the fabric) *and*
        is mirrored into the ``certify`` lane so timing reports can
        show what the SDC defense cost.
        """
        if seconds < 0:
            raise ValueError(f"negative certify time {seconds}")
        idx = np.fromiter(ranks, dtype=np.int64)
        t = float(self.clock[idx].max()) + seconds
        self.clock[idx] = t
        self.comm[idx] += seconds
        self.certify[idx] += seconds

    def issue_collective(
        self, ranks: Sequence[int], comm_seconds: float
    ) -> InflightCollective:
        """Issue a split-phase collective: barrier the group, charge
        nothing yet.

        The group synchronizes to its maximum clock — the collective
        cannot start before the last member's send buffer is ready,
        exactly the implicit barrier a blocking ``sync_group`` performs
        — and the exchange is considered *in flight* from that instant.
        Time is charged at :meth:`complete_collective`.
        """
        if comm_seconds < 0:
            raise ValueError(f"negative comm time {comm_seconds}")
        idx = np.fromiter(ranks, dtype=np.int64)
        t = float(self.clock[idx].max())
        self.clock[idx] = t
        return InflightCollective(idx=idx, issued_at=t, comm_seconds=comm_seconds)

    def complete_collective(self, inflight: InflightCollective) -> float:
        """Complete an issued collective; returns the hidden seconds.

        The overlapped window spans from issue to now.  Any compute the
        participants charged inside the window runs concurrently with
        the exchange, so the group's clocks land at ``issued_at +
        max(compute_elapsed, comm_cost)``.  The full ``comm_cost`` is
        charged to the ``comm`` lane — identical to a blocking run —
        while ``min(compute_elapsed, comm_cost)``, the part of the cost
        the window absorbed, is recorded in the ``overlap`` lane.  A
        wait immediately after issue (``compute_elapsed == 0``)
        degenerates to exactly :meth:`sync_group`.
        """
        if inflight.completed:
            raise ValueError("collective already completed")
        inflight.completed = True
        idx = inflight.idx
        elapsed = float(self.clock[idx].max()) - inflight.issued_at
        hidden = min(elapsed, inflight.comm_seconds)
        self.clock[idx] = inflight.issued_at + max(elapsed, inflight.comm_seconds)
        self.comm[idx] += inflight.comm_seconds
        self.overlap[idx] += hidden
        return hidden

    def reset(self) -> None:
        """Zero all clocks and drop marks, preserving identity.

        In-place so that every holder of this object (``Communicator``,
        ``TraceRecorder``, callers) observes the reset.
        """
        self.clock[:] = 0.0
        self.compute[:] = 0.0
        self.comm[:] = 0.0
        self.recovery[:] = 0.0
        self.regrid[:] = 0.0
        self.overlap[:] = 0.0
        self.certify[:] = 0.0
        self.iteration_marks.clear()
        self.counter_marks.clear()

    def barrier(self, ranks: Sequence[int] | None = None) -> None:
        """Synchronize without charging time."""
        idx = (
            np.arange(self.n_ranks)
            if ranks is None
            else np.fromiter(ranks, dtype=np.int64)
        )
        self.clock[idx] = self.clock[idx].max()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> PhaseTimes:
        """Current (max-over-ranks) total/compute/comm times."""
        return PhaseTimes(
            total=float(self.clock.max()),
            compute=float(self.compute.max()),
            comm=float(self.comm.max()),
            overlap=float(self.overlap.max()),
        )

    def mark_iteration(self) -> PhaseTimes:
        """Record an iteration boundary; returns the delta since the
        previous mark (or since start).

        With counters attached, also snapshots them so the boundary
        carries the exact cumulative traffic at this point.
        """
        now = self.snapshot()
        prev = (
            self.iteration_marks[-1]
            if self.iteration_marks
            else PhaseTimes(0.0, 0.0, 0.0)
        )
        self.iteration_marks.append(now)
        if self.counters is not None:
            self.counter_marks.append(self.counters.snapshot())
        return now - prev

    def per_rank_lanes(self) -> dict[str, np.ndarray]:
        """Per-rank copies of every lane, keyed by lane name.

        The sampling surface of the rank-health watchdog
        (:class:`~repro.faults.health.HealthMonitor`): consecutive
        samples at superstep boundaries diff into per-rank progress
        deltas, from which deviation scores are computed.  Copies, so a
        held sample is immune to subsequent charging.
        """
        return {
            "clock": self.clock.copy(),
            "compute": self.compute.copy(),
            "comm": self.comm.copy(),
            "recovery": self.recovery.copy(),
            "regrid": self.regrid.copy(),
            "overlap": self.overlap.copy(),
            "certify": self.certify.copy(),
        }

    @property
    def elapsed(self) -> float:
        return float(self.clock.max())

    @property
    def recovery_total(self) -> float:
        """Max-over-ranks recovery time (0.0 in fault-free runs)."""
        return float(self.recovery.max())

    @property
    def regrid_total(self) -> float:
        """Max-over-ranks elastic-migration time (0.0 unless the run
        regridded onto a surviving grid)."""
        return float(self.regrid.max())

    @property
    def overlap_total(self) -> float:
        """Max-over-ranks hidden communication time (0.0 in blocking
        runs)."""
        return float(self.overlap.max())

    @property
    def certify_total(self) -> float:
        """Max-over-ranks integrity-verification time (0.0 in runs
        without a ledger or certification)."""
        return float(self.certify.max())

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot of the full clock state.

        Everything is copied and picklable (marks flatten to tuples,
        counter snapshots to nested dicts), so checkpoints can go to
        disk; :meth:`load_state` restores bit-identically.
        """
        return {
            "clock": self.clock.copy(),
            "compute": self.compute.copy(),
            "comm": self.comm.copy(),
            "recovery": self.recovery.copy(),
            "regrid": self.regrid.copy(),
            "overlap": self.overlap.copy(),
            "certify": self.certify.copy(),
            "iteration_marks": [
                (m.total, m.compute, m.comm, m.overlap)
                for m in self.iteration_marks
            ],
            "counter_marks": [c.as_state() for c in self.counter_marks],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place (identity is
        preserved, as in :meth:`reset`)."""
        from .counters import CounterSnapshot

        self.clock[:] = state["clock"]
        self.compute[:] = state["compute"]
        self.comm[:] = state["comm"]
        self.recovery[:] = state["recovery"]
        # Older snapshots predate the regrid, overlap, and certify
        # lanes (and their marks carry 3-tuples, which PhaseTimes
        # defaults absorb).
        self.regrid[:] = state.get("regrid", 0.0)
        self.overlap[:] = state.get("overlap", 0.0)
        self.certify[:] = state.get("certify", 0.0)
        self.iteration_marks[:] = [
            PhaseTimes(*t) for t in state["iteration_marks"]
        ]
        self.counter_marks[:] = [
            CounterSnapshot.from_state(s) for s in state["counter_marks"]
        ]

    @staticmethod
    def align_state(state: dict, n_ranks: int) -> dict:
        """Re-shape a :meth:`state_dict` snapshot onto ``n_ranks``.

        Used by elastic recovery when a run migrates to a differently
        sized grid: the survivors rendezvous at the last BSP boundary,
        so each lane collapses to its max-over-ranks value replicated
        across the new rank count (the max is exactly what every
        report and every subsequent ``sync_group`` observes).  Marks
        and counter snapshots are rank-agnostic and pass through.
        """
        out = dict(state)
        for lane in ("clock", "compute", "comm", "recovery", "regrid",
                     "overlap", "certify"):
            arr = np.asarray(state.get(lane, [0.0]), dtype=np.float64)
            peak = float(arr.max()) if arr.size else 0.0
            out[lane] = np.full(n_ranks, peak)
        return out
