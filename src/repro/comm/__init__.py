"""2D grid geometry, virtual clocks, counters, and collectives."""

from .clocks import InflightCollective, PhaseTimes, VirtualClocks
from .collectives import REDUCE_OPS, BroadcastCall, CollectiveHandle, Communicator
from .counters import CommCounters, CounterSnapshot, OpStats
from .grid import Grid2D, factor_pairs, square_grid

__all__ = [
    "InflightCollective",
    "PhaseTimes",
    "VirtualClocks",
    "REDUCE_OPS",
    "BroadcastCall",
    "CollectiveHandle",
    "Communicator",
    "CommCounters",
    "CounterSnapshot",
    "OpStats",
    "Grid2D",
    "factor_pairs",
    "square_grid",
]
