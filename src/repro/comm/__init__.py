"""2D grid geometry, virtual clocks, counters, and collectives."""

from .clocks import PhaseTimes, VirtualClocks
from .collectives import REDUCE_OPS, BroadcastCall, Communicator
from .counters import CommCounters, CounterSnapshot, OpStats
from .grid import Grid2D, factor_pairs, square_grid

__all__ = [
    "PhaseTimes",
    "VirtualClocks",
    "REDUCE_OPS",
    "BroadcastCall",
    "Communicator",
    "CommCounters",
    "CounterSnapshot",
    "OpStats",
    "Grid2D",
    "factor_pairs",
    "square_grid",
]
