"""Message and volume accounting for collectives.

The paper's central communication-scaling argument (§2.2) is stated in
message counts and volumes: a 1D all-to-all needs O(p^2) messages,
while 2D group collectives need O(sqrt(p)) serialized messages per
group and O(p) in total, at the price of up to O(N / sqrt(p))
communicated state per rank.  These counters make both quantities
observable so the scaling benches (and tests) can verify them.

Two message notions are tracked:

* ``serial_messages`` — the latency-chain length of an operation (ring
  steps for a collective, ``k-1`` for an all-to-all participant).  This
  is the count the paper's O(p) vs O(p^2) argument refers to.
* ``transfers`` — every point-to-point send issued, including the
  pipelined concurrent ones.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["OpStats", "CounterSnapshot", "CommCounters"]


@dataclass
class OpStats:
    """Aggregate statistics for one collective kind."""

    calls: int = 0
    serial_messages: int = 0
    transfers: int = 0
    bytes: int = 0

    def add(self, serial_messages: int, transfers: int, nbytes: int) -> None:
        self.calls += 1
        self.serial_messages += serial_messages
        self.transfers += transfers
        self.bytes += int(nbytes)

    def as_dict(self) -> dict[str, int]:
        return {
            "calls": self.calls,
            "serial_messages": self.serial_messages,
            "transfers": self.transfers,
            "bytes": self.bytes,
        }


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable point-in-time copy of :class:`CommCounters`.

    Snapshots are taken at iteration boundaries
    (:meth:`~repro.comm.clocks.VirtualClocks.mark_iteration`) so that
    per-iteration traffic can be recovered *exactly* by subtracting
    consecutive snapshots — integer arithmetic, no apportioning.
    """

    by_kind: Mapping[str, OpStats]

    @classmethod
    def empty(cls) -> "CounterSnapshot":
        return cls(by_kind=MappingProxyType({}))

    @classmethod
    def of(cls, counters: "CommCounters") -> "CounterSnapshot":
        return cls(
            by_kind=MappingProxyType(
                {
                    kind: OpStats(s.calls, s.serial_messages, s.transfers, s.bytes)
                    for kind, s in counters.by_kind.items()
                }
            )
        )

    def __sub__(self, prev: "CounterSnapshot") -> "CounterSnapshot":
        """Exact per-kind delta (kinds with no activity are dropped)."""
        delta: dict[str, OpStats] = {}
        for kind, s in self.by_kind.items():
            p = prev.by_kind.get(kind, OpStats())
            d = OpStats(
                calls=s.calls - p.calls,
                serial_messages=s.serial_messages - p.serial_messages,
                transfers=s.transfers - p.transfers,
                bytes=s.bytes - p.bytes,
            )
            if d.calls or d.serial_messages or d.transfers or d.bytes:
                delta[kind] = d
        return CounterSnapshot(by_kind=MappingProxyType(delta))

    # totals mirror CommCounters so either can feed reports
    @property
    def total_serial_messages(self) -> int:
        return sum(s.serial_messages for s in self.by_kind.values())

    @property
    def total_transfers(self) -> int:
        return sum(s.transfers for s in self.by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.by_kind.values())

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.by_kind.values())

    def __bool__(self) -> bool:
        return any(
            s.calls or s.serial_messages or s.transfers or s.bytes
            for s in self.by_kind.values()
        )

    def summary(self) -> dict[str, dict[str, int]]:
        return {kind: s.as_dict() for kind, s in sorted(self.by_kind.items())}

    def calls_by_kind(self) -> dict[str, int]:
        return {kind: s.calls for kind, s in sorted(self.by_kind.items())}

    # ------------------------------------------------------------------
    # checkpoint support (plain, picklable data — MappingProxyType is
    # not picklable, so snapshots flatten to nested dicts on the way to
    # a checkpoint and rebuild exactly on the way back)
    # ------------------------------------------------------------------
    def as_state(self) -> dict[str, dict[str, int]]:
        """Plain nested-dict form for checkpoints (picklable)."""
        return {kind: s.as_dict() for kind, s in self.by_kind.items()}

    @classmethod
    def from_state(cls, state: Mapping[str, Mapping[str, int]]) -> "CounterSnapshot":
        """Rebuild a snapshot from :meth:`as_state` output."""
        return cls(
            by_kind=MappingProxyType(
                {kind: OpStats(**dict(stats)) for kind, stats in state.items()}
            )
        )


@dataclass
class CommCounters:
    """Per-kind communication statistics for one run."""

    by_kind: dict[str, OpStats] = field(default_factory=lambda: defaultdict(OpStats))

    def record(
        self, kind: str, serial_messages: int, transfers: int, nbytes: int
    ) -> None:
        self.by_kind[kind].add(serial_messages, transfers, nbytes)

    def snapshot(self) -> CounterSnapshot:
        """Immutable copy of the current per-kind statistics."""
        return CounterSnapshot.of(self)

    def reset(self) -> None:
        """Drop all recorded statistics, preserving identity (holders
        of this object observe the reset)."""
        self.by_kind.clear()

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------
    @property
    def total_serial_messages(self) -> int:
        return sum(s.serial_messages for s in self.by_kind.values())

    @property
    def total_transfers(self) -> int:
        return sum(s.transfers for s in self.by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.by_kind.values())

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.by_kind.values())

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, dict[str, int]]:
        """Plain nested-dict copy of the per-kind statistics."""
        return {kind: s.as_dict() for kind, s in self.by_kind.items()}

    def load_state(self, state: Mapping[str, Mapping[str, int]]) -> None:
        """Restore a :meth:`state_dict` snapshot in place (identity is
        preserved: holders of this object observe the restore)."""
        self.by_kind.clear()
        for kind, stats in state.items():
            self.by_kind[kind] = OpStats(**dict(stats))

    def merge(self, other: "CommCounters") -> None:
        """Accumulate another run's counters into this one."""
        for kind, stats in other.by_kind.items():
            agg = self.by_kind[kind]
            agg.calls += stats.calls
            agg.serial_messages += stats.serial_messages
            agg.transfers += stats.transfers
            agg.bytes += stats.bytes

    def summary(self) -> dict[str, dict[str, int]]:
        """Plain-dict view for reports."""
        return {
            kind: {
                "calls": s.calls,
                "serial_messages": s.serial_messages,
                "transfers": s.transfers,
                "bytes": s.bytes,
            }
            for kind, s in sorted(self.by_kind.items())
        }
