"""Gluon-GPU-like comparator (paper §5.7, Fig. 9).

Gluon (Galois) also supports a 2D cartesian vertex cut, but builds it
on a *general-purpose* communication substrate: arbitrary
distributions are supported at the cost of per-message metadata,
host-staged serialization, and no lightweight aggregated group calls.
The paper finds this matches HPCGraph-GPU on one node but collapses
past ~64 ranks once network latency multiplies the per-message
overhead.

This module models exactly that: the same 2D engine and the same
algorithms, driven through :data:`~repro.cluster.costmodel.GENERIC_PROFILE`
(high per-message cost, 1.35x volume inflation, no grouped calls).
Compute is identical — which is why the baseline matches at 1-4 ranks —
so any divergence in the Fig. 9 bench is purely substrate overhead,
mirroring the paper's diagnosis.
"""

from __future__ import annotations

from ..cluster.config import AIMOS, ClusterConfig
from ..cluster.costmodel import GENERIC_PROFILE
from ..comm.grid import Grid2D
from ..core.engine import Engine
from ..graph.csr import Graph

__all__ = ["gluon_engine"]


def gluon_engine(
    graph: Graph,
    n_ranks: int | None = None,
    grid: Grid2D | None = None,
    cluster: ClusterConfig = AIMOS,
    **kwargs,
) -> Engine:
    """An :class:`Engine` configured like Gluon-GPU's 2D CVC.

    Same partitioning and kernels as the paper's system; only the
    communication substrate profile differs.  Pass the result to any
    function in :mod:`repro.algorithms`.
    """
    return Engine(
        graph,
        n_ranks=n_ranks,
        grid=grid,
        cluster=cluster,
        profile=GENERIC_PROFILE,
        **kwargs,
    )
