"""Linear-algebra (CuGraph-like) comparator (paper §5.7, Fig. 10).

CuGraph implements PageRank and friends over tuned sparse
matrix-vector kernels in a 2D distribution.  The trade the paper
measures on 4x A100 (zepy): the LA backend's PageRank is ~1.47x
*faster* (its SpMV kernels beat a general-purpose graph model when
computation dominates), but its CC and BFS are ~3.25x / ~2.64x
*slower*, because the algebraic formulation does dense full-matrix
work every iteration with no sparse frontiers or active-vertex queues.

Faithfully to that design, this backend:

* computes with *real* SciPy block SpMVs over the same 2D partition,
* charges the tuned ``spmv_edge_rate`` of the device (faster per edge
  than the general model's ``edge_rate``),
* never builds queues: every iteration touches the whole matrix
  (min-plus semiring for CC, masked Boolean semiring for BFS).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..cluster.config import ZEPY, ClusterConfig
from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..graph.csr import Graph
from ..kernels import scatter_reduce
from ..patterns.dense import dense_pull, dense_push

__all__ = ["spmv_engine", "spmv_pagerank", "spmv_cc", "spmv_bfs"]


def spmv_engine(
    graph: Graph, n_ranks: int, cluster: ClusterConfig = ZEPY, **kwargs
) -> Engine:
    """An :class:`Engine` placed on the zepy-style workstation."""
    return Engine(graph, n_ranks=n_ranks, cluster=cluster, **kwargs)


def _block_matrices(engine: Engine) -> list[sp.csr_matrix]:
    """SciPy CSR views of each rank's block in LID column space."""

    def build(ctx):
        blk = ctx.block
        n_rows = blk.localmap.n_row
        data = np.ones(blk.indices.size)
        return sp.csr_matrix(
            (data, blk.indices, blk.indptr), shape=(n_rows, ctx.n_total)
        )

    return engine.map_ranks(build)


def _charge_spmv(engine: Engine, rank: int, n_edges: int, n_vertices: int) -> None:
    """Tuned arithmetic (+/x) SpMV — the kernel PageRank maps onto."""
    engine.clocks.add_compute(
        rank, engine.costmodel.spmv_time(n_edges=n_edges, n_vertices=n_vertices)
    )


#: Composition overhead of non-arithmetic semirings on an LA backend:
#: min-plus / masked-Boolean products are built from generic primitives
#: with materialized intermediates rather than a fused tuned kernel.
SEMIRING_WORK_PER_EDGE = 1.5


def _charge_semiring(engine: Engine, rank: int, n_edges: int, n_vertices: int) -> None:
    """Semiring SpMV (CC's min-plus, BFS's masked Boolean): runs at the
    device's general edge rate with composition overhead, not at the
    tuned arithmetic-SpMV rate.  This asymmetry is why the paper's
    Fig. 10 shows the LA backend winning PageRank but losing CC/BFS."""
    engine.clocks.add_compute(
        rank,
        engine.costmodel.kernel_time(
            n_edges=n_edges,
            n_vertices=n_vertices,
            work_per_edge=SEMIRING_WORK_PER_EDGE,
        ),
    )


def spmv_pagerank(
    engine: Engine, iterations: int = 20, damping: float = 0.85
) -> AlgorithmResult:
    """PageRank as y = A x with tuned SpMV kernels."""
    engine.reset_timers()
    n = engine.partition.n_vertices
    grid = engine.grid
    mats = _block_matrices(engine)
    all_ranks = list(range(grid.n_ranks))

    from ..algorithms.pagerank import compute_global_degrees

    compute_global_degrees(engine)

    def alloc_state(ctx):
        ctx.alloc("pr", np.float64, fill=1.0 / n)
        ctx.alloc("acc", np.float64)

    engine.foreach(alloc_state)

    for _ in range(iterations):

        # The dangling share depends only on the previous iteration's
        # pr and the static degrees, so it runs before the SpMV: an
        # overlapped engine issues its one-word AllReduce split-phase
        # here and hides the SpMV + dense-exchange phase behind it.
        def dangling_partial(ctx):
            pr, deg = ctx.get("pr"), ctx.get("deg")
            rw = ctx.row_slice
            return np.array([pr[rw][deg[rw] == 0].sum() / grid.R])

        partials = engine.map_ranks(dangling_partial)
        dangling_handle = (
            engine.comm.start_allreduce(all_ranks, partials, op="sum")
            if engine.overlap
            else None
        )

        def spmv_step(ctx):
            pr, deg, acc = ctx.get("pr"), ctx.get("deg"), ctx.get("acc")
            x = pr / np.maximum(deg, 1.0)
            x[deg == 0] = 0.0
            acc[...] = 0.0
            acc[ctx.row_slice] = mats[ctx.rank] @ x
            _charge_spmv(
                engine, ctx.rank, ctx.block.n_local_edges, ctx.n_total
            )

        engine.foreach(spmv_step)
        dense_pull(engine, "acc", op="sum")

        if dangling_handle is not None:
            engine.comm.wait(dangling_handle)
        else:
            engine.comm.allreduce(all_ranks, partials, op="sum")
        dangling = float(partials[0][0])

        def damping_update(ctx):
            pr, acc = ctx.get("pr"), ctx.get("acc")
            pr[...] = (1.0 - damping) / n + damping * (acc + dangling / n)
            _charge_spmv(engine, ctx.rank, 0, ctx.n_total)

        engine.foreach(damping_update)
        engine.superstep_boundary("spmv")

    return AlgorithmResult(
        values=engine.gather("pr"),
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
    )


def spmv_cc(engine: Engine, max_iterations: int | None = None) -> AlgorithmResult:
    """CC as min-plus label SpMVs: dense full-matrix work per step."""
    engine.reset_timers()
    part, grid = engine.partition, engine.grid
    all_ranks = list(range(grid.n_ranks))
    def init_labels(ctx):
        lm = ctx.localmap
        lab = ctx.alloc("cc", np.float64)
        lab[lm.row_slice] = np.arange(lm.row_start, lm.row_stop)
        lab[lm.col_slice] = np.arange(lm.col_start, lm.col_stop)

    engine.foreach(init_labels)

    iterations = 0
    while True:
        iterations += 1
        snapshots = {
            id_r: engine.ctx(ranks[0]).get("cc")[engine.ctx(ranks[0]).row_slice].copy()
            for id_r, ranks in engine.row_groups()
        }
        # Min-plus "SpMV": every edge participates, no frontier.
        def minplus_spmv(ctx):
            lab = ctx.get("cc")
            src, dst, _ = ctx.expand_all()
            _charge_semiring(engine, ctx.rank, ctx.block.n_local_edges, ctx.n_total)
            if dst.size:
                scatter_reduce(lab, src, lab[dst], "min")

        engine.foreach(minplus_spmv)
        dense_pull(engine, "cc", op="min")
        n_changed = 0
        for id_r, ranks in engine.row_groups():
            now = engine.ctx(ranks[0]).get("cc")[engine.ctx(ranks[0]).row_slice]
            n_changed += int(np.count_nonzero(now != snapshots[id_r]))
        flags = [np.array([float(n_changed)]) for _ in all_ranks]
        engine.comm.allreduce(all_ranks, flags, op="max")
        engine.superstep_boundary("spmv")
        if n_changed == 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break

    labels = part.original_gid(engine.gather("cc").astype(np.int64))
    return AlgorithmResult(
        values=labels,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
    )


def spmv_bfs(engine: Engine, root: int) -> AlgorithmResult:
    """Level-synchronous BFS as masked Boolean-semiring SpMVs.

    No direction optimization and no compressed frontiers: each level
    is a full dense vector pass, the behaviour that costs the algebraic
    backend its BFS performance in the paper's Fig. 10.
    """
    engine.reset_timers()
    part, grid = engine.partition, engine.grid
    n = part.n_vertices
    all_ranks = list(range(grid.n_ranks))
    root_rel = int(part.perm[root])

    def seed_root(ctx):
        lm = ctx.localmap
        lvl = ctx.alloc("level", np.float64, fill=np.inf)
        frontier = ctx.alloc("front", np.float64)
        if lm.row_start <= root_rel < lm.row_stop:
            lvl[lm.row_lid(root_rel)] = 0
            frontier[lm.row_lid(root_rel)] = 1.0
        if lm.col_start <= root_rel < lm.col_stop:
            lvl[lm.col_lid(root_rel)] = 0
            frontier[lm.col_lid(root_rel)] = 1.0

    engine.foreach(seed_root)

    depth = 0
    while True:
        depth += 1
        # next = A x frontier (push across the whole matrix), masked by
        # unvisited; communicated densely.
        def masked_spmv(ctx):
            frontier = ctx.get("front")
            nxt = ctx.alloc("next", np.float64)
            nxt[...] = 0.0
            src, dst, _ = ctx.expand_all()
            _charge_semiring(engine, ctx.rank, ctx.block.n_local_edges, ctx.n_total)
            if dst.size:
                hits = frontier[src] > 0
                scatter_reduce(nxt, dst[hits], 1.0, "max")

        engine.foreach(masked_spmv)
        dense_push(engine, "next", op="max")
        n_new = 0

        def advance_frontier(ctx):
            lvl, nxt = ctx.get("level"), ctx.get("next")
            fresh = (nxt > 0) & ~np.isfinite(lvl)
            lvl[fresh] = depth
            frontier = ctx.get("front")
            frontier[...] = 0.0
            frontier[fresh] = 1.0
            _charge_semiring(engine, ctx.rank, 0, ctx.n_total)

        engine.foreach(advance_frontier)
        for id_r, ranks in engine.row_groups():
            ctx0 = engine.ctx(ranks[0])
            n_new += int(
                np.count_nonzero(ctx0.get("front")[ctx0.row_slice] > 0)
            )
        flags = [np.array([float(n_new)]) for _ in all_ranks]
        engine.comm.allreduce(all_ranks, flags, op="max")
        engine.superstep_boundary("spmv")
        if n_new == 0:
            break

    levels = engine.gather("level")
    out = np.where(np.isfinite(levels), levels, -1).astype(np.int64)
    return AlgorithmResult(
        values=out,
        timings=engine.timing_report(),
        iterations=depth,
        counters=engine.counters.summary(),
    )
