"""1D-distribution baseline engine (paper §1-2 background).

The classic multi-node graph distribution: each rank owns a contiguous
block of vertices *with their full adjacency rows*; non-owned adjacency
targets are ghosts.  Ghost updates move in an all-to-all exchange,
which is exactly the O(p^2)-message behaviour the paper's 2D layout is
designed to avoid — this engine exists so the message-scaling and
comparison benches have a faithful 1D comparator.

Implements the three benchmark algorithms (CC, PageRank, BFS) over the
1D layout with the same virtual-time machinery as the 2D engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.config import AIMOS, ClusterConfig
from ..cluster.costmodel import NCCL_PROFILE, CommProfile, CostModel
from ..cluster.topology import Topology
from ..comm.clocks import VirtualClocks
from ..comm.collectives import Communicator
from ..comm.counters import CommCounters
from ..core.result import AlgorithmResult, TimingReport
from ..graph.csr import Graph
from ..graph.partition.striped import group_ranges, striped_permutation
from ..kernels import scatter_reduce
from ..queueing.frontier import expand_csr

__all__ = ["OneDPartition", "OneDEngine", "cc_1d", "pagerank_1d", "bfs_1d"]


@dataclass
class OneDPartition:
    """One rank's 1D share: owned rows plus ghost directory.

    Adjacency entries are local ids: ``[0, n_own)`` are owned vertices,
    ``[n_own, n_own + n_ghost)`` index into ``ghost_gids`` (sorted).
    """

    rank: int
    start: int
    stop: int
    indptr: np.ndarray
    indices: np.ndarray
    ghost_gids: np.ndarray

    @property
    def n_own(self) -> int:
        return self.stop - self.start

    @property
    def n_local(self) -> int:
        return self.n_own + self.ghost_gids.size

    def lid(self, gids: np.ndarray) -> np.ndarray:
        """Local ids of global ids (owned or ghosted here)."""
        gids = np.asarray(gids, dtype=np.int64)
        owned = (gids >= self.start) & (gids < self.stop)
        out = np.empty(gids.shape, dtype=np.int64)
        out[owned] = gids[owned] - self.start
        out[~owned] = self.n_own + np.searchsorted(self.ghost_gids, gids[~owned])
        return out

    def gid(self, lids: np.ndarray) -> np.ndarray:
        lids = np.asarray(lids, dtype=np.int64)
        out = np.empty(lids.shape, dtype=np.int64)
        own = lids < self.n_own
        out[own] = lids[own] + self.start
        out[~own] = self.ghost_gids[lids[~own] - self.n_own]
        return out


class OneDEngine:
    """BSP engine over a 1D partition with all-to-all ghost exchange."""

    def __init__(
        self,
        graph: Graph,
        n_ranks: int,
        cluster: ClusterConfig = AIMOS,
        profile: CommProfile = NCCL_PROFILE,
    ):
        self.graph = graph
        self.n_ranks = n_ranks
        self.cluster = cluster
        n = graph.n_vertices
        self.perm = striped_permutation(n, n_ranks)
        relabeled = graph.permute(self.perm)
        self.offsets = group_ranges(n, n_ranks)
        self.parts: list[OneDPartition] = []
        mat = relabeled.to_scipy()
        for r in range(n_ranks):
            s, e = int(self.offsets[r]), int(self.offsets[r + 1])
            block = mat[s:e]
            gids = block.indices.astype(np.int64)
            ghost = np.unique(gids[(gids < s) | (gids >= e)])
            part = OneDPartition(
                rank=r,
                start=s,
                stop=e,
                indptr=block.indptr.astype(np.int64),
                indices=np.empty(gids.size, dtype=np.int64),
                ghost_gids=ghost,
            )
            part.indices[:] = part.lid(gids)
            self.parts.append(part)
        # Subscription lists: for each (owner, subscriber) pair, which
        # owned gids the subscriber ghosts.  Drives the owner->ghost
        # refresh leg of the exchange.
        self.subscriptions: list[list[np.ndarray]] = [
            [np.empty(0, dtype=np.int64)] * n_ranks for _ in range(n_ranks)
        ]
        for r, part in enumerate(self.parts):
            owners = np.searchsorted(self.offsets, part.ghost_gids, side="right") - 1
            for o in np.unique(owners):
                self.subscriptions[int(o)][r] = part.ghost_gids[owners == o]

        self.topology = Topology(cluster, n_ranks)
        self.costmodel = CostModel(cluster.gpu, self.topology, profile)
        self.counters = CommCounters()
        self.clocks = VirtualClocks(n_ranks, counters=self.counters)
        self.comm = Communicator(self.costmodel, self.clocks, self.counters)
        self.states: list[dict[str, np.ndarray]] = [dict() for _ in range(n_ranks)]

    # ------------------------------------------------------------------
    def alloc(self, name: str, fill: float = 0.0) -> None:
        for r, part in enumerate(self.parts):
            self.states[r][name] = np.full(part.n_local, fill)

    def charge_edges(self, rank: int, n_edges: int) -> None:
        self.clocks.add_compute(
            rank, self.costmodel.kernel_time(n_edges=n_edges)
        )

    def charge_vertices(self, rank: int, n_vertices: int) -> None:
        self.clocks.add_compute(
            rank, self.costmodel.kernel_time(n_vertices=n_vertices)
        )

    def exchange_min(
        self,
        name: str,
        updated_ghosts: list[np.ndarray],
        updated_owned: list[np.ndarray] | None = None,
    ) -> tuple[int, list[np.ndarray]]:
        """Push ghost updates to owners (all-to-all), reduce with MIN,
        and refresh subscribers (second all-to-all).

        ``updated_ghosts[r]`` holds ghost LIDs with changed state;
        ``updated_owned[r]`` holds owned LIDs the rank changed locally
        during compute — their subscribers must be refreshed too, or
        stale ghost reads (e.g. BFS visited masks) corrupt later
        iterations.  Returns the global number of owned vertices
        changed by remote contributions plus the per-rank changed
        owned LIDs.
        """
        from ..patterns.sparse import PAIR_DTYPE

        ranks = list(range(self.n_ranks))
        # Leg 1: ghosts -> owners.
        send = []
        for r, part in enumerate(self.parts):
            state = self.states[r][name]
            lids = np.asarray(updated_ghosts[r], dtype=np.int64)
            gids = part.gid(lids)
            owners = np.searchsorted(self.offsets, gids, side="right") - 1
            row = []
            for o in ranks:
                sel = owners == o
                buf = np.empty(int(sel.sum()), dtype=PAIR_DTYPE)
                buf["gid"] = gids[sel]
                buf["val"] = state[lids[sel]]
                row.append(buf)
            send.append(row)
            self.charge_vertices(r, lids.size)
        received = self.comm.alltoallv(ranks, send)
        # Owner reduce.
        changed_per_rank: list[np.ndarray] = []
        n_changed = 0
        for r, part in enumerate(self.parts):
            state = self.states[r][name]
            rbuf = received[r]
            lids = rbuf["gid"] - part.start
            changed = scatter_reduce(state, lids, rbuf["val"], "min")
            changed_per_rank.append(changed)
            n_changed += int(changed.size)
            self.charge_vertices(r, rbuf.size)
        # Leg 2: owners -> subscribers (only changed values).
        send2 = []
        for r, part in enumerate(self.parts):
            state = self.states[r][name]
            changed_gids = changed_per_rank[r] + part.start
            if updated_owned is not None and updated_owned[r].size:
                changed_gids = np.unique(
                    np.concatenate([changed_gids, updated_owned[r] + part.start])
                )
            row = []
            for dest in ranks:
                subs = self.subscriptions[r][dest]
                sel = changed_gids[np.isin(changed_gids, subs)]
                buf = np.empty(sel.size, dtype=PAIR_DTYPE)
                buf["gid"] = sel
                buf["val"] = state[sel - part.start]
                row.append(buf)
            send2.append(row)
        received2 = self.comm.alltoallv(ranks, send2)
        for r, part in enumerate(self.parts):
            state = self.states[r][name]
            rbuf = received2[r]
            if rbuf.size:
                state[part.lid(rbuf["gid"])] = rbuf["val"]
            self.charge_vertices(r, rbuf.size)
        return n_changed, changed_per_rank

    def gather(self, name: str) -> np.ndarray:
        """Owned windows stitched into original vertex order."""
        n = self.graph.n_vertices
        out = np.zeros(n)
        for r, part in enumerate(self.parts):
            out[part.start : part.stop] = self.states[r][name][: part.n_own]
        return out[self.perm]

    def timing_report(self) -> TimingReport:
        snap = self.clocks.snapshot()
        return TimingReport(total=snap.total, compute=snap.compute, comm=snap.comm)


# ----------------------------------------------------------------------
# algorithms over the 1D engine
# ----------------------------------------------------------------------
def cc_1d(engine: OneDEngine, max_iterations: int | None = None) -> AlgorithmResult:
    """Color-propagation CC over the 1D layout (push, sparse)."""
    engine.alloc("cc")
    for r, part in enumerate(engine.parts):
        state = engine.states[r]["cc"]
        state[: part.n_own] = np.arange(part.start, part.stop)
        state[part.n_own :] = part.ghost_gids
        engine.charge_vertices(r, part.n_local)

    iterations = 0
    active = [np.arange(p.n_own, dtype=np.int64) for p in engine.parts]
    while True:
        iterations += 1
        updated_ghosts = []
        next_active_local = []
        for r, part in enumerate(engine.parts):
            state = engine.states[r]["cc"]
            rows = active[r]
            src, dst, _ = expand_csr(part.indptr, part.indices, rows)
            engine.charge_edges(r, src.size)
            changed = scatter_reduce(state, dst, state[src], "min")
            updated_ghosts.append(changed[changed >= part.n_own])
            next_active_local.append(changed[changed < part.n_own])
        n_remote, remote_changed = engine.exchange_min(
            "cc", updated_ghosts, next_active_local
        )
        # Owners whose value changed (locally or remotely) are active.
        active = []
        n_total = n_remote
        for r in range(engine.n_ranks):
            active.append(
                np.unique(np.concatenate([next_active_local[r], remote_changed[r]]))
            )
            n_total += int(next_active_local[r].size)
        flags = [np.array([float(n_total)]) for _ in range(engine.n_ranks)]
        engine.comm.allreduce(list(range(engine.n_ranks)), flags, op="max")
        if n_total == 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
    values = engine.gather("cc").astype(np.int64)
    inv = np.empty(values.size, dtype=np.int64)
    inv[engine.perm] = np.arange(values.size)
    return AlgorithmResult(
        values=inv[values],
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
    )


def pagerank_1d(
    engine: OneDEngine, iterations: int = 20, damping: float = 0.85
) -> AlgorithmResult:
    """Pull PageRank over the 1D layout.

    Owners hold full adjacency rows, so no gather reduction is needed;
    the cost is the per-iteration owner->ghost refresh of *every*
    ghosted value — the O(p^2)-message dense exchange of the 1D world.
    """
    from ..patterns.sparse import PAIR_DTYPE

    n = engine.graph.n_vertices
    ranks = list(range(engine.n_ranks))
    engine.alloc("pr", fill=1.0 / n)
    engine.alloc("deg")
    # Global degrees: owners know them outright in 1D.
    for r, part in enumerate(engine.parts):
        engine.states[r]["deg"][: part.n_own] = np.diff(part.indptr)
    # Refresh ghost degrees once.
    _refresh_all(engine, "deg")

    for _ in range(iterations):
        dangling = 0.0
        for r, part in enumerate(engine.parts):
            pr = engine.states[r]["pr"]
            deg = engine.states[r]["deg"]
            rows = np.arange(part.n_own, dtype=np.int64)
            src, dst, _ = expand_csr(part.indptr, part.indices, rows)
            engine.charge_edges(r, src.size)
            acc = np.zeros(part.n_local)
            if dst.size:
                scatter_reduce(acc, src, pr[dst] / np.maximum(deg[dst], 1.0), "sum")
            own = slice(0, part.n_own)
            dangling += float(pr[own][deg[own] == 0].sum())
            engine.states[r]["acc"] = acc
        flags = [np.array([dangling / engine.n_ranks]) for _ in ranks]
        # each rank computed only its own share; emulate with allreduce
        for r, part in enumerate(engine.parts):
            pr = engine.states[r]["pr"]
            deg = engine.states[r]["deg"]
            own = slice(0, part.n_own)
            flags[r][0] = float(pr[own][deg[own] == 0].sum())
        engine.comm.allreduce(ranks, flags, op="sum")
        dangling = float(flags[0][0])
        for r, part in enumerate(engine.parts):
            pr = engine.states[r]["pr"]
            acc = engine.states[r]["acc"]
            pr[: part.n_own] = (1.0 - damping) / n + damping * (
                acc[: part.n_own] + dangling / n
            )
            engine.charge_vertices(r, part.n_own)
        _refresh_all(engine, "pr")
    return AlgorithmResult(
        values=engine.gather("pr"),
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
    )


def _refresh_all(engine: OneDEngine, name: str) -> None:
    """Dense owner->ghost refresh of every subscribed value."""
    from ..patterns.sparse import PAIR_DTYPE

    ranks = list(range(engine.n_ranks))
    send = []
    for r, part in enumerate(engine.parts):
        state = engine.states[r][name]
        row = []
        for dest in ranks:
            subs = engine.subscriptions[r][dest]
            buf = np.empty(subs.size, dtype=PAIR_DTYPE)
            buf["gid"] = subs
            buf["val"] = state[subs - part.start]
            row.append(buf)
        send.append(row)
        engine.charge_vertices(r, part.n_own)
    received = engine.comm.alltoallv(ranks, send)
    for r, part in enumerate(engine.parts):
        state = engine.states[r][name]
        rbuf = received[r]
        if rbuf.size:
            state[part.lid(rbuf["gid"])] = rbuf["val"]
        engine.charge_vertices(r, rbuf.size)


def bfs_1d(engine: OneDEngine, root: int) -> AlgorithmResult:
    """Top-down BFS over the 1D layout (sparse ghost exchange)."""
    n = engine.graph.n_vertices
    engine.alloc("parent", fill=np.inf)
    root_rel = int(engine.perm[root])
    frontier: list[np.ndarray] = []
    for r, part in enumerate(engine.parts):
        state = engine.states[r]["parent"]
        if part.start <= root_rel < part.stop:
            state[root_rel - part.start] = root_rel
            frontier.append(np.array([root_rel - part.start], dtype=np.int64))
        else:
            if root_rel in part.ghost_gids:
                state[part.lid(np.array([root_rel]))[0]] = root_rel
            frontier.append(np.empty(0, dtype=np.int64))

    depth = 0
    while True:
        depth += 1
        updated_ghosts = []
        local_new = []
        for r, part in enumerate(engine.parts):
            state = engine.states[r]["parent"]
            rows = frontier[r]
            src, dst, _ = expand_csr(part.indptr, part.indices, rows)
            engine.charge_edges(r, src.size)
            if dst.size:
                unv = state[dst] == np.inf
                src, dst = src[unv], dst[unv]
                cand = part.gid(src).astype(np.float64)
                changed = scatter_reduce(state, dst, cand, "min")
            else:
                changed = np.empty(0, dtype=np.int64)
            updated_ghosts.append(changed[changed >= part.n_own])
            local_new.append(changed[changed < part.n_own])
        n_remote, remote_changed = engine.exchange_min(
            "parent", updated_ghosts, local_new
        )
        frontier = []
        n_total = n_remote
        for r in range(engine.n_ranks):
            frontier.append(
                np.unique(np.concatenate([local_new[r], remote_changed[r]]))
            )
            n_total += int(local_new[r].size)
        flags = [np.array([float(n_total)]) for _ in range(engine.n_ranks)]
        engine.comm.allreduce(list(range(engine.n_ranks)), flags, op="max")
        if n_total == 0:
            break
    parents_rel = engine.gather("parent")
    inv = np.empty(n, dtype=np.int64)
    inv[engine.perm] = np.arange(n)
    reached = np.isfinite(parents_rel)
    parents = np.full(n, -1, dtype=np.int64)
    parents[reached] = inv[parents_rel[reached].astype(np.int64)]
    return AlgorithmResult(
        values=parents,
        timings=engine.timing_report(),
        iterations=depth,
        counters=engine.counters.summary(),
    )
