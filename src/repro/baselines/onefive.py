"""1.5D (hybrid) distribution baseline (paper §1 background).

Between the classic 1D layout and the paper's 2D layout sits the
"1.5D" family [PowerGraph-style, paper ref. 11]: low-degree vertices
are owned 1D-style, while *selected large-degree vertices are shared
among multiple ranks* — their state is replicated everywhere and kept
consistent with one AllReduce per iteration, and their (huge) adjacency
lists are implicitly split across the ranks that own the opposite
endpoints.  This removes the hub-induced ghost blow-up that cripples
1D layouts on power-law graphs, at the cost of an O(p)-wide replicated
state array.

The engine implements color-propagation CC (the study algorithm of the
paper's Fig. 6) with:

* symmetric local relaxation over owned-vertex edges — hub labels are
  read from / written to the replicated shared array, so hub adjacency
  never needs to be communicated;
* hub-hub edges kept by the hub's 1D owner;
* per iteration: one MIN AllReduce over the shared hub state plus the
  1D all-to-all ghost exchange over the (now hub-free) ghost sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.config import AIMOS, ClusterConfig
from ..cluster.costmodel import NCCL_PROFILE, CommProfile, CostModel
from ..cluster.topology import Topology
from ..comm.clocks import VirtualClocks
from ..comm.collectives import Communicator
from ..comm.counters import CommCounters
from ..core.result import AlgorithmResult, TimingReport
from ..graph.csr import Graph
from ..graph.partition.striped import group_ranges, striped_permutation
from ..kernels import scatter_reduce
from ..queueing.frontier import expand_csr

__all__ = ["OneFiveDEngine", "cc_15d", "default_hub_threshold"]


def default_hub_threshold(graph: Graph, n_ranks: int) -> int:
    """Degree above which a vertex is shared.

    Hubs are vertices whose ghost fan-out would touch a large fraction
    of the ranks anyway; sharing starts paying off around a handful of
    times the average degree, scaled up for small rank counts.
    """
    avg = max(graph.n_edges / max(graph.n_vertices, 1), 1.0)
    return int(max(8 * avg, 2 * n_ranks))


@dataclass
class _RankShare:
    """One rank's share of the 1.5D layout."""

    start: int
    stop: int
    own_gids: np.ndarray  # non-hub owned vertices (relabeled GIDs)
    indptr: np.ndarray  # CSR over own_gids rows
    indices: np.ndarray  # local ids (see OneFiveDEngine id space)
    ghost_gids: np.ndarray  # non-hub ghosts, sorted
    hub_edges: np.ndarray  # (k, 2) hub-slot pairs owned by this rank


class OneFiveDEngine:
    """1.5D engine: 1D ownership + replicated hub state.

    Local id space per rank: ``[0, n_own)`` non-hub owned vertices,
    ``[n_own, n_own + n_ghost)`` non-hub ghosts, and the globally
    shared hubs at ``[n_own + n_ghost, n_own + n_ghost + n_hubs)``
    (hub slot order is identical on every rank).
    """

    def __init__(
        self,
        graph: Graph,
        n_ranks: int,
        hub_threshold: int | None = None,
        cluster: ClusterConfig = AIMOS,
        profile: CommProfile = NCCL_PROFILE,
    ):
        self.graph = graph
        self.n_ranks = n_ranks
        n = graph.n_vertices
        if hub_threshold is None:
            hub_threshold = default_hub_threshold(graph, n_ranks)
        self.hub_threshold = hub_threshold

        self.perm = striped_permutation(n, n_ranks)
        relabeled = graph.permute(self.perm)
        self.offsets = group_ranges(n, n_ranks)
        degrees = relabeled.degrees()
        self.hub_gids = np.flatnonzero(degrees > hub_threshold).astype(np.int64)
        self.is_hub = np.zeros(n, dtype=bool)
        self.is_hub[self.hub_gids] = True
        self.n_hubs = int(self.hub_gids.size)
        # hub gid -> hub slot
        self._hub_slot = np.full(n, -1, dtype=np.int64)
        self._hub_slot[self.hub_gids] = np.arange(self.n_hubs)

        self.shares: list[_RankShare] = []
        for r in range(n_ranks):
            s, e = int(self.offsets[r]), int(self.offsets[r + 1])
            gids = np.arange(s, e, dtype=np.int64)
            own = gids[~self.is_hub[gids]]
            # CSR over non-hub owned rows
            src, dst, _ = expand_csr(
                relabeled.indptr, relabeled.indices, own
            )
            ghost_mask = ~self.is_hub[dst] & ((dst < s) | (dst >= e))
            ghosts = np.unique(dst[ghost_mask])
            degs = np.diff(relabeled.indptr)[own] if own.size else np.empty(0, dtype=np.int64)
            indptr = np.zeros(own.size + 1, dtype=np.int64)
            np.cumsum(degs, out=indptr[1:])
            # hub-hub edges whose source hub is 1D-owned here
            own_hubs = gids[self.is_hub[gids]]
            hsrc, hdst, _ = expand_csr(
                relabeled.indptr, relabeled.indices, own_hubs
            )
            hub_pairs = np.stack(
                [
                    self._hub_slot[hsrc[self.is_hub[hdst]]],
                    self._hub_slot[hdst[self.is_hub[hdst]]],
                ],
                axis=1,
            ) if hsrc.size else np.empty((0, 2), dtype=np.int64)
            share = _RankShare(
                start=s,
                stop=e,
                own_gids=own,
                indptr=indptr,
                indices=np.empty(dst.size, dtype=np.int64),
                ghost_gids=ghosts,
                hub_edges=hub_pairs,
            )
            share.indices[:] = self._lid(share, dst)
            self.shares.append(share)

        self.topology = Topology(cluster, n_ranks)
        self.costmodel = CostModel(cluster.gpu, self.topology, profile)
        self.counters = CommCounters()
        self.clocks = VirtualClocks(n_ranks, counters=self.counters)
        self.comm = Communicator(self.costmodel, self.clocks, self.counters)
        self.states: list[dict[str, np.ndarray]] = [dict() for _ in range(n_ranks)]

    # ------------------------------------------------------------------
    def _lid(self, share: _RankShare, gids: np.ndarray) -> np.ndarray:
        """Local ids under the rank's id space (vectorized)."""
        gids = np.asarray(gids, dtype=np.int64)
        out = np.empty(gids.shape, dtype=np.int64)
        hub = self.is_hub[gids]
        owned = ~hub & (gids >= share.start) & (gids < share.stop)
        ghost = ~hub & ~owned
        n_own = share.own_gids.size
        n_ghost = share.ghost_gids.size
        # owned non-hub vertices are compacted in gid order
        out[owned] = np.searchsorted(share.own_gids, gids[owned])
        out[ghost] = n_own + np.searchsorted(share.ghost_gids, gids[ghost])
        out[hub] = n_own + n_ghost + self._hub_slot[gids[hub]]
        return out

    def n_local(self, rank: int) -> int:
        share = self.shares[rank]
        return share.own_gids.size + share.ghost_gids.size + self.n_hubs

    def alloc(self, name: str, fill: float = 0.0) -> None:
        for r in range(self.n_ranks):
            self.states[r][name] = np.full(self.n_local(r), fill)

    def charge_edges(self, rank: int, n_edges: int) -> None:
        self.clocks.add_compute(rank, self.costmodel.kernel_time(n_edges=n_edges))

    def charge_vertices(self, rank: int, n_vertices: int) -> None:
        self.clocks.add_compute(
            rank, self.costmodel.kernel_time(n_vertices=n_vertices)
        )

    # ------------------------------------------------------------------
    def gather(self, name: str) -> np.ndarray:
        """Assemble the global vector (original vertex order)."""
        n = self.graph.n_vertices
        out = np.zeros(n)
        for r, share in enumerate(self.shares):
            state = self.states[r][name]
            out[share.own_gids] = state[: share.own_gids.size]
        if self.n_hubs:
            state0 = self.states[0][name]
            base = self.shares[0].own_gids.size + self.shares[0].ghost_gids.size
            out[self.hub_gids] = state0[base : base + self.n_hubs]
        return out[self.perm]

    def timing_report(self) -> TimingReport:
        snap = self.clocks.snapshot()
        return TimingReport(total=snap.total, compute=snap.compute, comm=snap.comm)


def cc_15d(
    engine: OneFiveDEngine, max_iterations: int | None = None
) -> AlgorithmResult:
    """Color-propagation CC on the 1.5D layout."""
    from ..patterns.sparse import PAIR_DTYPE

    ranks = list(range(engine.n_ranks))
    engine.alloc("cc")
    for r, share in enumerate(engine.shares):
        state = engine.states[r]["cc"]
        n_own, n_ghost = share.own_gids.size, share.ghost_gids.size
        state[:n_own] = share.own_gids
        state[n_own : n_own + n_ghost] = share.ghost_gids
        state[n_own + n_ghost :] = engine.hub_gids
        engine.charge_vertices(r, state.size)

    iterations = 0
    while True:
        iterations += 1
        n_changed = 0
        updated_ghosts: list[np.ndarray] = []
        hub_views: list[np.ndarray] = []
        share0 = engine.shares[0]
        hub_base0 = share0.own_gids.size + share0.ghost_gids.size
        hub_before = engine.states[0]["cc"][hub_base0:].copy()
        for r, share in enumerate(engine.shares):
            state = engine.states[r]["cc"]
            n_own, n_ghost = share.own_gids.size, share.ghost_gids.size
            rows = np.arange(n_own, dtype=np.int64)
            src, dst, _ = expand_csr(share.indptr, share.indices, rows)
            engine.charge_edges(r, 2 * src.size + 2 * share.hub_edges.shape[0])
            before_own = state[:n_own].copy()
            if src.size:
                # symmetric relaxation: labels flow both directions, so
                # hub adjacency is covered by the reverse edges here
                scatter_reduce(state, dst, state[src], "min")
                scatter_reduce(state, src, state[dst], "min")
            he = share.hub_edges
            if he.size:
                base = n_own + n_ghost
                scatter_reduce(state, base + he[:, 1], state[base + he[:, 0]], "min")
                scatter_reduce(state, base + he[:, 0], state[base + he[:, 1]], "min")
            changed_own = np.flatnonzero(state[:n_own] < before_own)
            n_changed += int(changed_own.size)
            ghost_lids = np.arange(n_own, n_own + n_ghost, dtype=np.int64)
            updated_ghosts.append(ghost_lids)  # conservatively exchange all
            hub_views.append(state[n_own + n_ghost :])

        # (a) hub state: one MIN AllReduce over the replicated array.
        if engine.n_hubs:
            engine.comm.allreduce(ranks, hub_views, op="min")
            n_changed += int(
                np.count_nonzero(
                    engine.states[0]["cc"][hub_base0:] < hub_before
                )
            )

        # (b) low-degree ghosts: 1D all-to-all (send ghost values to
        # owners, reduce, refresh subscribers) — reusing the plain 1D
        # exchange shape, but over hub-free ghost sets.
        send = []
        for r, share in enumerate(engine.shares):
            state = engine.states[r]["cc"]
            n_own = share.own_gids.size
            gids = share.ghost_gids
            owners = np.searchsorted(engine.offsets, gids, side="right") - 1
            row = []
            for o in ranks:
                sel = owners == o
                buf = np.empty(int(sel.sum()), dtype=PAIR_DTYPE)
                buf["gid"] = gids[sel]
                buf["val"] = state[n_own : n_own + gids.size][sel]
                row.append(buf)
            send.append(row)
            engine.charge_vertices(r, gids.size)
        received = engine.comm.alltoallv(ranks, send)
        for r, share in enumerate(engine.shares):
            state = engine.states[r]["cc"]
            rbuf = received[r]
            if rbuf.size:
                lids = engine._lid(share, rbuf["gid"])
                n_changed += int(scatter_reduce(state, lids, rbuf["val"], "min").size)
            engine.charge_vertices(r, rbuf.size)
        # refresh ghosts from owners
        send2 = []
        for r, share in enumerate(engine.shares):
            state = engine.states[r]["cc"]
            row = []
            for dest in ranks:
                dshare = engine.shares[dest]
                subs = dshare.ghost_gids
                mine = subs[(subs >= share.start) & (subs < share.stop)]
                buf = np.empty(mine.size, dtype=PAIR_DTYPE)
                buf["gid"] = mine
                buf["val"] = state[engine._lid(share, mine)]
                row.append(buf)
            send2.append(row)
        received2 = engine.comm.alltoallv(ranks, send2)
        for r, share in enumerate(engine.shares):
            state = engine.states[r]["cc"]
            rbuf = received2[r]
            if rbuf.size:
                state[engine._lid(share, rbuf["gid"])] = np.minimum(
                    state[engine._lid(share, rbuf["gid"])], rbuf["val"]
                )
            engine.charge_vertices(r, rbuf.size)

        flags = [np.array([float(n_changed)]) for _ in ranks]
        engine.comm.allreduce(ranks, flags, op="max")
        if flags[0][0] == 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break

    values = engine.gather("cc").astype(np.int64)
    inv = np.empty(values.size, dtype=np.int64)
    inv[engine.perm] = np.arange(values.size)
    return AlgorithmResult(
        values=inv[values],
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra={"n_hubs": engine.n_hubs, "hub_threshold": engine.hub_threshold},
    )
