"""Comparator engines (paper §5.7 and §2 background).

* :mod:`~repro.baselines.oned_engine` — classic 1D distribution with
  O(p^2)-message all-to-all ghost exchange.
* :mod:`~repro.baselines.gluon` — Gluon-GPU-like: our 2D layout over a
  general-purpose comm substrate (Fig. 9 comparison).
* :mod:`~repro.baselines.spmv` — CuGraph-like linear-algebra backend
  (Fig. 10 comparison).
"""

from .gluon import gluon_engine
from .oned_engine import OneDEngine, OneDPartition, bfs_1d, cc_1d, pagerank_1d
from .onefive import OneFiveDEngine, cc_15d, default_hub_threshold
from .spmv import spmv_bfs, spmv_cc, spmv_engine, spmv_pagerank

__all__ = [
    "gluon_engine",
    "OneDEngine",
    "OneDPartition",
    "bfs_1d",
    "cc_1d",
    "pagerank_1d",
    "OneFiveDEngine",
    "cc_15d",
    "default_hub_threshold",
    "spmv_bfs",
    "spmv_cc",
    "spmv_engine",
    "spmv_pagerank",
]
