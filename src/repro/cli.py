"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run one algorithm on a dataset stand-in over a simulated cluster
    and print the timing/throughput summary::

        python -m repro run --algo CC --dataset TW --ranks 16
        python -m repro run --algo PR --dataset RMAT20 --ranks 64 --cluster zepy

``scaling``
    Strong-scaling sweep, printed as the paper's Fig. 3-style table::

        python -m repro scaling --dataset GSH --algos BFS,PR,CC --ranks 1,4,16,64

``trace``
    Run one algorithm and emit its exact per-iteration comm/compute
    breakdown (counter-snapshot deltas, not time-share estimates) as
    CSV and/or JSON::

        python -m repro trace --algo CC --dataset TW --ranks 16
        python -m repro trace --algo PR --dataset RMAT12 --ranks 4 --out pr_trace

``perf``
    Measure the simulator's own wall-clock performance (the modeled
    benches report virtual time; this one times the host) and append
    the result to the persisted trajectory file::

        python -m repro perf --scale 14 --ranks 16 --out BENCH_simulator.json

``faults``
    Run the fault-injection scenario campaign (crash/recovery,
    transient retries, bit-flip detection, stragglers) and report
    whether every faulted run recovered to the fault-free answer::

        python -m repro faults --dataset FR --ranks 4
        python -m repro faults --scenario crash-recover --algos BFS,PR

    Exits nonzero when any scenario ends unrecovered or diverged.

``info``
    Show the registered datasets, machines, and algorithms.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .bench.harness import ALGORITHMS, format_rows, make_engine, run_algorithm, strong_scaling
from .bench.reporting import to_csv, to_markdown
from .cluster.config import AIMOS, DGX, ZEPY
from .core.trace import TraceRecorder
from .graph.datasets import available, load

_CLUSTERS = {"aimos": AIMOS, "zepy": ZEPY, "dgx": DGX}


def _cmd_run(args: argparse.Namespace) -> int:
    ds = load(
        args.dataset,
        target_edges=args.target_edges,
        seed=args.seed,
        weighted=args.algo.upper() in ("MWM",),
    )
    print(ds.note)
    engine = make_engine(ds, args.ranks, cluster=_CLUSTERS[args.cluster])
    row = run_algorithm(
        args.algo.upper(),
        engine,
        experiment="cli",
        dataset=args.dataset.upper(),
        full_scale_edges=ds.meta.n_edges,
    )
    print(format_rows([row]))
    print()
    print(f"projected full-scale time : {row.time_total:.3f}s")
    print(f"communication share       : {100 * row.time_comm / row.time_total:.0f}%")
    print(f"projected throughput      : {row.teps / 1e9:.2f} GTEPS")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    algos = [a.strip().upper() for a in args.algos.split(",")]
    ranks = [int(p) for p in args.ranks.split(",")]
    rows = strong_scaling(
        args.dataset,
        algos,
        ranks,
        target_edges=args.target_edges,
        cluster=_CLUSTERS[args.cluster],
        seed=args.seed,
    )
    if args.format == "markdown":
        print(to_markdown(rows, title=f"strong scaling on {args.dataset}"))
    elif args.format == "csv":
        print(to_csv(rows), end="")
    else:
        print(format_rows(rows, f"strong scaling on {args.dataset}"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    ds = load(
        args.dataset,
        target_edges=args.target_edges,
        seed=args.seed,
        weighted=args.algo.upper() in ("MWM",),
    )
    engine = make_engine(ds, args.ranks, cluster=_CLUSTERS[args.cluster])
    row = run_algorithm(
        args.algo.upper(),
        engine,
        experiment="trace",
        dataset=args.dataset.upper(),
        full_scale_edges=ds.meta.n_edges,
    )
    rows = row.extra["trace"]
    meta = {
        "algo": row.algorithm,
        "dataset": row.dataset,
        "ranks": row.n_ranks,
        "grid": row.grid,
        "cluster": args.cluster,
        "note": ds.note,
    }
    csv_text = TraceRecorder.to_csv(rows)
    json_text = TraceRecorder.to_json(rows, meta=meta)

    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        csv_path = out.with_suffix(".csv")
        json_path = out.with_suffix(".json")
        csv_path.write_text(csv_text)
        json_path.write_text(json_text)
        print(f"wrote {csv_path}")
        print(f"wrote {json_path}")
    else:
        if args.format in ("csv", "both"):
            print(csv_text, end="")
        if args.format in ("json", "both"):
            print(json_text)

    # Exactness check: trace rows must reproduce the run totals.
    c = engine.counters
    exact = (
        sum(r.bytes for r in rows) == c.total_bytes
        and sum(r.serial_messages for r in rows) == c.total_serial_messages
        and sum(r.transfers for r in rows) == c.total_transfers
    )
    print(
        f"# {row.algorithm} on {row.dataset}: {len(rows)} iterations, "
        f"{c.total_bytes} bytes, {c.total_serial_messages} serial messages "
        f"({'exact' if exact else 'MISMATCH'})",
        file=sys.stderr,
    )
    return 0 if exact else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    from .bench.perf import append_entry, run_perf

    entry = run_perf(
        scale=args.scale,
        ranks=args.ranks,
        repeats=args.repeats,
        label=args.label,
        primitives=not args.no_primitives,
        executor=args.executor,
        modeled=args.overlap,
        batch=args.batch,
        batch_ks=tuple(
            int(k) for k in args.batch_ks.split(",")
        ) if args.batch else (4, 8, 16),
    )
    for section in ("algorithms", "primitives"):
        if section not in entry:
            continue
        print(f"{section}:")
        for name, t in entry[section].items():
            print(
                f"  {name:>20}: best {t['best_s'] * 1e3:9.3f} ms  "
                f"mean {t['mean_s'] * 1e3:9.3f} ms  ({t['repeats']} repeats)"
            )
    if "modeled" in entry:
        print("modeled (virtual clock, blocking vs overlapped):")
        for name, m in entry["modeled"].items():
            blk, ovl = m["blocking"], m["overlapped"]
            print(
                f"  {name:>20}: blocking {blk['total_s']:9.3f}s  "
                f"overlapped {ovl['total_s']:9.3f}s  "
                f"(x{m['speedup']:.3f}, hid {ovl['overlap_fraction']:.1%} "
                f"of comm)"
            )
    if "batched" in entry:
        print("batched k-source BFS (vs k sequential runs):")
        for name, b in entry["batched"].items():
            calls = b["allgatherv_calls"]
            ident = "bit-identical" if b["bit_identical"] else "MISMATCH"
            print(
                f"  {name:>20}: seq {b['sequential']['best_s'] * 1e3:9.3f} ms  "
                f"batch {b['batched']['best_s'] * 1e3:9.3f} ms  "
                f"(x{b['speedup']:.2f}, allgatherv {calls['sequential']}"
                f"->{calls['batched']} = x{calls['ratio']:.2f} fewer, "
                f"{ident})"
            )
    if args.out:
        data = append_entry(args.out, entry)
        print(f"appended entry {len(data['entries'])} to {args.out}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .faults.scenarios import (
        AUTOSCALE_SCENARIOS,
        DEFAULT_AUTOSCALE_SCENARIOS,
        DEFAULT_ELASTIC_SCENARIOS,
        DEFAULT_SCENARIOS,
        DEFAULT_SDC_SCENARIOS,
        ELASTIC_RUNNERS,
        ELASTIC_SCENARIOS,
        RUNNERS,
        SCENARIOS,
        SDC_RUNNERS,
        SDC_SCENARIOS,
        WEIGHTED_ALGOS,
        run_autoscale_campaign,
        run_campaign,
        run_elastic_campaign,
        run_sdc_campaign,
    )

    # --elastic / --autoscale / --sdc conflicts are rejected by the
    # parser's mutually-exclusive group (argparse exits 2 with usage).
    if args.sdc:
        runners = SDC_RUNNERS
    elif args.elastic or args.autoscale:
        runners = ELASTIC_RUNNERS
    else:
        runners = RUNNERS
    algos = (
        [a.strip().upper() for a in args.algos.split(",")]
        if args.algos
        else sorted(runners)
    )
    for algo in algos:
        if algo not in runners:
            print(f"unknown algorithm {algo!r}; choose from {sorted(runners)}")
            return 2
    if args.sdc:
        known = SDC_SCENARIOS
        defaults = DEFAULT_SDC_SCENARIOS
    elif args.autoscale:
        known = AUTOSCALE_SCENARIOS
        defaults = DEFAULT_AUTOSCALE_SCENARIOS
    elif args.elastic:
        known = ELASTIC_SCENARIOS
        defaults = DEFAULT_ELASTIC_SCENARIOS
    else:
        known = SCENARIOS
        defaults = DEFAULT_SCENARIOS
    if args.scenario != "all" and args.scenario not in known:
        mode = (
            "--sdc"
            if args.sdc
            else (
                "--autoscale"
                if args.autoscale
                else ("--elastic" if args.elastic else "non-elastic")
            )
        )
        print(
            f"scenario {args.scenario!r} is not a {mode} scenario; "
            f"choose from {sorted(known)}"
        )
        return 2
    scenarios = list(defaults) if args.scenario == "all" else [args.scenario]
    # Elastic campaigns need headroom to shrink: default to a 12-rank
    # grid so a 4x3 layout can lose ranks and still factor usefully.
    # Autoscale campaigns default to 4 so the demote-then-grow-back
    # round trip is 2x2 -> 1x3 -> 2x2 (back to the original grid).
    # SDC campaigns also default to 4: the integrity ledger needs
    # replicated windows on both grid axes (R >= 2 and C >= 2).
    if args.ranks is not None:
        ranks = args.ranks
    elif args.elastic:
        ranks = 12
    else:
        ranks = 4
    ds = load(args.dataset, target_edges=args.target_edges, seed=args.seed)
    print(ds.note)

    def fresh_engine():
        return make_engine(
            ds,
            ranks,
            cluster=_CLUSTERS[args.cluster],
            executor=args.executor,
        )

    if args.sdc:
        weighted_engine = None
        if any(a in WEIGHTED_ALGOS for a in algos):
            dsw = load(
                args.dataset,
                target_edges=args.target_edges,
                seed=args.seed,
                weighted=True,
            )

            def weighted_engine():
                return make_engine(
                    dsw,
                    ranks,
                    cluster=_CLUSTERS[args.cluster],
                    executor=args.executor,
                )

        report = run_sdc_campaign(
            fresh_engine,
            algos=algos,
            scenarios=scenarios,
            max_retries=args.max_retries,
            make_weighted_engine=weighted_engine,
        )
        header = (
            f"{'scenario':>18} {'algo':>5} {'status':>10} {'detected':>9} "
            f"{'values':>7} {'clocks':>7} {'repairs':>8} {'certify[s]':>11}"
        )
        print(header)
        print("-" * len(header))
        for c in report["cases"]:
            print(
                f"{c['scenario']:>18} {c['algo']:>5} {c['status']:>10} "
                f"{str(c['detected']):>9} {str(c['values_equal']):>7} "
                f"{str(c['clocks_equal']):>7} {c['repairs']:>8} "
                f"{c['certify_s']:>11.3e}"
            )
        print()
        print(
            f"{report['total']} cases: "
            f"{report['total'] - report['failed']} ok, "
            f"{report['failed']} failed "
            f"({report['undetected']} undetected, "
            f"{report['unrepaired']} unrepaired), "
            f"{report['repairs']} repairs"
        )
        if report["skipped"]:
            skipped = ", ".join(
                f"{s['algo']}@{s['scenario']}" for s in report["skipped"]
            )
            print(f"skipped (no weighted graph): {skipped}")
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(report, indent=2))
            print(f"wrote {out}")
        return 1 if report["failed"] else 0

    if args.autoscale:
        report = run_autoscale_campaign(
            fresh_engine,
            algos=algos,
            scenarios=scenarios,
            checkpoint_interval=args.checkpoint_interval,
            max_retries=args.max_retries,
        )
        header = (
            f"{'scenario':>26} {'algo':>5} {'status':>10} {'values':>7} "
            f"{'regrids':>8} {'dem/grow/hold':>13} {'grids':>20} "
            f"{'regrid[s]':>11}"
        )
        print(header)
        print("-" * len(header))
        for c in report["cases"]:
            values = (
                "exact"
                if c["values_equal"]
                else ("~ulp" if c["values_close"] else "DIFF")
            )
            trail = "->".join(f"{r}x{cc}" for r, cc in c["grid_trail"])
            dgh = f"{c['n_demotions']}/{c['n_grows']}/{c['n_holds']}"
            print(
                f"{c['scenario']:>26} {c['algo']:>5} {c['status']:>10} "
                f"{values:>7} {c['n_regrids']:>8} {dgh:>13} {trail:>20} "
                f"{c['regrid_s']:>11.3e}"
            )
        print()
        print(
            f"{report['total']} cases: "
            f"{report['total'] - report['failed']} ok, "
            f"{report['failed']} failed "
            f"({report['unrecovered']} unrecovered, "
            f"{report['diverged']} diverged), "
            f"{report['demotions']} demotions, {report['grows']} grows, "
            f"{report['holds']} holds"
        )
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(report, indent=2))
            print(f"wrote {out}")
        return 1 if report["failed"] else 0

    if args.elastic:
        report = run_elastic_campaign(
            fresh_engine,
            algos=algos,
            scenarios=scenarios,
            checkpoint_interval=args.checkpoint_interval,
            max_retries=args.max_retries,
        )
        header = (
            f"{'scenario':>24} {'algo':>5} {'status':>12} {'values':>7} "
            f"{'regrids':>8} {'grids':>20} {'regrid[s]':>11} {'frac':>6}"
        )
        print(header)
        print("-" * len(header))
        for c in report["cases"]:
            values = (
                "exact"
                if c["values_equal"]
                else ("~ulp" if c["values_close"] else "DIFF")
            )
            trail = "->".join(f"{r}x{cc}" for r, cc in c["grid_trail"])
            print(
                f"{c['scenario']:>24} {c['algo']:>5} {c['status']:>12} "
                f"{values:>7} {c['n_regrids']:>8} {trail:>20} "
                f"{c['regrid_s']:>11.3e} {c['regrid_fraction']:>6.1%}"
            )
        print()
        print(
            f"{report['total']} cases: "
            f"{report['total'] - report['failed']} ok, "
            f"{report['failed']} failed "
            f"({report['unrecovered']} unrecovered, "
            f"{report['diverged']} diverged), "
            f"{report['regrids']} regrids"
        )
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(report, indent=2))
            print(f"wrote {out}")
        return 1 if report["failed"] else 0

    report = run_campaign(
        fresh_engine,
        algos=algos,
        scenarios=scenarios,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries,
    )
    header = (
        f"{'scenario':>18} {'algo':>5} {'status':>12} {'values':>7} "
        f"{'clocks':>7} {'events':>7} {'recovery[s]':>12}"
    )
    print(header)
    print("-" * len(header))
    for c in report["cases"]:
        print(
            f"{c['scenario']:>18} {c['algo']:>5} {c['status']:>12} "
            f"{str(c['values_equal']):>7} {str(c['clocks_equal']):>7} "
            f"{c['n_fault_events']:>7} {c['recovery_s']:>12.3e}"
        )
    print()
    print(
        f"{report['total']} cases: {report['total'] - report['failed']} ok, "
        f"{report['failed']} failed ({report['unrecovered']} unrecovered)"
    )
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2))
        print(f"wrote {out}")
    return 1 if report["failed"] else 0


def _cmd_info(args: argparse.Namespace) -> int:
    del args
    from .graph.datasets import REGISTRY

    print("datasets (paper Table 4; stand-ins generated on demand):")
    for abbr in available():
        m = REGISTRY[abbr]
        print(
            f"  {abbr:>4}  {m.name:<16} N={m.n_vertices:>13,}  M={m.n_edges:>16,}  [{m.kind}]"
        )
    print("  plus RMATxx / RANDxx synthetic families")
    print()
    print("machines:")
    for name, cfg in _CLUSTERS.items():
        node = cfg.node
        print(
            f"  {name:>6}: {node.gpus_per_node}x {cfg.gpu.name} per node, "
            f"NVLink islands of {node.nvlink_group_size}, "
            f"NIC {node.nic.bandwidth_Bps / 1e9:.1f} GB/s"
        )
    print()
    print(f"algorithms: {', '.join(sorted(ALGORITHMS))} "
          "(+ sssp, core_numbers, triangle_count via the library API)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCGraph-GPU reproduction: 2D distributed graph "
        "processing on simulated GPU clusters",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm")
    run.add_argument("--algo", required=True, choices=sorted(ALGORITHMS) + [a.lower() for a in ALGORITHMS])
    run.add_argument("--dataset", default="TW")
    run.add_argument("--ranks", type=int, default=16)
    run.add_argument("--cluster", choices=sorted(_CLUSTERS), default="aimos")
    run.add_argument("--target-edges", type=int, default=1 << 16)
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    scaling = sub.add_parser("scaling", help="strong-scaling sweep")
    scaling.add_argument("--dataset", default="TW")
    scaling.add_argument("--algos", default="BFS,PR,CC")
    scaling.add_argument("--ranks", default="1,4,16,64")
    scaling.add_argument("--cluster", choices=sorted(_CLUSTERS), default="aimos")
    scaling.add_argument("--target-edges", type=int, default=1 << 16)
    scaling.add_argument("--seed", type=int, default=0)
    scaling.add_argument(
        "--format", choices=["text", "markdown", "csv"], default="text"
    )
    scaling.set_defaults(func=_cmd_scaling)

    trace = sub.add_parser(
        "trace", help="per-iteration comm/compute breakdown of one run"
    )
    trace.add_argument("--algo", required=True, choices=sorted(ALGORITHMS) + [a.lower() for a in ALGORITHMS])
    trace.add_argument("--dataset", default="TW")
    trace.add_argument("--ranks", type=int, default=16)
    trace.add_argument("--cluster", choices=sorted(_CLUSTERS), default="aimos")
    trace.add_argument("--target-edges", type=int, default=1 << 16)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--format", choices=["csv", "json", "both"], default="both",
        help="what to print when --out is not given",
    )
    trace.add_argument(
        "--out", default=None, metavar="PREFIX",
        help="write PREFIX.csv and PREFIX.json instead of printing",
    )
    trace.set_defaults(func=_cmd_trace)

    perf = sub.add_parser(
        "perf", help="wall-clock performance of the simulator itself"
    )
    perf.add_argument("--scale", type=int, default=14, help="rmat scale")
    perf.add_argument("--ranks", type=int, default=16)
    perf.add_argument("--repeats", type=int, default=3)
    perf.add_argument("--label", default="", help="entry label in the trajectory")
    perf.add_argument(
        "--out", default=None, metavar="PATH",
        help="append the entry to this trajectory JSON (e.g. BENCH_simulator.json)",
    )
    perf.add_argument(
        "--no-primitives", action="store_true",
        help="skip the primitive micro-timings (algorithms only)",
    )
    perf.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="rank executor: 'serial', 'threads', or 'threads:N' "
             "(default: the REPRO_EXECUTOR environment variable, else serial)",
    )
    perf.add_argument(
        "--overlap", action="store_true",
        help="also record the modeled (virtual-clock) blocking-vs-"
             "overlapped comparison for BFS/PR/CC/SpMV",
    )
    perf.add_argument(
        "--batch", action="store_true",
        help="also record batched k-source BFS vs k sequential runs "
             "(wall time, allgatherv call counts, bit-identity)",
    )
    perf.add_argument(
        "--batch-ks", default="4,8,16", metavar="K,K,...",
        help="comma-separated lane counts for --batch (default 4,8,16)",
    )
    perf.set_defaults(func=_cmd_perf)

    faults = sub.add_parser(
        "faults", help="fault-injection scenario campaign with recovery checks"
    )
    from .faults.scenarios import AUTOSCALE_SCENARIOS as _AUTOSCALE_SCENARIOS
    from .faults.scenarios import ELASTIC_SCENARIOS as _ELASTIC_SCENARIOS
    from .faults.scenarios import RUNNERS as _FAULT_RUNNERS
    from .faults.scenarios import SCENARIOS as _FAULT_SCENARIOS
    from .faults.scenarios import SDC_RUNNERS as _SDC_RUNNERS
    from .faults.scenarios import SDC_SCENARIOS as _SDC_SCENARIOS

    # The campaigns are alternatives: exactly one (or none, for the
    # plain crash/retry campaign) may be selected.  argparse enforces
    # the conflict and exits 2 with a usage message.
    campaign = faults.add_mutually_exclusive_group()
    campaign.add_argument(
        "--elastic", action="store_true",
        help="run the elastic (permanent-rank-loss) campaign: crashes "
             "regrid onto the surviving GPUs instead of resuming in place",
    )
    campaign.add_argument(
        "--autoscale", action="store_true",
        help="run the autoscale campaign: the health watchdog demotes "
             "chronic stragglers and the grid grows back onto arriving "
             "spare ranks",
    )
    campaign.add_argument(
        "--sdc", action="store_true",
        help="run the silent-data-corruption campaign: memory bit-flips "
             "in per-rank state arrays, detected by the integrity "
             "ledger and repaired by checkpoint rollback (graded "
             "bit-identical to fault-free runs)",
    )
    faults.add_argument(
        "--scenario", default="all",
        choices=["all"]
        + sorted(_FAULT_SCENARIOS)
        + sorted(_ELASTIC_SCENARIOS)
        + sorted(_AUTOSCALE_SCENARIOS)
        + sorted(_SDC_SCENARIOS),
        help="one scenario, or 'all' for the default campaign "
             "(excludes the deliberately-failing crash-unrecovered); "
             "with --elastic/--autoscale/--sdc, one of that campaign's "
             "scenarios",
    )
    faults.add_argument(
        "--algos", default=None,
        help="comma-separated algorithms (default: every algorithm the "
             "selected campaign supports; resume-capable: "
             + ", ".join(sorted(_FAULT_RUNNERS))
             + "; --sdc adds " + ", ".join(
                 sorted(set(_SDC_RUNNERS) - set(_FAULT_RUNNERS))) + ")",
    )
    faults.add_argument("--dataset", default="FR")
    faults.add_argument(
        "--ranks", type=int, default=None,
        help="grid size (default 4; 12 with --elastic so shrinks "
             "have factor-pair headroom; 4 with --autoscale so the "
             "demote/grow round trip returns to the original 2x2)",
    )
    faults.add_argument("--cluster", choices=sorted(_CLUSTERS), default="aimos")
    faults.add_argument("--target-edges", type=int, default=1 << 12)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--checkpoint-interval", type=int, default=1)
    faults.add_argument("--max-retries", type=int, default=4)
    faults.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="rank executor: 'serial', 'threads', or 'threads:N'",
    )
    faults.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON campaign report here",
    )
    faults.set_defaults(func=_cmd_faults)

    info = sub.add_parser("info", help="list datasets, machines, algorithms")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
