"""Single-rank reference implementations (ground truth for validation).

Every distributed algorithm in :mod:`repro.algorithms` must produce
results identical (or equivalent, for algorithms whose output is only
unique up to representative choice) to these simple serial versions,
independent of grid shape, distribution, communication mode, or queue
usage.  The integration and property tests enforce that invariant.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import Graph

__all__ = [
    "connected_components",
    "canonical_labels",
    "pagerank",
    "bfs_levels",
    "bfs_parents_valid",
    "label_propagation",
    "matching_is_valid",
    "matching_weight",
    "locally_dominant_matching",
    "pointer_jumping_roots",
    "sssp_distances",
    "triangle_count",
]


def connected_components(graph: Graph) -> np.ndarray:
    """Component ids via scipy (weak connectivity)."""
    n, labels = csgraph.connected_components(
        graph.to_scipy(), directed=False, return_labels=True
    )
    return labels.astype(np.int64)


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel components to their minimum member vertex id.

    Makes two labelings comparable even when their representatives
    differ.
    """
    labels = np.asarray(labels)
    n = labels.size
    if n == 0:
        return labels.astype(np.int64)
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    first = np.ones(n, dtype=bool)
    first[1:] = sorted_labels[1:] != sorted_labels[:-1]
    group_id = np.cumsum(first) - 1
    # min vertex id in each group
    rep = np.full(group_id[-1] + 1, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(rep, group_id, order)
    out = np.empty(n, dtype=np.int64)
    out[order] = rep[group_id]
    return out


def pagerank(
    graph: Graph,
    iterations: int = 20,
    damping: float = 0.85,
    personalization=None,
    weighted: bool = False,
) -> np.ndarray:
    """Synchronous PageRank, the formulation the paper benchmarks.

    Dangling mass is redistributed uniformly (or by the teleport
    vector) each iteration; degrees are the symmetrized out-degrees,
    weighted when ``weighted`` is set.
    """
    n = graph.n_vertices
    mat = graph.to_scipy()
    if not weighted:
        mat.data[:] = 1.0
    deg = np.asarray(mat.sum(axis=1)).ravel()
    inv_deg = np.where(deg > 0, 1.0 / np.where(deg > 0, deg, 1.0), 0.0)
    if personalization is not None:
        tele = np.asarray(personalization, dtype=np.float64)
        tele = tele / tele.sum()
    else:
        tele = np.full(n, 1.0 / n)
    pr = np.full(n, 1.0 / n)
    for _ in range(iterations):
        contrib = pr * inv_deg
        gathered = mat.T @ contrib  # symmetric, but keep the pull form
        dangling = pr[deg == 0].sum()
        pr = (1.0 - damping) * tele + damping * (gathered + dangling * tele)
    return pr


def bfs_levels(graph: Graph, root: int) -> np.ndarray:
    """BFS depth of every vertex from ``root`` (-1 if unreachable)."""
    n = graph.n_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        depth += 1
        degs = indptr[frontier + 1] - indptr[frontier]
        total = int(degs.sum())
        if total == 0:
            break
        starts = np.cumsum(degs) - degs
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(starts, degs)
            + np.repeat(indptr[frontier], degs)
        )
        nbrs = indices[pos]
        fresh = np.unique(nbrs[levels[nbrs] < 0])
        levels[fresh] = depth
        frontier = fresh
    return levels


def bfs_parents_valid(graph: Graph, root: int, parents: np.ndarray) -> bool:
    """Validate a BFS parent array (Graph500-style check).

    Parents are valid iff: the root is its own parent; exactly the
    reachable vertices have parents; every parent edge exists; and
    parent levels are exactly one smaller.
    """
    parents = np.asarray(parents, dtype=np.int64)
    levels = bfs_levels(graph, root)
    reachable = levels >= 0
    if parents[root] != root:
        return False
    has_parent = parents >= 0
    if not np.array_equal(has_parent, reachable):
        return False
    verts = np.flatnonzero(reachable)
    verts = verts[verts != root]
    for v in verts:
        p = parents[v]
        if levels[p] != levels[v] - 1:
            return False
        if v not in graph.neighbors(p):
            return False
    return True


def label_propagation(
    graph: Graph, iterations: int = 20
) -> np.ndarray:
    """Synchronous label propagation with deterministic tie-breaking.

    Every vertex starts with its own id; each iteration every vertex
    adopts the most frequent label among its neighbors, ties broken by
    the smallest label, keeping its current label only if no neighbor
    exists.  This deterministic synchronous formulation is what the
    distributed 2.5D implementation must match exactly.
    """
    n = graph.n_vertices
    labels = np.arange(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    degs = np.diff(indptr)
    src = np.repeat(np.arange(n, dtype=np.int64), degs)
    for _ in range(iterations):
        nbr_labels = labels[indices]
        # Mode per vertex: count (src, label) pairs, pick max count with
        # min label on ties.
        order = np.lexsort((nbr_labels, src))
        s, lab = src[order], nbr_labels[order]
        if s.size == 0:
            break
        change = np.empty(s.size, dtype=bool)
        change[0] = True
        change[1:] = (s[1:] != s[:-1]) | (lab[1:] != lab[:-1])
        group = np.cumsum(change) - 1
        counts = np.bincount(group)
        g_src = s[change]
        g_lab = lab[change]
        # For each vertex pick the group with max count; ties -> min
        # label.  Sort groups by (src, -count, label).
        sel = np.lexsort((g_lab, -counts, g_src))
        first_per_src = np.ones(sel.size, dtype=bool)
        srcs_sorted = g_src[sel]
        first_per_src[1:] = srcs_sorted[1:] != srcs_sorted[:-1]
        winners = sel[first_per_src]
        new_labels = labels.copy()
        new_labels[g_src[winners]] = g_lab[winners]
        labels = new_labels
    return labels


def _edge_priority(weights: np.ndarray, src: np.ndarray, dst: np.ndarray):
    """Total order on incident edges used by matching tie-breaks.

    Higher weight wins; ties broken by the larger neighbor id (an
    arbitrary but globally consistent rule both serial and distributed
    implementations share).
    """
    return np.lexsort((dst, weights))  # ascending; take last for best


def locally_dominant_matching(graph: Graph) -> np.ndarray:
    """Preis-style locally-dominant 1/2-approximate max weight matching.

    Returns ``mate`` with ``mate[v] = u`` for matched pairs and ``-1``
    for unmatched vertices.  Deterministic: each vertex points along
    its heaviest available incident edge (ties to the larger neighbor
    id); mutually-pointing pairs commit, and the process repeats on the
    remainder.
    """
    if not graph.is_weighted:
        raise ValueError("matching needs an edge-weighted graph")
    n = graph.n_vertices
    mate = np.full(n, -1, dtype=np.int64)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    alive = np.ones(n, dtype=bool)

    while True:
        # Pointer selection for every unmatched vertex.
        pointer = np.full(n, -1, dtype=np.int64)
        for v in np.flatnonzero(alive):
            nbrs = indices[indptr[v] : indptr[v + 1]]
            w = weights[indptr[v] : indptr[v + 1]]
            ok = alive[nbrs] & (mate[nbrs] < 0)
            if not ok.any():
                alive[v] = False
                continue
            nbrs, w = nbrs[ok], w[ok]
            best = np.lexsort((nbrs, w))[-1]
            pointer[v] = nbrs[best]
        cand = np.flatnonzero(pointer >= 0)
        mutual = cand[pointer[pointer[cand]] == cand]
        if mutual.size == 0:
            break
        mate[mutual] = pointer[mutual]
        alive[mutual] = False
    return mate


def matching_is_valid(graph: Graph, mate: np.ndarray) -> bool:
    """Check symmetry and edge existence of a matching."""
    mate = np.asarray(mate, dtype=np.int64)
    for v in np.flatnonzero(mate >= 0):
        u = mate[v]
        if mate[u] != v or u == v:
            return False
        if v not in graph.neighbors(u):
            return False
    return True


def matching_weight(graph: Graph, mate: np.ndarray) -> float:
    """Total weight of a matching (each pair counted once)."""
    if not graph.is_weighted:
        raise ValueError("matching needs an edge-weighted graph")
    total = 0.0
    for v in np.flatnonzero(mate >= 0):
        u = mate[v]
        if v < u:
            nbrs = graph.neighbors(v)
            w = graph.edge_weights(v)
            total += float(w[np.flatnonzero(nbrs == u)[0]])
    return total


def sssp_distances(graph: Graph, root: int) -> np.ndarray:
    """Shortest path distances via scipy's Dijkstra (ground truth for
    the distributed Bellman-Ford)."""
    if not graph.is_weighted:
        raise ValueError("sssp needs an edge-weighted graph")
    return csgraph.dijkstra(graph.to_scipy(), directed=False, indices=root)


def triangle_count(graph: Graph) -> int:
    """Triangle count via the dense algebraic identity."""
    mat = graph.to_scipy()
    mat.data[:] = 1.0
    return int(round((mat @ mat).multiply(mat).sum() / 6.0))


def pointer_jumping_roots(parents: np.ndarray) -> np.ndarray:
    """Root of every vertex in a pointer forest (serial chase).

    ``parents[v] == v`` marks a root.  Used to validate the distributed
    packet-swapping pointer-jumping implementation.
    """
    parents = np.asarray(parents, dtype=np.int64)
    roots = parents.copy()
    while True:
        nxt = roots[roots]
        if np.array_equal(nxt, roots):
            return roots
        roots = nxt
