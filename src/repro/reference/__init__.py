"""Serial reference implementations used for validation."""

from . import serial

__all__ = ["serial"]
