"""Hardware descriptions for the simulated GPU clusters.

The paper's experiments run on two machines:

* **AiMOS** (RPI): nodes with 2x IBM Power9 CPUs and 6x NVIDIA 32 GB V100
  GPUs.  On a node, each CPU hosts a triple of GPUs interconnected with
  NVLink; traffic between triples, and all network traffic, moves through
  the CPU.  Nodes are connected with EDR InfiniBand.
* **zepy**: a workstation with 4x NVIDIA A100 GPUs (used for the CuGraph
  comparison, paper Fig. 10).

This module captures those machines as plain frozen dataclasses.  All
quantities are SI (seconds, bytes, bytes/second, items/second).  The
numbers are calibrated to public microbenchmarks of the respective parts
(NVLink2 ~50 GB/s effective per direction, EDR IB 100 Gb/s per node,
V100 graph kernels ~1-3 GTEPS); the reproduction targets the *shape* of
the paper's results, for which the ratios between these quantities are
what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "NodeSpec",
    "ClusterConfig",
    "V100",
    "A100",
    "AIMOS",
    "ZEPY",
    "DGX",
]


@dataclass(frozen=True)
class GPUSpec:
    """Compute characteristics of one GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100-32GB"``.
    memory_bytes:
        Device memory capacity.
    edge_rate:
        Edges processed per second by a simple memory-bound graph kernel
        (one compare-and-update per edge) at full occupancy and perfect
        load balance.
    vertex_rate:
        Vertices touched per second for per-vertex work (queue builds,
        state initialization).
    kernel_launch_s:
        Fixed host-side overhead per kernel launch.
    spmv_edge_rate:
        Edges/s for a tuned sparse matrix-vector product (used by the
        linear-algebra baseline, which trades generality for speed).
    """

    name: str
    memory_bytes: int
    edge_rate: float
    vertex_rate: float
    kernel_launch_s: float
    spmv_edge_rate: float


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point communication link.

    ``latency_s`` is the one-way small-message latency and
    ``bandwidth_Bps`` the achievable large-message bandwidth in bytes
    per second.
    """

    latency_s: float
    bandwidth_Bps: float

    def transfer_time(self, nbytes: float) -> float:
        """Alpha-beta time to move ``nbytes`` across this link once."""
        return self.latency_s + nbytes / self.bandwidth_Bps


@dataclass(frozen=True)
class NodeSpec:
    """Topology of a single multi-GPU node.

    Attributes
    ----------
    gpus_per_node:
        Number of GPUs installed in the node.
    nvlink_group_size:
        GPUs per NVLink island.  On AiMOS each Power9 CPU hosts a triple
        of NVLinked V100s; crossing islands goes through the CPU.
    nvlink / cpu_path:
        Links used inside an island and between islands, respectively.
    nic:
        The node's network interface (shared by all its GPUs).
    nic_contention:
        If True, the NIC bandwidth is divided among the node's GPUs that
        participate in a collective simultaneously.
    """

    gpus_per_node: int
    nvlink_group_size: int
    nvlink: LinkSpec
    cpu_path: LinkSpec
    nic: LinkSpec
    nic_contention: bool = True


@dataclass(frozen=True)
class ClusterConfig:
    """A whole machine: one node type replicated and networked."""

    name: str
    gpu: GPUSpec
    node: NodeSpec

    def with_gpu(self, gpu: GPUSpec) -> "ClusterConfig":
        """Return a copy of this config using a different GPU model."""
        return replace(self, gpu=gpu)

    def scaled(self, factor: float) -> "ClusterConfig":
        """A machine whose throughputs are divided by ``factor``.

        The reproduction simulates datasets ``factor``x smaller than the
        paper's (see ``repro.graph.datasets``).  Dividing every
        *throughput* — kernel rates and link bandwidths — by the same
        factor while keeping latencies and launch overheads restores the
        paper's operating regime: per-item work and per-byte transfer
        cost relative to fixed overheads are exactly what they would be
        at full scale, so timing *shapes* (crossovers, who wins,
        comm/comp split) are preserved.  Modeled absolute times then
        read as full-scale estimates.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def slow_link(link: LinkSpec) -> LinkSpec:
            return replace(link, bandwidth_Bps=link.bandwidth_Bps / factor)

        gpu = replace(
            self.gpu,
            edge_rate=self.gpu.edge_rate / factor,
            vertex_rate=self.gpu.vertex_rate / factor,
            spmv_edge_rate=self.gpu.spmv_edge_rate / factor,
        )
        node = replace(
            self.node,
            nvlink=slow_link(self.node.nvlink),
            cpu_path=slow_link(self.node.cpu_path),
            nic=slow_link(self.node.nic),
        )
        return replace(self, gpu=gpu, node=node, name=f"{self.name}/scaled{factor:g}")

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node

    def nodes_for(self, n_ranks: int) -> int:
        """Number of nodes needed to host ``n_ranks`` GPUs."""
        g = self.node.gpus_per_node
        return (n_ranks + g - 1) // g


#: NVIDIA V100 32 GB (AiMOS node GPU).
V100 = GPUSpec(
    name="V100-32GB",
    memory_bytes=32 * 2**30,
    edge_rate=3.0e9,
    vertex_rate=12.0e9,
    kernel_launch_s=8.0e-6,
    spmv_edge_rate=4.5e9,
)

#: NVIDIA A100 (zepy workstation GPU).
A100 = GPUSpec(
    name="A100-40GB",
    memory_bytes=40 * 2**30,
    edge_rate=6.0e9,
    vertex_rate=24.0e9,
    kernel_launch_s=6.0e-6,
    spmv_edge_rate=9.0e9,
)

#: AiMOS at RPI: 6x V100 per node, NVLink triples, EDR InfiniBand.
AIMOS = ClusterConfig(
    name="aimos",
    gpu=V100,
    node=NodeSpec(
        gpus_per_node=6,
        nvlink_group_size=3,
        nvlink=LinkSpec(latency_s=5.0e-6, bandwidth_Bps=50.0e9),
        cpu_path=LinkSpec(latency_s=15.0e-6, bandwidth_Bps=10.0e9),
        nic=LinkSpec(latency_s=25.0e-6, bandwidth_Bps=12.5e9),
        nic_contention=True,
    ),
)

#: DGX A100: 8 GPUs fully connected through NVSwitch (the paper cites
#: DGX-class systems as the exception to its latency concerns, §1).
DGX = ClusterConfig(
    name="dgx",
    gpu=A100,
    node=NodeSpec(
        gpus_per_node=8,
        nvlink_group_size=8,  # NVSwitch: one all-to-all island
        nvlink=LinkSpec(latency_s=3.0e-6, bandwidth_Bps=300.0e9),
        cpu_path=LinkSpec(latency_s=8.0e-6, bandwidth_Bps=25.0e9),
        nic=LinkSpec(latency_s=15.0e-6, bandwidth_Bps=25.0e9),
        nic_contention=True,
    ),
)

#: zepy: single node with 4x A100 on NVLink (no network).
ZEPY = ClusterConfig(
    name="zepy",
    gpu=A100,
    node=NodeSpec(
        gpus_per_node=4,
        nvlink_group_size=4,
        nvlink=LinkSpec(latency_s=4.0e-6, bandwidth_Bps=100.0e9),
        cpu_path=LinkSpec(latency_s=10.0e-6, bandwidth_Bps=20.0e9),
        nic=LinkSpec(latency_s=25.0e-6, bandwidth_Bps=12.5e9),
        nic_contention=True,
    ),
)
