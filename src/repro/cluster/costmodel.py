"""Analytic time model for kernels and collectives.

The simulator executes every data movement and reduction for real (in
NumPy), so algorithm *results* are exact; this module supplies the
*virtual time* each operation would have taken on the modeled machine.
Collectives use standard ring alpha-beta models (the algorithms NCCL
uses at these scales); kernels use a launch + throughput model with an
explicit load-balance efficiency term so that the paper's Manhattan
Collapse ablation is expressible.

Two "communication substrate" profiles are provided:

* :data:`NCCL_PROFILE` — lightweight, NCCL-like: collectives cost the
  bare ring model, grouped broadcasts aggregate into one launch.
* :data:`GENERIC_PROFILE` — a Gluon-like general-purpose substrate:
  per-destination message overhead (metadata, serialization through
  host memory) and a volume inflation factor.  The paper attributes
  Gluon-GPU's scaling collapse past ~64 ranks to exactly this overhead
  (paper §5.7); the profile lets the baseline reproduce it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .config import GPUSpec
from .topology import GroupProfile, Topology

__all__ = ["CommProfile", "NCCL_PROFILE", "GENERIC_PROFILE", "CostModel"]


@dataclass(frozen=True)
class CommProfile:
    """Overheads a communication substrate adds on top of the wire.

    Attributes
    ----------
    name:
        Profile name for reports.
    per_message_s:
        Fixed host-side cost charged per message (per destination for
        point-to-point, per collective step otherwise).
    volume_factor:
        Multiplier on communicated bytes (metadata framing, padding,
        staging copies through host memory).
    grouped_calls:
        Whether multiple broadcasts in one exchange aggregate into a
        single launch (NCCL group calls).  When False each broadcast
        pays its own latency term.
    """

    name: str
    per_message_s: float
    volume_factor: float
    grouped_calls: bool
    per_message_on_node_s: float | None = None
    sync_overhead_per_rank_s: float = 0.0

    def message_overhead(self, crosses_network: bool) -> float:
        """Per-message cost, cheaper on-node when the profile says so.

        Generic substrates pay their serialization/metadata cost mostly
        on the network path (paper Fig. 9: Gluon matches on one node
        and collapses across the network); on-node they ride fast
        peer-to-peer copies.
        """
        if not crosses_network and self.per_message_on_node_s is not None:
            return self.per_message_on_node_s
        return self.per_message_s


#: Lightweight 2D-optimized communications (the paper's approach).
NCCL_PROFILE = CommProfile(
    name="nccl", per_message_s=4.0e-6, volume_factor=1.0, grouped_calls=True
)

#: Generic-substrate communications (Gluon-like baseline).
#: ``sync_overhead_per_rank_s`` models the per-exchange global
#: coordination a substrate supporting *arbitrary* distributions must
#: run (proxy/mirror table synchronization across all hosts); its cost
#: grows with the host count, which is what makes Gluon-GPU stop
#: scaling past ~64 ranks in the paper's Fig. 9 while matching
#: HPCGraph-GPU on a single node.
GENERIC_PROFILE = CommProfile(
    name="generic",
    per_message_s=60.0e-6,
    volume_factor=1.35,
    grouped_calls=False,
    per_message_on_node_s=6.0e-6,
    sync_overhead_per_rank_s=120.0e-6,
)


class CostModel:
    """Computes virtual seconds for kernels and collectives.

    Parameters
    ----------
    gpu:
        GPU model executing kernels.
    topology:
        Placement/link resolver for the current run.
    profile:
        Substrate overhead profile (default NCCL-like).
    """

    def __init__(
        self,
        gpu: GPUSpec,
        topology: Topology,
        profile: CommProfile = NCCL_PROFILE,
    ):
        self.gpu = gpu
        self.topology = topology
        self.profile = profile

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def kernel_time(
        self,
        n_vertices: int = 0,
        n_edges: int = 0,
        work_per_edge: float = 1.0,
        balance: float = 1.0,
        launches: int = 1,
    ) -> float:
        """Time of a per-rank GPU kernel.

        Parameters
        ----------
        n_vertices, n_edges:
            Items the kernel touches.
        work_per_edge:
            Relative cost of the per-edge operation (1.0 = one
            compare-and-update; Label Propagation hash inserts are ~4x).
        balance:
            Load-balance efficiency in (0, 1]; 1.0 means perfectly
            balanced edge work (Manhattan Collapse), lower values model
            warp divergence from per-vertex thread assignment.
        launches:
            Number of kernel launches charged.
        """
        if balance <= 0.0 or balance > 1.0:
            raise ValueError(f"balance must be in (0, 1], got {balance}")
        t = launches * self.gpu.kernel_launch_s
        t += n_vertices / self.gpu.vertex_rate
        t += (n_edges * work_per_edge) / (self.gpu.edge_rate * balance)
        return t

    def spmv_time(self, n_edges: int, n_vertices: int = 0) -> float:
        """Time of a tuned SpMV over ``n_edges`` (linear-algebra path)."""
        return (
            self.gpu.kernel_launch_s
            + n_vertices / self.gpu.vertex_rate
            + n_edges / self.gpu.spmv_edge_rate
        )

    # ------------------------------------------------------------------
    # collectives (ring alpha-beta models)
    # ------------------------------------------------------------------
    def _step_alpha(self, prof: GroupProfile) -> float:
        return prof.latency_s + self.profile.message_overhead(prof.crosses_network)

    def _sync_overhead(self) -> float:
        """Global coordination charged per collective (generic
        substrates only; zero for the NCCL-like profile)."""
        return self.profile.sync_overhead_per_rank_s * self.topology.n_ranks

    def allreduce_time(
        self, ranks: Sequence[int], nbytes: int, nic_sharing: int = 1
    ) -> float:
        """AllReduce of ``nbytes`` (per rank) over ``ranks``.

        NCCL picks the algorithm by size: a bandwidth-optimal ring
        (reduce-scatter + all-gather, ``2(k-1)`` steps moving
        ``nbytes/k`` each) or a latency-optimal double tree
        (``2 ceil(log2 k)`` steps moving the whole payload).  The model
        takes the cheaper of the two, as the library would.
        """
        prof = self.topology.group_profile(ranks, nic_sharing=nic_sharing)
        k = prof.size
        if k <= 1:
            return self.gpu.kernel_launch_s
        nbytes = nbytes * self.profile.volume_factor
        alpha = self._step_alpha(prof)
        ring = 2 * (k - 1) * alpha + 2 * nbytes * (k - 1) / (k * prof.bandwidth_Bps)
        tree = 2 * math.ceil(math.log2(k)) * alpha + 2 * nbytes / prof.bandwidth_Bps
        return min(ring, tree) + self._sync_overhead()

    def broadcast_time(
        self, ranks: Sequence[int], nbytes: int, nic_sharing: int = 1
    ) -> float:
        """Pipelined ring Broadcast of ``nbytes`` from one root."""
        prof = self.topology.group_profile(ranks, nic_sharing=nic_sharing)
        k = prof.size
        if k <= 1:
            return self.gpu.kernel_launch_s
        nbytes = nbytes * self.profile.volume_factor
        alpha = self._step_alpha(prof)
        ring = (k - 1) * alpha + nbytes / prof.bandwidth_Bps
        ceil_log = math.ceil(math.log2(k))
        tree = ceil_log * alpha + ceil_log * nbytes / prof.bandwidth_Bps
        return min(ring, tree) + self._sync_overhead()

    def grouped_broadcast_time(
        self, ranks: Sequence[int], nbytes_each: Sequence[int], nic_sharing: int = 1
    ) -> float:
        """A set of broadcasts over the same group, possibly aggregated.

        With NCCL group calls the broadcasts share launches and
        pipeline; the cost is one latency term plus the summed volume.
        A generic substrate pays each broadcast separately.
        """
        if not nbytes_each:
            return 0.0
        if self.profile.grouped_calls:
            prof = self.topology.group_profile(ranks, nic_sharing=nic_sharing)
            k = prof.size
            if k <= 1:
                return self.gpu.kernel_launch_s
            total = sum(nbytes_each) * self.profile.volume_factor
            alpha = self._step_alpha(prof)
            ring = (k - 1) * alpha + total / prof.bandwidth_Bps
            ceil_log = math.ceil(math.log2(k))
            tree = ceil_log * alpha + ceil_log * total / prof.bandwidth_Bps
            return min(ring, tree) + self._sync_overhead()
        return sum(
            self.broadcast_time(ranks, nb, nic_sharing=nic_sharing)
            for nb in nbytes_each
        )

    def allgather_time(
        self, ranks: Sequence[int], nbytes_total: int, nic_sharing: int = 1
    ) -> float:
        """Ring AllGather; ``nbytes_total`` is the summed payload."""
        prof = self.topology.group_profile(ranks, nic_sharing=nic_sharing)
        k = prof.size
        if k <= 1:
            return self.gpu.kernel_launch_s
        nbytes_total = nbytes_total * self.profile.volume_factor
        alpha = self._step_alpha(prof)
        # Bruck-style log-step variant for small payloads, ring for big.
        vol = nbytes_total * (k - 1) / (k * prof.bandwidth_Bps)
        ring = (k - 1) * alpha + vol
        tree = math.ceil(math.log2(k)) * alpha + vol
        return min(ring, tree) + self._sync_overhead()

    def sendrecv_time(self, src: int, dst: int, nbytes: int) -> float:
        """One point-to-point transfer."""
        link = self.topology.link(src, dst)
        crosses = (
            self.topology.placement(src).node != self.topology.placement(dst).node
        )
        nbytes = nbytes * self.profile.volume_factor
        return link.transfer_time(nbytes) + self.profile.message_overhead(crosses)

    def alltoall_time(
        self, ranks: Sequence[int], nbytes_per_pair: float, nic_sharing: int = 1
    ) -> float:
        """Naive all-to-all: each rank exchanges with every other rank.

        Used by the 1D baseline engine.  The O(p^2) message count is
        what the paper's 2D method is designed to avoid; each rank
        serializes its ``k-1`` sends over its injection link.
        """
        prof = self.topology.group_profile(ranks, nic_sharing=nic_sharing)
        k = prof.size
        if k <= 1:
            return self.gpu.kernel_launch_s
        nbytes = nbytes_per_pair * self.profile.volume_factor
        alpha = self._step_alpha(prof)
        return (k - 1) * (alpha + nbytes / prof.bandwidth_Bps) + self._sync_overhead()
