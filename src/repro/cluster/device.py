"""Virtual GPU devices with memory accounting.

The paper reports out-of-memory failures as first-class results (Gluon
could not load GSH or ClueWeb; CuGraph could not fit RMAT28 on zepy).
To reproduce those, every per-rank allocation in the simulator is
charged against a :class:`VirtualGPU` with the real device capacity.
The tracked quantities are the *modeled* full-scale sizes, so the
feasibility answers hold even when the simulation itself runs on a
scaled-down stand-in graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import GPUSpec

__all__ = ["DeviceMemoryError", "VirtualGPU"]


class DeviceMemoryError(MemoryError):
    """Raised when a rank's modeled allocations exceed device memory."""

    def __init__(self, device: "VirtualGPU", requested: int):
        self.device = device
        self.requested = int(requested)
        super().__init__(
            f"rank {device.rank} ({device.spec.name}): allocation of "
            f"{requested} bytes exceeds capacity "
            f"({device.allocated_bytes}/{device.spec.memory_bytes} in use)"
        )


@dataclass
class VirtualGPU:
    """One simulated GPU rank's memory ledger.

    Allocations are named so over-subscription reports can say *what*
    did not fit, matching how the paper discusses allocation failures.

    Parameters
    ----------
    rank:
        Global rank id.
    spec:
        GPU model (capacity comes from here).
    scale_factor:
        Multiplier applied to every charge, used to account full-scale
        dataset footprints while simulating on a scaled stand-in.
    enforce:
        When False, over-subscription is recorded but not raised
        (useful for "would this fit?" queries).
    """

    rank: int
    spec: GPUSpec
    scale_factor: float = 1.0
    enforce: bool = True
    allocated_bytes: int = 0
    peak_bytes: int = 0
    ledger: dict[str, int] = field(default_factory=dict)

    def charge(self, label: str, nbytes: int) -> None:
        """Charge ``nbytes`` (pre-scale) against the device."""
        nbytes = int(nbytes * self.scale_factor)
        if nbytes < 0:
            raise ValueError(f"negative allocation for {label!r}: {nbytes}")
        if self.enforce and self.allocated_bytes + nbytes > self.spec.memory_bytes:
            raise DeviceMemoryError(self, nbytes)
        self.ledger[label] = self.ledger.get(label, 0) + nbytes
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)

    def charge_array(self, label: str, array: np.ndarray) -> None:
        """Charge the footprint of a concrete NumPy array."""
        self.charge(label, array.nbytes)

    def release(self, label: str) -> None:
        """Release everything charged under ``label``."""
        nbytes = self.ledger.pop(label, 0)
        self.allocated_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self.allocated_bytes

    @property
    def oversubscribed(self) -> bool:
        return self.peak_bytes > self.spec.memory_bytes

    def utilization(self) -> float:
        """Peak fraction of device memory used (may exceed 1.0 when
        ``enforce`` is off)."""
        return self.peak_bytes / self.spec.memory_bytes
