"""Simulated GPU cluster substrate: machine configs, topology, cost model.

This subpackage stands in for the hardware the paper ran on (AiMOS:
400x V100 over EDR InfiniBand; zepy: 4x A100).  See DESIGN.md for the
substitution rationale.
"""

from .config import AIMOS, DGX, ZEPY, A100, V100, ClusterConfig, GPUSpec, LinkSpec, NodeSpec
from .costmodel import GENERIC_PROFILE, NCCL_PROFILE, CommProfile, CostModel
from .device import DeviceMemoryError, VirtualGPU
from .topology import GroupProfile, Placement, Topology

__all__ = [
    "AIMOS",
    "DGX",
    "ZEPY",
    "A100",
    "V100",
    "ClusterConfig",
    "GPUSpec",
    "LinkSpec",
    "NodeSpec",
    "CommProfile",
    "CostModel",
    "NCCL_PROFILE",
    "GENERIC_PROFILE",
    "DeviceMemoryError",
    "VirtualGPU",
    "GroupProfile",
    "Placement",
    "Topology",
]
