"""Rank placement and link resolution for a simulated cluster.

Ranks are placed densely onto nodes in order: rank ``r`` lives on node
``r // gpus_per_node`` in slot ``r % gpus_per_node``.  That mirrors the
paper's MPI launch, where consecutive ranks fill a node before spilling
to the next one (and is why the paper sees a jump between 4- and 16-rank
runs: 4 ranks fit on one node and never touch the network).

The topology answers two questions for the cost model:

* :meth:`Topology.link` — the slowest-layer point-to-point link between
  two ranks (NVLink inside an island, CPU path across islands on one
  node, NIC across nodes).
* :meth:`Topology.group_profile` — the bottleneck alpha/beta profile of
  a *group* of ranks running a ring collective, including NIC
  contention when several GPUs of one node talk over the same NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .config import ClusterConfig, LinkSpec

__all__ = ["Placement", "GroupProfile", "Topology"]


@dataclass(frozen=True)
class Placement:
    """Physical location of a rank."""

    rank: int
    node: int
    slot: int
    island: int  # NVLink island index within the node


@dataclass(frozen=True)
class GroupProfile:
    """Bottleneck communication profile of a rank group.

    Attributes
    ----------
    size:
        Number of ranks in the group.
    latency_s:
        Worst per-step latency along the group's ring.
    bandwidth_Bps:
        Effective bottleneck bandwidth of the ring, after NIC
        contention.
    crosses_network:
        True when the group spans more than one node.
    """

    size: int
    latency_s: float
    bandwidth_Bps: float
    crosses_network: bool


class Topology:
    """Maps ranks of a ``ClusterConfig`` onto nodes and resolves links."""

    def __init__(self, config: ClusterConfig, n_ranks: int):
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        self.config = config
        self.n_ranks = int(n_ranks)
        # group_profile is a pure function of (ranks, nic_sharing) for a
        # fixed topology, and the BSP stages ask for the same handful of
        # row/column groups every iteration — memoize.
        self._profile_cache: dict[tuple, GroupProfile] = {}

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def placement(self, rank: int) -> Placement:
        """Node/slot/island placement for ``rank``."""
        self._check(rank)
        g = self.config.node.gpus_per_node
        node, slot = divmod(rank, g)
        island = slot // self.config.node.nvlink_group_size
        return Placement(rank=rank, node=node, slot=slot, island=island)

    def n_nodes(self) -> int:
        return self.config.nodes_for(self.n_ranks)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")

    # ------------------------------------------------------------------
    # link resolution
    # ------------------------------------------------------------------
    def link(self, r1: int, r2: int) -> LinkSpec:
        """Point-to-point link between two ranks.

        Same NVLink island -> NVLink; same node across islands -> the
        CPU path; different nodes -> NIC (the CPU path is traversed too,
        but the NIC dominates both latency and bandwidth and the model
        folds the CPU hop into the NIC numbers).
        """
        if r1 == r2:
            # Device-local copy; model as NVLink-speed (memcpy D2D).
            return self.config.node.nvlink
        p1, p2 = self.placement(r1), self.placement(r2)
        node = self.config.node
        if p1.node != p2.node:
            return node.nic
        if p1.island != p2.island:
            return node.cpu_path
        return node.nvlink

    # ------------------------------------------------------------------
    # group profiles
    # ------------------------------------------------------------------
    def group_profile(self, ranks: Sequence[int], nic_sharing: int = 1) -> GroupProfile:
        """Bottleneck ring profile for a collective over ``ranks``.

        The ring is taken in sorted rank order (NCCL builds rings over
        the physical order), so a node's members occupy one contiguous
        ring segment and its NIC carries a single in/out flow per
        collective.  Contention therefore comes from *concurrent*
        collectives: when a BSP stage runs one collective per row or
        column group simultaneously, a node's NIC is shared by every
        group with a member on that node.  Callers pass that count as
        ``nic_sharing`` (see ``Engine.stage_nic_sharing``).
        """
        ranks = sorted(set(int(r) for r in ranks))
        if not ranks:
            raise ValueError("empty rank group")
        if nic_sharing < 1:
            raise ValueError(f"nic_sharing must be >= 1, got {nic_sharing}")
        key = (tuple(ranks), int(nic_sharing))
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        for r in ranks:
            self._check(r)
        if len(ranks) == 1:
            nvl = self.config.node.nvlink
            profile = GroupProfile(
                size=1,
                latency_s=nvl.latency_s,
                bandwidth_Bps=nvl.bandwidth_Bps,
                crosses_network=False,
            )
            self._profile_cache[key] = profile
            return profile

        worst_latency = 0.0
        best_case_bw = float("inf")
        crosses = False
        n = len(ranks)
        for i in range(n):
            a, b = ranks[i], ranks[(i + 1) % n]
            link = self.link(a, b)
            worst_latency = max(worst_latency, link.latency_s)
            best_case_bw = min(best_case_bw, link.bandwidth_Bps)
            if self.placement(a).node != self.placement(b).node:
                crosses = True

        bw = best_case_bw
        if crosses and self.config.node.nic_contention and nic_sharing > 1:
            bw = min(bw, self.config.node.nic.bandwidth_Bps / nic_sharing)
        profile = GroupProfile(
            size=n, latency_s=worst_latency, bandwidth_Bps=bw, crosses_network=crosses
        )
        self._profile_cache[key] = profile
        return profile
