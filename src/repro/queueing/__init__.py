"""Work queues, frontier expansion, and GPU load-balance models."""

from .frontier import expand_block, expand_csr
from .hashtable import HashTable, histogram_via_hash_table
from .manhattan import (
    BLOCK_SIZE,
    WARP_SIZE,
    ScheduleStats,
    manhattan_schedule,
    vertex_per_thread_balance,
)
from .vertexqueue import LaneVertexQueue, VertexQueue, unique_new

__all__ = [
    "expand_block",
    "expand_csr",
    "HashTable",
    "histogram_via_hash_table",
    "BLOCK_SIZE",
    "WARP_SIZE",
    "ScheduleStats",
    "manhattan_schedule",
    "vertex_per_thread_balance",
    "LaneVertexQueue",
    "VertexQueue",
    "unique_new",
]
