"""Open-addressing hash table emulation (paper §3.3.3, refs [24, 25]).

The paper's Label Propagation reduces neighborhood labels into a
"space-efficient GPU hash-table adapted from prior work" rather than
sorting.  This module provides a faithful functional emulation: a
fixed-capacity, linear-probing table over ``(key1, key2) -> count``
entries, with *batched vectorized inserts* standing in for the massively
parallel atomic inserts of the CUDA original.

The batched insert loop resolves collisions exactly like the GPU code
does: every pending item hashes to a slot; items whose slot holds their
key accumulate; items whose slot is empty claim it (ties within a batch
resolved deterministically); everyone else advances to the next probe
position and retries.  The number of probe rounds is reported so the
cost model can charge the same collision behaviour the hardware would
see.

`repro.patterns.complex.build_histogram` keeps the sorted run-length
formulation as its default (it is the faster NumPy idiom — see the
benches), but the table is interchangeable and the equivalence is
property-tested.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HashTable", "histogram_via_hash_table"]

_EMPTY = np.int64(-1)

# SplitMix64-style mixing constants.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _mix(keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
    """64-bit hash of a key pair (vectorized)."""
    h = keys1.astype(np.uint64) * _GOLDEN + keys2.astype(np.uint64)
    h ^= h >> np.uint64(30)
    h *= _MIX1
    h ^= h >> np.uint64(27)
    h *= _MIX2
    h ^= h >> np.uint64(31)
    return h


class HashTable:
    """Fixed-capacity linear-probing ``(key1, key2) -> count`` table."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        # Round up to the next power of two for cheap masking.
        self.capacity = 1 << int(np.ceil(np.log2(max(capacity, 2))))
        self._mask = np.uint64(self.capacity - 1)
        self.key1 = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self.key2 = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self.count = np.zeros(self.capacity, dtype=np.int64)
        self.n_entries = 0
        self.probe_rounds = 0

    # ------------------------------------------------------------------
    def insert(self, keys1: np.ndarray, keys2: np.ndarray, counts=None) -> None:
        """Batched insert-or-accumulate of key pairs.

        Mirrors the GPU kernel: all items probe in lockstep rounds;
        collisions advance linearly.  Raises if the table fills.
        """
        k1 = np.asarray(keys1, dtype=np.int64)
        k2 = np.asarray(keys2, dtype=np.int64)
        if k1.shape != k2.shape:
            raise ValueError("key arrays must align")
        c = (
            np.ones(k1.size, dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        slots = (_mix(k1, k2) & self._mask).astype(np.int64)
        pending = np.arange(k1.size)

        for _ in range(self.capacity + 1):
            if pending.size == 0:
                return
            self.probe_rounds += 1
            s = slots[pending]
            match = (self.key1[s] == k1[pending]) & (self.key2[s] == k2[pending])
            hits = pending[match]
            if hits.size:
                np.add.at(self.count, slots[hits], c[hits])
            rest = pending[~match]
            s_rest = slots[rest]
            empty = self.key1[s_rest] == _EMPTY
            claim = rest[empty]
            if claim.size:
                # Deterministic claim: the first batch item targeting
                # each empty slot wins (like the winning atomicCAS);
                # losers retry the same slot next round and accumulate.
                s_claim = slots[claim]
                first = np.zeros(claim.size, dtype=bool)
                _, first_idx = np.unique(s_claim, return_index=True)
                first[first_idx] = True
                winners = claim[first]
                self.key1[s_claim[first]] = k1[winners]
                self.key2[s_claim[first]] = k2[winners]
                np.add.at(self.count, s_claim[first], c[winners])
                self.n_entries += winners.size
                losers = claim[~first]
            else:
                losers = claim
            # Items that neither matched nor claimed advance one slot.
            advance = rest[~empty]
            slots[advance] = (slots[advance] + 1) & int(self._mask)
            pending = np.concatenate([advance, losers])
        raise RuntimeError(
            f"hash table overflow: {self.n_entries}/{self.capacity} entries"
        )

    # ------------------------------------------------------------------
    def items(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All occupied ``(key1, key2, count)`` entries (unordered)."""
        occ = self.key1 != _EMPTY
        return self.key1[occ], self.key2[occ], self.count[occ]

    @property
    def load_factor(self) -> float:
        return self.n_entries / self.capacity


def histogram_via_hash_table(
    src_gids: np.ndarray, labels: np.ndarray, capacity: int | None = None
) -> np.ndarray:
    """`build_histogram` semantics through the hash-table path.

    Returns the same ``TRIPLE_DTYPE`` array as
    :func:`repro.patterns.complex.build_histogram` (sorted by
    ``(gid, label)`` for deterministic comparison).
    """
    from ..patterns.complex import TRIPLE_DTYPE

    src_gids = np.asarray(src_gids, dtype=np.int64)
    labels = np.asarray(labels)
    if src_gids.size == 0:
        return np.empty(0, dtype=TRIPLE_DTYPE)
    label_keys = labels.astype(np.int64)
    if capacity is None:
        capacity = max(2 * src_gids.size, 8)
    table = HashTable(capacity)
    table.insert(src_gids, label_keys)
    g, lab, cnt = table.items()
    order = np.lexsort((lab, g))
    out = np.empty(g.size, dtype=TRIPLE_DTYPE)
    out["gid"] = g[order]
    out["label"] = lab[order].astype(np.float64)
    out["count"] = cnt[order]
    return out
