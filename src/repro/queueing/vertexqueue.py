"""Active-vertex queue utilities (paper §3.3.2, Algs. 4-5; §3.4.1).

The CUDA code deduplicates queue insertions with an ``atomicExch`` on a
boolean ``q_in`` array.  The vectorized equivalent keeps the same
semantics — each vertex appears in a queue at most once per iteration —
via sorted-unique operations.  A :class:`VertexQueue` owns the ``q_in``
flags so repeated pushes across kernels within one iteration stay
deduplicated, exactly like the paper's delayed queue build.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LaneVertexQueue", "VertexQueue", "unique_new"]


def unique_new(candidates: np.ndarray, q_in: np.ndarray) -> np.ndarray:
    """Vertices from ``candidates`` not yet flagged in ``q_in``.

    Marks them in ``q_in`` and returns them (sorted, deduplicated) —
    the vectorized form of the ``atomicExch`` insert in Alg. 5 lines
    10-12.
    """
    candidates = np.unique(np.asarray(candidates, dtype=np.int64))
    if candidates.size == 0:
        return candidates
    fresh = candidates[~q_in[candidates]]
    q_in[fresh] = True
    return fresh


class VertexQueue:
    """A per-rank active-vertex queue over the rank's LID space."""

    def __init__(self, n_total: int):
        self.q_in = np.zeros(n_total, dtype=bool)
        self._members: list[np.ndarray] = []

    def push(self, lids: np.ndarray) -> np.ndarray:
        """Insert vertices (deduplicated); returns the newly added."""
        fresh = unique_new(lids, self.q_in)
        if fresh.size:
            self._members.append(fresh)
        return fresh

    def drain(self) -> np.ndarray:
        """Return all queued vertices and reset for the next iteration.

        Mirrors ``BuildQueue`` (Alg. 4): the queue is consumed into a
        buffer and every ``q_in`` flag is lowered.
        """
        if not self._members:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(self._members)
        self._members.clear()
        self.q_in[out] = False
        return np.sort(out)

    def peek(self) -> np.ndarray:
        """Current contents without draining."""
        if not self._members:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(self._members))

    def __len__(self) -> int:
        return sum(m.size for m in self._members)

    @property
    def empty(self) -> bool:
        return len(self) == 0


class LaneVertexQueue:
    """A lane-tagged queue for batched multi-source traversal.

    Entries are ``(lid, lane)`` cells of a ``(n_total, k)`` lane state;
    deduplication is per cell (the same vertex may be active in several
    lanes at once).  Internally a composite lane-major index reuses
    :class:`VertexQueue`, so the dedup semantics — and the sorted drain
    order within each lane — match the 1-D queue exactly.
    """

    def __init__(self, n_total: int, k: int):
        self.n_total = int(n_total)
        self.k = int(k)
        self._q = VertexQueue(self.n_total * self.k)

    def push(self, lids: np.ndarray, lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Insert ``(lid, lane)`` cells; returns the newly added pairs."""
        comp = (
            np.asarray(lanes, dtype=np.int64) * self.n_total
            + np.asarray(lids, dtype=np.int64)
        )
        fresh = self._q.push(comp)
        return fresh % self.n_total, fresh // self.n_total

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """All queued ``(lids, lanes)`` in lane-major sorted order;
        resets for the next iteration."""
        comp = self._q.drain()
        return comp % self.n_total, comp // self.n_total

    def __len__(self) -> int:
        return len(self._q)

    @property
    def empty(self) -> bool:
        return self._q.empty
