"""Local Manhattan Collapse scheduling model (paper §3.4.2, Alg. 6).

On the GPU, the collapse assigns one queue vertex per thread of a
block, prefix-sums the degrees in shared memory, and then walks the
block's total edge work with a binary search per edge — giving each
thread (almost) the same number of edges regardless of degree skew.

In the simulator the *functional* expansion is done by
:func:`repro.queueing.frontier.expand_csr`; this module reproduces the
*schedule* so the cost model can charge realistic kernel times:

* :func:`manhattan_schedule` computes, per thread block, the prefix
  sums and per-thread edge counts exactly as Alg. 6 would; its
  ``balance`` output is the efficiency the cost model multiplies into
  the edge rate.
* :func:`vertex_per_thread_balance` models the naive alternative (each
  thread serially expands its own vertex) where a warp's runtime is its
  maximum degree — the behaviour the paper's queue-based kernels avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BLOCK_SIZE",
    "WARP_SIZE",
    "ScheduleStats",
    "manhattan_schedule",
    "vertex_per_thread_balance",
]

#: Threads per block the paper's kernels launch with.
BLOCK_SIZE = 256
#: SIMT warp width.
WARP_SIZE = 32


@dataclass(frozen=True)
class ScheduleStats:
    """Work distribution produced by a schedule."""

    total_edges: int
    n_blocks: int
    balance: float  # in (0, 1]: useful work / occupied thread-cycles
    max_thread_edges: int

    @property
    def effective_slowdown(self) -> float:
        return 1.0 / self.balance if self.balance > 0 else float("inf")


def manhattan_schedule(
    degrees: np.ndarray, block_size: int = BLOCK_SIZE
) -> ScheduleStats:
    """Model Alg. 6: per block, edges are strided evenly over threads.

    Within a block the prefix sum + binary search hands thread ``t``
    edges ``t, t + BS, t + 2 BS, ...`` of the block total, so the
    per-thread imbalance is at most one edge; across blocks, the last
    partial block and ragged totals create the only inefficiency.  The
    residual is tiny — the paper calls the overhead "near-negligible" —
    and this model shows exactly why.

    Vectorized: block totals come from one ``np.add.reduceat`` over the
    block boundaries instead of a per-block Python loop, so scheduling
    a million-vertex queue costs one segmented pass.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return ScheduleStats(total_edges=0, n_blocks=0, balance=1.0, max_thread_edges=0)
    if np.any(degrees < 0):
        raise ValueError("negative degree in queue")
    starts = np.arange(0, degrees.size, block_size, dtype=np.int64)
    block_work = np.add.reduceat(degrees, starts)
    per_thread = -(-block_work // block_size)  # ceil per block
    total = int(block_work.sum())
    occupied = int(per_thread.sum()) * block_size
    balance = total / occupied if occupied else 1.0
    return ScheduleStats(
        total_edges=total,
        n_blocks=int(starts.size),
        balance=max(balance, 1e-6),
        max_thread_edges=int(per_thread.max()),
    )


def vertex_per_thread_balance(
    degrees: np.ndarray, warp_size: int = WARP_SIZE
) -> ScheduleStats:
    """Model the naive kernel: thread ``t`` expands vertex ``t`` alone.

    A warp retires when its slowest lane finishes, so each warp costs
    ``warp_size * max(degree in warp)`` thread-cycles.  On power-law
    queues this collapses to the hub degree — the load imbalance the
    Manhattan Collapse exists to fix.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return ScheduleStats(total_edges=0, n_blocks=0, balance=1.0, max_thread_edges=0)
    if np.any(degrees < 0):
        raise ValueError("negative degree in queue")
    total = int(degrees.sum())
    pad = (-degrees.size) % warp_size
    padded = np.concatenate([degrees, np.zeros(pad, dtype=np.int64)])
    warps = padded.reshape(-1, warp_size)
    warp_max = warps.max(axis=1)
    occupied = int(warp_max.sum()) * warp_size
    balance = total / occupied if occupied else 1.0
    return ScheduleStats(
        total_edges=total,
        n_blocks=-(-degrees.size // warp_size),
        balance=max(balance, 1e-6),
        max_thread_edges=int(warp_max.max(initial=0)),
    )
