"""Vectorized CSR frontier expansion.

The CUDA code expands a queue of vertices into their edges with the
Local Manhattan Collapse (paper Alg. 6).  The NumPy equivalent is a
single gather built from ``repeat`` and ``arange`` — one "edge-parallel"
pass with no per-vertex Python loop, which is both the performant NumPy
idiom and a faithful functional model of edge-parallel execution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expand_csr", "expand_block"]


def expand_csr(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``rows`` (row-local positions) into their incident edges.

    Returns ``(edge_src_pos, edge_dst, edge_index)`` where
    ``edge_src_pos[k]`` is the queue entry's row position repeated per
    edge, ``edge_dst[k]`` the adjacency target, and ``edge_index[k]``
    the position in ``indices`` (for weight lookups).
    """
    rows = np.asarray(rows, dtype=np.int64)
    row_ptr = indptr[rows]
    degs = indptr[rows + 1] - row_ptr
    total = int(degs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    # One repeat of the queue-entry index; src and the per-edge offset
    # into `indices` are then plain gathers.  Per entry the run starts
    # at indptr[row], shifted by the entry's start in the output
    # (cumsum-offset trick) — fused so the expansion does a single
    # repeat instead of three.
    entry = np.repeat(np.arange(rows.size, dtype=np.int64), degs)
    offsets = row_ptr - (np.cumsum(degs) - degs)
    edge_index = np.arange(total, dtype=np.int64) + offsets[entry]
    src = rows[entry]
    dst = indices[edge_index]
    return src, dst, edge_index


def expand_block(block, row_lids: np.ndarray):
    """Expand a :class:`~repro.graph.partition.twod.RankBlock` queue.

    ``row_lids`` are row-vertex LIDs; returns ``(src_lids, dst_lids,
    weights_or_None)`` with both endpoint columns in LID space.
    """
    lm = block.localmap
    rows = np.asarray(row_lids, dtype=np.int64) - lm.row_offset
    src_pos, dst, edge_index = expand_csr(block.indptr, block.indices, rows)
    src_lids = src_pos + lm.row_offset
    weights = block.weights[edge_index] if block.weights is not None else None
    return src_lids, dst, weights
