"""Compressed sparse row graph container.

This is the in-memory form the paper builds on CPU before distribution
(paper §3.1-3.2): an adjacency array ``Adj`` and an offsets array
``Off``; the adjacencies of vertex ``v`` live in
``Adj[Off[v]:Off[v+1]]`` and its degree is ``Off[v+1] - Off[v]``.

Edge counts follow the paper's convention: ``M = len(Adj)`` is the
number of *stored directed* edges.  The paper treats all inputs as
undirected by symmetrizing the adjacency matrix (paper §5), which
:func:`Graph.from_edges` does by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph"]

VERTEX_DTYPE = np.int64
WEIGHT_DTYPE = np.float64


@dataclass
class Graph:
    """A graph in CSR form.

    Attributes
    ----------
    indptr:
        Offsets array ``Off`` of length ``N + 1``.
    indices:
        Adjacency array ``Adj`` of length ``M``.
    weights:
        Optional per-edge weights, aligned with ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=VERTEX_DTYPE)
        self.indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
            if self.weights.shape != self.indices.shape:
                raise ValueError(
                    f"weights length {self.weights.shape} does not match "
                    f"indices length {self.indices.shape}"
                )
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length N+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_vertices
        ):
            raise ValueError("adjacency targets out of range")

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Global vertex count ``N``."""
        return self.indptr.size - 1

    @property
    def n_edges(self) -> int:
        """Stored directed edge count ``M``."""
        return self.indices.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency view (not a copy) for vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        n_vertices: int,
        weights: Optional[np.ndarray] = None,
        symmetrize: bool = True,
        remove_self_loops: bool = True,
        dedup: bool = True,
    ) -> "Graph":
        """Build a CSR graph from an edge list.

        ``symmetrize=True`` mirrors the paper's treatment of inputs as
        undirected.  Duplicate edges are merged (keeping the maximum
        weight, so symmetrization of a weighted digraph stays
        symmetric).
        """
        src = np.asarray(src, dtype=VERTEX_DTYPE)
        dst = np.asarray(dst, dtype=VERTEX_DTYPE)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= n_vertices
        ):
            raise ValueError("edge endpoints out of range")
        if weights is not None:
            weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
            if weights.shape != src.shape:
                raise ValueError("weights must align with edges")

        if remove_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            if weights is not None:
                weights = np.concatenate([weights, weights])

        data = weights if weights is not None else np.ones(src.size, dtype=WEIGHT_DTYPE)
        mat = sp.coo_matrix(
            (data, (src, dst)), shape=(n_vertices, n_vertices)
        )
        if dedup:
            # Merge duplicates keeping the max weight: COO->CSR sums, so
            # dedup by sorting instead when weighted.
            if weights is not None:
                order = np.lexsort((dst, src))
                s, d, w = src[order], dst[order], data[order]
                if s.size:
                    # within runs of equal (s, d), keep the max weight
                    key_change = np.empty(s.size, dtype=bool)
                    key_change[0] = True
                    key_change[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
                    wmax = np.maximum.reduceat(w, np.flatnonzero(key_change))
                    s, d = s[key_change], d[key_change]
                    w = wmax
                mat = sp.csr_matrix(
                    (w, (s, d)), shape=(n_vertices, n_vertices)
                )
            else:
                mat = mat.tocsr()
                mat.sum_duplicates()
                mat.data[:] = 1.0
        else:
            mat = mat.tocsr()
        mat.sort_indices()
        return cls(
            indptr=mat.indptr.astype(VERTEX_DTYPE),
            indices=mat.indices.astype(VERTEX_DTYPE),
            weights=mat.data.astype(WEIGHT_DTYPE) if weights is not None else None,
        )

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix, weighted: bool = False) -> "Graph":
        """Wrap a scipy sparse matrix (rows are adjacency lists)."""
        csr = mat.tocsr()
        csr.sort_indices()
        return cls(
            indptr=csr.indptr.astype(VERTEX_DTYPE),
            indices=csr.indices.astype(VERTEX_DTYPE),
            weights=csr.data.astype(WEIGHT_DTYPE) if weighted else None,
        )

    def to_scipy(self) -> sp.csr_matrix:
        """Export as a scipy CSR matrix (weights default to 1.0).

        The data array is a *copy* so callers may freely mutate the
        matrix (a common scipy idiom) without corrupting the graph's
        weights.
        """
        data = (
            self.weights.copy()
            if self.weights is not None
            else np.ones(self.n_edges, dtype=WEIGHT_DTYPE)
        )
        n = self.n_vertices
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(n, n))

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def permute(self, perm: np.ndarray) -> "Graph":
        """Relabel vertices: vertex ``v`` becomes ``perm[v]``.

        Used to apply the striped distribution permutation before 2D
        blocking (paper §3.4.2).
        """
        perm = np.asarray(perm, dtype=VERTEX_DTYPE)
        n = self.n_vertices
        if perm.shape != (n,):
            raise ValueError(f"perm must have shape ({n},)")
        check = np.zeros(n, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ValueError("perm is not a permutation")
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), self.degrees())
        new_src = perm[src]
        new_dst = perm[self.indices]
        return Graph.from_edges(
            new_src,
            new_dst,
            n,
            weights=self.weights,
            symmetrize=False,
            remove_self_loops=False,
            dedup=False,
        )

    def with_random_weights(self, seed: int = 0, low: float = 0.0, high: float = 1.0) -> "Graph":
        """Attach symmetric random edge weights (for MWM experiments).

        Weight of edge {u, v} is a hash-style function of the unordered
        pair, so both stored directions agree.
        """
        n = self.n_vertices
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), self.degrees())
        dst = self.indices
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        # SplitMix64-style mixing of the pair key for reproducible,
        # direction-independent weights.
        key = (
            lo.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            + hi.astype(np.uint64)
            + np.uint64(seed)
        )
        key ^= key >> np.uint64(30)
        key *= np.uint64(0xBF58476D1CE4E5B9)
        key ^= key >> np.uint64(27)
        key *= np.uint64(0x94D049BB133111EB)
        key ^= key >> np.uint64(31)
        u = key.astype(np.float64) / float(2**64)
        return Graph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            weights=low + (high - low) * u,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = ", weighted" if self.is_weighted else ""
        return f"Graph(N={self.n_vertices}, M={self.n_edges}{w})"
