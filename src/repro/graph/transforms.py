"""Graph transforms: subgraphs, component extraction, degree filters.

Utilities a downstream user needs between loading data and running
algorithms: extracting the giant component (the usual preprocessing for
traversal benchmarks — Graph500 roots must be sampled from it),
restricting to a vertex subset, peeling to a k-core subgraph, and
degree-capping heavy hubs.  All transforms return a new
:class:`~repro.graph.csr.Graph` plus the vertex mapping back to the
original ids.
"""

from __future__ import annotations


import numpy as np

from .csr import Graph

__all__ = [
    "induced_subgraph",
    "largest_component",
    "kcore_subgraph",
    "cap_degrees",
]


def induced_subgraph(
    graph: Graph, vertices: np.ndarray
) -> tuple[Graph, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, keep)`` where ``keep[i]`` is the original id
    of the subgraph's vertex ``i`` (sorted ascending).
    """
    keep = np.unique(np.asarray(vertices, dtype=np.int64))
    if keep.size and (keep[0] < 0 or keep[-1] >= graph.n_vertices):
        raise ValueError("subgraph vertices out of range")
    mask = np.zeros(graph.n_vertices, dtype=bool)
    mask[keep] = True
    new_id = np.cumsum(mask) - 1  # valid only where mask

    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees())
    dst = graph.indices
    sel = mask[src] & mask[dst]
    w = graph.weights[sel] if graph.is_weighted else None
    sub = Graph.from_edges(
        new_id[src[sel]],
        new_id[dst[sel]],
        int(keep.size),
        weights=w,
        symmetrize=False,  # already symmetric; keep both directions
        remove_self_loops=False,
        dedup=False,
    )
    return sub, keep


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """The giant weakly-connected component.

    The standard preprocessing before traversal benchmarks (paper-style
    BFS roots must be reachable).  Returns the component subgraph and
    the original ids of its vertices.
    """
    from ..reference.serial import connected_components

    labels = connected_components(graph)
    if labels.size == 0:
        return graph, np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    giant = int(np.argmax(sizes))
    return induced_subgraph(graph, np.flatnonzero(labels == giant))


def kcore_subgraph(graph: Graph, k: int) -> tuple[Graph, np.ndarray]:
    """The maximal subgraph where every vertex has degree >= k.

    Serial peeling (the distributed core *numbers* live in
    ``repro.algorithms.kcore``; this transform materializes one core's
    subgraph for further processing).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    alive = np.ones(graph.n_vertices, dtype=bool)
    deg = graph.degrees().copy()
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees())
    dst = graph.indices
    while True:
        drop = np.flatnonzero(alive & (deg < k))
        if drop.size == 0:
            break
        alive[drop] = False
        affected = dst[np.isin(src, drop) & alive[dst]]
        if affected.size:
            dec = np.bincount(affected, minlength=graph.n_vertices)
            deg -= dec
        deg[drop] = 0
    return induced_subgraph(graph, np.flatnonzero(alive))


def cap_degrees(
    graph: Graph, max_degree: int, seed: int = 0
) -> Graph:
    """Randomly sparsify hubs down to ``max_degree`` neighbors.

    A common preprocessing for memory-constrained runs: each vertex
    keeps a uniform sample of its adjacency; the result is
    re-symmetrized so it remains a valid undirected graph.
    """
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    rng = np.random.default_rng(seed)
    keep_idx = []
    indptr = graph.indptr
    for v in np.flatnonzero(graph.degrees() > max_degree):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        keep_idx.append(rng.choice(np.arange(lo, hi), max_degree, replace=False))
    over = np.zeros(graph.n_edges, dtype=bool)
    big = np.flatnonzero(graph.degrees() > max_degree)
    for v in big:
        over[indptr[v] : indptr[v + 1]] = True
    keep = ~over
    if keep_idx:
        keep[np.concatenate(keep_idx)] = True
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees())
    w = graph.weights[keep] if graph.is_weighted else None
    return Graph.from_edges(
        src[keep], graph.indices[keep], graph.n_vertices, weights=w, symmetrize=True
    )
