"""Graph data structures, generators, datasets, and partitioners."""

from .csr import Graph
from .datasets import REGISTRY, DatasetMeta, LoadedDataset, available, load
from .generators import (
    chung_lu_powerlaw,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    rmat,
    rmat_edges,
    star_graph,
    web_graph,
)
from .io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from .localmap import LocalMap
from .transforms import (
    cap_degrees,
    induced_subgraph,
    kcore_subgraph,
    largest_component,
)
from .partition.striped import (
    block_permutation,
    group_ranges,
    random_permutation,
    striped_permutation,
)
from .partition.twod import RankBlock, TwoDPartition, partition_2d

__all__ = [
    "Graph",
    "REGISTRY",
    "DatasetMeta",
    "LoadedDataset",
    "available",
    "load",
    "chung_lu_powerlaw",
    "erdos_renyi_gnm",
    "grid_graph",
    "path_graph",
    "rmat",
    "rmat_edges",
    "star_graph",
    "web_graph",
    "read_edge_list",
    "read_matrix_market",
    "write_edge_list",
    "write_matrix_market",
    "LocalMap",
    "block_permutation",
    "group_ranges",
    "random_permutation",
    "striped_permutation",
    "cap_degrees",
    "induced_subgraph",
    "kcore_subgraph",
    "largest_component",
    "RankBlock",
    "TwoDPartition",
    "partition_2d",
]
