"""Dataset registry: paper Table 4 inputs and scaled stand-ins.

The paper's real inputs (twitter-2010 through the 128-billion-edge
WDC12 crawl) are multi-terabyte downloads that cannot be shipped or
held here.  Each registry entry records the *full-size* metadata from
Table 4 — used by the memory-feasibility model and the full-scale
projections — and a generator recipe producing a scaled stand-in with
matched degree-distribution character:

* social networks (TW, FR): Chung-Lu power-law, moderate skew;
* web crawls (CW, GSH, WDC): Chung-Lu power-law, heavier skew and
  higher edge factor;
* RMATxx / RANDxx: generated exactly as in the paper (Graph500 R-MAT
  parameters / Erdos-Renyi G(n, m)), just at reduced scale.

Every load records the linear scale factor so experiment reports can
state "paper size vs. simulated size" (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .csr import Graph
from .generators import chung_lu_powerlaw, erdos_renyi_gnm, rmat, web_graph

__all__ = ["DatasetMeta", "LoadedDataset", "REGISTRY", "load", "available"]


@dataclass(frozen=True)
class DatasetMeta:
    """Table 4 row: full-size facts about a paper input."""

    name: str
    abbr: str
    n_vertices: int
    n_edges: int  # directed stored edges as reported in Table 4
    kind: str  # "social" | "web" | "rmat" | "rand"
    gamma: float = 2.2  # power-law exponent for the stand-in


@dataclass(frozen=True)
class LoadedDataset:
    """A stand-in graph plus provenance."""

    graph: Graph
    meta: DatasetMeta
    scale_factor: float  # full-size edges / stand-in stored edges

    @property
    def note(self) -> str:
        return (
            f"{self.meta.abbr}: stand-in N={self.graph.n_vertices} "
            f"M={self.graph.n_edges} for paper N={self.meta.n_vertices} "
            f"M={self.meta.n_edges} (scale factor {self.scale_factor:.3g}x)"
        )


REGISTRY: dict[str, DatasetMeta] = {
    "TW": DatasetMeta("twitter-2010", "TW", 41_000_000, 1_400_000_000, "social", 2.0),
    "FR": DatasetMeta("com-friendster", "FR", 65_000_000, 1_800_000_000, "social", 2.5),
    "CW": DatasetMeta("web-ClueWeb09", "CW", 1_700_000_000, 7_900_000_000, "web", 2.1),
    "GSH": DatasetMeta("gsh-2015", "GSH", 988_000_000, 33_000_000_000, "web", 1.9),
    "WDC": DatasetMeta("WDC12", "WDC", 3_500_000_000, 128_000_000_000, "web", 1.9),
}


def available() -> list[str]:
    """Abbreviations of the registered real inputs."""
    return sorted(REGISTRY)


def _standin_shape(meta: DatasetMeta, target_edges: int) -> tuple[int, int]:
    """Vertex/edge-slot counts for a stand-in of roughly ``target_edges``
    stored edges, preserving the input's edge factor ``M / N``."""
    edge_factor = max(meta.n_edges / meta.n_vertices, 2.0)
    n = max(int(target_edges / edge_factor), 64)
    # Chung-Lu slots symmetrize to ~2 slots stored edges; aim for target.
    m_slots = max(target_edges // 2, n)
    return n, m_slots


def load(
    abbr: str,
    target_edges: int = 1 << 17,
    seed: int = 0,
    weighted: bool = False,
) -> LoadedDataset:
    """Build a scaled stand-in for a registered input.

    Parameters
    ----------
    abbr:
        Table 4 abbreviation (``"TW"``, ``"FR"``, ``"CW"``, ``"GSH"``,
        ``"WDC"``), or ``"RMATxx"`` / ``"RANDxx"`` with a scale suffix.
    target_edges:
        Approximate stored (directed) edge count of the stand-in.
    weighted:
        Attach reproducible symmetric edge weights (for MWM).
    """
    key = abbr.upper()
    if key.startswith("RMAT") or key.startswith("RAND"):
        scale = int(key[4:])
        meta = DatasetMeta(
            name=key.lower(),
            abbr=key,
            n_vertices=1 << scale,
            n_edges=16 << scale,
            kind="rmat" if key.startswith("RMAT") else "rand",
        )
        # Choose the generated scale to hit target_edges (ef=16 slots).
        gen_scale = scale
        while (16 << gen_scale) > target_edges and gen_scale > 6:
            gen_scale -= 1
        if key.startswith("RMAT"):
            g = rmat(gen_scale, seed=seed)
        else:
            g = erdos_renyi_gnm(1 << gen_scale, 16 << gen_scale, seed=seed)
    else:
        try:
            meta = REGISTRY[key]
        except KeyError:
            raise ValueError(
                f"unknown dataset {abbr!r}; known: {available()} or RMATxx/RANDxx"
            ) from None
        n, m_slots = _standin_shape(meta, target_edges)
        if meta.kind == "web":
            # Crawl graphs carry pendant chains (long convergence
            # tails) on top of the power-law core.
            g = web_graph(n, m_slots, gamma=meta.gamma, seed=seed)
        else:
            g = chung_lu_powerlaw(n, m_slots, gamma=meta.gamma, seed=seed)
    if weighted:
        g = g.with_random_weights(seed=seed + 1)
    scale_factor = meta.n_edges / max(g.n_edges, 1)
    return LoadedDataset(graph=g, meta=meta, scale_factor=scale_factor)
