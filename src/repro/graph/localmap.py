"""Global-to-local vertex ID mapping (paper §3.2, Tables 1-2).

Each 2D rank holds a contiguous global-ID range of *row* vertices
(the vertices it co-owns) and a contiguous range of *column* vertices
(its ghosts).  Both are remapped into a compact local ID space
``[0, N_T)`` by simple arithmetic — no hash tables — according to the
rank's ``Type``:

===== =============================== =========================================
Type  Condition                       Mapping
===== =============================== =========================================
0     ranges do not overlap           row LIDs ``[0, N_R)``,
                                      col LIDs ``[N_R, N_R + N_C)``
1     overlap, ``Offset_R <= Offset_C`` ``diff = Offset_C - Offset_R``;
                                      row LIDs ``[0, N_R)``,
                                      col LIDs ``[diff, diff + N_C)``
2     overlap, ``Offset_R > Offset_C``  ``diff = Offset_R - Offset_C``;
                                      row LIDs ``[diff, diff + N_R)``,
                                      col LIDs ``[0, N_C)``
===== =============================== =========================================

Because local IDs of a group are consecutive, a dense communication of
a state-array slice needs only the group's local offset (``C_offset_R``
or ``C_offset_C``) and length — regardless of row/column overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LocalMap"]


@dataclass(frozen=True)
class LocalMap:
    """Arithmetic GID<->LID mapping for one rank's row/column ranges.

    Parameters are global-ID ranges: rows ``[row_start, row_stop)`` and
    columns ``[col_start, col_stop)``.
    """

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if self.row_stop < self.row_start or self.col_stop < self.col_start:
            raise ValueError("ranges must be non-decreasing")

    # ------------------------------------------------------------------
    # Table 1 quantities
    # ------------------------------------------------------------------
    @property
    def n_row(self) -> int:
        """``N_R``: vertices in the rank's row group."""
        return self.row_stop - self.row_start

    @property
    def n_col(self) -> int:
        """``N_C``: vertices in the rank's column group."""
        return self.col_stop - self.col_start

    @property
    def type(self) -> int:
        """The mapping ``Type`` (0, 1 or 2; see module docstring)."""
        if self.row_stop <= self.col_start or self.col_stop <= self.row_start:
            return 0
        return 1 if self.row_start <= self.col_start else 2

    @property
    def row_offset(self) -> int:
        """``C_offset_R``: first local ID of the row vertices."""
        if self.type == 2:
            return self.row_start - self.col_start
        return 0

    @property
    def col_offset(self) -> int:
        """``C_offset_C``: first local ID of the column vertices."""
        t = self.type
        if t == 0:
            return self.n_row
        if t == 1:
            return self.col_start - self.row_start
        return 0

    @property
    def n_total(self) -> int:
        """``N_T``: unique row+column vertices (size of the LID space)."""
        t = self.type
        if t == 0:
            return self.n_row + self.n_col
        # Overlapping intervals: the union is one interval.
        return max(self.row_stop, self.col_stop) - min(self.row_start, self.col_start)

    # ------------------------------------------------------------------
    # conversions (vectorized; accept scalars or arrays)
    # ------------------------------------------------------------------
    def row_lid(self, gids):
        """Local IDs of row-vertex global IDs."""
        gids = np.asarray(gids)
        return gids - self.row_start + self.row_offset

    def col_lid(self, gids):
        """Local IDs of column-vertex global IDs."""
        gids = np.asarray(gids)
        return gids - self.col_start + self.col_offset

    def row_gid(self, lids):
        """Global IDs of row-vertex local IDs."""
        lids = np.asarray(lids)
        return lids - self.row_offset + self.row_start

    def col_gid(self, lids):
        """Global IDs of column-vertex local IDs."""
        lids = np.asarray(lids)
        return lids - self.col_offset + self.col_start

    def owns_row_gid(self, gids):
        """Boolean mask: is each GID in this rank's row range?"""
        gids = np.asarray(gids)
        return (gids >= self.row_start) & (gids < self.row_stop)

    def owns_col_gid(self, gids):
        """Boolean mask: is each GID in this rank's column range?"""
        gids = np.asarray(gids)
        return (gids >= self.col_start) & (gids < self.col_stop)

    @property
    def row_slice(self) -> slice:
        """LID slice of the row vertices in a state array."""
        return slice(self.row_offset, self.row_offset + self.n_row)

    @property
    def col_slice(self) -> slice:
        """LID slice of the column vertices in a state array."""
        return slice(self.col_offset, self.col_offset + self.n_col)
