"""Graph file I/O: edge lists and Matrix Market.

Real deployments feed crawled edge lists into the loader the way the
paper's CPU-side construction does; this module provides the standard
interchange formats so the library is usable on actual data:

* **edge list** — whitespace-separated ``src dst [weight]`` lines,
  ``#`` comments (the SNAP/KONECT convention);
* **Matrix Market** — ``.mtx`` coordinate format via scipy.

Both loaders apply the library's standard input treatment
(symmetrization, self-loop removal, deduplication) unless told
otherwise, matching :meth:`repro.graph.csr.Graph.from_edges`.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np
import scipy.io
import scipy.sparse as sp

from .csr import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]

PathLike = Union[str, pathlib.Path]


def read_edge_list(
    path: PathLike,
    n_vertices: int | None = None,
    weighted: bool = False,
    symmetrize: bool = True,
    comments: str = "#",
) -> Graph:
    """Load a graph from a ``src dst [weight]`` text file.

    ``n_vertices`` defaults to ``max id + 1``.  Raises on malformed
    lines rather than silently skipping data.
    """
    path = pathlib.Path(path)
    src_l: list[int] = []
    dst_l: list[int] = []
    w_l: list[float] = []
    with path.open() as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2 or (weighted and len(parts) < 3):
                raise ValueError(
                    f"{path}:{lineno}: expected "
                    f"{'src dst weight' if weighted else 'src dst'}, got {line!r}"
                )
            src_l.append(int(parts[0]))
            dst_l.append(int(parts[1]))
            if weighted:
                w_l.append(float(parts[2]))
    src = np.asarray(src_l, dtype=np.int64)
    dst = np.asarray(dst_l, dtype=np.int64)
    if n_vertices is None:
        n_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        n_vertices = max(n_vertices, 1)
    return Graph.from_edges(
        src,
        dst,
        n_vertices,
        weights=np.asarray(w_l) if weighted else None,
        symmetrize=symmetrize,
    )


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a graph as an edge list (each undirected edge once,
    ``u < v``; weights appended when present)."""
    path = pathlib.Path(path)
    n = graph.n_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.indices
    keep = src < dst
    src, dst = src[keep], dst[keep]
    w = graph.weights[keep] if graph.is_weighted else None
    with path.open("w") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# vertices={n} undirected_edges={src.size}\n")
        if w is None:
            for s, d in zip(src.tolist(), dst.tolist()):
                fh.write(f"{s} {d}\n")
        else:
            for s, d, ww in zip(src.tolist(), dst.tolist(), w.tolist()):
                fh.write(f"{s} {d} {ww!r}\n")


def read_matrix_market(
    path: PathLike, weighted: bool = False, symmetrize: bool = True
) -> Graph:
    """Load a graph from a Matrix Market coordinate file."""
    mat = scipy.io.mmread(str(path)).tocoo()
    if mat.shape[0] != mat.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got {mat.shape}")
    return Graph.from_edges(
        mat.row.astype(np.int64),
        mat.col.astype(np.int64),
        mat.shape[0],
        weights=mat.data if weighted else None,
        symmetrize=symmetrize,
    )


def write_matrix_market(graph: Graph, path: PathLike, comment: str = "") -> None:
    """Write a graph as a Matrix Market coordinate file."""
    scipy.io.mmwrite(str(path), graph.to_scipy(), comment=comment)
