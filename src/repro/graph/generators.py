"""Synthetic graph generators.

Provides the paper's two synthetic families (Table 4) plus a Chung-Lu
power-law generator used to build scaled stand-ins for the real
datasets:

* :func:`rmat` — Graph500 R-MAT with the standard parameters
  ``edgefactor=16, A=0.57, B=0.19, C=0.19``.
* :func:`erdos_renyi_gnm` — Erdos-Renyi ``G(n, m)``.
* :func:`chung_lu_powerlaw` — expected-degree model with a power-law
  degree sequence, matching the heavy skew of the web/social inputs.

All generators are fully vectorized and deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph

__all__ = [
    "rmat",
    "rmat_edges",
    "erdos_renyi_gnm",
    "chung_lu_powerlaw",
    "path_graph",
    "star_graph",
    "grid_graph",
]


def rmat_edges(
    scale: int,
    edgefactor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Generate raw R-MAT edge endpoints (Graph500 kernel 0).

    Returns ``(src, dst, n)`` with ``n = 2**scale`` and
    ``edgefactor * n`` edge slots before any dedup/self-loop cleanup.
    Each of the ``scale`` bit levels picks an adjacency-matrix quadrant
    with probabilities ``(a, b, c, d)``; the recursion is unrolled into
    one vectorized pass per level.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    d = 1.0 - a - b - c
    if d < -1e-12 or min(a, b, c) < 0:
        raise ValueError("invalid R-MAT parameters")
    n = 1 << scale
    m = edgefactor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.5
    c_norm = c / (1.0 - ab) if ab < 1.0 else 0.5
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r_bit = rng.random(m)
        c_bit = rng.random(m)
        src_bit = r_bit > ab
        # The dst bit is conditioned on the src bit (Graph500 kernel):
        # given src_bit=0, P(dst=1) = b/(a+b); given src_bit=1,
        # P(dst=1) = d/(c+d).
        dst_bit = np.where(src_bit, c_bit > c_norm, c_bit > a_norm)
        src += src_bit
        dst += dst_bit
    return src, dst, n


def rmat(
    scale: int,
    edgefactor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    symmetrize: bool = True,
    shuffle: bool = True,
) -> Graph:
    """Graph500-parameter R-MAT graph as a deduplicated CSR ``Graph``.

    ``shuffle`` applies the random vertex relabeling the Graph500
    specification mandates after generation.  Without it, R-MAT's
    hubbiness correlates with the ID bit pattern (a vertex is likelier
    to be a hub for every zero bit, including the low ones), which
    would systematically bias any modulo-based distribution such as the
    paper's striping.
    """
    src, dst, n = rmat_edges(scale, edgefactor, a, b, c, seed)
    if shuffle:
        relabel = np.random.default_rng(seed + 0x5EED).permutation(n).astype(np.int64)
        src, dst = relabel[src], relabel[dst]
    return Graph.from_edges(src, dst, n, symmetrize=symmetrize)


def erdos_renyi_gnm(
    n: int, m: int, seed: int = 0, symmetrize: bool = True
) -> Graph:
    """Erdos-Renyi ``G(n, m)``: ``m`` uniformly random edge slots.

    This is the paper's RAND family: same order and size as the R-MAT
    inputs but with a flat degree distribution.
    """
    if n < 1:
        raise ValueError("need at least one vertex")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return Graph.from_edges(src, dst, n, symmetrize=symmetrize)


def chung_lu_powerlaw(
    n: int,
    m: int,
    gamma: float = 2.2,
    min_degree: float = 1.0,
    seed: int = 0,
) -> Graph:
    """Chung-Lu expected-degree graph with power-law weights.

    Vertex ``i`` gets expected-degree weight ``w_i ~ (i + i0)^(-1/(gamma-1))``
    (normalized so that the expected stored edge count is ``~2 m`` after
    symmetrization); endpoints of each of the ``m`` undirected edge
    slots are drawn independently with probability proportional to the
    weights.  This reproduces the skewed-degree behaviour of the
    real-world inputs (twitter, friendster, the web crawls) that drives
    the paper's load-balance results.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    rng = np.random.default_rng(seed)
    i0 = n * (min_degree / max(n, 2)) ** (gamma - 1.0) + 1.0
    ranks = np.arange(n, dtype=np.float64)
    w = (ranks + i0) ** (-1.0 / (gamma - 1.0))
    cdf = np.cumsum(w)
    cdf /= cdf[-1]
    src = np.searchsorted(cdf, rng.random(m))
    dst = np.searchsorted(cdf, rng.random(m))
    # Shuffle identities so high-degree vertices are not the lowest IDs;
    # the paper notes real graphs arrive in BFS/DFS-like orders, and the
    # striped distribution must not get the hubs for free.
    relabel = rng.permutation(n).astype(np.int64)
    return Graph.from_edges(relabel[src], relabel[dst], n, symmetrize=True)


def web_graph(
    n: int,
    m: int,
    gamma: float = 2.0,
    chain_fraction: float = 0.05,
    chain_length: int = 40,
    seed: int = 0,
) -> Graph:
    """Web-crawl-like stand-in: power-law core plus pendant chains.

    Real crawl graphs (ClueWeb, gsh, WDC) combine a heavy-tailed core
    with long pendant paths (redirect/pagination chains), giving
    iterative algorithms their characteristic long convergence tail —
    the regime the paper's vertex queues and dense-to-sparse switching
    are designed for.  ``chain_fraction`` of the vertices are organized
    into chains of ``chain_length`` hanging off random core vertices.
    """
    n_chain = int(n * chain_fraction)
    n_core = n - n_chain
    if n_core < 2:
        raise ValueError("chain_fraction leaves no core")
    core = chung_lu_powerlaw(n_core, m, gamma=gamma, seed=seed)
    rng = np.random.default_rng(seed + 1)
    deg = np.diff(core.indptr)
    src = np.repeat(np.arange(n_core, dtype=np.int64), deg)
    dst = core.indices.copy()
    extra_src, extra_dst = [], []
    chain_ids = np.arange(n_core, n, dtype=np.int64)
    pos = 0
    while pos < n_chain:
        length = min(chain_length, n_chain - pos)
        chain = chain_ids[pos : pos + length]
        anchor = rng.integers(0, n_core)
        extra_src.append(np.array([anchor], dtype=np.int64))
        extra_dst.append(chain[:1])
        if length > 1:
            extra_src.append(chain[:-1])
            extra_dst.append(chain[1:])
        pos += length
    all_src = np.concatenate([src] + extra_src)
    all_dst = np.concatenate([dst] + extra_dst)
    return Graph.from_edges(all_src, all_dst, n, symmetrize=True)


# ----------------------------------------------------------------------
# small deterministic graphs for tests and examples
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """Undirected path ``0 - 1 - ... - n-1``."""
    src = np.arange(n - 1, dtype=np.int64)
    return Graph.from_edges(src, src + 1, n)


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves."""
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return Graph.from_edges(src, dst, n)


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D lattice, useful for hand-checkable traversals."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    src = np.concatenate([right[0], down[0]])
    dst = np.concatenate([right[1], down[1]])
    return Graph.from_edges(src, dst, rows * cols)
