"""Vertex distributions and matrix partitioners (1D, 2D)."""

from .striped import (
    block_permutation,
    group_ranges,
    random_permutation,
    striped_permutation,
)
from .metrics import PartitionMetrics, evaluate_partition
from .twod import RankBlock, TwoDPartition, partition_2d

__all__ = [
    "block_permutation",
    "group_ranges",
    "random_permutation",
    "striped_permutation",
    "PartitionMetrics",
    "evaluate_partition",
    "RankBlock",
    "TwoDPartition",
    "partition_2d",
]
