"""Partition quality metrics (paper §3.4.2 discussion, §2.2 analysis).

Quantifies what the paper argues qualitatively: how a distribution
choice (striped / random / block) and a grid shape trade off

* **edge balance** — the max/mean block edge count, which bounds the
  BSP compute imbalance;
* **state volume** — per-rank row + column window sizes, the
  O(N/sqrt(p)) term in the paper's communication analysis;
* **dense exchange volume** — bytes a dense push or pull moves per
  rank per iteration, directly from the group slice sizes.

Used by the distribution ablation bench and available on the public
API for users choosing a layout for their own inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .twod import TwoDPartition

__all__ = ["PartitionMetrics", "evaluate_partition"]

_STATE_BYTES = 8


@dataclass(frozen=True)
class PartitionMetrics:
    """Quality summary of one 2D partition."""

    n_ranks: int
    edge_balance: float  # max/mean block edges (1.0 = perfect)
    max_block_edges: int
    mean_block_edges: float
    max_state_vertices: int  # max N_T over ranks
    mean_state_vertices: float
    dense_push_bytes_per_rank: int  # col AllReduce + row Broadcast share
    dense_pull_bytes_per_rank: int

    @property
    def compute_efficiency(self) -> float:
        """Fraction of perfectly-balanced throughput achievable."""
        return 1.0 / self.edge_balance if self.edge_balance > 0 else 0.0


def evaluate_partition(part: TwoDPartition) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for a built partition."""
    edges = np.array([b.n_local_edges for b in part.blocks], dtype=np.int64)
    states = np.array([b.n_total for b in part.blocks], dtype=np.int64)
    mean_edges = float(edges.mean()) if edges.size else 0.0
    balance = float(edges.max() / mean_edges) if mean_edges > 0 else 1.0

    grid = part.grid
    # Dense push: AllReduce over the column slice (N_C values move
    # ~2x(k-1)/k of the slice in a ring) + a broadcast of the row
    # slice along the row group.  Report the dominant per-rank slice
    # volumes (the model's bandwidth terms are proportional to these).
    push = pull = 0
    for blk in part.blocks:
        lm = blk.localmap
        push = max(push, (2 * lm.n_col + lm.n_row) * _STATE_BYTES)
        pull = max(pull, (2 * lm.n_row + lm.n_col) * _STATE_BYTES)

    return PartitionMetrics(
        n_ranks=grid.n_ranks,
        edge_balance=balance,
        max_block_edges=int(edges.max(initial=0)),
        mean_block_edges=mean_edges,
        max_state_vertices=int(states.max(initial=0)),
        mean_state_vertices=float(states.mean()) if states.size else 0.0,
        dense_push_bytes_per_rank=push,
        dense_pull_bytes_per_rank=pull,
    )
