"""2D block partitioning of a graph onto a process grid (paper §3.2).

Pipeline:

1. relabel vertices with a distribution permutation (striped by
   default) so each row group owns a contiguous new-GID range;
2. split the relabeled adjacency matrix into ``C`` block-rows x ``R``
   block-columns;
3. store each block as a local CSR whose rows are indexed by row-local
   position and whose adjacency entries are *column local IDs* per the
   rank's arithmetic :class:`~repro.graph.localmap.LocalMap`.

A rank's local degree of a vertex is generally *not* its true degree;
true degrees are the sum of local degrees across the row group (paper
§3.2), which :meth:`TwoDPartition.local_row_degrees` + a row-group
AllReduce recovers (exercised in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...comm.grid import Grid2D
from ..csr import Graph
from ..localmap import LocalMap
from .striped import (
    block_permutation,
    group_ranges,
    random_permutation,
    striped_permutation,
)

__all__ = ["RankBlock", "TwoDPartition", "partition_2d"]

_DISTRIBUTIONS = {
    "striped": striped_permutation,
    "random": random_permutation,
    "block": block_permutation,
}


@dataclass
class RankBlock:
    """One rank's share of the 2D-partitioned graph.

    ``indptr`` is indexed by *row-local position* (``0..N_R``); add
    ``localmap.row_offset`` to get the row vertex's LID.  ``indices``
    holds column-vertex LIDs.
    """

    rank: int
    id_r: int
    id_c: int
    localmap: LocalMap
    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None

    @property
    def n_local_edges(self) -> int:
        return self.indices.size

    @property
    def n_total(self) -> int:
        """``N_T``: length of this rank's state arrays."""
        return self.localmap.n_total

    def local_row_degrees(self) -> np.ndarray:
        """Local degree of each row vertex (row-local order)."""
        return np.diff(self.indptr)

    def row_lids(self) -> np.ndarray:
        """LIDs of the rank's row vertices."""
        lm = self.localmap
        return np.arange(lm.row_offset, lm.row_offset + lm.n_row, dtype=np.int64)

    def col_lids(self) -> np.ndarray:
        """LIDs of the rank's column vertices."""
        lm = self.localmap
        return np.arange(lm.col_offset, lm.col_offset + lm.n_col, dtype=np.int64)


@dataclass
class TwoDPartition:
    """A graph distributed over a :class:`Grid2D`.

    ``perm`` maps original GIDs to relabeled GIDs; all block structures
    and all state vectors produced by the engine live in relabeled GID
    order until results are mapped back via :meth:`to_original_order`.
    """

    grid: Grid2D
    n_vertices: int
    n_edges: int
    row_offsets: np.ndarray  # C + 1 boundaries of block-row GID ranges
    col_offsets: np.ndarray  # R + 1 boundaries of block-col GID ranges
    perm: np.ndarray
    blocks: list[RankBlock]
    weighted: bool = False
    distribution: str = "striped"

    # ------------------------------------------------------------------
    # ranges
    # ------------------------------------------------------------------
    def row_range(self, id_r: int) -> tuple[int, int]:
        """Relabeled-GID range owned by row group ``id_r``."""
        return int(self.row_offsets[id_r]), int(self.row_offsets[id_r + 1])

    def col_range(self, id_c: int) -> tuple[int, int]:
        """Relabeled-GID range ghosted by column group ``id_c``."""
        return int(self.col_offsets[id_c]), int(self.col_offsets[id_c + 1])

    def block(self, rank: int) -> RankBlock:
        return self.blocks[rank]

    # ------------------------------------------------------------------
    # distributing / collecting global vectors
    # ------------------------------------------------------------------
    def scatter_global(self, vec: np.ndarray, rank: int) -> np.ndarray:
        """A rank's local view (length ``N_T``) of a global vector.

        ``vec`` must be in *original* GID order; the result is indexed
        by the rank's LIDs, with both row and column windows filled.
        """
        vec = np.asarray(vec)
        if vec.shape[0] != self.n_vertices:
            raise ValueError("global vector has wrong length")
        relabeled = np.empty_like(vec)
        relabeled[self.perm] = vec
        blk = self.blocks[rank]
        lm = blk.localmap
        local = np.zeros((lm.n_total,) + vec.shape[1:], dtype=vec.dtype)
        local[lm.row_slice] = relabeled[lm.row_start : lm.row_stop]
        local[lm.col_slice] = relabeled[lm.col_start : lm.col_stop]
        return local

    def gather_row_state(self, states: list[np.ndarray]) -> np.ndarray:
        """Assemble the global state vector from per-rank states.

        Takes the row window of the first rank of each row group (all
        ranks in a group are consistent after an algorithm finishes —
        validated by tests) and maps back to original GID order.
        """
        out = None
        for id_r in range(self.grid.C):
            rank = self.grid.rank_of(id_r, 0)
            blk = self.blocks[rank]
            lm = blk.localmap
            piece = states[rank][lm.row_slice]
            if out is None:
                out = np.zeros(
                    (self.n_vertices,) + piece.shape[1:], dtype=piece.dtype
                )
            out[lm.row_start : lm.row_stop] = piece
        assert out is not None
        return self.to_original_order(out)

    def to_original_order(self, relabeled_vec: np.ndarray) -> np.ndarray:
        """Convert a relabeled-GID-ordered vector to original GID order."""
        return np.asarray(relabeled_vec)[self.perm]

    def to_relabeled_order(self, original_vec: np.ndarray) -> np.ndarray:
        """Convert an original-GID-ordered vector to relabeled order."""
        original_vec = np.asarray(original_vec)
        out = np.empty_like(original_vec)
        out[self.perm] = original_vec
        return out

    def original_gid(self, relabeled: np.ndarray) -> np.ndarray:
        """Original GIDs of relabeled GIDs (inverse permutation)."""
        if not hasattr(self, "_inv_perm"):
            inv = np.empty(self.n_vertices, dtype=np.int64)
            inv[self.perm] = np.arange(self.n_vertices, dtype=np.int64)
            self._inv_perm = inv
        return self._inv_perm[np.asarray(relabeled)]

    # ------------------------------------------------------------------
    # sanity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the blocks partition exactly the relabeled edge set."""
        total = sum(b.n_local_edges for b in self.blocks)
        if total != self.n_edges:
            raise AssertionError(
                f"blocks hold {total} edges, graph has {self.n_edges}"
            )
        for blk in self.blocks:
            lm = blk.localmap
            if blk.indptr.size != lm.n_row + 1:
                raise AssertionError(f"rank {blk.rank}: bad indptr length")
            if blk.indices.size:
                lo, hi = blk.indices.min(), blk.indices.max()
                if lo < lm.col_offset or hi >= lm.col_offset + lm.n_col:
                    raise AssertionError(f"rank {blk.rank}: adjacency LID out of range")


def partition_2d(
    graph: Graph,
    grid: Grid2D,
    distribution: str = "striped",
    seed: int = 0,
) -> TwoDPartition:
    """Distribute ``graph`` over ``grid`` (see module docstring).

    Parameters
    ----------
    distribution:
        ``"striped"`` (paper default), ``"random"``, or ``"block"``.
    """
    try:
        perm_fn = _DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(_DISTRIBUTIONS)}"
        ) from None
    n = graph.n_vertices
    if distribution == "random":
        perm = perm_fn(n, grid.C, seed=seed)
    else:
        perm = perm_fn(n, grid.C)

    relabeled = graph.permute(perm) if not np.array_equal(
        perm, np.arange(n)
    ) else graph
    mat = relabeled.to_scipy()

    row_offsets = group_ranges(n, grid.C)
    col_offsets = group_ranges(n, grid.R)

    blocks: list[RankBlock] = []
    for id_r in range(grid.C):
        rs, re = int(row_offsets[id_r]), int(row_offsets[id_r + 1])
        slab = mat[rs:re]
        for id_c in range(grid.R):
            cs, ce = int(col_offsets[id_c]), int(col_offsets[id_c + 1])
            block = slab[:, cs:ce].tocsr()
            block.sort_indices()
            lm = LocalMap(row_start=rs, row_stop=re, col_start=cs, col_stop=ce)
            indices = block.indices.astype(np.int64) + lm.col_offset
            blocks.append(
                RankBlock(
                    rank=grid.rank_of(id_r, id_c),
                    id_r=id_r,
                    id_c=id_c,
                    localmap=lm,
                    indptr=block.indptr.astype(np.int64),
                    indices=indices,
                    weights=block.data.copy() if graph.is_weighted else None,
                )
            )
    blocks.sort(key=lambda b: b.rank)
    part = TwoDPartition(
        grid=grid,
        n_vertices=n,
        n_edges=relabeled.n_edges,
        row_offsets=row_offsets,
        col_offsets=col_offsets,
        perm=perm,
        blocks=blocks,
        weighted=graph.is_weighted,
        distribution=distribution,
    )
    part.validate()
    return part
