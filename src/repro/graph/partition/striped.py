"""Vertex-to-group distributions (paper §3.4.2, "Vertex Distribution").

The paper assigns vertices to row groups in a *striped* (round-robin)
fashion: original GID 0 to the first row group, GID 1 to the second,
and so on, wrapping around.  This balances skewed degree distributions
nearly as well as a random assignment while keeping group sizes equal
and preserving some locality of the input order (real graphs often
arrive in BFS/DFS orders).

A distribution is realized here as a *relabeling permutation*: after
applying it, row group ``g`` owns a contiguous global-ID range, which
is what the 2D block partitioner and the arithmetic local maps require.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "striped_permutation",
    "random_permutation",
    "block_permutation",
    "group_ranges",
]


def group_ranges(n: int, ngroups: int) -> np.ndarray:
    """Contiguous range boundaries splitting ``[0, n)`` into ``ngroups``.

    Returns an array of ``ngroups + 1`` offsets.  The first ``n %
    ngroups`` groups get one extra vertex, matching the sizes produced
    by :func:`striped_permutation`.
    """
    if ngroups < 1:
        raise ValueError("need at least one group")
    base, extra = divmod(n, ngroups)
    sizes = np.full(ngroups, base, dtype=np.int64)
    sizes[:extra] += 1
    out = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(sizes, out=out[1:])
    return out


def striped_permutation(n: int, ngroups: int) -> np.ndarray:
    """Round-robin relabeling: ``perm[v]`` is the new GID of vertex ``v``.

    Vertex ``v`` goes to group ``v % ngroups`` at within-group position
    ``v // ngroups``; groups are then laid out contiguously.
    """
    v = np.arange(n, dtype=np.int64)
    group = v % ngroups
    pos = v // ngroups
    offsets = group_ranges(n, ngroups)
    return offsets[group] + pos


def random_permutation(n: int, ngroups: int, seed: int = 0) -> np.ndarray:
    """Uniformly random relabeling (alternative distribution).

    The paper compares against this implicitly: striped "offers
    comparable load balance to a random distribution without having
    varying group sizes".  Provided for the distribution ablation.
    """
    del ngroups  # group sizes are whatever the block split yields
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def block_permutation(n: int, ngroups: int) -> np.ndarray:
    """Identity relabeling: contiguous blocks of the *original* order.

    The worst case for skewed inputs whose hubs cluster by ID; used as
    the ablation baseline against striped/random.
    """
    del ngroups
    return np.arange(n, dtype=np.int64)
