"""The BSP execution engine binding a partitioned graph to a cluster.

An :class:`Engine` is the public entry point of the library: it
partitions a graph over a 2D grid of simulated GPU ranks on a chosen
machine, and provides the algorithms with

* per-rank :class:`~repro.core.context.RankContext` objects,
* a :class:`~repro.comm.collectives.Communicator` with virtual-time
  accounting,
* kernel charging that runs the Manhattan-collapse (or naive) schedule
  through the machine's cost model.

Typical usage::

    from repro import Engine, algorithms
    from repro.graph import rmat

    engine = Engine(rmat(14), n_ranks=16)      # square 4x4 grid on AiMOS
    result = algorithms.pagerank(engine, iterations=20)
    print(result.timings.total, result.timings.comm_fraction)
"""

from __future__ import annotations

import os
from typing import Iterator, Optional, Sequence

import numpy as np

from ..cluster.config import AIMOS, ClusterConfig
from ..cluster.costmodel import NCCL_PROFILE, CommProfile, CostModel
from ..cluster.device import VirtualGPU
from ..cluster.topology import Topology
from ..comm.clocks import VirtualClocks
from ..comm.collectives import Communicator
from ..comm.counters import CommCounters
from ..comm.grid import Grid2D, square_grid
from ..exec import RankExecutor, resolve_executor
from ..graph.csr import Graph
from ..graph.partition.twod import TwoDPartition, partition_2d
from ..queueing.manhattan import manhattan_schedule, vertex_per_thread_balance
from .context import RankContext
from .result import TimingReport

__all__ = ["Engine", "OVERLAP_ENV_VAR"]

#: Environment variable consulted when ``Engine(overlap=None)``.
OVERLAP_ENV_VAR = "REPRO_OVERLAP"


class Engine:
    """Distributed 2D graph-processing engine over simulated GPUs.

    Parameters
    ----------
    graph:
        Input graph (treated as already symmetrized; see
        :meth:`repro.graph.csr.Graph.from_edges`).
    n_ranks:
        Total GPUs; must be a perfect square unless ``grid`` is given.
    grid:
        Explicit ``Grid2D`` for non-square layouts (paper Fig. 7).
    cluster:
        Machine model (default AiMOS).
    distribution:
        Vertex-to-row-group distribution: ``"striped"`` (paper
        default), ``"random"``, or ``"block"``.
    profile:
        Communication substrate profile; swap in ``GENERIC_PROFILE``
        for the Gluon-like baseline.
    load_balance:
        ``"manhattan"`` (paper default) or ``"vertex"`` for the naive
        per-thread expansion (used by the Fig. 6 ablation).
    memory_scale:
        Multiplier on modeled allocations, to account full-scale
        dataset footprints while simulating a scaled stand-in.
    enforce_memory:
        Raise :class:`~repro.cluster.device.DeviceMemoryError` on
        over-subscription instead of just recording it.
    executor:
        Rank-execution strategy for per-rank superstep closures
        (see :mod:`repro.exec`): a :class:`~repro.exec.RankExecutor`
        instance, ``"serial"``, ``"threads"``, ``"threads:N"``, or
        ``None`` to consult the ``REPRO_EXECUTOR`` environment
        variable (default serial).  Either way results are
        deterministic — see :meth:`map_ranks`.
    overlap:
        Run the comm/compute-overlap variants of the block-sweep hot
        loops: patterns issue collectives split-phase
        (``Communicator.start_*``) and hide apply-phase compute behind
        the in-flight exchanges.  Values, counters, and the compute and
        comm lanes stay bit-identical to a blocking run; only the total
        drops (by the time recorded in the ``overlap`` lane).  ``None``
        consults the ``REPRO_OVERLAP`` environment variable
        (``1``/``true``/``on``/``yes`` enable; default blocking).  See
        docs/MODEL.md.
    """

    def __init__(
        self,
        graph: Graph,
        n_ranks: Optional[int] = None,
        grid: Optional[Grid2D] = None,
        cluster: ClusterConfig = AIMOS,
        distribution: str = "striped",
        profile: CommProfile = NCCL_PROFILE,
        load_balance: str = "manhattan",
        memory_scale: float = 1.0,
        enforce_memory: bool = False,
        seed: int = 0,
        executor: "RankExecutor | str | None" = None,
        overlap: Optional[bool] = None,
    ):
        if grid is None:
            if n_ranks is None:
                raise ValueError("pass n_ranks or an explicit grid")
            grid = square_grid(n_ranks)
        elif n_ranks is not None and n_ranks != grid.n_ranks:
            raise ValueError(
                f"n_ranks={n_ranks} disagrees with grid ({grid.n_ranks} ranks)"
            )
        if load_balance not in ("manhattan", "vertex"):
            raise ValueError("load_balance must be 'manhattan' or 'vertex'")

        if overlap is None:
            overlap = os.environ.get(OVERLAP_ENV_VAR, "").strip().lower() in (
                "1",
                "true",
                "on",
                "yes",
            )

        self.graph = graph
        self.grid = grid
        self.cluster = cluster
        self.load_balance = load_balance
        self.overlap = bool(overlap)
        # Everything (besides graph/grid/executor) a rebuild on a new
        # grid needs to reproduce this engine's configuration — the
        # elastic-recovery seam (see rebuild_on_grid).
        self._rebuild_args = dict(
            cluster=cluster,
            distribution=distribution,
            profile=profile,
            load_balance=load_balance,
            memory_scale=memory_scale,
            enforce_memory=enforce_memory,
            seed=seed,
            overlap=self.overlap,
        )
        self.partition: TwoDPartition = partition_2d(
            graph, grid, distribution=distribution, seed=seed
        )
        self.topology = Topology(cluster, grid.n_ranks)
        self.costmodel = CostModel(cluster.gpu, self.topology, profile)
        # Memoized ScheduleStats for repeated identical queue expansions
        # (dense iterations re-schedule the same full queue every time).
        # Keys are scoped by (graph identity, grid shape, distribution,
        # seed, load-balance model) so the dict can be *shared* across
        # rebuild_on_grid generations: an elastic shrink that later
        # revisits a previous grid hits that grid's warm entries instead
        # of re-running every schedule from cold.
        self._schedule_scope = (
            id(graph),
            grid.R,
            grid.C,
            distribution,
            seed,
            load_balance,
        )
        self._schedule_cache: dict[tuple, object] = {}
        self.counters = CommCounters()
        self.clocks = VirtualClocks(grid.n_ranks, counters=self.counters)
        self.comm = Communicator(self.costmodel, self.clocks, self.counters)
        # Robustness hooks (see repro.faults): the bare communicator is
        # kept so attach/detach_faults can wrap and unwrap self.comm.
        self._base_comm = self.comm
        self._injector = None
        self._last_injector = None
        self._checkpoints = None
        # Rank-health watchdog hooks (see repro.faults.health): the
        # monitor samples per-rank clock lanes at superstep boundaries;
        # the autoscaler turns its classifications (and planned spare
        # arrivals) into demote/grow decisions.
        self._health = None
        self._autoscaler = None
        # State-integrity ledger (see repro.faults.integrity): verifies
        # replicated-window digests at superstep boundaries, before the
        # boundary's checkpoint is saved.
        self._integrity = None
        # Spares delivered by consumed ``recover`` specs and not yet
        # adopted by a grow; carried across rebuild_on_grid.
        self.spare_ranks = 0
        # Regrid events recorded by elastic recovery; the list is
        # *shared* across rebuild_on_grid generations so the final
        # engine's fault_events tells the whole run's story.
        self._regrid_events: list[dict] = []
        self.executor: RankExecutor = resolve_executor(executor)
        # Precomputed eagerly (the cluster and grid are immutable) so a
        # concurrent first call cannot race a half-built memo.
        self._stage_sharing = self._compute_stage_sharing()
        self.contexts: list[RankContext] = [
            RankContext(
                block,
                VirtualGPU(
                    rank=block.rank,
                    spec=cluster.gpu,
                    scale_factor=memory_scale,
                    enforce=enforce_memory,
                ),
            )
            for block in self.partition.blocks
        ]

    # ------------------------------------------------------------------
    # rank / group access
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.grid.n_ranks

    def ctx(self, rank: int) -> RankContext:
        return self.contexts[rank]

    def __iter__(self) -> Iterator[RankContext]:
        return iter(self.contexts)

    def row_groups(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(ID_R, ranks)`` for every row group."""
        for id_r in range(self.grid.C):
            yield id_r, self.grid.row_group_ranks(id_r)

    def col_groups(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(ID_C, ranks)`` for every column group."""
        for id_c in range(self.grid.R):
            yield id_c, self.grid.col_group_ranks(id_c)

    # ------------------------------------------------------------------
    # rank execution (see repro.exec)
    # ------------------------------------------------------------------
    def map_ranks(self, fn, ranks: Optional[Sequence[int]] = None) -> list:
        """Run ``fn(ctx)`` for every rank (or a subset) on the
        configured executor; return the results in rank order.

        This is the superstep fan-out: the closures may run
        concurrently, so ``fn`` must touch only state owned by its rank
        — the context's arrays, the rank's own :class:`VirtualClocks`
        lane (``charge_edges``/``charge_vertices`` with ``ctx.rank``),
        and per-rank slots of caller-held lists indexed by ``ctx.rank``.
        Collectives must never run inside ``fn``; the call returns only
        after every closure finished (the barrier before the
        collective).  Under that contract the results — state, clocks,
        and counters — are bit-identical to the serial loop.
        """
        contexts = (
            self.contexts
            if ranks is None
            else [self.contexts[r] for r in ranks]
        )
        return self.executor.map(fn, contexts)

    def foreach(self, fn, ranks: Optional[Sequence[int]] = None) -> None:
        """:meth:`map_ranks` for in-place closures (results discarded)."""
        self.map_ranks(fn, ranks=ranks)

    def stage_nic_sharing(self, axis: str) -> int:
        """NIC sharing when all groups of one axis communicate at once.

        In a BSP stage every row (or column) group runs its collective
        concurrently, so a node's NIC is shared by as many *distinct*
        groups as have members on that node: the 6 consecutive ranks of
        an AiMOS node belong to up to 6 different column groups (heavy
        sharing) but usually to a single row group (row groups are
        consecutive ranks).  This is why the paper's Fig. 7 advises
        biasing the reduction direction toward fewer ranks.
        """
        if axis not in ("row", "col"):
            raise ValueError(f"axis must be 'row' or 'col', got {axis!r}")
        return self._stage_sharing[axis]

    def _compute_stage_sharing(self) -> dict[str, int]:
        g = self.cluster.node.gpus_per_node
        R = self.grid.R
        sharing = {"row": 1, "col": 1}
        for node in range(self.topology.n_nodes()):
            members = [
                r for r in range(node * g, min((node + 1) * g, self.n_ranks))
            ]
            sharing["row"] = max(sharing["row"], len({r // R for r in members}))
            sharing["col"] = max(sharing["col"], len({r % R for r in members}))
        return sharing

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def alloc(
        self, name: str, dtype=np.float64, fill=0, width: Optional[int] = None
    ) -> list[np.ndarray]:
        """Allocate a state array on every rank; returns the list.

        ``width=k`` allocates ``(N_T, k)`` lane arrays (one column per
        batched query lane) instead of flat vectors.
        """
        return [
            ctx.alloc(name, dtype=dtype, fill=fill, width=width)
            for ctx in self.contexts
        ]

    def states(self, name: str) -> list[np.ndarray]:
        self._require_state(name)
        return [ctx.get(name) for ctx in self.contexts]

    def free(self, name: str) -> None:
        self._require_state(name)
        for ctx in self.contexts:
            ctx.free(name)

    def _require_state(self, name: str) -> None:
        """Raise a KeyError naming the allocated states when no rank
        has ``name`` (a typo'd state name should fail loudly, listing
        what *does* exist, rather than rank-by-rank)."""
        if not any(ctx.has(name) for ctx in self.contexts):
            known = sorted({n for ctx in self.contexts for n in ctx.arrays})
            raise KeyError(
                f"no state array named {name!r} on any rank; "
                f"allocated states: {known}"
            )

    def free_expand_caches(self) -> None:
        """Release every rank's cached full expansion (see
        :meth:`RankContext.free_expand_cache`)."""
        for ctx in self.contexts:
            ctx.free_expand_cache()

    def scatter_global(self, name: str, vec: np.ndarray, dtype=None) -> list[np.ndarray]:
        """Distribute a global per-vertex vector into a named state
        array on every rank (row and column windows filled).  A 2-D
        ``(n, k)`` input distributes each lane column."""
        vec = np.asarray(vec)
        width = vec.shape[1] if vec.ndim == 2 else None
        out = []
        for ctx in self.contexts:
            local = self.partition.scatter_global(vec, ctx.rank)
            arr = ctx.alloc(name, dtype=dtype or local.dtype, width=width)
            arr[...] = local
            out.append(arr)
        return out

    def gather(self, name: str) -> np.ndarray:
        """Collect a named state into a global original-order vector."""
        return self.partition.gather_row_state(self.states(name))

    # ------------------------------------------------------------------
    # kernel charging
    # ------------------------------------------------------------------
    def schedule_stats(
        self, queue_degrees: np.ndarray, cache_key: Optional[str] = None, rank: int = -1
    ):
        """Run the configured schedule model over a queue's degrees.

        ``cache_key`` memoizes the resulting :class:`ScheduleStats`
        per ``(rank, cache_key)``: dense iterations expand the identical
        full queue every time (PageRank runs 20 identical schedules per
        rank), so callers passing a stable key for a *static* degree
        array skip the recomputation entirely.  The caller guarantees
        the degrees for a given key never change (local degrees are
        fixed by the partition).
        """
        if cache_key is not None:
            key = self._schedule_scope + (rank, cache_key)
            stats = self._schedule_cache.get(key)
            if stats is not None:
                return stats
        if self.load_balance == "manhattan":
            stats = manhattan_schedule(queue_degrees)
        else:
            stats = vertex_per_thread_balance(queue_degrees)
        if cache_key is not None:
            self._schedule_cache[key] = stats
        return stats

    def charge_edges(
        self,
        rank: int,
        queue_degrees: np.ndarray,
        work_per_edge: float = 1.0,
        extra_vertices: int = 0,
        launches: int = 1,
        cache_key: Optional[str] = None,
    ) -> None:
        """Charge an edge-expansion kernel over a vertex queue.

        The load-balance efficiency comes from the configured schedule
        model (Manhattan collapse vs. naive vertex-per-thread); pass
        ``cache_key`` when the queue is a static full-queue expansion
        (see :meth:`schedule_stats`).
        """
        stats = self.schedule_stats(queue_degrees, cache_key=cache_key, rank=rank)
        t = self.costmodel.kernel_time(
            n_vertices=len(queue_degrees) + extra_vertices,
            n_edges=stats.total_edges,
            work_per_edge=work_per_edge,
            balance=stats.balance,
            launches=launches,
        )
        self.clocks.add_compute(rank, t)

    def charge_vertices(self, rank: int, n_vertices: int, launches: int = 1) -> None:
        """Charge a per-vertex kernel (queue builds, initialization)."""
        t = self.costmodel.kernel_time(
            n_vertices=n_vertices, launches=launches
        )
        self.clocks.add_compute(rank, t)

    # ------------------------------------------------------------------
    # robustness: fault injection and checkpoint/recovery (repro.faults)
    # ------------------------------------------------------------------
    def attach_faults(self, faults, max_retries: int = 4):
        """Route all collectives through a fault-injecting
        :class:`~repro.faults.resilient.ResilientCommunicator`.

        ``faults`` is a :class:`~repro.faults.plan.FaultPlan` or an
        already-built :class:`~repro.faults.injector.FaultInjector`.
        Returns the injector (for event inspection).  Imported lazily —
        ``repro.faults`` sits above the core in the layer order.
        """
        from ..faults.injector import FaultInjector
        from ..faults.plan import FaultPlan
        from ..faults.resilient import ResilientCommunicator

        if isinstance(faults, FaultPlan):
            bad = [
                s
                for s in faults
                if s.rank is not None and s.rank >= self.n_ranks
            ]
            if bad:
                listing = ", ".join(
                    f"{s.kind}@superstep {s.superstep} rank={s.rank}"
                    for s in bad
                )
                raise ValueError(
                    f"fault plan targets ranks outside this engine's "
                    f"[0, {self.n_ranks}): {listing}"
                )
            injector = FaultInjector(faults)
        else:
            injector = faults
        self._injector = injector
        self._last_injector = injector
        self.comm = ResilientCommunicator(
            self._base_comm, injector, max_retries=max_retries
        )
        return injector

    def detach_faults(self) -> None:
        """Unwrap the communicator; fault events stay readable via
        :attr:`fault_events` until the next :meth:`attach_faults`."""
        self.comm = self._base_comm
        self._injector = None

    def attach_checkpoints(self, manager) -> None:
        """Save a checkpoint at every (interval-matching) superstep
        boundary; ``manager`` is a
        :class:`~repro.faults.checkpoint.CheckpointManager`."""
        self._checkpoints = manager

    def detach_checkpoints(self) -> None:
        self._checkpoints = None

    @property
    def checkpoints(self):
        return self._checkpoints

    def attach_health(self, monitor) -> None:
        """Sample per-rank progress at every superstep boundary;
        ``monitor`` is a :class:`~repro.faults.health.HealthMonitor`.
        Binding (re)baselines it against this engine's current clocks.
        """
        self._health = monitor
        monitor.bind(self)

    def detach_health(self) -> None:
        self._health = None

    @property
    def health(self):
        return self._health

    def attach_autoscaler(self, controller) -> None:
        """Give ``controller`` (an object with ``on_boundary(engine,
        superstep)`` and ``spare_arrived(engine, superstep, count)``,
        e.g. :class:`~repro.faults.health.AutoscaleRecovery`) the
        boundary hook where it may raise
        :class:`~repro.faults.injector.RankDemotion` or
        :class:`~repro.faults.injector.SpareArrival`."""
        self._autoscaler = controller

    def detach_autoscaler(self) -> None:
        self._autoscaler = None

    def attach_integrity(self, ledger) -> None:
        """Verify state-array integrity at superstep boundaries;
        ``ledger`` is a
        :class:`~repro.faults.integrity.IntegrityLedger`.  The ledger
        runs *after* planned memflips land and *before* the boundary's
        checkpoint is saved, so saved checkpoints are verified-good."""
        self._integrity = ledger

    def detach_integrity(self) -> None:
        self._integrity = None

    @property
    def integrity(self):
        return self._integrity

    @property
    def fault_events(self) -> list:
        """Fault events observed by the current (or most recent)
        injector, plus any elastic regrid events, as plain dicts —
        trace rows and reports attach these."""
        inj = self._injector or self._last_injector
        events = [e.as_dict() for e in inj.events] if inj is not None else []
        events.extend(self._regrid_events)
        events.sort(key=lambda e: e.get("superstep", 0))
        return events

    def record_event(self, event: dict) -> None:
        """Record one robustness event (regrid, health transition,
        demotion, grow, hold, checkpoint skip, ...); it surfaces
        through :attr:`fault_events` and therefore on trace rows.
        Events should carry a ``"superstep"`` key so the trace recorder
        can attach them to the right iteration row."""
        self._regrid_events.append(event)

    # Backwards-compatible name from the elastic-recovery PR; regrid
    # events were the only recorded kind before the health subsystem.
    record_regrid = record_event

    def rebuild_on_grid(self, grid: Grid2D) -> "Engine":
        """Build a fresh engine for the same graph on a new grid.

        The elastic-recovery seam: the new engine re-partitions the
        graph with the original distribution/seed/cluster/profile
        configuration, reuses this engine's executor, carries the
        communication counters and virtual clocks forward
        (:meth:`VirtualClocks.align_state` reshapes the per-rank lanes
        onto the new rank count), and re-attaches the same fault
        injector and checkpoint manager so remaining planned faults
        and the checkpoint series follow the run onto the new grid.
        Regrid-event history is shared, not copied.
        """
        new = Engine(
            self.graph,
            grid=grid,
            executor=self.executor,
            **self._rebuild_args,
        )
        # Share (don't copy) the schedule cache: entries are keyed by
        # grid scope, so a later regrid back onto a previously-used grid
        # starts warm instead of re-deriving every schedule.
        new._schedule_cache = self._schedule_cache
        new.counters.load_state(self.counters.state_dict())
        new.clocks.load_state(
            VirtualClocks.align_state(self.clocks.state_dict(), grid.n_ranks)
        )
        if self._injector is not None:
            max_retries = getattr(self.comm, "max_retries", 4)
            new.attach_faults(self._injector, max_retries=max_retries)
        if self._checkpoints is not None:
            new.attach_checkpoints(self._checkpoints)
        if self._health is not None:
            # Re-binding resizes the ledger to the new rank count and
            # re-baselines scores (rank identities changed anyway).
            new.attach_health(self._health)
        if self._autoscaler is not None:
            new.attach_autoscaler(self._autoscaler)
        if self._integrity is not None:
            new.attach_integrity(self._integrity)
        new.spare_ranks = self.spare_ranks
        new._regrid_events = self._regrid_events
        return new

    def superstep_boundary(self, algo: str = "", state: Optional[dict] = None):
        """Mark the end of a BSP superstep.

        This is the robustness-aware replacement for calling
        ``engine.clocks.mark_iteration()`` directly: it records the
        iteration mark (returning the phase-time delta, as before),
        saves a checkpoint when a manager is attached and the algorithm
        supplied its loop ``state``, delivers planned spare arrivals,
        advances the fault injector to the next superstep, feeds the
        health monitor a progress sample, and gives the autoscaler its
        decision point.  Algorithms call this exactly once per
        superstep.

        The ordering is deliberate: planned memflips land first
        (corruption strikes between the compute that produced the
        state and the hash that should catch it), then the attached
        :class:`~repro.faults.integrity.IntegrityLedger` verifies —
        *before* the checkpoint is saved, so corrupt state is never
        checkpointed — and the checkpoint is saved *before* the
        autoscaler may raise
        :class:`~repro.faults.injector.RankDemotion` /
        :class:`~repro.faults.injector.SpareArrival`, so a demotion or
        grow drains from the checkpoint of *this* boundary and the
        resumed run recomputes nothing.
        """
        delta = self.clocks.mark_iteration()
        superstep = len(self.clocks.iteration_marks)
        if self._injector is not None:
            flips = self._injector.memflips_for(superstep)
            if flips:
                from ..faults.integrity import apply_memflip
                from ..faults.plan import FaultEvent

                for spec in flips:
                    # A rank lost to an earlier regrid cannot corrupt
                    # the survivors' state; the spec is still consumed.
                    if spec.rank is not None and spec.rank < self.n_ranks:
                        apply_memflip(self.contexts[spec.rank], spec)
                    self._injector.record(
                        FaultEvent(
                            kind="memflip",
                            rank=spec.rank,
                            superstep=superstep,
                            collective="boundary",
                            detected=False,
                        )
                    )
        if self._integrity is not None:
            checkpoint_due = (
                self._checkpoints is not None
                and state is not None
                and superstep % self._checkpoints.interval == 0
            )
            self._integrity.on_boundary(
                self, superstep, checkpoint_due=checkpoint_due
            )
        if self._checkpoints is not None and state is not None:
            self._checkpoints.maybe_save(self, superstep, algo, state)
        if self._injector is not None:
            arrivals = self._injector.arrivals_for(superstep)
            if arrivals:
                from ..faults.plan import FaultEvent

                for spec in arrivals:
                    self.spare_ranks += spec.count
                    self._injector.record(
                        FaultEvent(
                            kind="recover",
                            rank=None,
                            superstep=superstep,
                            collective="boundary",
                        )
                    )
                    if self._autoscaler is not None:
                        self._autoscaler.spare_arrived(
                            self, superstep, spec.count
                        )
            self._injector.begin_superstep(superstep + 1)
        if self._health is not None:
            self._health.observe(self, superstep)
        if self._autoscaler is not None:
            self._autoscaler.on_boundary(self, superstep)
        return delta

    def restore(self, ckpt) -> None:
        """Restore engine state from a
        :class:`~repro.faults.checkpoint.Checkpoint`, in place.

        Per-rank arrays are reallocated through the normal ``alloc``
        path (so device ledgers stay consistent and array identities
        are fresh), counters and clocks are restored bit-exactly, and
        an attached injector is fast-forwarded to the checkpoint's
        superstep so remaining planned faults line up with the resumed
        run.
        """
        for ctx, saved in zip(self.contexts, ckpt.states):
            for name in [n for n in ctx.arrays if n not in saved]:
                ctx.free(name)
            for name, arr in saved.items():
                dest = ctx.alloc(
                    name,
                    dtype=arr.dtype,
                    length=arr.shape[0],
                    width=arr.shape[1] if arr.ndim == 2 else None,
                )
                dest[...] = arr
        self.counters.load_state(ckpt.counters)
        self.clocks.load_state(ckpt.clocks)
        if self._injector is not None:
            self._injector.begin_superstep(ckpt.superstep + 1)
        if self._integrity is not None:
            # Drop ledger rows from the abandoned attempt; the restored
            # clocks already erased its transient certify charges.
            self._integrity.rewind(ckpt.superstep)
        if self._health is not None:
            # Clocks just rewound; re-baseline so the next observation
            # diffs against the restored values, not the pre-crash ones.
            self._health.bind(self)

    def resume_from_checkpoint(self, algo: str) -> Optional[dict]:
        """Restore from the attached manager's latest checkpoint.

        Returns a fresh copy of the algorithm loop state saved with the
        checkpoint, or ``None`` when there is nothing to resume from
        (no manager attached, or no checkpoint saved yet).  Refuses to
        resume a different algorithm's checkpoint.
        """
        import copy as _copy

        if self._checkpoints is None:
            return None
        ckpt = self._checkpoints.latest()
        if ckpt is None:
            return None
        if ckpt.algo != algo:
            raise ValueError(
                f"latest checkpoint belongs to {ckpt.algo!r}, "
                f"cannot resume {algo!r} from it"
            )
        self.restore(ckpt)
        return _copy.deepcopy(ckpt.algo_state)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def reset_timers(self) -> None:
        """Zero all clocks and counters (before a timed run).

        Resets **in place**: ``engine.counters``, ``engine.clocks``,
        and ``engine.comm`` keep their identities, so a
        :class:`~repro.core.trace.TraceRecorder` or any caller holding
        a reference observes the reset instead of silently watching an
        orphaned object.  Robustness state resets with the run: an
        attached fault injector re-arms its plan, and stale checkpoints
        from a previous run are dropped (they describe state this run
        will overwrite).
        """
        self.counters.reset()
        self.clocks.reset()
        self._regrid_events.clear()
        self.spare_ranks = 0
        if self._injector is not None:
            self._injector.reset()
        if self._checkpoints is not None:
            self._checkpoints.clear()
        if self._integrity is not None:
            self._integrity.reset()
        if self._health is not None:
            self._health.bind(self)

    def timing_report(self) -> TimingReport:
        snap = self.clocks.snapshot()
        # per-iteration deltas from the cumulative marks
        marks = self.clocks.iteration_marks
        deltas = []
        prev = None
        for m in marks:
            deltas.append(m if prev is None else m - prev)
            prev = m
        return TimingReport(
            total=snap.total,
            compute=snap.compute,
            comm=snap.comm,
            per_iteration=tuple(deltas),
            recovery=self.clocks.recovery_total,
            regrid=self.clocks.regrid_total,
            overlap=self.clocks.overlap_total,
            certify=self.clocks.certify_total,
        )

    def memory_report(self) -> dict[int, float]:
        """Peak modeled memory utilization per rank."""
        return {ctx.rank: ctx.device.utilization() for ctx in self.contexts}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine({self.grid}, cluster={self.cluster.name}, "
            f"N={self.graph.n_vertices}, M={self.graph.n_edges})"
        )
