"""The BSP execution engine binding a partitioned graph to a cluster.

An :class:`Engine` is the public entry point of the library: it
partitions a graph over a 2D grid of simulated GPU ranks on a chosen
machine, and provides the algorithms with

* per-rank :class:`~repro.core.context.RankContext` objects,
* a :class:`~repro.comm.collectives.Communicator` with virtual-time
  accounting,
* kernel charging that runs the Manhattan-collapse (or naive) schedule
  through the machine's cost model.

Typical usage::

    from repro import Engine, algorithms
    from repro.graph import rmat

    engine = Engine(rmat(14), n_ranks=16)      # square 4x4 grid on AiMOS
    result = algorithms.pagerank(engine, iterations=20)
    print(result.timings.total, result.timings.comm_fraction)
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from ..cluster.config import AIMOS, ClusterConfig
from ..cluster.costmodel import NCCL_PROFILE, CommProfile, CostModel
from ..cluster.device import VirtualGPU
from ..cluster.topology import Topology
from ..comm.clocks import VirtualClocks
from ..comm.collectives import Communicator
from ..comm.counters import CommCounters
from ..comm.grid import Grid2D, square_grid
from ..exec import RankExecutor, resolve_executor
from ..graph.csr import Graph
from ..graph.partition.twod import TwoDPartition, partition_2d
from ..queueing.manhattan import manhattan_schedule, vertex_per_thread_balance
from .context import RankContext
from .result import TimingReport

__all__ = ["Engine"]


class Engine:
    """Distributed 2D graph-processing engine over simulated GPUs.

    Parameters
    ----------
    graph:
        Input graph (treated as already symmetrized; see
        :meth:`repro.graph.csr.Graph.from_edges`).
    n_ranks:
        Total GPUs; must be a perfect square unless ``grid`` is given.
    grid:
        Explicit ``Grid2D`` for non-square layouts (paper Fig. 7).
    cluster:
        Machine model (default AiMOS).
    distribution:
        Vertex-to-row-group distribution: ``"striped"`` (paper
        default), ``"random"``, or ``"block"``.
    profile:
        Communication substrate profile; swap in ``GENERIC_PROFILE``
        for the Gluon-like baseline.
    load_balance:
        ``"manhattan"`` (paper default) or ``"vertex"`` for the naive
        per-thread expansion (used by the Fig. 6 ablation).
    memory_scale:
        Multiplier on modeled allocations, to account full-scale
        dataset footprints while simulating a scaled stand-in.
    enforce_memory:
        Raise :class:`~repro.cluster.device.DeviceMemoryError` on
        over-subscription instead of just recording it.
    executor:
        Rank-execution strategy for per-rank superstep closures
        (see :mod:`repro.exec`): a :class:`~repro.exec.RankExecutor`
        instance, ``"serial"``, ``"threads"``, ``"threads:N"``, or
        ``None`` to consult the ``REPRO_EXECUTOR`` environment
        variable (default serial).  Either way results are
        deterministic — see :meth:`map_ranks`.
    """

    def __init__(
        self,
        graph: Graph,
        n_ranks: Optional[int] = None,
        grid: Optional[Grid2D] = None,
        cluster: ClusterConfig = AIMOS,
        distribution: str = "striped",
        profile: CommProfile = NCCL_PROFILE,
        load_balance: str = "manhattan",
        memory_scale: float = 1.0,
        enforce_memory: bool = False,
        seed: int = 0,
        executor: "RankExecutor | str | None" = None,
    ):
        if grid is None:
            if n_ranks is None:
                raise ValueError("pass n_ranks or an explicit grid")
            grid = square_grid(n_ranks)
        elif n_ranks is not None and n_ranks != grid.n_ranks:
            raise ValueError(
                f"n_ranks={n_ranks} disagrees with grid ({grid.n_ranks} ranks)"
            )
        if load_balance not in ("manhattan", "vertex"):
            raise ValueError("load_balance must be 'manhattan' or 'vertex'")

        self.graph = graph
        self.grid = grid
        self.cluster = cluster
        self.load_balance = load_balance
        self.partition: TwoDPartition = partition_2d(
            graph, grid, distribution=distribution, seed=seed
        )
        self.topology = Topology(cluster, grid.n_ranks)
        self.costmodel = CostModel(cluster.gpu, self.topology, profile)
        # Memoized ScheduleStats for repeated identical queue expansions
        # (dense iterations re-schedule the same full queue every time).
        self._schedule_cache: dict[tuple, object] = {}
        self.counters = CommCounters()
        self.clocks = VirtualClocks(grid.n_ranks, counters=self.counters)
        self.comm = Communicator(self.costmodel, self.clocks, self.counters)
        self.executor: RankExecutor = resolve_executor(executor)
        # Precomputed eagerly (the cluster and grid are immutable) so a
        # concurrent first call cannot race a half-built memo.
        self._stage_sharing = self._compute_stage_sharing()
        self.contexts: list[RankContext] = [
            RankContext(
                block,
                VirtualGPU(
                    rank=block.rank,
                    spec=cluster.gpu,
                    scale_factor=memory_scale,
                    enforce=enforce_memory,
                ),
            )
            for block in self.partition.blocks
        ]

    # ------------------------------------------------------------------
    # rank / group access
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.grid.n_ranks

    def ctx(self, rank: int) -> RankContext:
        return self.contexts[rank]

    def __iter__(self) -> Iterator[RankContext]:
        return iter(self.contexts)

    def row_groups(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(ID_R, ranks)`` for every row group."""
        for id_r in range(self.grid.C):
            yield id_r, self.grid.row_group_ranks(id_r)

    def col_groups(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(ID_C, ranks)`` for every column group."""
        for id_c in range(self.grid.R):
            yield id_c, self.grid.col_group_ranks(id_c)

    # ------------------------------------------------------------------
    # rank execution (see repro.exec)
    # ------------------------------------------------------------------
    def map_ranks(self, fn, ranks: Optional[Sequence[int]] = None) -> list:
        """Run ``fn(ctx)`` for every rank (or a subset) on the
        configured executor; return the results in rank order.

        This is the superstep fan-out: the closures may run
        concurrently, so ``fn`` must touch only state owned by its rank
        — the context's arrays, the rank's own :class:`VirtualClocks`
        lane (``charge_edges``/``charge_vertices`` with ``ctx.rank``),
        and per-rank slots of caller-held lists indexed by ``ctx.rank``.
        Collectives must never run inside ``fn``; the call returns only
        after every closure finished (the barrier before the
        collective).  Under that contract the results — state, clocks,
        and counters — are bit-identical to the serial loop.
        """
        contexts = (
            self.contexts
            if ranks is None
            else [self.contexts[r] for r in ranks]
        )
        return self.executor.map(fn, contexts)

    def foreach(self, fn, ranks: Optional[Sequence[int]] = None) -> None:
        """:meth:`map_ranks` for in-place closures (results discarded)."""
        self.map_ranks(fn, ranks=ranks)

    def stage_nic_sharing(self, axis: str) -> int:
        """NIC sharing when all groups of one axis communicate at once.

        In a BSP stage every row (or column) group runs its collective
        concurrently, so a node's NIC is shared by as many *distinct*
        groups as have members on that node: the 6 consecutive ranks of
        an AiMOS node belong to up to 6 different column groups (heavy
        sharing) but usually to a single row group (row groups are
        consecutive ranks).  This is why the paper's Fig. 7 advises
        biasing the reduction direction toward fewer ranks.
        """
        if axis not in ("row", "col"):
            raise ValueError(f"axis must be 'row' or 'col', got {axis!r}")
        return self._stage_sharing[axis]

    def _compute_stage_sharing(self) -> dict[str, int]:
        g = self.cluster.node.gpus_per_node
        R = self.grid.R
        sharing = {"row": 1, "col": 1}
        for node in range(self.topology.n_nodes()):
            members = [
                r for r in range(node * g, min((node + 1) * g, self.n_ranks))
            ]
            sharing["row"] = max(sharing["row"], len({r // R for r in members}))
            sharing["col"] = max(sharing["col"], len({r % R for r in members}))
        return sharing

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    def alloc(self, name: str, dtype=np.float64, fill=0) -> list[np.ndarray]:
        """Allocate a state array on every rank; returns the list."""
        return [ctx.alloc(name, dtype=dtype, fill=fill) for ctx in self.contexts]

    def states(self, name: str) -> list[np.ndarray]:
        return [ctx.get(name) for ctx in self.contexts]

    def free(self, name: str) -> None:
        for ctx in self.contexts:
            ctx.free(name)

    def free_expand_caches(self) -> None:
        """Release every rank's cached full expansion (see
        :meth:`RankContext.free_expand_cache`)."""
        for ctx in self.contexts:
            ctx.free_expand_cache()

    def scatter_global(self, name: str, vec: np.ndarray, dtype=None) -> list[np.ndarray]:
        """Distribute a global per-vertex vector into a named state
        array on every rank (row and column windows filled)."""
        out = []
        for ctx in self.contexts:
            local = self.partition.scatter_global(vec, ctx.rank)
            arr = ctx.alloc(name, dtype=dtype or local.dtype)
            arr[...] = local
            out.append(arr)
        return out

    def gather(self, name: str) -> np.ndarray:
        """Collect a named state into a global original-order vector."""
        return self.partition.gather_row_state(self.states(name))

    # ------------------------------------------------------------------
    # kernel charging
    # ------------------------------------------------------------------
    def schedule_stats(
        self, queue_degrees: np.ndarray, cache_key: Optional[str] = None, rank: int = -1
    ):
        """Run the configured schedule model over a queue's degrees.

        ``cache_key`` memoizes the resulting :class:`ScheduleStats`
        per ``(rank, cache_key)``: dense iterations expand the identical
        full queue every time (PageRank runs 20 identical schedules per
        rank), so callers passing a stable key for a *static* degree
        array skip the recomputation entirely.  The caller guarantees
        the degrees for a given key never change (local degrees are
        fixed by the partition).
        """
        if cache_key is not None:
            key = (rank, cache_key, self.load_balance)
            stats = self._schedule_cache.get(key)
            if stats is not None:
                return stats
        if self.load_balance == "manhattan":
            stats = manhattan_schedule(queue_degrees)
        else:
            stats = vertex_per_thread_balance(queue_degrees)
        if cache_key is not None:
            self._schedule_cache[key] = stats
        return stats

    def charge_edges(
        self,
        rank: int,
        queue_degrees: np.ndarray,
        work_per_edge: float = 1.0,
        extra_vertices: int = 0,
        launches: int = 1,
        cache_key: Optional[str] = None,
    ) -> None:
        """Charge an edge-expansion kernel over a vertex queue.

        The load-balance efficiency comes from the configured schedule
        model (Manhattan collapse vs. naive vertex-per-thread); pass
        ``cache_key`` when the queue is a static full-queue expansion
        (see :meth:`schedule_stats`).
        """
        stats = self.schedule_stats(queue_degrees, cache_key=cache_key, rank=rank)
        t = self.costmodel.kernel_time(
            n_vertices=len(queue_degrees) + extra_vertices,
            n_edges=stats.total_edges,
            work_per_edge=work_per_edge,
            balance=stats.balance,
            launches=launches,
        )
        self.clocks.add_compute(rank, t)

    def charge_vertices(self, rank: int, n_vertices: int, launches: int = 1) -> None:
        """Charge a per-vertex kernel (queue builds, initialization)."""
        t = self.costmodel.kernel_time(
            n_vertices=n_vertices, launches=launches
        )
        self.clocks.add_compute(rank, t)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def reset_timers(self) -> None:
        """Zero all clocks and counters (before a timed run).

        Resets **in place**: ``engine.counters``, ``engine.clocks``,
        and ``engine.comm`` keep their identities, so a
        :class:`~repro.core.trace.TraceRecorder` or any caller holding
        a reference observes the reset instead of silently watching an
        orphaned object.
        """
        self.counters.reset()
        self.clocks.reset()

    def timing_report(self) -> TimingReport:
        snap = self.clocks.snapshot()
        # per-iteration deltas from the cumulative marks
        marks = self.clocks.iteration_marks
        deltas = []
        prev = None
        for m in marks:
            deltas.append(m if prev is None else m - prev)
            prev = m
        return TimingReport(
            total=snap.total,
            compute=snap.compute,
            comm=snap.comm,
            per_iteration=tuple(deltas),
        )

    def memory_report(self) -> dict[int, float]:
        """Peak modeled memory utilization per rank."""
        return {ctx.rank: ctx.device.utilization() for ctx in self.contexts}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine({self.grid}, cluster={self.cluster.name}, "
            f"N={self.graph.n_vertices}, M={self.graph.n_edges})"
        )
