"""Result containers returned by distributed algorithm runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..comm.clocks import PhaseTimes

__all__ = ["TimingReport", "AlgorithmResult"]


@dataclass(frozen=True)
class TimingReport:
    """Virtual-time accounting of one run.

    All values are modeled seconds on the configured machine, reported
    the way the paper reports them: the maximum over all ranks.
    """

    total: float
    compute: float
    comm: float
    per_iteration: tuple[PhaseTimes, ...] = ()
    #: Fault-handling overhead (straggler stalls, retry backoff,
    #: checkpoint drains); exactly 0.0 in fault-free, checkpoint-free
    #: runs.  Not an additional lane — already contained in ``total``.
    recovery: float = 0.0
    #: Elastic-migration overhead (checkpoint gather, re-partition,
    #: scatter onto the surviving grid); exactly 0.0 unless the run
    #: regridded.  Also contained in ``total``.
    regrid: float = 0.0
    #: Communication time *hidden* behind computation by split-phase
    #: collectives; exactly 0.0 in blocking runs.  The inverse of the
    #: recovery/regrid annotations: hidden seconds are contained in
    #: ``comm`` but NOT in ``total`` (``total`` only pays the exposed
    #: remainder, ``comm - overlap``).
    overlap: float = 0.0
    #: Integrity-verification overhead (ledger digest exchanges at
    #: superstep boundaries, end-of-run result certifiers); exactly
    #: 0.0 in runs without an attached ledger or ``certify=``.  Like
    #: recovery/regrid, already contained in ``total``.
    certify: float = 0.0

    @property
    def comm_fraction(self) -> float:
        """Share of total time spent communicating (paper Fig. 5)."""
        return self.comm / self.total if self.total > 0 else 0.0

    @property
    def overlap_fraction(self) -> float:
        """Share of communication time hidden behind computation.

        1.0 would mean every modeled comm second ran concurrently with
        compute; 0.0 is a fully blocking (or comm-free) run.
        """
        return self.overlap / self.comm if self.comm > 0 else 0.0

    @property
    def recovery_fraction(self) -> float:
        """Share of total time spent on fault handling."""
        return self.recovery / self.total if self.total > 0 else 0.0

    @property
    def regrid_fraction(self) -> float:
        """Share of total time spent migrating to a surviving grid."""
        return self.regrid / self.total if self.total > 0 else 0.0

    @property
    def certify_fraction(self) -> float:
        """Share of total time spent verifying state integrity."""
        return self.certify / self.total if self.total > 0 else 0.0

    def teps(self, n_edges: int) -> float:
        """Traversed edges per second for an ``n_edges`` input."""
        return n_edges / self.total if self.total > 0 else float("inf")

    @classmethod
    def from_phase(
        cls, phase: PhaseTimes, per_iteration: tuple[PhaseTimes, ...] = ()
    ) -> "TimingReport":
        return cls(
            total=phase.total,
            compute=phase.compute,
            comm=phase.comm,
            per_iteration=per_iteration,
            overlap=phase.overlap,
        )


@dataclass
class AlgorithmResult:
    """Output of a distributed algorithm.

    Attributes
    ----------
    values:
        Per-vertex result in *original* GID order (parents, ranks,
        labels, ...).  ``None`` for algorithms whose output is a
        structure (e.g. a matching edge list in ``extra``).
    timings:
        Virtual-time report.
    iterations:
        BSP iterations executed.
    counters:
        Communication statistics summary.
    extra:
        Algorithm-specific payload (e.g. matched pairs, modularity).
    """

    values: Optional[np.ndarray]
    timings: TimingReport
    iterations: int
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)
