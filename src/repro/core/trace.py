"""Structured execution traces: per-iteration comm/compute breakdowns.

The paper's Figs. 3 and 5 decompose run time into computation and
communication; finer analyses (which collective kind dominates, how
volume decays over the iteration tail) need per-iteration records.  A
:class:`TraceRecorder` wraps an engine run and reads the clock and
counter snapshots taken at every iteration mark, yielding rows that
are *exact*: summing any counter column over the rows reproduces the
run's :class:`~repro.comm.counters.CommCounters` totals bit-for-bit.
Rows export to CSV (flat columns), JSON (full per-kind structure), or
JSONL (one object per iteration) for plotting or regression tracking.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any

from ..comm.clocks import PhaseTimes
from ..comm.counters import CounterSnapshot

__all__ = ["IterationTrace", "TraceRecorder", "TRACE_SCHEMA"]

#: Version tag stamped into JSON exports so downstream consumers can
#: detect schema changes.
TRACE_SCHEMA = "repro.trace.v1"


@dataclass(frozen=True)
class IterationTrace:
    """One BSP iteration's deltas — measured, not apportioned.

    ``bytes`` / ``serial_messages`` / ``transfers`` are the exact
    counter deltas between this iteration's boundary snapshots;
    ``by_kind`` breaks all four statistics down per collective kind
    and ``calls_by_kind`` is its calls-only view.  Every row owns its
    dicts (no sharing across rows).
    """

    iteration: int
    total_s: float
    compute_s: float
    comm_s: float
    bytes: int
    serial_messages: int
    transfers: int = 0
    #: Comm seconds hidden behind compute by split-phase collectives
    #: this iteration; 0.0 in blocking runs.  Contained in ``comm_s``
    #: but not in ``total_s`` (see docs/MODEL.md).
    overlap_s: float = 0.0
    calls_by_kind: dict[str, int] = field(default_factory=dict)
    by_kind: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Fault events observed during this iteration (plain dicts with
    #: kind / rank / superstep / collective / retries / recovery_s),
    #: empty in fault-free runs.  Beyond injector events this includes
    #: the robustness-layer kinds: ``health`` (watchdog transitions),
    #: ``demote`` / ``grow`` / ``hold`` (autoscaler decisions),
    #: ``regrid`` (elastic migrations), ``checkpoint-skip``
    #: (corrupt on-disk checkpoints passed over during recovery),
    #: ``memflip`` (injected silent in-memory bit flips), and
    #: ``integrity`` (ledger/certifier detections of such corruption).
    #: See ``repro.faults``, ``repro.faults.health``, and
    #: ``repro.faults.integrity``.
    faults: tuple = ()

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (the JSON row shape)."""
        return {
            "iteration": self.iteration,
            "total_s": self.total_s,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "bytes": self.bytes,
            "serial_messages": self.serial_messages,
            "transfers": self.transfers,
            "overlap_s": self.overlap_s,
            "calls_by_kind": dict(self.calls_by_kind),
            "by_kind": {k: dict(v) for k, v in self.by_kind.items()},
            "faults": [dict(f) for f in self.faults],
        }


def _row(
    index: int,
    dt: PhaseTimes,
    dc: CounterSnapshot,
    faults: tuple = (),
) -> IterationTrace:
    return IterationTrace(
        iteration=index,
        total_s=dt.total,
        compute_s=dt.compute,
        comm_s=dt.comm,
        bytes=dc.total_bytes,
        serial_messages=dc.total_serial_messages,
        transfers=dc.total_transfers,
        overlap_s=dt.overlap,
        calls_by_kind=dc.calls_by_kind(),
        by_kind=dc.summary(),
        faults=faults,
    )


class TraceRecorder:
    """Builds exact per-iteration rows from an engine's boundary snapshots.

    Usage::

        rec = TraceRecorder(engine)
        result = algorithms.connected_components(engine)
        rows = rec.collect(result)
        print(rec.to_csv(rows))

    Works with any algorithm that calls ``clocks.mark_iteration()``
    (all of them do): the engine attaches its ``CommCounters`` to its
    ``VirtualClocks``, so every mark snapshots the cumulative counter
    state alongside the clock state.  ``collect`` subtracts consecutive
    snapshots — integer arithmetic on measured values, so rows sum to
    the run totals by construction.  Work before the first mark (e.g.
    degree precomputation) lands in iteration 1; work after the last
    mark, if any, is emitted as one trailing row so nothing is lost.
    """

    def __init__(self, engine: Any):
        self.engine = engine

    def collect(self, result: Any = None, include_tail: bool = True) -> list[IterationTrace]:
        """Build per-iteration rows from the completed run's snapshots.

        ``include_tail=False`` drops any activity recorded after the
        final iteration mark (rows then cover marked iterations only
        and may sum short of the run totals).
        """
        del result  # accepted for call-site symmetry; not needed
        clocks = self.engine.clocks
        marks = clocks.iteration_marks
        cmarks = clocks.counter_marks
        if marks and len(cmarks) != len(marks):
            raise ValueError(
                "clock marks lack counter snapshots: construct VirtualClocks "
                "with counters=... (Engine does this) before the run"
            )
        # Fault events (if the engine ran with an injector attached)
        # group by the superstep they fired in; events beyond the final
        # mark (e.g. a crash in a never-completed iteration) belong to
        # the tail row.
        by_step: dict[int, list[dict]] = {}
        for event in getattr(self.engine, "fault_events", []):
            # Robustness-layer events (health / demote / grow / hold /
            # checkpoint-skip) always carry a superstep, but tolerate
            # hand-built dicts that omit it: attribute them to the
            # pre-first-mark work that lands in iteration 1.
            by_step.setdefault(event.get("superstep", 0), []).append(event)
        rows: list[IterationTrace] = []
        prev_t = PhaseTimes(0.0, 0.0, 0.0)
        prev_c = CounterSnapshot.empty()
        for i, (m, c) in enumerate(zip(marks, cmarks)):
            rows.append(
                _row(i + 1, m - prev_t, c - prev_c,
                     faults=tuple(by_step.get(i + 1, ())))
            )
            prev_t, prev_c = m, c
        if include_tail:
            end_t = clocks.snapshot()
            end_c = (
                clocks.counters.snapshot()
                if clocks.counters is not None
                else prev_c
            )
            dt, dc = end_t - prev_t, end_c - prev_c
            tail_faults = tuple(
                e for step, events in by_step.items()
                if step > len(marks) for e in events
            )
            if dc or dt.total > 0.0 or tail_faults:
                rows.append(_row(len(marks) + 1, dt, dc, faults=tail_faults))
        return rows

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    @staticmethod
    def to_csv(rows: list[IterationTrace]) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(
            ["iteration", "total_s", "compute_s", "comm_s", "overlap_s",
             "bytes", "serial_messages", "transfers", "calls", "faults"]
        )
        for r in rows:
            writer.writerow(
                [r.iteration, f"{r.total_s:.9f}", f"{r.compute_s:.9f}",
                 f"{r.comm_s:.9f}", f"{r.overlap_s:.9f}", r.bytes,
                 r.serial_messages, r.transfers,
                 sum(r.calls_by_kind.values()), len(r.faults)]
            )
        return buf.getvalue()

    @staticmethod
    def to_json(rows: list[IterationTrace], meta: dict[str, Any] | None = None) -> str:
        """Full structured export: schema tag, rows, and exact totals."""
        payload: dict[str, Any] = {"schema": TRACE_SCHEMA}
        if meta:
            payload["meta"] = dict(meta)
        payload["iterations"] = [r.as_dict() for r in rows]
        totals_by_kind: dict[str, dict[str, int]] = {}
        for r in rows:
            for kind, stats in r.by_kind.items():
                agg = totals_by_kind.setdefault(
                    kind,
                    {"calls": 0, "serial_messages": 0, "transfers": 0, "bytes": 0},
                )
                for key, v in stats.items():
                    agg[key] += v
        payload["totals"] = {
            "total_s": sum(r.total_s for r in rows),
            "compute_s": sum(r.compute_s for r in rows),
            "comm_s": sum(r.comm_s for r in rows),
            "overlap_s": sum(r.overlap_s for r in rows),
            "bytes": sum(r.bytes for r in rows),
            "serial_messages": sum(r.serial_messages for r in rows),
            "transfers": sum(r.transfers for r in rows),
            "by_kind": dict(sorted(totals_by_kind.items())),
        }
        return json.dumps(payload, indent=2, sort_keys=False)

    @staticmethod
    def to_jsonl(rows: list[IterationTrace]) -> str:
        """One JSON object per iteration (streaming-friendly)."""
        return "\n".join(json.dumps(r.as_dict()) for r in rows) + ("\n" if rows else "")
