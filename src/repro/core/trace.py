"""Structured execution traces: per-iteration comm/compute breakdowns.

The paper's Figs. 3 and 5 decompose run time into computation and
communication; finer analyses (which collective kind dominates, how
volume decays over the iteration tail) need per-iteration records.  A
:class:`TraceRecorder` wraps an engine run and snapshots clocks and
counters at every iteration mark, yielding rows that export to CSV for
plotting or regression tracking.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any

from ..comm.counters import CommCounters
from .engine import Engine

__all__ = ["IterationTrace", "TraceRecorder"]


@dataclass(frozen=True)
class IterationTrace:
    """One BSP iteration's deltas."""

    iteration: int
    total_s: float
    compute_s: float
    comm_s: float
    bytes: int
    serial_messages: int
    calls_by_kind: dict[str, int] = field(default_factory=dict)


class TraceRecorder:
    """Snapshots an engine's clocks/counters at iteration boundaries.

    Usage::

        rec = TraceRecorder(engine)
        result = algorithms.connected_components(engine)
        rows = rec.collect(result)
        print(rec.to_csv(rows))

    Works with any algorithm that calls ``clocks.mark_iteration()``
    (all of them do); the recorder reconstructs per-iteration deltas
    from the cumulative marks after the run, so it adds no overhead
    and needs no hooks inside the algorithms.
    """

    def __init__(self, engine: Engine):
        self.engine = engine

    def collect(self, result: Any = None) -> list[IterationTrace]:
        """Build per-iteration rows from the completed run's marks.

        Counter deltas are only available in aggregate (counters are
        not snapshotted per mark), so byte/message columns report the
        run totals apportioned by each iteration's comm-time share — a
        faithful approximation for plotting decay curves.
        """
        marks = self.engine.clocks.iteration_marks
        counters: CommCounters = self.engine.counters
        total_comm = max(sum(
            (m.comm - (marks[i - 1].comm if i else 0.0)) for i, m in enumerate(marks)
        ), 1e-30)
        rows: list[IterationTrace] = []
        prev_total = prev_comp = prev_comm = 0.0
        calls = {k: v.calls for k, v in counters.by_kind.items()}
        for i, m in enumerate(marks):
            d_total = m.total - prev_total
            d_comp = m.compute - prev_comp
            d_comm = m.comm - prev_comm
            prev_total, prev_comp, prev_comm = m.total, m.compute, m.comm
            share = d_comm / total_comm
            rows.append(
                IterationTrace(
                    iteration=i + 1,
                    total_s=d_total,
                    compute_s=d_comp,
                    comm_s=d_comm,
                    bytes=int(counters.total_bytes * share),
                    serial_messages=int(counters.total_serial_messages * share),
                    calls_by_kind=calls if i == len(marks) - 1 else {},
                )
            )
        return rows

    @staticmethod
    def to_csv(rows: list[IterationTrace]) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(
            ["iteration", "total_s", "compute_s", "comm_s", "bytes", "serial_messages"]
        )
        for r in rows:
            writer.writerow(
                [r.iteration, f"{r.total_s:.9f}", f"{r.compute_s:.9f}",
                 f"{r.comm_s:.9f}", r.bytes, r.serial_messages]
            )
        return buf.getvalue()
