"""Generic vertex-state programs (the paper's Algorithm 1 as an API).

The paper's thesis is a *generalized* methodology: any iterative
vertex-state computation — "for some number of iterations:
``update(S[v], S[u])`` over the edges" (paper Alg. 1) — runs on the 2D
machinery without algorithm-specific communication code.  This module
makes that claim executable: a :class:`VertexProgram` supplies only

* how state initializes (per vertex),
* how a value travels across one edge (vectorized), and
* the reduction combining arriving values (``min``/``max``),

and :func:`run_vertex_program` drives the full stack — push or pull
kernels, dense/sparse/switching communications, active-vertex queues,
convergence detection — identically to the hand-written algorithms.

Connected components is ``VertexProgram(init=identity, along_edge=
carry, op="min")``; SSSP is ``init=inf-except-root, along_edge=value +
weight, op="min")``; "minimum reachable label within k hops",
widest-path, and similar label-correcting computations follow the same
two lines.  The test suite cross-validates programs against both the
dedicated implementations and the serial references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..kernels import scatter_reduce
from ..patterns.dense import dense_exchange
from ..patterns.sparse import propagate_active_pull, sparse_pull, sparse_push
from ..patterns.switching import SwitchPolicy
from .engine import Engine
from .result import AlgorithmResult

__all__ = ["VertexProgram", "run_vertex_program"]

#: Edge function: (source-side values, edge weights or None) -> values
#: delivered to the other endpoint.  Must be vectorized.
EdgeFn = Callable[[np.ndarray, Optional[np.ndarray]], np.ndarray]


@dataclass
class VertexProgram:
    """Declarative description of an iterative vertex-state algorithm.

    Attributes
    ----------
    name:
        State-array name (also used in reports).
    init:
        Per-vertex initial value as a function of *original* vertex
        ids: ``init(orig_gids) -> values`` (vectorized).
    along_edge:
        How a value transforms crossing one edge (e.g. identity for
        label propagation-style carries, ``value + weight`` for path
        lengths).
    op:
        Reduction combining arriving values with the current state:
        ``"min"`` or ``"max"`` (the monotone label-correcting class).
    direction:
        ``"push"`` (owners push along out-edges) or ``"pull"``.
    mode:
        Communication flavour: ``"dense"``, ``"sparse"``, ``"switch"``.
    use_queue:
        Maintain active-vertex queues between iterations.
    max_iterations:
        Bound; ``None`` runs to convergence.
    """

    name: str
    init: Callable[[np.ndarray], np.ndarray]
    along_edge: EdgeFn
    op: str = "min"
    direction: str = "push"
    mode: str = "switch"
    use_queue: bool = True
    max_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in ("min", "max"):
            raise ValueError(
                f"vertex programs support monotone 'min'/'max', got {self.op!r}"
            )
        if self.direction not in ("push", "pull"):
            raise ValueError(f"bad direction {self.direction!r}")


def run_vertex_program(
    engine: Engine, program: VertexProgram, resume: bool = False, elastic=None
) -> AlgorithmResult:
    """Execute a :class:`VertexProgram` on the 2D engine.

    Returns the converged state in original vertex order.
    ``resume=True`` continues from the engine's latest attached
    checkpoint (see ``docs/ROBUSTNESS.md``); checkpoints are tagged
    ``"program:<name>"`` so different programs never cross-resume.
    ``elastic=`` also survives permanent rank loss by regridding.
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: run_vertex_program(e, program, resume=r),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    algo_tag = f"program:{program.name}"
    all_rows = [ctx.row_lids() for ctx in engine]

    st = engine.resume_from_checkpoint(algo_tag) if resume else None
    if st is None:
        engine.reset_timers()

        # ---- initialize state over the full LID space -----------------
        def init_state(ctx):
            lm = ctx.localmap
            state = ctx.alloc(program.name, np.float64)
            state[lm.row_slice] = program.init(
                part.original_gid(np.arange(lm.row_start, lm.row_stop))
            )
            state[lm.col_slice] = program.init(
                part.original_gid(np.arange(lm.col_start, lm.col_stop))
            )
            engine.charge_vertices(ctx.rank, ctx.n_total)

        engine.foreach(init_state)

        policy = SwitchPolicy(part.n_vertices, grid, mode=program.mode)
        active = list(all_rows)
        iteration = 0
        done = False
    else:
        policy = st["policy"]
        active = st["active"]
        iteration = st["iteration"]
        done = st["done"]

    while not done:
        iteration += 1
        rows_per_rank = active if program.use_queue else all_rows
        sparse_now = policy.use_sparse
        if not sparse_now:
            prev = {
                id_r: engine.ctx(ranks[0]).get(program.name)[
                    engine.ctx(ranks[0]).row_slice
                ].copy()
                for id_r, ranks in engine.row_groups()
            }

        # ---- local compute --------------------------------------------
        def local_compute(ctx):
            state = ctx.get(program.name)
            rows = rows_per_rank[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs)
            src, dst, w = ctx.expand(rows)
            if src.size == 0:
                return np.empty(0, dtype=np.int64)
            if program.direction == "push":
                cand = program.along_edge(state[src], w)
                targets = dst
            else:
                cand = program.along_edge(state[dst], w)
                targets = src
            return scatter_reduce(state, targets, cand, program.op)

        queues = engine.map_ranks(local_compute)

        # ---- exchange --------------------------------------------------
        if sparse_now:
            exchange = sparse_push if program.direction == "push" else sparse_pull
            result = exchange(engine, program.name, queues, op=program.op)
            n_updated = result.n_updated
            if program.use_queue:
                if program.direction == "push":
                    active = result.active_row
                else:
                    active = propagate_active_pull(engine, result.active_row)
        else:
            dense_exchange(engine, program.name, program.direction, op=program.op)
            n_updated = 0
            changed_rows: dict[int, np.ndarray] = {}
            for id_r, ranks in engine.row_groups():
                ctx0 = engine.ctx(ranks[0])
                now = ctx0.get(program.name)[ctx0.row_slice]
                diff = np.flatnonzero(now != prev[id_r])
                n_updated += int(diff.size)
                changed_rows[id_r] = diff
            flags = [np.array([float(n_updated)]) for _ in range(grid.n_ranks)]
            engine.comm.allreduce(list(range(grid.n_ranks)), flags, op="max")
            if program.use_queue:
                updated = [
                    engine.ctx(r).localmap.row_offset
                    + changed_rows[engine.ctx(r).block.id_r]
                    for r in range(grid.n_ranks)
                ]
                if program.direction == "push":
                    active = updated
                else:
                    active = propagate_active_pull(engine, updated)

        policy.observe(n_updated)
        done = n_updated == 0 or (
            program.max_iterations is not None
            and iteration >= program.max_iterations
        )
        engine.superstep_boundary(
            algo_tag,
            {
                "policy": policy,
                "active": active,
                "iteration": iteration,
                "done": done,
            },
        )

    values = engine.gather(program.name)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iteration,
        counters=engine.counters.summary(),
        extra={"program": program.name},
    )
