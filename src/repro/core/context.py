"""Per-rank execution context.

A :class:`RankContext` bundles everything one simulated GPU rank owns:
its graph block, its virtual device (memory ledger), and its named
state arrays.  Algorithms allocate state through the context so every
array is charged against device memory — which is how the simulator
reproduces the paper's out-of-memory results at full-scale footprints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.device import VirtualGPU
from ..graph.partition.twod import RankBlock
from ..kernels.buffers import BufferPool
from ..queueing.frontier import expand_block

__all__ = ["RankContext"]


class RankContext:
    """One rank's local world."""

    def __init__(self, block: RankBlock, device: VirtualGPU):
        self.block = block
        self.device = device
        self.arrays: dict[str, np.ndarray] = {}
        self._local_degrees: Optional[np.ndarray] = None
        self._expand_all_cache = None
        self._scratch_pools: dict[np.dtype, BufferPool] = {}
        # Charge the static graph structure, as the paper's loader does
        # when moving the CSR to the GPU.
        device.charge("graph.indptr", block.indptr.nbytes)
        device.charge("graph.indices", block.indices.nbytes)
        if block.weights is not None:
            device.charge("graph.weights", block.weights.nbytes)

    # ------------------------------------------------------------------
    # identity / geometry shortcuts
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.block.rank

    @property
    def localmap(self):
        return self.block.localmap

    @property
    def n_total(self) -> int:
        return self.block.n_total

    @property
    def row_slice(self) -> slice:
        return self.block.localmap.row_slice

    @property
    def col_slice(self) -> slice:
        return self.block.localmap.col_slice

    def local_degrees(self) -> np.ndarray:
        """Local degree of each row vertex (cached)."""
        if self._local_degrees is None:
            self._local_degrees = self.block.local_row_degrees()
        return self._local_degrees

    def scratch_pool(self, dtype) -> BufferPool:
        """This rank's :class:`BufferPool` for ``dtype`` scratch buffers.

        Per-rank pools keep buffer recycling race-free under the
        threaded rank executor: during the parallel build phase each
        rank's closure takes only from its own pool, and buffers are
        given back in the sequential collective phase — the pool never
        sees concurrent calls.
        """
        dt = np.dtype(dtype)
        pool = self._scratch_pools.get(dt)
        if pool is None:
            pool = self._scratch_pools[dt] = BufferPool(dt)
        return pool

    # ------------------------------------------------------------------
    # state arrays
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        dtype=np.float64,
        fill=0,
        length: Optional[int] = None,
        width: Optional[int] = None,
    ) -> np.ndarray:
        """Allocate (or re-initialize) a named state array.

        By default the array spans the rank's full LID space
        ``[0, N_T)``, the layout all communication patterns assume.
        ``width=k`` allocates a C-contiguous ``(length, k)`` lane array
        instead — the layout the batched multi-source algorithms use,
        where each column is one query lane.
        """
        n = self.n_total if length is None else int(length)
        shape: tuple[int, ...] = (n,) if width is None else (n, int(width))
        if name in self.arrays and self.arrays[name].shape == shape and (
            self.arrays[name].dtype == np.dtype(dtype)
        ):
            arr = self.arrays[name]
            arr[...] = fill
            return arr
        if name in self.arrays:
            self.free(name)
        arr = np.full(shape, fill, dtype=dtype)
        self.device.charge(f"state.{name}", arr.nbytes)
        self.arrays[name] = arr
        return arr

    def adopt(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Register an externally-owned array as a named state.

        Used for pooled scratch (e.g. lane-subset pack buffers from
        :meth:`scratch_pool`) that must be visible to the communication
        patterns under a state name for a few supersteps.  The array is
        charged against the device ledger like any allocation; call
        :meth:`free` to unregister it (the memory itself stays with the
        caller, who returns it to its pool).
        """
        if name in self.arrays:
            self.free(name)
        self.device.charge(f"state.{name}", arr.nbytes)
        self.arrays[name] = arr
        return arr

    def get(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no state array {name!r}; "
                f"allocated: {sorted(self.arrays)}"
            ) from None

    def free(self, name: str) -> None:
        if name in self.arrays:
            del self.arrays[name]
            self.device.release(f"state.{name}")

    def has(self, name: str) -> bool:
        return name in self.arrays

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def row_lids(self) -> np.ndarray:
        return self.block.row_lids()

    def col_lids(self) -> np.ndarray:
        return self.block.col_lids()

    def expand(self, row_lids: np.ndarray):
        """Expand row vertices into (src_lid, dst_lid, weight) edges."""
        return expand_block(self.block, row_lids)

    def expand_all(self):
        """Expand every local edge (dense iteration; cached — the CSR
        is static, so the expansion is, too).

        The cached ``(src, dst, weights)`` arrays are real per-rank
        footprint (two-to-three edge-length columns), so they are
        charged against the device ledger like any state array; call
        :meth:`free_expand_cache` to release them under memory
        pressure.
        """
        if self._expand_all_cache is None:
            src, dst, weights = expand_block(self.block, self.row_lids())
            nbytes = src.nbytes + dst.nbytes
            if weights is not None:
                nbytes += weights.nbytes
            self.device.charge("cache.expand_all", nbytes)
            self._expand_all_cache = (src, dst, weights)
        return self._expand_all_cache

    def free_expand_cache(self) -> None:
        """Drop the cached full expansion and release its ledger charge."""
        if self._expand_all_cache is not None:
            self._expand_all_cache = None
            self.device.release("cache.expand_all")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RankContext(rank={self.rank}, N_T={self.n_total}, "
            f"edges={self.block.n_local_edges})"
        )
