"""Engine, per-rank contexts, and result containers."""

from .context import RankContext
from .engine import Engine
from .program import VertexProgram, run_vertex_program
from .result import AlgorithmResult, TimingReport
from .trace import IterationTrace, TraceRecorder

__all__ = [
    "RankContext",
    "Engine",
    "VertexProgram",
    "run_vertex_program",
    "AlgorithmResult",
    "TimingReport",
    "IterationTrace",
    "TraceRecorder",
]
