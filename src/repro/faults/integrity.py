"""Silent-data-corruption defense: ledger, certifiers, repair.

The communication path already checks itself (CRC32 + retry in
:class:`~repro.faults.resilient.ResilientCommunicator`) and rank-level
failures are loud (crash/straggler -> checkpoint restore or elastic
regrid).  What neither catches is *compute-side* silent data
corruption: a bit flipping in a rank's device-resident state array
between collectives propagates into a confidently wrong answer.  This
module closes that gap with three cooperating layers:

Injection
    :func:`apply_memflip` executes a ``FaultSpec(kind="memflip")``:
    it flips bits inside the target rank's *owned windows* — the
    row-window and column-window slices of every registered state
    array, concatenated in sorted-name order — at a superstep
    boundary.  Flips land in replicated state by construction, which
    is exactly the state the run's correctness depends on.

Detection
    :class:`IntegrityLedger` exploits the 2D decomposition's inherent
    redundancy: after every exchange, all ranks of a row group hold
    identical row-window values and all ranks of a column group hold
    identical column-window values.  At (interval-matching) superstep
    boundaries each rank hashes its windows (CRC32, modeled at
    ``hash_bw``); the digests are exchanged (one small collective,
    modeled at ``exchange_bw``) and compared per group.  Any
    single-rank corruption of a replicated window breaks agreement —
    CRC32 is linear, so two buffers differing in >= 1 bit (and fewer
    than 2^32) can never collide with themselves shifted by that
    difference pattern's CRC being zero for a single bit.  The ledger
    keeps a rolling history of verified boundaries; the *suspect
    window* after a mismatch is everything since the last verified
    boundary.  Verification time is charged to the ``certify`` clock
    lane.

    Per-algorithm *certifiers* (:func:`certify_bfs`,
    :func:`certify_sssp`, :func:`certify_cc`,
    :func:`certify_pagerank`) are the semantic second layer: one
    modeled cross-rank exchange of the final values, then a global
    invariant check (parent-edge existence, relaxation slack,
    cut-edge label agreement, mass conservation).  They catch what a
    hash cannot *localize* — a wrong answer that is internally
    consistent across replicas (e.g. corruption that propagated
    through a reduction before the next verification) — and they run
    after repair as the end-to-end seal.

Repair
    On group disagreement the ledger localizes the culprit (the
    intersection of mismatching row and column groups), records a
    structured ``integrity`` event, and raises
    :class:`IntegrityViolation` — a :class:`RankFailure` subclass, so
    every existing recovery path treats detected corruption like a
    crash at a boundary: restore the last checkpoint and recompute
    the suspect window.  Because the ledger verifies at every
    boundary where a checkpoint is due, **saved checkpoints are always
    verified-good** — rollback never resurrects corrupt state.  A
    repair budget bounds the loop; exhausting it (or having no
    checkpoint to roll back to) raises :class:`IntegrityFailure`.
    Since memflip specs are one-shot, the recompute is clean, and
    restore rewinds clocks/counters exactly, a repaired run is
    **bit-identical** to a fault-free run.

Limitations (documented, not hidden): window replication requires a
grid with ``R >= 2`` *and* ``C >= 2`` — on a 1xC or Rx1 grid one axis
has single-member groups and corruption there is only caught by the
certifiers.  With ``interval > 1`` corruption can propagate through a
reduction before the next verification, after which all replicas
agree on the wrong value; the ledger then stays silent and only a
certifier can flag the run.  The SDC campaign therefore verifies at
every boundary.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .injector import RankFailure

__all__ = [
    "IntegrityLedger",
    "IntegrityViolation",
    "IntegrityFailure",
    "CertificationReport",
    "apply_memflip",
    "certify_bfs",
    "certify_sssp",
    "certify_cc",
    "certify_pagerank",
]

#: Modeled fixed cost of one digest/certificate exchange (seconds).
CERTIFY_LATENCY_S = 2e-5
#: Modeled device hash throughput (CRC over resident state), bytes/s.
CERTIFY_HASH_BW = 50e9
#: Modeled network throughput for digest/value exchanges, bytes/s.
CERTIFY_EXCHANGE_BW = 12.5e9


class IntegrityViolation(RankFailure):
    """The ledger caught state corruption at a superstep boundary.

    A :class:`~repro.faults.injector.RankFailure` subclass raised
    *before* the boundary's checkpoint is saved, so the latest
    checkpoint predates the damage and the standard recovery path
    (restore + recompute) repairs the run.  ``suspects`` lists the
    candidate ranks (singleton when localization succeeded) and
    ``window`` the ``(first, last)`` supersteps that must recompute.
    """

    def __init__(
        self,
        rank: Optional[int],
        superstep: int,
        suspects: tuple[int, ...] = (),
        window: tuple[int, int] = (0, 0),
    ):
        super().__init__(
            rank,
            superstep,
            collective="boundary",
            fault_kind="integrity",
        )
        self.suspects = suspects
        self.window = window


class IntegrityFailure(RuntimeError):
    """Corruption detected but not repairable.

    Raised when the repair budget is exhausted, when there is no
    verified checkpoint to roll back to, or by a certifier whose
    end-of-run invariant check failed (certifiers cannot repair:
    by result time every checkpoint may postdate the damage).
    Certifier failures carry the failing
    :class:`CertificationReport` as ``report``.
    """

    def __init__(
        self, message: str, report: Optional["CertificationReport"] = None
    ):
        super().__init__(message)
        self.report = report


# ----------------------------------------------------------------------
# injection
# ----------------------------------------------------------------------
def _owned_segments(ctx) -> list[np.ndarray]:
    """The rank's replicated windows: row- and column-window slices of
    every registered state array, in sorted-name order.  First-axis
    slices of C-contiguous arrays, hence contiguous views — both the
    flip and the hash operate on them byte-wise."""
    segments = []
    for name in sorted(ctx.arrays):
        arr = ctx.arrays[name]
        segments.append(arr[ctx.row_slice])
        segments.append(arr[ctx.col_slice])
    return segments


def apply_memflip(ctx, spec) -> int:
    """Flip ``spec.count`` consecutive bits (starting at ``spec.bit``,
    wrapped) in ``ctx``'s owned state windows; returns bits flipped.

    The bit index addresses the concatenated byte stream of the
    rank's row-window and column-window segments (sorted array-name
    order) — corruption lands in replicated state, which is what the
    :class:`IntegrityLedger` covers.  Zero registered state means
    nothing to flip (returns 0).
    """
    segments = _owned_segments(ctx)
    total_bits = sum(s.nbytes for s in segments) * 8
    if total_bits == 0:
        return 0
    flipped = 0
    for k in range(spec.count):
        bit = (spec.bit + k) % total_bits
        for seg in segments:
            nbits = seg.nbytes * 8
            if bit < nbits:
                flat = seg.view(np.uint8).reshape(-1)
                flat[bit // 8] ^= np.uint8(1 << (bit % 8))
                flipped += 1
                break
            bit -= nbits
    return flipped


# ----------------------------------------------------------------------
# detection: the ledger
# ----------------------------------------------------------------------
@dataclass
class LedgerRow:
    """One verified superstep boundary."""

    superstep: int
    ok: bool
    #: CRC32 over all per-rank digests — a run fingerprint.
    fingerprint: int
    suspects: tuple[int, ...] = ()


class IntegrityLedger:
    """Rolling state-integrity ledger over superstep boundaries.

    Attach with ``engine.attach_integrity(ledger)``; the engine calls
    :meth:`on_boundary` from ``superstep_boundary`` after planned
    memflips land and *before* the boundary's checkpoint is saved, so
    every checkpoint the run keeps is verified-good.

    Parameters
    ----------
    interval:
        Verify every ``interval``-th boundary.  Regardless of the
        interval, any boundary about to save a checkpoint is verified
        (checkpoint soundness).  ``interval > 1`` trades detection
        lag for hash cost — see the module docstring for why lag can
        turn detectable corruption into certifier-only corruption.
    repair_budget:
        Detected violations beyond this count raise
        :class:`IntegrityFailure` instead of
        :class:`IntegrityViolation` (a persistently flipping device
        should be demoted, not endlessly repaired).
    latency_s / hash_bw / exchange_bw:
        Cost model of one verification: ``latency_s +
        max_rank_window_bytes / hash_bw + digest_bytes /
        exchange_bw`` charged to every rank's ``certify`` lane
        (group-synchronizing, like all collectives).
    """

    def __init__(
        self,
        interval: int = 1,
        repair_budget: int = 2,
        latency_s: float = CERTIFY_LATENCY_S,
        hash_bw: float = CERTIFY_HASH_BW,
        exchange_bw: float = CERTIFY_EXCHANGE_BW,
    ):
        if interval < 1:
            raise ValueError(f"interval: must be >= 1, got {interval}")
        if repair_budget < 0:
            raise ValueError(
                f"repair_budget: must be >= 0, got {repair_budget}"
            )
        self.interval = interval
        self.repair_budget = repair_budget
        self.latency_s = latency_s
        self.hash_bw = hash_bw
        self.exchange_bw = exchange_bw
        self.rows: list[LedgerRow] = []
        self.repairs = 0
        self._last_good = 0

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Fresh run (``Engine.reset_timers``): clear history and
        budget consumption."""
        self.rows.clear()
        self.repairs = 0
        self._last_good = 0

    def rewind(self, superstep: int) -> None:
        """Restore rewound the run to ``superstep``
        (``Engine.restore``): drop ledger rows from the abandoned
        attempt.  ``repairs`` deliberately survives — the budget is
        per run, not per attempt."""
        self.rows = [r for r in self.rows if r.superstep <= superstep]
        self._last_good = min(self._last_good, superstep)

    @property
    def last_good(self) -> int:
        """Most recent superstep that verified clean (0 = none yet)."""
        return self._last_good

    # -- verification ---------------------------------------------------
    def on_boundary(self, engine, superstep: int, checkpoint_due: bool = False):
        """Verify state integrity at a superstep boundary.

        Called by the engine; verifies when the interval matches *or*
        a checkpoint is about to be saved.  Charges the modeled
        verification cost, appends a ledger row, and on group
        disagreement records an ``integrity`` event and raises.
        """
        if superstep % self.interval != 0 and not checkpoint_due:
            return None
        digests, hashed_bytes = self._collect_digests(engine)
        self._charge(engine, hashed_bytes, len(digests))
        suspects = self._disagreements(engine, digests)
        fingerprint = zlib.crc32(
            b"".join(
                d.to_bytes(4, "little")
                for rank_digests in digests
                for pair in sorted(rank_digests.items())
                for d in pair[1]
            )
        )
        row = LedgerRow(
            superstep=superstep,
            ok=not suspects,
            fingerprint=fingerprint,
            suspects=tuple(sorted(suspects)),
        )
        self.rows.append(row)
        if not suspects:
            self._last_good = superstep
            return row
        # Disagreement: localize, record, and hand off to recovery.
        window = (self._last_good + 1, superstep)
        self.repairs += 1
        rank = suspects[0] if len(suspects) == 1 else None
        engine.record_event(
            {
                "kind": "integrity",
                "rank": rank,
                "superstep": superstep,
                "collective": "boundary",
                "retries": 0,
                "recovery_s": 0.0,
                "detected": True,
                "fatal": self.repairs > self.repair_budget,
                "suspects": [int(s) for s in suspects],
                "window": [int(window[0]), int(window[1])],
                "repairs": self.repairs,
            }
        )
        if self.repairs > self.repair_budget:
            raise IntegrityFailure(
                f"integrity repair budget exhausted: violation "
                f"{self.repairs} at superstep {superstep} exceeds "
                f"budget {self.repair_budget} (suspect ranks "
                f"{sorted(suspects)})"
            )
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            raise IntegrityFailure(
                f"state corruption detected at superstep {superstep} "
                f"(suspect ranks {sorted(suspects)}) but no verified "
                f"checkpoint exists to roll back to"
            )
        raise IntegrityViolation(
            rank, superstep, suspects=row.suspects, window=window
        )

    # -- internals ------------------------------------------------------
    def _collect_digests(self, engine):
        """Per-rank CRC32 of each state array's row/col windows.

        Runs on the engine's executor; the closure touches only its
        own rank's arrays and charges nothing (the modeled cost is
        applied once, globally), so results are bit-identical across
        executors.
        """

        def rank_digests(ctx):
            out = {}
            nbytes = 0
            for name in sorted(ctx.arrays):
                arr = ctx.arrays[name]
                row = arr[ctx.row_slice]
                col = arr[ctx.col_slice]
                nbytes += row.nbytes + col.nbytes
                out[name] = (
                    zlib.crc32(row.tobytes()),
                    zlib.crc32(col.tobytes()),
                )
            return out, nbytes

        results = engine.map_ranks(rank_digests)
        digests = [r[0] for r in results]
        hashed_bytes = max((r[1] for r in results), default=0)
        return digests, hashed_bytes

    def _charge(self, engine, hashed_bytes: int, n_ranks: int) -> None:
        # Hashing is bandwidth-bound on the slowest (largest-window)
        # rank; the digest exchange is an allgather of one small table
        # per rank (modeled as 8 bytes of CRC words per rank).
        seconds = (
            self.latency_s
            + hashed_bytes / self.hash_bw
            + (8.0 * max(1, n_ranks)) / self.exchange_bw
        )
        engine.clocks.charge_certify(range(engine.n_ranks), seconds)

    def _disagreements(self, engine, digests) -> list[int]:
        """Ranks whose window digests disagree with their groups.

        For every (array, axis, group) the member digests must be
        identical.  Within a group the minority digest marks the
        suspects (on a 2-member tie, both members).  The returned set
        is the intersection of row-axis and column-axis suspects when
        both axes fired (a single corrupt rank sits in exactly one
        row group and one column group), else the union.
        """
        row_suspects: set[int] = set()
        col_suspects: set[int] = set()
        for axis, groups, bucket in (
            (0, engine.row_groups(), row_suspects),
            (1, engine.col_groups(), col_suspects),
        ):
            for _gid, ranks in groups:
                if len(ranks) < 2:
                    continue
                names = set()
                for r in ranks:
                    names.update(digests[r])
                for name in names:
                    votes: dict[int, list[int]] = {}
                    for r in ranks:
                        if name not in digests[r]:
                            continue
                        votes.setdefault(digests[r][name][axis], []).append(r)
                    if len(votes) <= 1:
                        continue
                    majority = max(len(v) for v in votes.values())
                    minority = [
                        r
                        for members in votes.values()
                        if len(members) < majority
                        for r in members
                    ]
                    bucket.update(minority if minority else ranks)
        if row_suspects and col_suspects:
            both = row_suspects & col_suspects
            return sorted(both if both else row_suspects | col_suspects)
        return sorted(row_suspects | col_suspects)


# ----------------------------------------------------------------------
# certifiers
# ----------------------------------------------------------------------
@dataclass
class CertificationReport:
    """Outcome of one end-of-run result certification."""

    algo: str
    ok: bool
    checks: dict[str, bool] = field(default_factory=dict)
    detail: str = ""
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "algo": self.algo,
            "ok": self.ok,
            "checks": dict(self.checks),
            "detail": self.detail,
            "seconds": self.seconds,
        }


def _charge_certifier(engine, nbytes: int) -> float:
    """Model one cross-rank exchange of the certified values and
    charge it to every rank's ``certify`` lane."""
    seconds = CERTIFY_LATENCY_S + nbytes / CERTIFY_EXCHANGE_BW
    engine.clocks.charge_certify(range(engine.n_ranks), seconds)
    return seconds


def _seal(algo: str, checks: dict[str, bool], detail: str, seconds: float):
    report = CertificationReport(
        algo=algo,
        ok=all(checks.values()),
        checks=checks,
        detail=detail,
        seconds=seconds,
    )
    if not report.ok:
        failing = ", ".join(k for k, v in checks.items() if not v)
        raise IntegrityFailure(
            f"{algo} certification failed: {failing}"
            + (f" ({detail})" if detail else ""),
            report=report,
        )
    return report


def _edge_endpoints(graph):
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees())
    return src, graph.indices.astype(np.int64)


def certify_bfs(engine, parents, levels, root) -> CertificationReport:
    """Certify a BFS result: parent-edge existence + level consistency.

    Invariants (original GID space, ``-1`` = unreachable):

    * the root is its own parent at level 0;
    * a vertex is reached iff it has a level;
    * every reached non-root vertex's parent is an actual neighbor;
    * ``level[v] == level[parent[v]] + 1`` for reached non-root ``v``.
    """
    g = engine.graph
    seconds = _charge_certifier(engine, parents.nbytes + levels.nbytes)
    parents = np.asarray(parents)
    levels = np.asarray(levels)
    reached = parents >= 0
    src, dst = _edge_endpoints(g)
    has_parent_edge = np.zeros(g.n_vertices, dtype=bool)
    sel = parents[src] == dst
    has_parent_edge[src[sel]] = True
    non_root = reached.copy()
    non_root[root] = False
    level_ok = levels[non_root] == levels[parents[non_root]] + 1
    checks = {
        "root": bool(parents[root] == root and levels[root] == 0),
        "reach-consistent": bool(np.array_equal(reached, levels >= 0)),
        "parent-edge": bool(np.all(has_parent_edge[non_root])),
        "level-consistent": bool(np.all(level_ok)),
    }
    bad = int(np.count_nonzero(~has_parent_edge[non_root])) + int(
        np.count_nonzero(~level_ok)
    )
    detail = f"{bad} violating vertices" if bad else ""
    return _seal("bfs", checks, detail, seconds)


def certify_sssp(engine, dist, root) -> CertificationReport:
    """Certify an SSSP result: relaxation slack >= 0 on every edge.

    At a fixed point of min-relaxation, ``dist[v] <= dist[u] + w``
    holds for every edge ``(u, v, w)`` with finite ``dist[u]`` — the
    run computed ``dist[v]`` as a minimum over exactly these
    candidates, in the same floating-point operations, so the check
    is exact (no epsilon).
    """
    g = engine.graph
    if not g.is_weighted:
        raise ValueError("certify_sssp needs a weighted graph")
    seconds = _charge_certifier(engine, dist.nbytes)
    dist = np.asarray(dist)
    src, dst = _edge_endpoints(g)
    du = dist[src]
    finite = np.isfinite(du)
    slack = du[finite] + g.weights[finite] - dist[dst[finite]]
    checks = {
        "root": bool(dist[root] == 0.0),
        "slack": bool(np.all(slack >= 0.0)),
    }
    n_bad = int(np.count_nonzero(slack < 0.0))
    detail = f"{n_bad} over-tight edges" if n_bad else ""
    return _seal("sssp", checks, detail, seconds)


def certify_cc(engine, labels) -> CertificationReport:
    """Certify a connected-components result: label agreement across
    every edge (cut edges included — the gathered vector spans all
    partitions) plus canonical min-labeling."""
    g = engine.graph
    seconds = _charge_certifier(engine, labels.nbytes)
    labels = np.asarray(labels)
    src, dst = _edge_endpoints(g)
    agree = labels[src] == labels[dst]
    checks = {
        "edge-agreement": bool(np.all(agree)),
        "canonical": bool(
            np.all(labels <= np.arange(g.n_vertices))
            and np.all(labels[labels] == labels)
        ),
    }
    n_bad = int(np.count_nonzero(~agree))
    detail = f"{n_bad} disagreeing edges" if n_bad else ""
    return _seal("cc", checks, detail, seconds)


def certify_pagerank(
    engine,
    pr,
    damping: float = 0.85,
    personalization=None,
    mass_tol: float = 1e-9,
    resid_tol: Optional[float] = 1e-2,
) -> CertificationReport:
    """Certify a PageRank result: mass conservation + residual bound.

    * **mass**: teleport + damped propagation conserve probability
      mass, so ``sum(pr) == 1`` up to float accumulation noise
      (``mass_tol``).
    * **non-negative**: ranks are probabilities.
    * **residual**: one more power-iteration step (same formula the
      run used: symmetric pull + dangling reinjection) must move the
      vector by at most ``resid_tol`` in max-norm.  A loose bound —
      the run may stop before convergence — but a flipped exponent
      or sign shifts the residual by orders of magnitude.
      ``resid_tol=None`` skips the check (weighted runs, whose
      spread the uniform model does not describe).
    """
    g = engine.graph
    seconds = _charge_certifier(engine, pr.nbytes)
    pr = np.asarray(pr, dtype=np.float64)
    n = g.n_vertices
    if personalization is not None:
        tele = np.asarray(personalization, dtype=np.float64)
        tele = tele / tele.sum()
    else:
        tele = np.full(n, 1.0 / n)
    deg = g.degrees().astype(np.float64)
    contrib = np.divide(pr, deg, out=np.zeros_like(pr), where=deg > 0)
    acc = np.zeros(n)
    src, dst = _edge_endpoints(g)
    np.add.at(acc, src, contrib[dst])
    dangling = float(pr[deg == 0].sum())
    expected = (1.0 - damping) * tele + damping * (acc + dangling * tele)
    residual = float(np.abs(pr - expected).max(initial=0.0))
    mass_err = abs(float(pr.sum()) - 1.0)
    checks = {
        "mass": bool(mass_err <= mass_tol),
        "non-negative": bool(np.all(pr >= 0.0)),
    }
    if resid_tol is not None:
        checks["residual"] = bool(residual <= resid_tol)
    detail = f"mass_err={mass_err:.3e} residual={residual:.3e}"
    return _seal("pagerank", checks, detail, seconds)
