"""Fault injection, resilient collectives, and checkpoint/recovery.

The robustness layer of the simulator (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.faults.plan` — deterministic, seed-driven fault plans
  (crash / transient / corruption / straggler specs) and the
  :class:`FaultEvent` records runs emit;
* :mod:`repro.faults.injector` — the plan-executing state machine and
  the structured :class:`RankFailure` exception;
* :mod:`repro.faults.resilient` — :class:`ResilientCommunicator`, a
  drop-in decorator over the collectives layer adding checksum
  detection, backoff retries, and failure escalation;
* :mod:`repro.faults.checkpoint` — superstep checkpoints (in-memory
  and on-disk) that make crashed runs resumable bit-identically;
* :mod:`repro.faults.scenarios` — the named scenario campaign behind
  ``python -m repro faults``.
"""

from .checkpoint import CHECKPOINT_SCHEMA, Checkpoint, CheckpointManager
from .injector import FaultInjector, RankFailure
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultSpec
from .resilient import ResilientCommunicator
from .scenarios import RUNNERS, SCENARIOS, CaseResult, run_campaign, run_case

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointManager",
    "FaultInjector",
    "RankFailure",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "ResilientCommunicator",
    "RUNNERS",
    "SCENARIOS",
    "CaseResult",
    "run_campaign",
    "run_case",
]
