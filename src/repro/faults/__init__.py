"""Fault injection, resilient collectives, and checkpoint/recovery.

The robustness layer of the simulator (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.faults.plan` — deterministic, seed-driven fault plans
  (crash / transient / corruption / straggler specs) and the
  :class:`FaultEvent` records runs emit;
* :mod:`repro.faults.injector` — the plan-executing state machine and
  the structured :class:`RankFailure` exception;
* :mod:`repro.faults.resilient` — :class:`ResilientCommunicator`, a
  drop-in decorator over the collectives layer adding checksum
  detection, backoff retries, and failure escalation;
* :mod:`repro.faults.checkpoint` — superstep checkpoints (in-memory
  and on-disk, sha256-integrity-checked) that make crashed runs
  resumable bit-identically;
* :mod:`repro.faults.elastic` — degraded-mode recovery from
  *permanent* rank loss: migrate the latest checkpoint onto a smaller
  surviving grid (or a hot spare) and resume;
* :mod:`repro.faults.health` — the rank-health watchdog
  (:class:`HealthMonitor`), chronic-straggler demotion
  (:class:`DemotionPolicy`), and the grow-back autoscaler
  (:class:`AutoscalePolicy` / :class:`AutoscaleRecovery`) that close
  the elastic loop in both directions;
* :mod:`repro.faults.integrity` — silent-data-corruption defense:
  the replicated-window :class:`IntegrityLedger`, per-algorithm
  result certifiers, and checkpoint-rollback repair of detected
  corruption (``memflip`` faults);
* :mod:`repro.faults.scenarios` — the named scenario campaigns behind
  ``python -m repro faults`` (``--elastic``, ``--autoscale``,
  ``--sdc``).
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointCorruption,
    CheckpointManager,
)
from .elastic import (
    CheckpointLayout,
    ElasticRecovery,
    ElasticUnrecoverable,
    GridPolicy,
    KeepRows,
    PreferSquare,
    SparePool,
    drive_elastic,
    gather_checkpoint_state,
    migrate_checkpoint,
    resolve_policy,
)
from .health import (
    RANK_HEALTH,
    AutoscalePolicy,
    AutoscaleRecovery,
    DemotionPolicy,
    HealthMonitor,
)
from .injector import FaultInjector, RankDemotion, RankFailure, SpareArrival
from .integrity import (
    CertificationReport,
    IntegrityFailure,
    IntegrityLedger,
    IntegrityViolation,
    apply_memflip,
    certify_bfs,
    certify_cc,
    certify_pagerank,
    certify_sssp,
)
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultSpec
from .resilient import ResilientCommunicator
from .scenarios import (
    AUTOSCALE_SCENARIOS,
    SDC_RUNNERS,
    SDC_SCENARIOS,
    SdcCaseResult,
    run_sdc_campaign,
    run_sdc_case,
    ELASTIC_RUNNERS,
    ELASTIC_SCENARIOS,
    RUNNERS,
    SCENARIOS,
    AutoscaleCaseResult,
    CaseResult,
    ElasticCaseResult,
    run_autoscale_campaign,
    run_autoscale_case,
    run_campaign,
    run_case,
    run_elastic_campaign,
    run_elastic_case,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointCorruption",
    "CheckpointManager",
    "CheckpointLayout",
    "ElasticRecovery",
    "ElasticUnrecoverable",
    "GridPolicy",
    "KeepRows",
    "PreferSquare",
    "SparePool",
    "drive_elastic",
    "gather_checkpoint_state",
    "migrate_checkpoint",
    "resolve_policy",
    "FaultInjector",
    "RankFailure",
    "RankDemotion",
    "SpareArrival",
    "RANK_HEALTH",
    "HealthMonitor",
    "DemotionPolicy",
    "AutoscalePolicy",
    "AutoscaleRecovery",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "ResilientCommunicator",
    "RUNNERS",
    "SCENARIOS",
    "ELASTIC_RUNNERS",
    "ELASTIC_SCENARIOS",
    "AUTOSCALE_SCENARIOS",
    "CaseResult",
    "ElasticCaseResult",
    "AutoscaleCaseResult",
    "run_campaign",
    "run_case",
    "run_elastic_campaign",
    "run_elastic_case",
    "run_autoscale_campaign",
    "run_autoscale_case",
    "IntegrityLedger",
    "IntegrityViolation",
    "IntegrityFailure",
    "CertificationReport",
    "apply_memflip",
    "certify_bfs",
    "certify_sssp",
    "certify_cc",
    "certify_pagerank",
    "SDC_SCENARIOS",
    "SDC_RUNNERS",
    "SdcCaseResult",
    "run_sdc_campaign",
    "run_sdc_case",
]
