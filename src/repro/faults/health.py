"""Rank-health watchdog: progress ledger, demotion, elastic grow-back.

The elastic machinery (:mod:`repro.faults.elastic`) reacts to *hard*
failures — a crash raises, the grid shrinks.  At the paper's target
scale (hundreds of GPUs, multi-hour WDC12 runs) the operationally
harder cases are the soft ones: a rank that is alive but persistently
slow drags the whole BSP group at every collective, and a replacement
node that comes back mid-run is wasted unless the job can grow onto
it.  This module closes the elastic loop in both directions:

* :class:`HealthMonitor` — a per-rank progress ledger sampled at
  superstep boundaries from :class:`~repro.comm.clocks.VirtualClocks`
  lane deltas.  Each boundary, a rank's *excess* is how far its
  compute and recovery deltas sit above the group median (median-
  relative, so globally-charged costs like checkpoint drains cancel);
  an EWMA of the excess is compared against a threshold to classify
  the rank healthy / suspect / chronic.  Injected ``straggler`` specs
  thereby become *detectable*, not just charged.
* :class:`DemotionPolicy` — decides when a chronic straggler becomes a
  soft failure: the boundary raises
  :class:`~repro.faults.injector.RankDemotion` (a
  :class:`~repro.faults.injector.RankFailure` subclass), and the
  ordinary elastic path drains the rank via the checkpoint saved at
  that same boundary and regrids down.
* :class:`AutoscalePolicy` — generalizes
  :class:`~repro.faults.elastic.GridPolicy` to both directions: the
  shrink direction delegates to a wrapped policy, while the grow
  direction watches planned spare arrivals
  (``FaultSpec(kind="recover")``) and decides grow vs. hold under
  hysteresis (a spare must age before adoption), a cooldown after any
  regrid, and a total grow budget (the oscillation guard).
* :class:`AutoscaleRecovery` — an
  :class:`~repro.faults.elastic.ElasticRecovery` that installs the
  monitor and itself onto every engine generation and implements the
  up-migration: ``migrate_checkpoint`` onto the ``p+1``-rank grid
  chosen by :meth:`AutoscalePolicy.grow_grid`.

Every transition is recorded as an event (kinds ``health``,
``demote``, ``grow``, ``hold``, plus the injector's ``recover``) that
surfaces through ``Engine.fault_events`` and therefore on trace rows,
and every migration is charged to the ``regrid`` clock lane.  The PR 5
exactness contract carries over unchanged: demote and grow transitions
are bit-identical for monotone algorithms on any grid trajectory.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..comm.grid import Grid2D, squarest_grid
from .elastic import ElasticRecovery, ElasticUnrecoverable, GridPolicy, migrate_checkpoint, resolve_policy
from .injector import RankDemotion, SpareArrival

__all__ = [
    "RANK_HEALTH",
    "HealthMonitor",
    "DemotionPolicy",
    "AutoscalePolicy",
    "AutoscaleRecovery",
]

#: Health classifications, in escalation order.
RANK_HEALTH = ("healthy", "suspect", "chronic")


class HealthMonitor:
    """Per-rank progress ledger with EWMA deviation scoring.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in ``(0, 1]``: the weight of the newest
        excess sample.  High values react fast (the default 0.5 flags
        a repeatedly-injected straggler within two supersteps); low
        values favor sustained deviation over spikes.
    suspect_s:
        Absolute score floor, in virtual seconds: a rank is suspect
        only when its EWMA excess exceeds ``max(suspect_s,
        rel_threshold * median_delta)``.  The floor keeps scheduling
        noise at small scales from ever flagging anyone.
    rel_threshold:
        Relative component of the threshold: multiples of the group's
        median per-superstep progress delta a rank must fall behind by.
        Keeps the classifier scale-free — big graphs have big deltas.
    chronic_after:
        Consecutive suspect boundaries before a rank is classified
        chronic (and becomes eligible for demotion).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        suspect_s: float = 1e-4,
        rel_threshold: float = 4.0,
        chronic_after: int = 3,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if suspect_s <= 0:
            raise ValueError(f"suspect_s must be > 0, got {suspect_s}")
        if rel_threshold < 0:
            raise ValueError(
                f"rel_threshold must be >= 0, got {rel_threshold}"
            )
        if chronic_after < 1:
            raise ValueError(
                f"chronic_after must be >= 1, got {chronic_after}"
            )
        self.alpha = alpha
        self.suspect_s = suspect_s
        self.rel_threshold = rel_threshold
        self.chronic_after = chronic_after
        self.n_ranks = 0
        self.scores = np.zeros(0)
        self.streaks = np.zeros(0, dtype=np.int64)
        self.statuses: list[str] = []
        self._last: Optional[dict[str, np.ndarray]] = None
        #: Transition history across all engine generations (bind
        #: resets the per-rank ledger, not this log).
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        """(Re)baseline against ``engine``'s current clocks.

        Called on attach, after every ``rebuild_on_grid`` (rank count
        and identities changed) and after every ``restore`` (clocks
        rewound; diffing against pre-restore samples would go
        negative).  Scores, streaks, and statuses reset — a new grid
        starts healthy.
        """
        self.n_ranks = engine.n_ranks
        self.scores = np.zeros(self.n_ranks)
        self.streaks = np.zeros(self.n_ranks, dtype=np.int64)
        self.statuses = ["healthy"] * self.n_ranks
        self._last = self._sample(engine)

    @staticmethod
    def _sample(engine) -> dict[str, np.ndarray]:
        lanes = engine.clocks.per_rank_lanes()
        return {"compute": lanes["compute"], "recovery": lanes["recovery"]}

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, engine, superstep: int) -> list[dict]:
        """Sample one superstep boundary; returns new transition events.

        A rank's excess combines how far its compute-lane delta and its
        recovery-lane delta sit above the group medians.  Injected
        straggler stalls land in one rank's recovery lane; checkpoint
        drains land in *every* rank's, so the median-relative form
        cancels them.  Transitions (healthy → suspect → chronic, and
        back) are recorded via ``engine.record_event`` so they surface
        in ``fault_events`` and on trace rows.
        """
        if self._last is None or engine.n_ranks != self.n_ranks:
            self.bind(engine)
            return []
        now = self._sample(engine)
        d_comp = now["compute"] - self._last["compute"]
        d_rec = now["recovery"] - self._last["recovery"]
        self._last = now
        excess = np.maximum(d_comp - np.median(d_comp), 0.0) + np.maximum(
            d_rec - np.median(d_rec), 0.0
        )
        self.scores = self.alpha * excess + (1.0 - self.alpha) * self.scores
        threshold = max(
            self.suspect_s,
            self.rel_threshold * float(np.median(d_comp + d_rec)),
        )
        transitions: list[dict] = []
        for rank in range(self.n_ranks):
            if self.scores[rank] > threshold:
                self.streaks[rank] += 1
                status = (
                    "chronic"
                    if self.streaks[rank] >= self.chronic_after
                    else "suspect"
                )
            else:
                self.streaks[rank] = 0
                status = "healthy"
            if status != self.statuses[rank]:
                event = {
                    "kind": "health",
                    "rank": rank,
                    "superstep": superstep,
                    "collective": "boundary",
                    "retries": 0,
                    "recovery_s": 0.0,
                    "detected": True,
                    "fatal": False,
                    "status": status,
                    "score": float(self.scores[rank]),
                }
                transitions.append(event)
                engine.record_event(event)
                self.statuses[rank] = status
        self.events.extend(transitions)
        return transitions

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def status(self, rank: int) -> str:
        return self.statuses[rank]

    def chronic_ranks(self) -> list[int]:
        """Ranks currently classified chronic, worst score first."""
        chronic = [
            r for r in range(self.n_ranks) if self.statuses[r] == "chronic"
        ]
        return sorted(chronic, key=lambda r: -self.scores[r])

    def report(self) -> dict:
        """Plain-data ledger snapshot (CLI / test surface)."""
        return {
            "n_ranks": self.n_ranks,
            "statuses": list(self.statuses),
            "scores": [float(s) for s in self.scores],
            "streaks": [int(s) for s in self.streaks],
            "n_transitions": len(self.events),
        }


class DemotionPolicy:
    """Decides when a chronic straggler becomes a soft failure.

    Parameters
    ----------
    warmup:
        Boundaries to observe before any demotion is allowed (scores
        need at least one sample; more warmup means more evidence).
    cooldown:
        Minimum supersteps between consecutive demotions.
    max_demotions:
        Total demotion budget for the run — with the grow budget of
        :class:`AutoscalePolicy` this bounds the demote/grow
        oscillation a flapping rank could otherwise induce.
    """

    def __init__(
        self, warmup: int = 1, cooldown: int = 1, max_demotions: int = 1
    ):
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if max_demotions < 0:
            raise ValueError(
                f"max_demotions must be >= 0, got {max_demotions}"
            )
        self.warmup = warmup
        self.cooldown = cooldown
        self.max_demotions = max_demotions
        self.demotions = 0
        self._last_demotion: Optional[int] = None

    def consider(self, engine, monitor, superstep: int) -> Optional[int]:
        """Return the rank to demote at this boundary, or ``None``.

        A demotion requires a chronic rank, budget, a checkpoint to
        drain from, and at least one surviving rank afterwards.
        Consuming the decision updates the budget/cooldown state, so
        callers must raise on a non-``None`` return.
        """
        if monitor is None or self.demotions >= self.max_demotions:
            return None
        if superstep < self.warmup:
            return None
        if (
            self._last_demotion is not None
            and superstep - self._last_demotion < self.cooldown
        ):
            return None
        if engine.n_ranks <= 1:
            return None
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            return None
        chronic = monitor.chronic_ranks()
        if not chronic:
            return None
        self.demotions += 1
        self._last_demotion = superstep
        return chronic[0]


class AutoscalePolicy(GridPolicy):
    """Bidirectional grid policy: shrink on failure, grow on spares.

    The shrink direction (the :class:`GridPolicy` interface used by
    :meth:`ElasticRecovery.recover`) delegates to a wrapped policy.
    The grow direction tracks pending spare arrivals and holds back
    adoption until three conditions clear:

    * **hysteresis** — the oldest pending spare must have waited at
      least this many supersteps (a spare that arrives at the
      convergence tail never pays for its migration; holding lets the
      run finish first);
    * **cooldown** — at least this many supersteps since the last
      regrid in either direction (migrations back-to-back thrash);
    * **grow budget** — at most ``max_grows`` grows per run (with the
      demotion budget, the oscillation guard).
    """

    name = "autoscale"

    def __init__(
        self,
        shrink: Union[GridPolicy, str] = "prefer-square",
        hysteresis: int = 0,
        cooldown: int = 1,
        max_grows: int = 1,
    ):
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if max_grows < 0:
            raise ValueError(f"max_grows must be >= 0, got {max_grows}")
        self.shrink = resolve_policy(shrink)
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.max_grows = max_grows
        self.grows = 0
        #: Arrival supersteps of delivered-but-unadopted spares.
        self.pending: list[int] = []
        self._last_regrid: Optional[int] = None
        self._held = False

    # --- shrink direction (GridPolicy interface) ----------------------
    def choose(self, grid: Grid2D, survivors: int) -> Optional[Grid2D]:
        return self.shrink.choose(grid, survivors)

    # --- grow direction -----------------------------------------------
    def grow_grid(self, grid: Grid2D) -> Grid2D:
        """The grid a grow targets: squarest factor pair of ``p+1``."""
        return squarest_grid(grid.n_ranks + 1)

    def spare_arrived(self, superstep: int, count: int = 1) -> None:
        self.pending.extend([superstep] * count)
        self._held = False

    def note_regrid(self, superstep: int) -> None:
        """Any regrid (shrink, spare adoption, or grow) arms the
        cooldown."""
        self._last_regrid = superstep

    def hold_reason(self, superstep: int) -> Optional[str]:
        """Why a pending spare is not adopted now (``None`` = grow)."""
        if not self.pending:
            return "no-spare"
        if self.grows >= self.max_grows:
            return "max-grows"
        if superstep - self.pending[0] < self.hysteresis:
            return "hysteresis"
        if (
            self._last_regrid is not None
            and superstep - self._last_regrid < self.cooldown
        ):
            return "cooldown"
        return None

    def should_grow(self, superstep: int) -> bool:
        return self.hold_reason(superstep) is None


class AutoscaleRecovery(ElasticRecovery):
    """Elastic recovery with the health loop closed in both directions.

    Extends :class:`~repro.faults.elastic.ElasticRecovery` with

    * :meth:`prepare` — installs the :class:`HealthMonitor` and itself
      (as the boundary autoscaler) on the engine;
      ``Engine.rebuild_on_grid`` carries both onto every later
      generation automatically.
    * :meth:`on_boundary` — the decision point
      ``Engine.superstep_boundary`` calls: first the
      :class:`DemotionPolicy` (a hit raises :class:`RankDemotion`,
      handled by the inherited shrink path), then the grow side (a
      clear :class:`AutoscalePolicy` raises :class:`SpareArrival`; a
      held spare records one ``hold`` event naming the reason).
    * :meth:`grow` — the up-migration ``drive_elastic`` runs on
      :class:`SpareArrival`: rebuild on ``grow_grid``, migrate the
      latest checkpoint up (cost on the ``regrid`` lane), adopt, and
      resume.
    """

    def __init__(
        self,
        policy: Optional[AutoscalePolicy] = None,
        monitor: Optional[HealthMonitor] = None,
        demotion: Optional[DemotionPolicy] = None,
        regrid_bw: float = 12e9,
        max_regrids: int = 6,
    ):
        if policy is None:
            policy = AutoscalePolicy()
        if not isinstance(policy, AutoscalePolicy):
            raise ValueError(
                f"AutoscaleRecovery needs an AutoscalePolicy, got "
                f"{type(policy).__name__}"
            )
        super().__init__(
            policy=policy, regrid_bw=regrid_bw, max_regrids=max_regrids
        )
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.demotion = demotion if demotion is not None else DemotionPolicy()

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def prepare(self, engine) -> None:
        engine.attach_health(self.monitor)
        engine.attach_autoscaler(self)

    def spare_arrived(self, engine, superstep: int, count: int = 1) -> None:
        del engine
        self.policy.spare_arrived(superstep, count)

    def on_boundary(self, engine, superstep: int) -> None:
        rank = self.demotion.consider(engine, self.monitor, superstep)
        if rank is not None:
            score = float(self.monitor.scores[rank])
            event = {
                "kind": "demote",
                "rank": rank,
                "superstep": superstep,
                "collective": "boundary",
                "retries": 0,
                "recovery_s": 0.0,
                "detected": True,
                "fatal": False,
                "score": score,
                "policy": self.policy.name,
            }
            engine.record_event(event)
            self.events.append(event)
            raise RankDemotion(rank, superstep, score=score)
        if not self.policy.pending:
            return
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            return  # nothing to migrate up yet; try the next boundary
        reason = self.policy.hold_reason(superstep)
        if reason is None:
            raise SpareArrival(superstep, pending=len(self.policy.pending))
        if not self.policy._held:
            # One hold event per arrival batch: the *decision* not to
            # grow is as much a policy output as growing.
            self.policy._held = True
            event = {
                "kind": "hold",
                "rank": None,
                "superstep": superstep,
                "collective": "boundary",
                "retries": 0,
                "recovery_s": 0.0,
                "detected": True,
                "fatal": False,
                "reason": reason,
                "pending": len(self.policy.pending),
                "policy": self.policy.name,
            }
            engine.record_event(event)
            self.events.append(event)

    # ------------------------------------------------------------------
    # the up direction
    # ------------------------------------------------------------------
    def grow(self, engine, arrival: SpareArrival):
        """Regrid onto ``p+1`` ranks; returns the engine to resume on."""
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            raise ElasticUnrecoverable(
                f"spare arrived at superstep {arrival.superstep} with no "
                f"checkpoint to migrate up from"
            )
        if self.regrids >= self.max_regrids:
            raise ElasticUnrecoverable(
                f"regrid budget exhausted ({self.max_regrids}); spare at "
                f"superstep {arrival.superstep} not adopted"
            )
        ckpt = mgr.latest()
        new_grid = self.policy.grow_grid(engine.grid)
        new_engine = engine.rebuild_on_grid(new_grid)
        migrated, cost_s = migrate_checkpoint(
            ckpt, new_engine, regrid_bw=self.regrid_bw
        )
        mgr.adopt(migrated)
        self.regrids += 1
        self.policy.pending.pop(0)
        self.policy.grows += 1
        self.policy.note_regrid(arrival.superstep)
        new_engine.spare_ranks = max(0, new_engine.spare_ranks - 1)
        event = {
            "kind": "grow",
            "rank": None,
            "superstep": arrival.superstep,
            "collective": "boundary",
            "retries": 0,
            "recovery_s": cost_s,
            "detected": True,
            "fatal": False,
            "from_grid": (engine.grid.R, engine.grid.C),
            "to_grid": (new_engine.grid.R, new_engine.grid.C),
            "policy": self.policy.name,
            "spare": False,
        }
        new_engine.record_event(event)
        self.events.append(event)
        return new_engine
