"""Fault scenario campaign: named fault plans + recovery validation.

Each scenario is a small, fixed :class:`~repro.faults.plan.FaultPlan`
exercising one failure mode end-to-end.  :func:`run_campaign` runs each
(scenario, algorithm) pair twice on identically configured engines —
once fault-free, once faulted — recovers from crashes via the
checkpoint machinery, and grades the outcome:

``recovered``
    The run crashed, resumed from the latest checkpoint, and finished.
    For crash scenarios the resumed run must be **bit-identical** to
    the fault-free reference — same values, same communication
    counters, same virtual clocks — because a crash aborts a collective
    *before* it charges anything, and restore rewinds to the previous
    superstep boundary exactly.
``completed``
    The run absorbed its faults (retries, stalls) without crashing.
    Values must still match the reference bit-for-bit; virtual time is
    allowed to differ — recovery cost is the measurement, surfaced as
    ``recovery_s``.
``unrecovered``
    The run crashed with no checkpoint to resume from.  This is the
    failing grade: the campaign (and the ``python -m repro faults``
    CLI) reports nonzero when any case ends here.
``diverged``
    The faulted run finished but produced different values — the fault
    machinery corrupted the computation.  Always a bug.

Both runs attach the same :class:`CheckpointManager` configuration so
checkpoint drain costs cancel out of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..algorithms import bfs, connected_components, pagerank, sssp
from .checkpoint import CheckpointManager
from .elastic import ElasticRecovery, ElasticUnrecoverable
from .health import AutoscalePolicy, AutoscaleRecovery, DemotionPolicy, HealthMonitor
from .injector import RankFailure
from .plan import FaultPlan, FaultSpec

__all__ = [
    "SCENARIOS",
    "RUNNERS",
    "CaseResult",
    "run_case",
    "run_campaign",
    "ELASTIC_SCENARIOS",
    "DEFAULT_ELASTIC_SCENARIOS",
    "ELASTIC_RUNNERS",
    "ElasticCaseResult",
    "run_elastic_case",
    "run_elastic_campaign",
    "AUTOSCALE_SCENARIOS",
    "DEFAULT_AUTOSCALE_SCENARIOS",
    "AutoscaleCaseResult",
    "run_autoscale_case",
    "run_autoscale_campaign",
    "SDC_SCENARIOS",
    "DEFAULT_SDC_SCENARIOS",
    "SDC_RUNNERS",
    "WEIGHTED_ALGOS",
    "SdcCaseResult",
    "run_sdc_case",
    "run_sdc_campaign",
]

#: Named fault plans.  Supersteps are 1-based; ranks assume at least a
#: 2x2 grid.  ``crash-unrecovered`` is the deliberate-failure scenario
#: (run without checkpoints) and is therefore *not* part of the default
#: campaign — select it explicitly to verify the failing exit path.
SCENARIOS: dict[str, FaultPlan] = {
    "crash-recover": FaultPlan([FaultSpec("crash", 2, rank=1)]),
    "transient-retry": FaultPlan([FaultSpec("transient", 1, count=2)]),
    "bitflip-detect": FaultPlan([FaultSpec("corruption", 2, bit=7)]),
    "straggler-drag": FaultPlan(
        [
            FaultSpec("straggler", 1, rank=0, delay_s=5e-4),
            FaultSpec("straggler", 2, rank=2, delay_s=1e-3),
        ]
    ),
    "crash-unrecovered": FaultPlan([FaultSpec("crash", 2, rank=0)]),
}

#: Scenarios included in a default (``--scenario all``) campaign.
DEFAULT_SCENARIOS = (
    "crash-recover",
    "transient-retry",
    "bitflip-detect",
    "straggler-drag",
)

#: Scenarios that run without a checkpoint manager attached.
UNCHECKPOINTED = {"crash-unrecovered"}

#: Resume-capable runners keyed by the paper's abbreviations.
RUNNERS: dict[str, Callable[..., Any]] = {
    "BFS": lambda engine, resume=False: bfs(engine, root=0, resume=resume),
    "PR": lambda engine, resume=False: pagerank(
        engine, iterations=10, resume=resume
    ),
    "CC": lambda engine, resume=False: connected_components(
        engine, resume=resume
    ),
}


@dataclass
class CaseResult:
    """Outcome of one (scenario, algorithm) pair."""

    scenario: str
    algo: str
    status: str  # recovered | completed | unrecovered | diverged
    values_equal: Optional[bool] = None
    counters_equal: Optional[bool] = None
    clocks_equal: Optional[bool] = None
    fault_events: list[dict] = field(default_factory=list)
    recovery_s: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("recovered", "completed") and (
            self.values_equal is not False
        )

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algo": self.algo,
            "status": self.status,
            "ok": self.ok,
            "values_equal": self.values_equal,
            "counters_equal": self.counters_equal,
            "clocks_equal": self.clocks_equal,
            "n_fault_events": len(self.fault_events),
            "fault_events": self.fault_events,
            "recovery_s": self.recovery_s,
            "error": self.error,
        }


def _values_of(result) -> Optional[np.ndarray]:
    return result.values


def run_case(
    make_engine: Callable[[], Any],
    algo: str,
    scenario: str,
    plan: Optional[FaultPlan] = None,
    checkpoint_interval: int = 1,
    max_retries: int = 4,
) -> CaseResult:
    """Run one (scenario, algorithm) pair and grade the outcome."""
    if algo not in RUNNERS:
        raise ValueError(f"unknown algorithm {algo!r}; choose from {sorted(RUNNERS)}")
    if plan is None:
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
            )
        plan = SCENARIOS[scenario]
    runner = RUNNERS[algo]
    checkpointed = scenario not in UNCHECKPOINTED

    # Fault-free reference, same checkpoint configuration (checkpoint
    # drain time must appear in both runs for clocks to compare equal).
    ref_engine = make_engine()
    if checkpointed:
        ref_engine.attach_checkpoints(
            CheckpointManager(interval=checkpoint_interval)
        )
    ref = runner(ref_engine)

    # Faulted run.
    engine = make_engine()
    if checkpointed:
        engine.attach_checkpoints(CheckpointManager(interval=checkpoint_interval))
    engine.attach_faults(plan, max_retries=max_retries)

    crashed = False
    try:
        result = runner(engine)
    except RankFailure as failure:
        crashed = True
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            return CaseResult(
                scenario=scenario,
                algo=algo,
                status="unrecovered",
                fault_events=engine.fault_events,
                recovery_s=engine.clocks.recovery_total,
                error=str(failure),
            )
        # The crash consumed its fault spec (the failed rank is modeled
        # as replaced), so the same injector stays attached and any
        # remaining planned faults hit the resumed run.
        result = runner(engine, resume=True)

    ref_values = _values_of(ref)
    values = _values_of(result)
    values_equal = (
        bool(np.array_equal(ref_values, values))
        if ref_values is not None and values is not None
        else None
    )
    counters_equal = ref_engine.counters.summary() == engine.counters.summary()
    clocks_equal = (
        bool(np.array_equal(ref_engine.clocks.clock, engine.clocks.clock))
        and bool(np.array_equal(ref_engine.clocks.compute, engine.clocks.compute))
        and bool(np.array_equal(ref_engine.clocks.comm, engine.clocks.comm))
    )
    status = (
        "diverged"
        if values_equal is False
        else ("recovered" if crashed else "completed")
    )
    return CaseResult(
        scenario=scenario,
        algo=algo,
        status=status,
        values_equal=values_equal,
        counters_equal=counters_equal,
        clocks_equal=clocks_equal,
        fault_events=engine.fault_events,
        recovery_s=engine.clocks.recovery_total,
    )


#: Graded elastic scenarios: each names a fault plan, the grid policy
#: handling it, and how many regrids a healthy recovery performs.
#: Supersteps are 1-based; ranks assume a grid of at least 4 ranks.
ELASTIC_SCENARIOS: dict[str, dict] = {
    # One permanent loss mid-run; all survivors regrid to the most
    # square factor pair.
    "crash-shrink": dict(
        plan=FaultPlan([FaultSpec("crash", 2, rank=1)]),
        policy="prefer-square",
        expected_regrids=1,
    ),
    # Same loss absorbed by a hot spare: the grid never changes, so
    # even PageRank stays bit-exact.
    "crash-spare": dict(
        plan=FaultPlan([FaultSpec("crash", 2, rank=1)]),
        policy="spare-pool:1",
        expected_regrids=1,
    ),
    # Two losses in consecutive supersteps: the second crash hits the
    # already-shrunk grid, exercising regrid-of-a-regridded layout.
    "double-crash-cascade": dict(
        plan=FaultPlan(
            [FaultSpec("crash", 2, rank=1), FaultSpec("crash", 3, rank=2)]
        ),
        policy="prefer-square",
        expected_regrids=2,
    ),
    # Loss close to convergence: almost all work is done, so the
    # regrid cost dominates the remaining compute.
    "crash-at-convergence-tail": dict(
        plan=FaultPlan([FaultSpec("crash", 3, rank=2)]),
        policy="prefer-square",
        expected_regrids=1,
    ),
}

DEFAULT_ELASTIC_SCENARIOS = tuple(ELASTIC_SCENARIOS)

#: Elastic-capable runners: ``runner(engine, elastic)`` with
#: ``elastic=None`` meaning a plain (reference) run.
ELASTIC_RUNNERS: dict[str, Callable[..., Any]] = {
    "BFS": lambda engine, elastic: bfs(engine, root=0, elastic=elastic),
    "PR": lambda engine, elastic: pagerank(
        engine, iterations=10, elastic=elastic
    ),
    "CC": lambda engine, elastic: connected_components(
        engine, elastic=elastic
    ),
}


@dataclass
class ElasticCaseResult:
    """Outcome of one (elastic scenario, algorithm) pair."""

    scenario: str
    algo: str
    status: str  # regridded | completed | unrecovered | diverged
    values_equal: Optional[bool] = None
    values_close: Optional[bool] = None
    n_regrids: int = 0
    expected_regrids: Optional[int] = None
    grid_trail: list = field(default_factory=list)
    policy: str = ""
    regrid_s: float = 0.0
    regrid_fraction: float = 0.0
    fault_events: list[dict] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        if self.status not in ("regridded", "completed"):
            return False
        if (
            self.expected_regrids is not None
            and self.n_regrids != self.expected_regrids
        ):
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algo": self.algo,
            "status": self.status,
            "ok": self.ok,
            "values_equal": self.values_equal,
            "values_close": self.values_close,
            "n_regrids": self.n_regrids,
            "expected_regrids": self.expected_regrids,
            "grid_trail": [list(g) for g in self.grid_trail],
            "policy": self.policy,
            "regrid_s": self.regrid_s,
            "regrid_fraction": self.regrid_fraction,
            "fault_events": self.fault_events,
            "error": self.error,
        }


def run_elastic_case(
    make_engine: Callable[[], Any],
    algo: str,
    scenario: str,
    plan: Optional[FaultPlan] = None,
    policy: Optional[str] = None,
    checkpoint_interval: int = 1,
    max_retries: int = 2,
    expected_regrids: Optional[int] = None,
) -> ElasticCaseResult:
    """Run one elastic (scenario, algorithm) pair and grade the outcome.

    The faulted run must survive every planned permanent loss by
    regridding and finish with values matching the fault-free
    reference: bit-identical for the monotone algorithms, and for
    PageRank bit-identical on spare-pool recoveries / within ~1 ulp
    (``allclose`` at ``rtol=1e-9``) after a shrink — PageRank's sum
    reductions are sensitive to the operand grouping a new grid
    induces (see ``docs/ROBUSTNESS.md``).
    """
    if algo not in ELASTIC_RUNNERS:
        raise ValueError(
            f"unknown algorithm {algo!r}; choose from {sorted(ELASTIC_RUNNERS)}"
        )
    if plan is None or policy is None:
        if scenario not in ELASTIC_SCENARIOS:
            raise ValueError(
                f"unknown elastic scenario {scenario!r}; choose from "
                f"{sorted(ELASTIC_SCENARIOS)}"
            )
        spec = ELASTIC_SCENARIOS[scenario]
        plan = plan if plan is not None else spec["plan"]
        policy = policy if policy is not None else spec["policy"]
        if expected_regrids is None:
            expected_regrids = spec.get("expected_regrids")
    runner = ELASTIC_RUNNERS[algo]

    ref_engine = make_engine()
    ref_engine.attach_checkpoints(CheckpointManager(interval=checkpoint_interval))
    ref = runner(ref_engine, None)

    engine = make_engine()
    engine.attach_checkpoints(CheckpointManager(interval=checkpoint_interval))
    engine.attach_faults(plan, max_retries=max_retries)
    recovery = ElasticRecovery(policy=policy)
    start_grid = (engine.grid.R, engine.grid.C)

    try:
        result = runner(engine, recovery)
    except ElasticUnrecoverable as exc:
        return ElasticCaseResult(
            scenario=scenario,
            algo=algo,
            status="unrecovered",
            n_regrids=recovery.regrids,
            expected_regrids=expected_regrids,
            grid_trail=[start_grid]
            + [e["to_grid"] for e in recovery.events],
            policy=recovery.policy.name,
            fault_events=list(recovery.events),
            error=str(exc),
        )

    info = result.extra.get("elastic", {})
    final_engine = info.get("engine", engine)
    n_regrids = int(info.get("regrids", 0))
    values_equal = bool(np.array_equal(ref.values, result.values))
    values_close = bool(
        np.allclose(ref.values, result.values, rtol=1e-9, atol=1e-12)
    )
    shrunk = any(not e.get("spare") for e in info.get("events", ()))
    acceptable = values_equal or (algo == "PR" and shrunk and values_close)
    status = (
        "diverged"
        if not acceptable
        else ("regridded" if n_regrids else "completed")
    )
    return ElasticCaseResult(
        scenario=scenario,
        algo=algo,
        status=status,
        values_equal=values_equal,
        values_close=values_close,
        n_regrids=n_regrids,
        expected_regrids=expected_regrids,
        grid_trail=[start_grid] + [e["to_grid"] for e in info.get("events", ())],
        policy=info.get("policy", recovery.policy.name),
        regrid_s=float(final_engine.clocks.regrid_total),
        regrid_fraction=float(result.timings.regrid_fraction),
        fault_events=final_engine.fault_events,
    )


def run_elastic_campaign(
    make_engine: Callable[[], Any],
    algos: Sequence[str] = ("BFS", "PR", "CC"),
    scenarios: Sequence[str] = DEFAULT_ELASTIC_SCENARIOS,
    checkpoint_interval: int = 1,
    max_retries: int = 2,
) -> dict:
    """Run the elastic scenario x algorithm grid; return a report dict.

    ``report["failed"]`` counts cases that diverged, failed to recover,
    or regridded a different number of times than the scenario expects
    — the ``python -m repro faults --elastic`` CLI turns it into the
    process exit code.
    """
    cases = []
    for scenario in scenarios:
        for algo in algos:
            cases.append(
                run_elastic_case(
                    make_engine,
                    algo,
                    scenario,
                    checkpoint_interval=checkpoint_interval,
                    max_retries=max_retries,
                )
            )
    return {
        "schema": "repro.faults.elastic.v1",
        "cases": [c.as_dict() for c in cases],
        "total": len(cases),
        "failed": sum(1 for c in cases if not c.ok),
        "unrecovered": sum(1 for c in cases if c.status == "unrecovered"),
        "diverged": sum(1 for c in cases if c.status == "diverged"),
        "regrids": sum(c.n_regrids for c in cases),
    }


#: Graded autoscale scenarios: the health watchdog + bidirectional
#: elastic loop (demote chronic stragglers, grow back onto spares).
#: Tuned to the campaign dataset on a 4-rank grid, where BFS — the
#: shortest run — finishes in 3 supersteps: detection evidence must
#: accumulate by boundary 2 (two 2 s stalls against ~0.1 s/superstep
#: natural deltas make the straggler unambiguous at ``chronic_after=2``)
#: and spares arrive at superstep 3, the last boundary every algorithm
#: still reaches.
AUTOSCALE_SCENARIOS: dict[str, dict] = {
    # A rank stalls 2 s in two consecutive supersteps: suspect at
    # boundary 1, chronic at boundary 2, demoted (soft failure) and the
    # run continues on the squarest 3-rank grid.
    "chronic-straggler-demote": dict(
        plan=FaultPlan(
            [
                FaultSpec("straggler", 1, rank=1, delay_s=2.0),
                FaultSpec("straggler", 2, rank=1, delay_s=2.0),
            ]
        ),
        monitor=dict(chronic_after=2),
        expected_regrids=1,
        expected_rank_delta=-1,
    ),
    # A hard crash shrinks the grid; a replacement arrives one
    # superstep later and the run grows back to full strength.
    "spare-arrival-grow": dict(
        plan=FaultPlan(
            [FaultSpec("crash", 2, rank=1), FaultSpec("recover", 3)]
        ),
        expected_regrids=2,
        expected_rank_delta=0,
    ),
    # The full loop: demote a chronic straggler, grow back onto the
    # arriving spare, and shrug off a *new* straggler on the grown grid
    # — the demotion budget is spent, so the oscillation guard holds
    # the grid steady.
    "demote-then-grow-back": dict(
        plan=FaultPlan(
            [
                FaultSpec("straggler", 1, rank=1, delay_s=2.0),
                FaultSpec("straggler", 2, rank=1, delay_s=2.0),
                FaultSpec("recover", 3),
                FaultSpec("straggler", 3, rank=0, delay_s=2.0),
            ]
        ),
        monitor=dict(chronic_after=2),
        expected_regrids=2,
        expected_rank_delta=0,
    ),
    # A spare arrives while the run is about to converge: extreme
    # hysteresis models "the migration would cost more than the
    # remaining work" — the policy records a hold and never grows.
    "grow-at-convergence-tail": dict(
        plan=FaultPlan([FaultSpec("recover", 2)]),
        autoscale=dict(hysteresis=1000),
        expected_regrids=0,
        expected_rank_delta=0,
    ),
}

DEFAULT_AUTOSCALE_SCENARIOS = tuple(AUTOSCALE_SCENARIOS)


@dataclass
class AutoscaleCaseResult:
    """Outcome of one (autoscale scenario, algorithm) pair."""

    scenario: str
    algo: str
    status: str  # regridded | completed | unrecovered | diverged
    values_equal: Optional[bool] = None
    values_close: Optional[bool] = None
    n_regrids: int = 0
    expected_regrids: Optional[int] = None
    rank_delta: int = 0
    expected_rank_delta: Optional[int] = None
    n_demotions: int = 0
    n_grows: int = 0
    n_holds: int = 0
    grid_trail: list = field(default_factory=list)
    regrid_s: float = 0.0
    health: dict = field(default_factory=dict)
    fault_events: list[dict] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        if self.status not in ("regridded", "completed"):
            return False
        if (
            self.expected_regrids is not None
            and self.n_regrids != self.expected_regrids
        ):
            return False
        if (
            self.expected_rank_delta is not None
            and self.rank_delta != self.expected_rank_delta
        ):
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algo": self.algo,
            "status": self.status,
            "ok": self.ok,
            "values_equal": self.values_equal,
            "values_close": self.values_close,
            "n_regrids": self.n_regrids,
            "expected_regrids": self.expected_regrids,
            "rank_delta": self.rank_delta,
            "expected_rank_delta": self.expected_rank_delta,
            "n_demotions": self.n_demotions,
            "n_grows": self.n_grows,
            "n_holds": self.n_holds,
            "grid_trail": [list(g) for g in self.grid_trail],
            "regrid_s": self.regrid_s,
            "health": self.health,
            "fault_events": self.fault_events,
            "error": self.error,
        }


def run_autoscale_case(
    make_engine: Callable[[], Any],
    algo: str,
    scenario: str,
    checkpoint_interval: int = 1,
    max_retries: int = 2,
) -> AutoscaleCaseResult:
    """Run one autoscale (scenario, algorithm) pair and grade it.

    The faulted run goes through :class:`AutoscaleRecovery` — health
    watchdog, demotion, and grow-back all armed — and must finish with
    values matching the fault-free reference: bit-identical for the
    monotone algorithms, within ~1 ulp for PageRank once any regrid
    changed the reduction grouping.  The grade also pins the regrid
    count *and* the net rank delta, so a scenario that was supposed to
    return to full strength (or hold) failing to is a failure even
    when values agree.
    """
    if algo not in ELASTIC_RUNNERS:
        raise ValueError(
            f"unknown algorithm {algo!r}; choose from {sorted(ELASTIC_RUNNERS)}"
        )
    if scenario not in AUTOSCALE_SCENARIOS:
        raise ValueError(
            f"unknown autoscale scenario {scenario!r}; choose from "
            f"{sorted(AUTOSCALE_SCENARIOS)}"
        )
    spec = AUTOSCALE_SCENARIOS[scenario]
    runner = ELASTIC_RUNNERS[algo]

    ref_engine = make_engine()
    ref_engine.attach_checkpoints(
        CheckpointManager(interval=checkpoint_interval)
    )
    ref = runner(ref_engine, None)

    engine = make_engine()
    engine.attach_checkpoints(CheckpointManager(interval=checkpoint_interval))
    engine.attach_faults(spec["plan"], max_retries=max_retries)
    recovery = AutoscaleRecovery(
        policy=AutoscalePolicy(**spec.get("autoscale", {})),
        monitor=HealthMonitor(**spec.get("monitor", {})),
        demotion=DemotionPolicy(**spec.get("demotion", {})),
    )
    start_grid = (engine.grid.R, engine.grid.C)
    expected_regrids = spec.get("expected_regrids")
    expected_rank_delta = spec.get("expected_rank_delta")

    try:
        result = runner(engine, recovery)
    except ElasticUnrecoverable as exc:
        return AutoscaleCaseResult(
            scenario=scenario,
            algo=algo,
            status="unrecovered",
            n_regrids=recovery.regrids,
            expected_regrids=expected_regrids,
            expected_rank_delta=expected_rank_delta,
            grid_trail=[start_grid]
            + [
                e["to_grid"] for e in recovery.events if "to_grid" in e
            ],
            fault_events=list(recovery.events),
            error=str(exc),
        )

    info = result.extra.get("elastic", {})
    final_engine = info.get("engine", engine)
    n_regrids = int(info.get("regrids", 0))
    values_equal = bool(np.array_equal(ref.values, result.values))
    values_close = bool(
        np.allclose(ref.values, result.values, rtol=1e-9, atol=1e-12)
    )
    acceptable = values_equal or (
        algo == "PR" and n_regrids > 0 and values_close
    )
    status = (
        "diverged"
        if not acceptable
        else ("regridded" if n_regrids else "completed")
    )
    events = list(recovery.events)
    return AutoscaleCaseResult(
        scenario=scenario,
        algo=algo,
        status=status,
        values_equal=values_equal,
        values_close=values_close,
        n_regrids=n_regrids,
        expected_regrids=expected_regrids,
        rank_delta=final_engine.n_ranks - (start_grid[0] * start_grid[1]),
        expected_rank_delta=expected_rank_delta,
        n_demotions=sum(1 for e in events if e["kind"] == "demote"),
        n_grows=sum(1 for e in events if e["kind"] == "grow"),
        n_holds=sum(1 for e in events if e["kind"] == "hold"),
        grid_trail=[start_grid]
        + [e["to_grid"] for e in events if "to_grid" in e],
        regrid_s=float(final_engine.clocks.regrid_total),
        health=recovery.monitor.report(),
        fault_events=final_engine.fault_events,
    )


def run_autoscale_campaign(
    make_engine: Callable[[], Any],
    algos: Sequence[str] = ("BFS", "PR", "CC"),
    scenarios: Sequence[str] = DEFAULT_AUTOSCALE_SCENARIOS,
    checkpoint_interval: int = 1,
    max_retries: int = 2,
) -> dict:
    """Run the autoscale scenario x algorithm grid; return a report.

    ``report["failed"]`` counts cases that diverged, failed to recover,
    regridded a different number of times than expected, or ended on
    the wrong rank count — the ``python -m repro faults --autoscale``
    CLI turns it into the process exit code.
    """
    cases = []
    for scenario in scenarios:
        for algo in algos:
            cases.append(
                run_autoscale_case(
                    make_engine,
                    algo,
                    scenario,
                    checkpoint_interval=checkpoint_interval,
                    max_retries=max_retries,
                )
            )
    return {
        "schema": "repro.faults.autoscale.v1",
        "cases": [c.as_dict() for c in cases],
        "total": len(cases),
        "failed": sum(1 for c in cases if not c.ok),
        "unrecovered": sum(1 for c in cases if c.status == "unrecovered"),
        "diverged": sum(1 for c in cases if c.status == "diverged"),
        "regrids": sum(c.n_regrids for c in cases),
        "demotions": sum(c.n_demotions for c in cases),
        "grows": sum(c.n_grows for c in cases),
        "holds": sum(c.n_holds for c in cases),
    }


def run_campaign(
    make_engine: Callable[[], Any],
    algos: Sequence[str] = ("BFS", "PR", "CC"),
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    checkpoint_interval: int = 1,
    max_retries: int = 4,
) -> dict:
    """Run the full scenario x algorithm grid; return a report dict.

    ``report["failed"]`` counts cases that did not end in a healthy
    state (unrecovered, diverged, or value-mismatched) — the campaign
    CLI turns it into the process exit code.
    """
    cases = []
    for scenario in scenarios:
        for algo in algos:
            cases.append(
                run_case(
                    make_engine,
                    algo,
                    scenario,
                    checkpoint_interval=checkpoint_interval,
                    max_retries=max_retries,
                )
            )
    return {
        "schema": "repro.faults.campaign.v1",
        "cases": [c.as_dict() for c in cases],
        "total": len(cases),
        "failed": sum(1 for c in cases if not c.ok),
        "unrecovered": sum(1 for c in cases if c.status == "unrecovered"),
    }


#: Graded silent-data-corruption scenarios: memory bit-flips landing
#: in a rank's registered state arrays at superstep boundaries.  All
#: flips fire at superstep >= 2 with checkpoints at every boundary, so
#: a verified-good checkpoint always exists to roll back to.  Ranks
#: assume at least a 2x2 grid (the ledger needs replicated windows on
#: both axes — see ``repro.faults.integrity``).
SDC_SCENARIOS: dict[str, dict] = {
    # One bit in rank 1's state, early in the run.
    "memflip-single": dict(
        plan=FaultPlan([FaultSpec("memflip", 2, rank=1, bit=137)]),
        repair_budget=2,
    ),
    # A 3-bit burst late in the run (DRAM row disturbance model).
    "memflip-burst": dict(
        plan=FaultPlan([FaultSpec("memflip", 3, rank=2, bit=4099, count=3)]),
        repair_budget=2,
    ),
    # Two independent flips on different ranks at different
    # supersteps: two detect-restore-recompute round trips.
    "memflip-double": dict(
        plan=FaultPlan(
            [
                FaultSpec("memflip", 2, rank=1, bit=7),
                FaultSpec("memflip", 3, rank=2, bit=513),
            ]
        ),
        repair_budget=2,
    ),
}

DEFAULT_SDC_SCENARIOS = tuple(SDC_SCENARIOS)

#: Resume- and certify-capable runners for the SDC campaign.  Every
#: run certifies its final answer (the end-to-end seal on top of the
#: ledger).  SSSP needs an edge-weighted graph — the campaign skips it
#: unless a weighted engine factory is supplied.
SDC_RUNNERS: dict[str, Callable[..., Any]] = {
    "BFS": lambda engine, resume=False: bfs(
        engine, root=0, resume=resume, certify=True
    ),
    "PR": lambda engine, resume=False: pagerank(
        engine, iterations=10, resume=resume, certify=True
    ),
    "CC": lambda engine, resume=False: connected_components(
        engine, resume=resume, certify=True
    ),
    "SSSP": lambda engine, resume=False: sssp(
        engine, root=0, resume=resume, certify=True
    ),
}

#: Algorithms that need an edge-weighted graph.
WEIGHTED_ALGOS = ("SSSP",)


@dataclass
class SdcCaseResult:
    """Outcome of one SDC (scenario, algorithm) pair."""

    scenario: str
    algo: str
    status: str  # repaired | completed | diverged | unrepaired
    detected: bool = False
    values_equal: Optional[bool] = None
    counters_equal: Optional[bool] = None
    clocks_equal: Optional[bool] = None
    repairs: int = 0
    certify_s: float = 0.0
    fault_events: list[dict] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        """A healthy SDC case: the corruption was *detected* (no
        silent divergence) and the *repaired* run is bit-identical to
        the fault-free reference."""
        return (
            self.status == "repaired"
            and self.detected
            and self.values_equal is True
            and self.counters_equal is True
            and self.clocks_equal is True
        )

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algo": self.algo,
            "status": self.status,
            "ok": self.ok,
            "detected": self.detected,
            "values_equal": self.values_equal,
            "counters_equal": self.counters_equal,
            "clocks_equal": self.clocks_equal,
            "repairs": self.repairs,
            "certify_s": self.certify_s,
            "n_fault_events": len(self.fault_events),
            "fault_events": self.fault_events,
            "error": self.error,
        }


def run_sdc_case(
    make_engine: Callable[[], Any],
    algo: str,
    scenario: str,
    plan: Optional[FaultPlan] = None,
    repair_budget: int = 2,
    max_retries: int = 4,
) -> SdcCaseResult:
    """Run one SDC (scenario, algorithm) pair and grade the outcome.

    Both runs attach an every-boundary :class:`IntegrityLedger` and
    checkpoint manager (identical configuration, so digest-exchange
    and checkpoint-drain charges cancel out of the clock comparison)
    and certify their final answer.  The faulted run additionally
    carries the scenario's memflip plan; each detected violation rolls
    back to the last verified checkpoint and recomputes.  The grade
    requires *detection* (at least one ``integrity`` event, and one
    per corrupted boundary) and *bit-identical repair* (values,
    counters, and every clock lane equal to the fault-free run).
    """
    from .integrity import IntegrityFailure, IntegrityLedger

    if algo not in SDC_RUNNERS:
        raise ValueError(
            f"unknown algorithm {algo!r}; choose from {sorted(SDC_RUNNERS)}"
        )
    if plan is None:
        if scenario not in SDC_SCENARIOS:
            raise ValueError(
                f"unknown SDC scenario {scenario!r}; choose from "
                f"{sorted(SDC_SCENARIOS)}"
            )
        spec = SDC_SCENARIOS[scenario]
        plan = spec["plan"]
        repair_budget = spec.get("repair_budget", repair_budget)
    runner = SDC_RUNNERS[algo]

    ref_engine = make_engine()
    ref_engine.attach_integrity(IntegrityLedger(repair_budget=repair_budget))
    ref_engine.attach_checkpoints(CheckpointManager(interval=1))
    ref = runner(ref_engine)

    engine = make_engine()
    ledger = IntegrityLedger(repair_budget=repair_budget)
    engine.attach_integrity(ledger)
    engine.attach_checkpoints(CheckpointManager(interval=1))
    engine.attach_faults(plan, max_retries=max_retries)

    result = None
    attempts = 0
    error = ""
    try:
        while result is None:
            try:
                result = (
                    runner(engine)
                    if attempts == 0
                    else runner(engine, resume=True)
                )
            except RankFailure:
                # IntegrityViolation (or any boundary failure): the
                # restore path rewinds to the last verified checkpoint
                # and the loop recomputes the suspect window.  The
                # repair budget bounds this loop from inside the
                # ledger; the attempt cap is a backstop.
                attempts += 1
                if attempts > repair_budget + 2:
                    raise
    except (IntegrityFailure, RankFailure) as exc:
        return SdcCaseResult(
            scenario=scenario,
            algo=algo,
            status="unrepaired",
            detected=any(
                e["kind"] == "integrity" for e in engine.fault_events
            ),
            repairs=ledger.repairs,
            certify_s=float(engine.clocks.certify_total),
            fault_events=engine.fault_events,
            error=str(exc),
        )

    events = engine.fault_events
    flip_steps = {e["superstep"] for e in events if e["kind"] == "memflip"}
    caught_steps = {
        e["superstep"] for e in events if e["kind"] == "integrity"
    }
    detected = bool(flip_steps) and flip_steps <= caught_steps
    values_equal = bool(np.array_equal(ref.values, result.values))
    counters_equal = (
        ref_engine.counters.summary() == engine.counters.summary()
    )
    lanes = ("clock", "compute", "comm", "recovery", "regrid", "certify")
    clocks_equal = all(
        bool(
            np.array_equal(
                getattr(ref_engine.clocks, lane), getattr(engine.clocks, lane)
            )
        )
        for lane in lanes
    )
    if not values_equal:
        status = "diverged"
    elif attempts > 0:
        status = "repaired"
    else:
        status = "completed"
    return SdcCaseResult(
        scenario=scenario,
        algo=algo,
        status=status,
        detected=detected,
        values_equal=values_equal,
        counters_equal=counters_equal,
        clocks_equal=clocks_equal,
        repairs=ledger.repairs,
        certify_s=float(engine.clocks.certify_total),
        fault_events=events,
        error=error,
    )


def run_sdc_campaign(
    make_engine: Callable[[], Any],
    algos: Sequence[str] = ("BFS", "CC", "PR", "SSSP"),
    scenarios: Sequence[str] = DEFAULT_SDC_SCENARIOS,
    max_retries: int = 4,
    make_weighted_engine: Optional[Callable[[], Any]] = None,
) -> dict:
    """Run the SDC scenario x algorithm grid; return a report dict.

    ``report["failed"]`` counts cases that diverged silently, could
    not be repaired within budget, or repaired to a non-identical
    state — ``python -m repro faults --sdc`` turns it into the
    process exit code.  Weighted algorithms (SSSP) use
    ``make_weighted_engine`` and are skipped — *loudly*, via the
    ``skipped`` list — when no weighted factory is given.
    """
    cases = []
    skipped = []
    for scenario in scenarios:
        for algo in algos:
            factory = make_engine
            if algo in WEIGHTED_ALGOS:
                if make_weighted_engine is None:
                    skipped.append({"scenario": scenario, "algo": algo})
                    continue
                factory = make_weighted_engine
            cases.append(
                run_sdc_case(
                    factory,
                    algo,
                    scenario,
                    max_retries=max_retries,
                )
            )
    return {
        "schema": "repro.faults.sdc.v1",
        "cases": [c.as_dict() for c in cases],
        "skipped": skipped,
        "total": len(cases),
        "failed": sum(1 for c in cases if not c.ok),
        "undetected": sum(1 for c in cases if not c.detected),
        "unrepaired": sum(1 for c in cases if c.status == "unrepaired"),
        "repairs": sum(c.repairs for c in cases),
    }
