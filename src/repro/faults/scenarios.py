"""Fault scenario campaign: named fault plans + recovery validation.

Each scenario is a small, fixed :class:`~repro.faults.plan.FaultPlan`
exercising one failure mode end-to-end.  :func:`run_campaign` runs each
(scenario, algorithm) pair twice on identically configured engines —
once fault-free, once faulted — recovers from crashes via the
checkpoint machinery, and grades the outcome:

``recovered``
    The run crashed, resumed from the latest checkpoint, and finished.
    For crash scenarios the resumed run must be **bit-identical** to
    the fault-free reference — same values, same communication
    counters, same virtual clocks — because a crash aborts a collective
    *before* it charges anything, and restore rewinds to the previous
    superstep boundary exactly.
``completed``
    The run absorbed its faults (retries, stalls) without crashing.
    Values must still match the reference bit-for-bit; virtual time is
    allowed to differ — recovery cost is the measurement, surfaced as
    ``recovery_s``.
``unrecovered``
    The run crashed with no checkpoint to resume from.  This is the
    failing grade: the campaign (and the ``python -m repro faults``
    CLI) reports nonzero when any case ends here.
``diverged``
    The faulted run finished but produced different values — the fault
    machinery corrupted the computation.  Always a bug.

Both runs attach the same :class:`CheckpointManager` configuration so
checkpoint drain costs cancel out of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..algorithms import bfs, connected_components, pagerank
from .checkpoint import CheckpointManager
from .injector import RankFailure
from .plan import FaultPlan, FaultSpec

__all__ = ["SCENARIOS", "RUNNERS", "CaseResult", "run_case", "run_campaign"]

#: Named fault plans.  Supersteps are 1-based; ranks assume at least a
#: 2x2 grid.  ``crash-unrecovered`` is the deliberate-failure scenario
#: (run without checkpoints) and is therefore *not* part of the default
#: campaign — select it explicitly to verify the failing exit path.
SCENARIOS: dict[str, FaultPlan] = {
    "crash-recover": FaultPlan([FaultSpec("crash", 2, rank=1)]),
    "transient-retry": FaultPlan([FaultSpec("transient", 1, count=2)]),
    "bitflip-detect": FaultPlan([FaultSpec("corruption", 2, bit=7)]),
    "straggler-drag": FaultPlan(
        [
            FaultSpec("straggler", 1, rank=0, delay_s=5e-4),
            FaultSpec("straggler", 2, rank=2, delay_s=1e-3),
        ]
    ),
    "crash-unrecovered": FaultPlan([FaultSpec("crash", 2, rank=0)]),
}

#: Scenarios included in a default (``--scenario all``) campaign.
DEFAULT_SCENARIOS = (
    "crash-recover",
    "transient-retry",
    "bitflip-detect",
    "straggler-drag",
)

#: Scenarios that run without a checkpoint manager attached.
UNCHECKPOINTED = {"crash-unrecovered"}

#: Resume-capable runners keyed by the paper's abbreviations.
RUNNERS: dict[str, Callable[..., Any]] = {
    "BFS": lambda engine, resume=False: bfs(engine, root=0, resume=resume),
    "PR": lambda engine, resume=False: pagerank(
        engine, iterations=10, resume=resume
    ),
    "CC": lambda engine, resume=False: connected_components(
        engine, resume=resume
    ),
}


@dataclass
class CaseResult:
    """Outcome of one (scenario, algorithm) pair."""

    scenario: str
    algo: str
    status: str  # recovered | completed | unrecovered | diverged
    values_equal: Optional[bool] = None
    counters_equal: Optional[bool] = None
    clocks_equal: Optional[bool] = None
    fault_events: list[dict] = field(default_factory=list)
    recovery_s: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("recovered", "completed") and (
            self.values_equal is not False
        )

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algo": self.algo,
            "status": self.status,
            "ok": self.ok,
            "values_equal": self.values_equal,
            "counters_equal": self.counters_equal,
            "clocks_equal": self.clocks_equal,
            "n_fault_events": len(self.fault_events),
            "fault_events": self.fault_events,
            "recovery_s": self.recovery_s,
            "error": self.error,
        }


def _values_of(result) -> Optional[np.ndarray]:
    return result.values


def run_case(
    make_engine: Callable[[], Any],
    algo: str,
    scenario: str,
    plan: Optional[FaultPlan] = None,
    checkpoint_interval: int = 1,
    max_retries: int = 4,
) -> CaseResult:
    """Run one (scenario, algorithm) pair and grade the outcome."""
    if algo not in RUNNERS:
        raise ValueError(f"unknown algorithm {algo!r}; choose from {sorted(RUNNERS)}")
    if plan is None:
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
            )
        plan = SCENARIOS[scenario]
    runner = RUNNERS[algo]
    checkpointed = scenario not in UNCHECKPOINTED

    # Fault-free reference, same checkpoint configuration (checkpoint
    # drain time must appear in both runs for clocks to compare equal).
    ref_engine = make_engine()
    if checkpointed:
        ref_engine.attach_checkpoints(
            CheckpointManager(interval=checkpoint_interval)
        )
    ref = runner(ref_engine)

    # Faulted run.
    engine = make_engine()
    if checkpointed:
        engine.attach_checkpoints(CheckpointManager(interval=checkpoint_interval))
    engine.attach_faults(plan, max_retries=max_retries)

    crashed = False
    try:
        result = runner(engine)
    except RankFailure as failure:
        crashed = True
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            return CaseResult(
                scenario=scenario,
                algo=algo,
                status="unrecovered",
                fault_events=engine.fault_events,
                recovery_s=engine.clocks.recovery_total,
                error=str(failure),
            )
        # The crash consumed its fault spec (the failed rank is modeled
        # as replaced), so the same injector stays attached and any
        # remaining planned faults hit the resumed run.
        result = runner(engine, resume=True)

    ref_values = _values_of(ref)
    values = _values_of(result)
    values_equal = (
        bool(np.array_equal(ref_values, values))
        if ref_values is not None and values is not None
        else None
    )
    counters_equal = ref_engine.counters.summary() == engine.counters.summary()
    clocks_equal = (
        bool(np.array_equal(ref_engine.clocks.clock, engine.clocks.clock))
        and bool(np.array_equal(ref_engine.clocks.compute, engine.clocks.compute))
        and bool(np.array_equal(ref_engine.clocks.comm, engine.clocks.comm))
    )
    status = (
        "diverged"
        if values_equal is False
        else ("recovered" if crashed else "completed")
    )
    return CaseResult(
        scenario=scenario,
        algo=algo,
        status=status,
        values_equal=values_equal,
        counters_equal=counters_equal,
        clocks_equal=clocks_equal,
        fault_events=engine.fault_events,
        recovery_s=engine.clocks.recovery_total,
    )


def run_campaign(
    make_engine: Callable[[], Any],
    algos: Sequence[str] = ("BFS", "PR", "CC"),
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    checkpoint_interval: int = 1,
    max_retries: int = 4,
) -> dict:
    """Run the full scenario x algorithm grid; return a report dict.

    ``report["failed"]`` counts cases that did not end in a healthy
    state (unrecovered, diverged, or value-mismatched) — the campaign
    CLI turns it into the process exit code.
    """
    cases = []
    for scenario in scenarios:
        for algo in algos:
            cases.append(
                run_case(
                    make_engine,
                    algo,
                    scenario,
                    checkpoint_interval=checkpoint_interval,
                    max_retries=max_retries,
                )
            )
    return {
        "schema": "repro.faults.campaign.v1",
        "cases": [c.as_dict() for c in cases],
        "total": len(cases),
        "failed": sum(1 for c in cases if not c.ok),
        "unrecovered": sum(1 for c in cases if c.status == "unrecovered"),
    }
