"""Fault injection state machine.

The :class:`FaultInjector` walks a :class:`~repro.faults.plan.FaultPlan`
alongside the run: the engine advances its superstep counter at every
BSP boundary (``Engine.superstep_boundary``) and the
:class:`~repro.faults.resilient.ResilientCommunicator` consults it
before every collective.  The injector answers three questions —

* :meth:`crash_among` — is a crashed rank in this group?  (Crashes
  persist from their superstep onward and fire on the *first*
  collective that touches the dead rank; the spec is then consumed, so
  a restored-from-checkpoint rerun with the same injector models a
  replaced rank rather than an eternally crashing one.)
* :meth:`stragglers_for` — which group members must stall first?
* :meth:`next_disruption` — does this attempt fail (transient or
  corruption)?  Each call consumes one planned failure attempt, so a
  ``count=2`` transient fails twice then succeeds.

Everything the injector observes lands in :attr:`events` as
:class:`~repro.faults.plan.FaultEvent` rows, which the engine exposes
(``Engine.fault_events``) and the trace recorder attaches to iteration
rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .plan import FaultEvent, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "RankFailure", "RankDemotion", "SpareArrival"]


class RankFailure(RuntimeError):
    """A rank died (or a collective exhausted its retry budget).

    Carries structured diagnostics — which rank, at which superstep,
    inside which collective, after how many retries — so recovery code
    and test assertions don't need to parse the message.
    """

    def __init__(
        self,
        rank: Optional[int],
        superstep: int,
        collective: str,
        fault_kind: str = "crash",
        retries: int = 0,
    ):
        self.rank = rank
        self.superstep = superstep
        self.collective = collective
        self.fault_kind = fault_kind
        self.retries = retries
        who = f"rank {rank}" if rank is not None else "a rank"
        detail = (
            f" after {retries} retries" if retries else ""
        )
        super().__init__(
            f"{fault_kind} failure: {who} failed during {collective!r} "
            f"at superstep {superstep}{detail}"
        )


class RankDemotion(RankFailure):
    """A chronic straggler demoted by the health watchdog.

    A *soft* failure: the rank is alive but persistently slow, and the
    :class:`~repro.faults.health.DemotionPolicy` decided draining it
    beats dragging the whole BSP group.  Subclassing
    :class:`RankFailure` means every existing recovery path — the
    elastic drive loop, `ElasticRecovery.recover`, spare adoption —
    handles a demotion exactly like a crash, except it is raised at a
    superstep boundary (so the checkpoint saved at that boundary is
    current: nothing recomputes).
    """

    def __init__(self, rank: int, superstep: int, score: float = 0.0):
        super().__init__(
            rank,
            superstep,
            collective="boundary",
            fault_kind="chronic-straggler",
        )
        self.score = score


class SpareArrival(Exception):
    """Control-flow signal: grow the grid onto an available spare.

    Raised by the attached autoscaler at a superstep boundary when a
    planned ``recover`` spec has delivered a spare *and* the
    :class:`~repro.faults.health.AutoscalePolicy` (hysteresis,
    cooldown, grow budget) decided adoption beats holding.  Not an
    error — ``drive_elastic`` catches it and runs
    ``migrate_checkpoint`` in the up direction.
    """

    def __init__(self, superstep: int, pending: int = 1):
        self.superstep = superstep
        self.pending = pending
        super().__init__(
            f"spare rank available at superstep {superstep} "
            f"({pending} pending)"
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running engine.

    The injector is deliberately dumb about *time* — backoff and stall
    charging live in the resilient communicator — and smart about
    *when/where*: it tracks the current superstep, matches specs to
    collectives, and consumes one-shot specs exactly once.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.superstep = 1
        self.events: list[FaultEvent] = []
        # crash specs become "armed" at their superstep and stay armed
        # until consumed by the first collective touching their rank
        self._pending_crashes: list[FaultSpec] = list(
            s for s in plan if s.kind == "crash"
        )
        # remaining failure attempts per transient/corruption spec
        self._attempts: dict[int, int] = {
            id(s): s.count for s in plan if s.kind in ("transient", "corruption")
        }
        # stragglers fire once, on the first matching collective
        self._pending_stragglers: list[FaultSpec] = list(
            s for s in plan if s.kind == "straggler"
        )
        # spare arrivals are consumed at superstep boundaries
        self._pending_recovers: list[FaultSpec] = list(
            s for s in plan if s.kind == "recover"
        )
        # memory bit-flips are consumed at superstep boundaries too
        self._pending_memflips: list[FaultSpec] = list(
            s for s in plan if s.kind == "memflip"
        )

    # ------------------------------------------------------------------
    # run-position tracking
    # ------------------------------------------------------------------
    def begin_superstep(self, superstep: int) -> None:
        """Engine callback: the run is now inside ``superstep``."""
        self.superstep = superstep

    def reset(self) -> None:
        """Re-arm the full plan for a fresh run (``Engine.reset_timers``
        calls this so an engine reused across runs replays its plan)."""
        self.superstep = 1
        self.events.clear()
        self._pending_crashes = [s for s in self.plan if s.kind == "crash"]
        self._attempts = {
            id(s): s.count
            for s in self.plan
            if s.kind in ("transient", "corruption")
        }
        self._pending_stragglers = [
            s for s in self.plan if s.kind == "straggler"
        ]
        self._pending_recovers = [
            s for s in self.plan if s.kind == "recover"
        ]
        self._pending_memflips = [
            s for s in self.plan if s.kind == "memflip"
        ]

    # ------------------------------------------------------------------
    # matching helpers
    # ------------------------------------------------------------------
    def _matches(self, spec: FaultSpec, kind: str, ranks: Sequence[int]) -> bool:
        if spec.collective is not None and spec.collective != kind:
            return False
        if spec.rank is not None and spec.rank not in ranks:
            return False
        return True

    # ------------------------------------------------------------------
    # queries (called by ResilientCommunicator)
    # ------------------------------------------------------------------
    def crash_among(self, kind: str, ranks: Sequence[int]) -> Optional[FaultSpec]:
        """Return-and-consume a crash spec whose rank is in ``ranks``
        and whose superstep has arrived; ``None`` if the group is
        healthy."""
        for spec in self._pending_crashes:
            if spec.superstep <= self.superstep and self._matches(
                spec, kind, ranks
            ):
                self._pending_crashes.remove(spec)
                return spec
        return None

    def stragglers_for(self, kind: str, ranks: Sequence[int]) -> list[FaultSpec]:
        """Return-and-consume straggler specs firing on this collective."""
        fired = [
            s
            for s in self._pending_stragglers
            if s.superstep == self.superstep and self._matches(s, kind, ranks)
        ]
        for s in fired:
            self._pending_stragglers.remove(s)
        return fired

    def arrivals_for(self, superstep: int) -> list[FaultSpec]:
        """Return-and-consume spare-arrival (``recover``) specs due by
        ``superstep``.

        Called by ``Engine.superstep_boundary`` — spares arrive at BSP
        boundaries, not inside collectives.  ``<=`` rather than ``==``
        so an arrival scheduled for a superstep the run skipped (e.g.
        a restore rewound past it) is delivered at the next boundary
        instead of silently lost.
        """
        fired = [s for s in self._pending_recovers if s.superstep <= superstep]
        for s in fired:
            self._pending_recovers.remove(s)
        return fired

    def memflips_for(self, superstep: int) -> list[FaultSpec]:
        """Return-and-consume memory bit-flip (``memflip``) specs due by
        ``superstep``.

        Called by ``Engine.superstep_boundary`` before integrity
        verification, so the damage lands between the compute that
        produced the state and the ledger hash that should catch it.
        One-shot consumption is what keeps repair deterministic: a
        restore-and-recompute of the suspect window does not re-flip.
        """
        fired = [s for s in self._pending_memflips if s.superstep <= superstep]
        for s in fired:
            self._pending_memflips.remove(s)
        return fired

    def next_disruption(self, kind: str, ranks: Sequence[int]) -> Optional[FaultSpec]:
        """Consume one failure attempt for this collective, if planned.

        Returns the spec that disrupts this attempt (``transient`` or
        ``corruption``), or ``None`` when the attempt succeeds.  A spec
        with ``count=N`` disrupts N consecutive attempts.
        """
        for spec in self.plan:
            if spec.kind not in ("transient", "corruption"):
                continue
            if spec.superstep != self.superstep:
                continue
            if not self._matches(spec, kind, ranks):
                continue
            remaining = self._attempts.get(id(spec), 0)
            if remaining > 0:
                self._attempts[id(spec)] = remaining - 1
                return spec
        return None

    # ------------------------------------------------------------------
    # event recording
    # ------------------------------------------------------------------
    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    @property
    def exhausted(self) -> bool:
        """True when every planned fault has fired."""
        return (
            not self._pending_crashes
            and not self._pending_stragglers
            and not self._pending_recovers
            and not self._pending_memflips
            and not any(self._attempts.values())
        )
