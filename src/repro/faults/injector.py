"""Fault injection state machine.

The :class:`FaultInjector` walks a :class:`~repro.faults.plan.FaultPlan`
alongside the run: the engine advances its superstep counter at every
BSP boundary (``Engine.superstep_boundary``) and the
:class:`~repro.faults.resilient.ResilientCommunicator` consults it
before every collective.  The injector answers three questions —

* :meth:`crash_among` — is a crashed rank in this group?  (Crashes
  persist from their superstep onward and fire on the *first*
  collective that touches the dead rank; the spec is then consumed, so
  a restored-from-checkpoint rerun with the same injector models a
  replaced rank rather than an eternally crashing one.)
* :meth:`stragglers_for` — which group members must stall first?
* :meth:`next_disruption` — does this attempt fail (transient or
  corruption)?  Each call consumes one planned failure attempt, so a
  ``count=2`` transient fails twice then succeeds.

Everything the injector observes lands in :attr:`events` as
:class:`~repro.faults.plan.FaultEvent` rows, which the engine exposes
(``Engine.fault_events``) and the trace recorder attaches to iteration
rows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .plan import FaultEvent, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "RankFailure"]


class RankFailure(RuntimeError):
    """A rank died (or a collective exhausted its retry budget).

    Carries structured diagnostics — which rank, at which superstep,
    inside which collective, after how many retries — so recovery code
    and test assertions don't need to parse the message.
    """

    def __init__(
        self,
        rank: Optional[int],
        superstep: int,
        collective: str,
        fault_kind: str = "crash",
        retries: int = 0,
    ):
        self.rank = rank
        self.superstep = superstep
        self.collective = collective
        self.fault_kind = fault_kind
        self.retries = retries
        who = f"rank {rank}" if rank is not None else "a rank"
        detail = (
            f" after {retries} retries" if retries else ""
        )
        super().__init__(
            f"{fault_kind} failure: {who} failed during {collective!r} "
            f"at superstep {superstep}{detail}"
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running engine.

    The injector is deliberately dumb about *time* — backoff and stall
    charging live in the resilient communicator — and smart about
    *when/where*: it tracks the current superstep, matches specs to
    collectives, and consumes one-shot specs exactly once.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.superstep = 1
        self.events: list[FaultEvent] = []
        # crash specs become "armed" at their superstep and stay armed
        # until consumed by the first collective touching their rank
        self._pending_crashes: list[FaultSpec] = list(
            s for s in plan if s.kind == "crash"
        )
        # remaining failure attempts per transient/corruption spec
        self._attempts: dict[int, int] = {
            id(s): s.count for s in plan if s.kind in ("transient", "corruption")
        }
        # stragglers fire once, on the first matching collective
        self._pending_stragglers: list[FaultSpec] = list(
            s for s in plan if s.kind == "straggler"
        )

    # ------------------------------------------------------------------
    # run-position tracking
    # ------------------------------------------------------------------
    def begin_superstep(self, superstep: int) -> None:
        """Engine callback: the run is now inside ``superstep``."""
        self.superstep = superstep

    def reset(self) -> None:
        """Re-arm the full plan for a fresh run (``Engine.reset_timers``
        calls this so an engine reused across runs replays its plan)."""
        self.superstep = 1
        self.events.clear()
        self._pending_crashes = [s for s in self.plan if s.kind == "crash"]
        self._attempts = {
            id(s): s.count
            for s in self.plan
            if s.kind in ("transient", "corruption")
        }
        self._pending_stragglers = [
            s for s in self.plan if s.kind == "straggler"
        ]

    # ------------------------------------------------------------------
    # matching helpers
    # ------------------------------------------------------------------
    def _matches(self, spec: FaultSpec, kind: str, ranks: Sequence[int]) -> bool:
        if spec.collective is not None and spec.collective != kind:
            return False
        if spec.rank is not None and spec.rank not in ranks:
            return False
        return True

    # ------------------------------------------------------------------
    # queries (called by ResilientCommunicator)
    # ------------------------------------------------------------------
    def crash_among(self, kind: str, ranks: Sequence[int]) -> Optional[FaultSpec]:
        """Return-and-consume a crash spec whose rank is in ``ranks``
        and whose superstep has arrived; ``None`` if the group is
        healthy."""
        for spec in self._pending_crashes:
            if spec.superstep <= self.superstep and self._matches(
                spec, kind, ranks
            ):
                self._pending_crashes.remove(spec)
                return spec
        return None

    def stragglers_for(self, kind: str, ranks: Sequence[int]) -> list[FaultSpec]:
        """Return-and-consume straggler specs firing on this collective."""
        fired = [
            s
            for s in self._pending_stragglers
            if s.superstep == self.superstep and self._matches(s, kind, ranks)
        ]
        for s in fired:
            self._pending_stragglers.remove(s)
        return fired

    def next_disruption(self, kind: str, ranks: Sequence[int]) -> Optional[FaultSpec]:
        """Consume one failure attempt for this collective, if planned.

        Returns the spec that disrupts this attempt (``transient`` or
        ``corruption``), or ``None`` when the attempt succeeds.  A spec
        with ``count=N`` disrupts N consecutive attempts.
        """
        for spec in self.plan:
            if spec.kind not in ("transient", "corruption"):
                continue
            if spec.superstep != self.superstep:
                continue
            if not self._matches(spec, kind, ranks):
                continue
            remaining = self._attempts.get(id(spec), 0)
            if remaining > 0:
                self._attempts[id(spec)] = remaining - 1
                return spec
        return None

    # ------------------------------------------------------------------
    # event recording
    # ------------------------------------------------------------------
    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    @property
    def exhausted(self) -> bool:
        """True when every planned fault has fired."""
        return (
            not self._pending_crashes
            and not self._pending_stragglers
            and not any(self._attempts.values())
        )
