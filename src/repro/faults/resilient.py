"""Resilient collectives: detection, retry, and failure escalation.

:class:`ResilientCommunicator` decorates
:class:`~repro.comm.collectives.Communicator` — same interface, so
engines, patterns, and algorithms are oblivious — and guards every
collective with the fault protocol:

1. **Crash check.**  If the injector has a crashed rank in the group,
   the collective raises :class:`~repro.faults.injector.RankFailure`
   immediately (a dead peer cannot participate); the engine's
   checkpoint/restore machinery is the recovery path.
2. **Straggler stalls.**  Scheduled stalls advance the straggling
   rank's clock before the collective, so the whole group waits on it
   (BSP semantics come from the underlying ``sync_group``).
3. **Attempt loop.**  Each attempt asks the injector whether it is
   disrupted.  A *transient* disruption simply fails; a *corruption*
   disruption actually flips a bit in a scratch copy of the payload and
   relies on a CRC32 checksum mismatch to detect it — modeling
   end-to-end payload verification, not oracle knowledge.  Every failed
   attempt charges exponential-backoff recovery time to the group's
   virtual clocks; exceeding ``max_retries`` escalates to
   :class:`RankFailure`.

Retries deliberately do **not** inflate :class:`CommCounters` — the
counters feed the paper's message-complexity claims, which describe the
algorithm, not the weather.  Retry cost is visible instead in the
clocks' ``recovery`` lane and in the recorded
:class:`~repro.faults.plan.FaultEvent` rows.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..comm.collectives import BroadcastCall, CollectiveHandle, Communicator
from .injector import FaultInjector, RankFailure
from .plan import FaultEvent, FaultSpec

__all__ = ["GuardedHandle", "ResilientCommunicator"]


@dataclass
class GuardedHandle:
    """A split-phase handle whose fault protocol runs at ``wait``.

    Detection is end-to-end: a corruption or transient disruption of an
    in-flight collective only surfaces when the receiver verifies the
    payload, i.e. at completion — so the crash check, CRC verification,
    and retry/backoff loop all run inside
    :meth:`ResilientCommunicator.wait`, with retries charged to the
    recovery lane exactly as on the blocking path.
    """

    inner: CollectiveHandle
    payload: list[np.ndarray]

    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.inner.ranks

    @property
    def result(self):
        return self.inner.result


def _payload_checksum(arrays: Sequence[np.ndarray]) -> int:
    """CRC32 over the byte stream of a collective's payload."""
    crc = 0
    for a in arrays:
        crc = zlib.crc32(np.ascontiguousarray(a).tobytes(), crc)
    return crc


def _flip_bit(arrays: Sequence[np.ndarray], bit: int) -> list[np.ndarray]:
    """Copy the payload and flip one bit (wrapped to the total size)."""
    copies = [np.ascontiguousarray(a).copy() for a in arrays]
    total_bits = sum(c.nbytes for c in copies) * 8
    if total_bits == 0:
        return copies
    bit = bit % total_bits
    for c in copies:
        nbits = c.nbytes * 8
        if bit < nbits:
            flat = c.view(np.uint8).reshape(-1)
            flat[bit // 8] ^= np.uint8(1 << (bit % 8))
            break
        bit -= nbits
    return copies


class ResilientCommunicator:
    """Fault-tolerant decorator over :class:`Communicator`.

    Exposes the same collective methods plus passthrough ``costmodel``
    / ``clocks`` / ``counters`` attributes, so it can stand in for the
    inner communicator anywhere (``Engine.comm`` in particular).
    """

    #: per-attempt base backoff, in virtual seconds (doubles each retry)
    backoff_base_s = 1e-4

    def __init__(
        self,
        inner: Communicator,
        injector: FaultInjector,
        max_retries: int = 4,
    ):
        self.inner = inner
        self.injector = injector
        self.max_retries = max_retries

    # passthroughs — everything that reads accounting state keeps
    # working against the wrapped communicator
    @property
    def costmodel(self):
        return self.inner.costmodel

    @property
    def clocks(self):
        return self.inner.clocks

    @property
    def counters(self):
        return self.inner.counters

    # ------------------------------------------------------------------
    # the guard
    # ------------------------------------------------------------------
    def _guard(
        self,
        kind: str,
        ranks: Sequence[int],
        payload: Sequence[np.ndarray],
    ) -> None:
        """Run the fault protocol for one collective launch.

        Raises :class:`RankFailure` on a crash or an exhausted retry
        budget; returns normally when the collective may proceed.
        """
        inj = self.injector
        step = inj.superstep

        crash = inj.crash_among(kind, ranks)
        if crash is not None:
            inj.record(
                FaultEvent(
                    kind="crash",
                    rank=crash.rank,
                    superstep=step,
                    collective=kind,
                    fatal=True,
                )
            )
            raise RankFailure(crash.rank, step, kind, fault_kind="crash")

        for spec in inj.stragglers_for(kind, ranks):
            self.clocks.add_stall(spec.rank, spec.delay_s)
            inj.record(
                FaultEvent(
                    kind="straggler",
                    rank=spec.rank,
                    superstep=step,
                    collective=kind,
                    recovery_s=spec.delay_s,
                )
            )

        attempt = 0
        while True:
            spec = inj.next_disruption(kind, ranks)
            if spec is None:
                return
            attempt += 1
            detected = True
            if spec.kind == "corruption":
                # Real detection: flip a bit in a scratch copy of the
                # payload and compare checksums.  (A flip the checksum
                # misses would be silent corruption — CRC32 catches
                # every single-bit flip, so detected is always True
                # here, but the machinery is honest about *how*.)
                clean = _payload_checksum(payload)
                damaged = _payload_checksum(_flip_bit(payload, spec.bit))
                detected = damaged != clean or not payload
            backoff = self.backoff_base_s * (2 ** (attempt - 1))
            self.clocks.charge_recovery(ranks, backoff)
            if attempt > self.max_retries:
                inj.record(
                    FaultEvent(
                        kind=spec.kind,
                        rank=spec.rank,
                        superstep=step,
                        collective=kind,
                        retries=attempt,
                        recovery_s=backoff,
                        detected=detected,
                        fatal=True,
                    )
                )
                raise RankFailure(
                    spec.rank,
                    step,
                    kind,
                    fault_kind=spec.kind,
                    retries=attempt,
                )
            inj.record(
                FaultEvent(
                    kind=spec.kind,
                    rank=spec.rank,
                    superstep=step,
                    collective=kind,
                    retries=attempt,
                    recovery_s=backoff,
                    detected=detected,
                )
            )

    # ------------------------------------------------------------------
    # decorated collectives
    # ------------------------------------------------------------------
    def allreduce(self, ranks, buffers, op="sum", nic_sharing=1):
        self._guard("allreduce", ranks, buffers)
        return self.inner.allreduce(ranks, buffers, op=op, nic_sharing=nic_sharing)

    def broadcast(self, ranks, buffers, root_pos, nic_sharing=1):
        self._guard("broadcast", ranks, buffers)
        return self.inner.broadcast(
            ranks, buffers, root_pos, nic_sharing=nic_sharing
        )

    def grouped_broadcast(self, ranks, calls: Sequence[BroadcastCall], nic_sharing=1):
        self._guard("grouped_broadcast", ranks, [c.src for c in calls])
        return self.inner.grouped_broadcast(ranks, calls, nic_sharing=nic_sharing)

    def allgatherv(self, ranks, send_buffers, nic_sharing=1):
        self._guard("allgatherv", ranks, send_buffers)
        return self.inner.allgatherv(ranks, send_buffers, nic_sharing=nic_sharing)

    def sendrecv(self, src_rank, dst_rank, payload):
        self._guard("sendrecv", [src_rank, dst_rank], [np.asarray(payload)])
        return self.inner.sendrecv(src_rank, dst_rank, payload)

    def alltoallv(self, ranks, send_matrix, nic_sharing=1):
        flat = [np.asarray(b) for row in send_matrix for b in row]
        self._guard("alltoallv", ranks, flat)
        return self.inner.alltoallv(ranks, send_matrix, nic_sharing=nic_sharing)

    # ------------------------------------------------------------------
    # decorated split-phase collectives (guarded at wait time)
    # ------------------------------------------------------------------
    def start_allreduce(self, ranks, buffers, op="sum", nic_sharing=1):
        h = self.inner.start_allreduce(ranks, buffers, op=op, nic_sharing=nic_sharing)
        # Verify the reduced payload the group ends up holding.
        return GuardedHandle(h, [np.asarray(b) for b in buffers])

    def start_allgatherv(self, ranks, send_buffers, nic_sharing=1):
        h = self.inner.start_allgatherv(ranks, send_buffers, nic_sharing=nic_sharing)
        return GuardedHandle(h, [np.asarray(h.result)])

    def start_alltoallv(self, ranks, send_matrix, nic_sharing=1):
        h = self.inner.start_alltoallv(ranks, send_matrix, nic_sharing=nic_sharing)
        return GuardedHandle(h, [np.asarray(b) for b in h.result])

    def wait(self, handle: GuardedHandle):
        """Complete a guarded split-phase collective.

        Runs the full fault protocol first — a crashed participant
        raises :class:`RankFailure`, stragglers stall, and disrupted
        attempts retry with exponential backoff charged through
        ``charge_recovery`` (so retry time lands in the recovery lane
        and, by advancing the group clocks before completion, counts as
        overlap-window time rather than inflating the collective's own
        comm charge).  Counters were recorded once at issue; retries
        never inflate them.
        """
        self._guard(handle.kind, list(handle.ranks), handle.payload)
        return self.inner.wait(handle.inner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientCommunicator(max_retries={self.max_retries}, "
            f"plan={len(self.injector.plan)} faults)"
        )
