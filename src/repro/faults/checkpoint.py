"""Superstep checkpointing: snapshot, prune, restore.

A checkpoint captures everything a resumed run needs to be
*bit-identical* to a run that never crashed:

* every named per-rank state array (``RankContext.arrays``),
* the exact :class:`~repro.comm.counters.CommCounters` state,
* the full :class:`~repro.comm.clocks.VirtualClocks` state including
  iteration marks and counter snapshots (so per-iteration traces
  reconstruct exactly across the crash), and
* the algorithm's loop state (frontier flags, iteration counters,
  switch-policy state, ...), supplied by the algorithm at each
  ``Engine.superstep_boundary`` call.

Checkpoints live in memory by default (``CheckpointManager.latest()``
feeds in-process recovery); with ``directory=`` they are *also*
pickled to disk as ``ckpt_NNNNNN.pkl`` so a separate process can
resume — the campaign CLI uses the in-memory path, the disk path is
for crash-the-whole-process scenarios and is covered by tests.

The snapshot cost model is honest about scale: ``save`` charges every
rank's clock with ``bytes / checkpoint_bw`` virtual seconds (device →
host snapshot at PCIe-ish bandwidth), so checkpoint-interval tradeoffs
show up in timing reports the way they would on the real cluster.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import queue
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointCorruption",
    "CheckpointManager",
]

#: Format tag embedded in every checkpoint (bump on layout changes).
CHECKPOINT_SCHEMA = "repro.checkpoint.v1"


class CheckpointCorruption(RuntimeError):
    """A checkpoint file on disk failed its integrity check.

    Raised by :meth:`CheckpointManager.load` instead of letting a
    truncated or bit-flipped pickle surface as an opaque
    ``UnpicklingError`` (or, worse, unpickle into garbage).  Carries
    the offending ``path`` and, for digest mismatches, the
    ``expected``/``actual`` sha256 hex digests.
    """

    def __init__(
        self,
        path: str,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
        detail: str = "",
    ):
        self.path = path
        self.expected = expected
        self.actual = actual
        if expected is not None and actual is not None:
            msg = (
                f"checkpoint {path} is corrupt: sha256 mismatch "
                f"(expected {expected}, actual {actual})"
            )
        else:
            msg = f"checkpoint {path} is corrupt: {detail or 'unreadable'}"
        super().__init__(msg)


@dataclass
class Checkpoint:
    """One recoverable snapshot at a superstep boundary.

    The partition-layout fields (``grid``, ``perm``, ``localmaps``)
    record the exact 2D layout the per-rank ``states`` were captured
    under — elastic recovery migrates a checkpoint onto a different
    surviving grid using *the checkpoint's own* layout, which may
    differ from the engine's current one after a previous regrid.
    """

    superstep: int
    algo: str
    states: list[dict[str, np.ndarray]]
    counters: dict
    clocks: dict
    algo_state: dict[str, Any] = field(default_factory=dict)
    #: ``(R, C)`` of the grid the states were captured on.
    grid: Optional[tuple[int, int]] = None
    #: Original-GID -> relabeled-GID permutation of that layout.
    perm: Optional[np.ndarray] = None
    #: Per-rank :class:`~repro.graph.localmap.LocalMap` of that layout.
    localmaps: Optional[list] = None
    schema: str = CHECKPOINT_SCHEMA

    @property
    def nbytes(self) -> int:
        """Total snapshotted state-array bytes (cost-model input)."""
        return int(
            sum(a.nbytes for per_rank in self.states for a in per_rank.values())
        )


class _AsyncWriter:
    """Double-buffered background executor for checkpoint disk I/O.

    A single daemon thread drains a FIFO of thunks (writes and prune
    deletions, so a deletion never overtakes the write it follows); a
    two-slot semaphore bounds the writes in flight — the classic double
    buffer: one checkpoint may still be draining to disk while the next
    save snapshots, but a third save blocks until a slot frees.  A
    worker exception is stashed and re-raised on the next submit or
    :meth:`flush`, so I/O failures surface on the run, not silently.
    """

    #: writes admitted before a save blocks (double buffering)
    n_slots = 2

    def __init__(self):
        self._queue: "queue.Queue" = queue.Queue()
        self._slots = threading.Semaphore(self.n_slots)
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-ckpt-writer", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                fn, releases_slot = item
                try:
                    fn()
                except BaseException as exc:  # noqa: BLE001 - re-raised on next op
                    if self._error is None:
                        self._error = exc
                finally:
                    if releases_slot:
                        self._slots.release()
            finally:
                self._queue.task_done()

    def _check(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            raise RuntimeError("async checkpoint write failed") from exc

    def submit(self, fn, *, is_write: bool) -> None:
        self._check()
        if is_write:
            self._slots.acquire()
        self._queue.put((fn, is_write))

    def flush(self) -> None:
        """Block until every queued operation has completed."""
        self._queue.join()
        self._check()

    def close(self) -> None:
        self._queue.put(None)
        self._thread.join()


class CheckpointManager:
    """Owns the checkpoint series for one run.

    Parameters
    ----------
    interval:
        Save every ``interval`` supersteps (1 = every boundary).
    directory:
        When set, checkpoints are additionally pickled there.
    keep:
        Retain at most this many checkpoints (oldest pruned first) —
        recovery only ever needs the latest, the second-newest guards
        against a crash *during* a save.
    checkpoint_bw:
        Modeled snapshot bandwidth in bytes/s, charged per rank on
        every save (default 12 GB/s, PCIe 3.0 x16-ish).  ``None``
        disables cost charging (tests that compare against fault-free
        runs without checkpointing use this).
    async_write:
        Pickle to disk on a background writer thread instead of inline
        (double-buffered; see :class:`_AsyncWriter`).  The modeled cost
        is unchanged either way — ``save`` charges only the device →
        host copy-out, because once the snapshot is in host memory the
        drain to disk proceeds off the critical path.  Every write is
        atomic (temp file + ``os.replace``), so ``restore`` /
        :meth:`latest_on_disk` never observe a partial file; call
        :meth:`flush` to force pending writes out (e.g. before reading
        the directory from another process).
    """

    def __init__(
        self,
        interval: int = 1,
        directory: Optional[str] = None,
        keep: int = 2,
        checkpoint_bw: Optional[float] = 12e9,
        async_write: bool = False,
    ):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.interval = interval
        self.directory = directory
        self.keep = keep
        self.checkpoint_bw = checkpoint_bw
        self.checkpoints: list[Checkpoint] = []
        self.saves = 0
        self._writer: Optional[_AsyncWriter] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            if async_write:
                self._writer = _AsyncWriter()

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def maybe_save(
        self, engine, superstep: int, algo: str, state: dict[str, Any]
    ) -> Optional[Checkpoint]:
        """Save if ``superstep`` falls on the configured interval."""
        if superstep % self.interval != 0:
            return None
        return self.save(engine, superstep, algo, state)

    def save(
        self, engine, superstep: int, algo: str, state: dict[str, Any]
    ) -> Checkpoint:
        """Snapshot the engine at ``superstep`` (unconditionally)."""
        states = [
            {name: arr.copy() for name, arr in ctx.arrays.items()}
            for ctx in engine.contexts
        ]
        # Charge the snapshot cost BEFORE capturing the clock state:
        # the checkpoint must embed its own cost, or a restored run
        # would be missing time the uninterrupted run was charged.
        # Each rank drains its own state at checkpoint bandwidth; the
        # time lands in the recovery lane (resilience overhead).
        if self.checkpoint_bw:
            for rank, per_rank in enumerate(states):
                nbytes = sum(a.nbytes for a in per_rank.values())
                engine.clocks.add_stall(rank, nbytes / self.checkpoint_bw)
        part = engine.partition
        ckpt = Checkpoint(
            superstep=superstep,
            algo=algo,
            states=states,
            counters=engine.counters.state_dict(),
            clocks=engine.clocks.state_dict(),
            # deepcopy so later loop mutation can't reach into history;
            # loop state is small (flags, counters, policy objects)
            algo_state=copy.deepcopy(state),
            grid=(engine.grid.R, engine.grid.C),
            perm=part.perm.copy(),
            localmaps=[blk.localmap for blk in part.blocks],
        )
        self.checkpoints.append(ckpt)
        self.saves += 1
        if self.directory is not None:
            self._write(ckpt)
        self._prune()
        return ckpt

    def _write(self, ckpt: Checkpoint) -> str:
        """Write one checkpoint to disk (inline or on the async writer).

        Either way the write is atomic — see :meth:`_write_sync` — so a
        crash mid-write can never leave a torn file at the final path.
        """
        path = os.path.join(self.directory, f"ckpt_{ckpt.superstep:06d}.pkl")
        if self._writer is not None:
            self._writer.submit(
                lambda: self._write_sync(ckpt, path), is_write=True
            )
        else:
            self._write_sync(ckpt, path)
        return path

    def _write_sync(self, ckpt: Checkpoint, path: str) -> None:
        """Pickle one checkpoint to disk inside an integrity envelope.

        The envelope embeds the sha256 of the pickled checkpoint bytes
        so :meth:`load` can tell a bit-flipped or truncated file from a
        healthy one instead of unpickling garbage.  The bytes go to a
        temporary file in the same directory and are renamed into place
        with ``os.replace``: a crash mid-write leaves the previous
        checkpoint at ``path`` untouched (the temp file is debris, not
        damage — :meth:`latest_on_disk` ignores it).
        """
        payload = pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "schema": CHECKPOINT_SCHEMA,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=os.path.dirname(path) or ".",
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def adopt(self, ckpt: Checkpoint) -> None:
        """Replace the series with an externally produced checkpoint.

        Elastic recovery migrates the latest checkpoint onto a new
        grid and hands it back here; older same-run checkpoints
        describe a layout that no longer exists, so the series resets
        to exactly this one (written to disk too, when configured).
        """
        self.checkpoints = [ckpt]
        if self.directory is not None:
            self._write(ckpt)

    def _prune(self) -> None:
        while len(self.checkpoints) > self.keep:
            old = self.checkpoints.pop(0)
            if self.directory is not None:
                path = os.path.join(
                    self.directory, f"ckpt_{old.superstep:06d}.pkl"
                )
                # Deletions ride the same FIFO as writes so a prune can
                # never remove a file whose (re)write is still queued.
                if self._writer is not None:
                    self._writer.submit(
                        lambda p=path: os.path.exists(p) and os.remove(p),
                        is_write=False,
                    )
                elif os.path.exists(path):
                    os.remove(path)

    def flush(self) -> None:
        """Wait for every pending async write/delete to hit the disk.

        No-op for synchronous managers.  Raises if a background write
        failed since the last operation.
        """
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        """Flush pending I/O and stop the background writer (idempotent)."""
        if self._writer is not None:
            self._writer.flush()
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def clear(self) -> None:
        """Drop in-memory checkpoints (disk files are left for
        post-mortems; a fresh run overwrites them superstep by
        superstep)."""
        self.checkpoints.clear()
        self.saves = 0

    @staticmethod
    def load(path: str) -> Checkpoint:
        """Load one pickled checkpoint from disk.

        Verifies the integrity envelope before unpickling the payload:
        any truncation, bit flip, or non-envelope content raises
        :class:`CheckpointCorruption` (never a raw pickle error).  A
        healthy payload with the wrong schema tag still raises
        ``ValueError`` — that is a version problem, not damage.
        """
        with open(path, "rb") as fh:
            data = fh.read()
        try:
            envelope = pickle.loads(data)
        except Exception as exc:
            raise CheckpointCorruption(
                path, detail=f"unreadable envelope ({exc})"
            ) from exc
        if (
            not isinstance(envelope, dict)
            or "sha256" not in envelope
            or "payload" not in envelope
        ):
            raise CheckpointCorruption(
                path, detail="not a checkpoint integrity envelope"
            )
        actual = hashlib.sha256(envelope["payload"]).hexdigest()
        if actual != envelope["sha256"]:
            raise CheckpointCorruption(
                path, expected=envelope["sha256"], actual=actual
            )
        try:
            ckpt = pickle.loads(envelope["payload"])
        except Exception as exc:  # pragma: no cover - digest catches this
            raise CheckpointCorruption(
                path, detail=f"payload failed to unpickle ({exc})"
            ) from exc
        if not isinstance(ckpt, Checkpoint):
            raise ValueError(f"{path} does not contain a Checkpoint")
        if ckpt.schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint schema mismatch: {path} has {ckpt.schema!r}, "
                f"expected {CHECKPOINT_SCHEMA!r}"
            )
        return ckpt

    @classmethod
    def latest_on_disk(
        cls,
        directory: str,
        engine=None,
        events: Optional[list] = None,
    ) -> Optional[Checkpoint]:
        """Load the newest healthy ``ckpt_*.pkl`` in ``directory``.

        Corrupt files are skipped newest-first, so a partially written
        final checkpoint falls back to its predecessor; returns
        ``None`` when nothing healthy remains.  Each skip is
        *structured*, not silent: a ``checkpoint-skip`` event naming
        the path and the sha256 mismatch is appended to ``events``
        (when given) and recorded on ``engine`` (when given) so it
        surfaces through ``Engine.fault_events`` — silently resuming
        from an older superstep than the operator expects is exactly
        the kind of surprise the fault ledger exists to prevent.  A
        ``UserWarning`` is still emitted for callers with neither.
        """
        try:
            names = sorted(
                n
                for n in os.listdir(directory)
                if n.startswith("ckpt_") and n.endswith(".pkl")
            )
        except FileNotFoundError:
            return None
        for name in reversed(names):
            path = os.path.join(directory, name)
            try:
                return cls.load(path)
            except CheckpointCorruption as exc:
                try:
                    superstep = int(name[len("ckpt_") : -len(".pkl")])
                except ValueError:
                    superstep = 0
                event = {
                    "kind": "checkpoint-skip",
                    "rank": None,
                    "superstep": superstep,
                    "collective": "checkpoint",
                    "retries": 0,
                    "recovery_s": 0.0,
                    "detected": True,
                    "fatal": False,
                    "path": path,
                    "sha256_expected": exc.expected,
                    "sha256_actual": exc.actual,
                    "detail": str(exc),
                }
                if events is not None:
                    events.append(event)
                if engine is not None:
                    engine.record_event(event)
                warnings.warn(f"skipping corrupt checkpoint: {exc}")
        return None
