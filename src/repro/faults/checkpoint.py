"""Superstep checkpointing: snapshot, prune, restore.

A checkpoint captures everything a resumed run needs to be
*bit-identical* to a run that never crashed:

* every named per-rank state array (``RankContext.arrays``),
* the exact :class:`~repro.comm.counters.CommCounters` state,
* the full :class:`~repro.comm.clocks.VirtualClocks` state including
  iteration marks and counter snapshots (so per-iteration traces
  reconstruct exactly across the crash), and
* the algorithm's loop state (frontier flags, iteration counters,
  switch-policy state, ...), supplied by the algorithm at each
  ``Engine.superstep_boundary`` call.

Checkpoints live in memory by default (``CheckpointManager.latest()``
feeds in-process recovery); with ``directory=`` they are *also*
pickled to disk as ``ckpt_NNNNNN.pkl`` so a separate process can
resume — the campaign CLI uses the in-memory path, the disk path is
for crash-the-whole-process scenarios and is covered by tests.

The snapshot cost model is honest about scale: ``save`` charges every
rank's clock with ``bytes / checkpoint_bw`` virtual seconds (device →
host snapshot at PCIe-ish bandwidth), so checkpoint-interval tradeoffs
show up in timing reports the way they would on the real cluster.
"""

from __future__ import annotations

import copy
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "CheckpointManager"]

#: Format tag embedded in every checkpoint (bump on layout changes).
CHECKPOINT_SCHEMA = "repro.checkpoint.v1"


@dataclass
class Checkpoint:
    """One recoverable snapshot at a superstep boundary."""

    superstep: int
    algo: str
    states: list[dict[str, np.ndarray]]
    counters: dict
    clocks: dict
    algo_state: dict[str, Any] = field(default_factory=dict)
    schema: str = CHECKPOINT_SCHEMA

    @property
    def nbytes(self) -> int:
        """Total snapshotted state-array bytes (cost-model input)."""
        return int(
            sum(a.nbytes for per_rank in self.states for a in per_rank.values())
        )


class CheckpointManager:
    """Owns the checkpoint series for one run.

    Parameters
    ----------
    interval:
        Save every ``interval`` supersteps (1 = every boundary).
    directory:
        When set, checkpoints are additionally pickled there.
    keep:
        Retain at most this many checkpoints (oldest pruned first) —
        recovery only ever needs the latest, the second-newest guards
        against a crash *during* a save.
    checkpoint_bw:
        Modeled snapshot bandwidth in bytes/s, charged per rank on
        every save (default 12 GB/s, PCIe 3.0 x16-ish).  ``None``
        disables cost charging (tests that compare against fault-free
        runs without checkpointing use this).
    """

    def __init__(
        self,
        interval: int = 1,
        directory: Optional[str] = None,
        keep: int = 2,
        checkpoint_bw: Optional[float] = 12e9,
    ):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.interval = interval
        self.directory = directory
        self.keep = keep
        self.checkpoint_bw = checkpoint_bw
        self.checkpoints: list[Checkpoint] = []
        self.saves = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def maybe_save(
        self, engine, superstep: int, algo: str, state: dict[str, Any]
    ) -> Optional[Checkpoint]:
        """Save if ``superstep`` falls on the configured interval."""
        if superstep % self.interval != 0:
            return None
        return self.save(engine, superstep, algo, state)

    def save(
        self, engine, superstep: int, algo: str, state: dict[str, Any]
    ) -> Checkpoint:
        """Snapshot the engine at ``superstep`` (unconditionally)."""
        states = [
            {name: arr.copy() for name, arr in ctx.arrays.items()}
            for ctx in engine.contexts
        ]
        # Charge the snapshot cost BEFORE capturing the clock state:
        # the checkpoint must embed its own cost, or a restored run
        # would be missing time the uninterrupted run was charged.
        # Each rank drains its own state at checkpoint bandwidth; the
        # time lands in the recovery lane (resilience overhead).
        if self.checkpoint_bw:
            for rank, per_rank in enumerate(states):
                nbytes = sum(a.nbytes for a in per_rank.values())
                engine.clocks.add_stall(rank, nbytes / self.checkpoint_bw)
        ckpt = Checkpoint(
            superstep=superstep,
            algo=algo,
            states=states,
            counters=engine.counters.state_dict(),
            clocks=engine.clocks.state_dict(),
            # deepcopy so later loop mutation can't reach into history;
            # loop state is small (flags, counters, policy objects)
            algo_state=copy.deepcopy(state),
        )
        self.checkpoints.append(ckpt)
        self.saves += 1
        if self.directory is not None:
            path = os.path.join(self.directory, f"ckpt_{superstep:06d}.pkl")
            with open(path, "wb") as fh:
                pickle.dump(ckpt, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._prune()
        return ckpt

    def _prune(self) -> None:
        while len(self.checkpoints) > self.keep:
            old = self.checkpoints.pop(0)
            if self.directory is not None:
                path = os.path.join(
                    self.directory, f"ckpt_{old.superstep:06d}.pkl"
                )
                if os.path.exists(path):
                    os.remove(path)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def clear(self) -> None:
        """Drop in-memory checkpoints (disk files are left for
        post-mortems; a fresh run overwrites them superstep by
        superstep)."""
        self.checkpoints.clear()
        self.saves = 0

    @staticmethod
    def load(path: str) -> Checkpoint:
        """Load one pickled checkpoint from disk."""
        with open(path, "rb") as fh:
            ckpt = pickle.load(fh)
        if not isinstance(ckpt, Checkpoint):
            raise ValueError(f"{path} does not contain a Checkpoint")
        if ckpt.schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint schema mismatch: {path} has {ckpt.schema!r}, "
                f"expected {CHECKPOINT_SCHEMA!r}"
            )
        return ckpt

    @classmethod
    def latest_on_disk(cls, directory: str) -> Optional[Checkpoint]:
        """Load the newest ``ckpt_*.pkl`` in ``directory`` (or None)."""
        try:
            names = sorted(
                n
                for n in os.listdir(directory)
                if n.startswith("ckpt_") and n.endswith(".pkl")
            )
        except FileNotFoundError:
            return None
        if not names:
            return None
        return cls.load(os.path.join(directory, names[-1]))
