"""Deterministic fault plans (the simulator's fault model).

At the paper's target scale — 400 V100s across 67 AiMOS nodes, with
multi-hour WDC12 runs — rank crashes, flapping links, corrupted
payloads, and stragglers are operational facts, not edge cases.  The
simulator models them the same way it models time: as explicit,
deterministic events.  A :class:`FaultPlan` is a list of
:class:`FaultSpec` entries naming *what* goes wrong, *where* (rank),
and *when* (superstep); :class:`~repro.faults.injector.FaultInjector`
executes the plan against a run.

Determinism is the point: a plan is either hand-written (tests pin
exact scenarios) or drawn from a seeded generator
(:meth:`FaultPlan.random`), and the same plan against the same program
produces the same fault schedule, the same retries, and the same
failure — which is what makes recovery *testable*.

Fault kinds
-----------
``crash``
    The rank dies.  The next collective involving it raises
    :class:`~repro.faults.injector.RankFailure`; recovery means
    restoring from a checkpoint (the spec is one-shot, modeling the
    crashed rank being replaced before the resumed run).
``transient``
    A collective fails ``count`` times before succeeding (link flap,
    NCCL timeout).  The resilient communicator retries with
    exponential backoff charged to the virtual clocks.
``corruption``
    The payload arrives with ``count`` bit flips' worth of damage —
    one flipped bit per attempt — detected by checksum mismatch and
    retransmitted like a transient failure.
``straggler``
    The rank stalls ``delay_s`` virtual seconds before the collective,
    gating the whole group (BSP semantics).
``recover``
    A *replacement* rank becomes available: ``count`` spare GPUs
    arrive at the superstep boundary.  Consumed by
    ``Engine.superstep_boundary`` (not by a collective) and handed to
    the attached autoscaler — an
    :class:`~repro.faults.health.AutoscalePolicy` decides whether the
    run grows back onto ``p+1`` ranks or holds.
``memflip``
    Silent data corruption in *device memory*: ``count`` bits flip in
    the target rank's registered state arrays at the superstep
    boundary — compute-side damage the communication checksum never
    sees.  Consumed by ``Engine.superstep_boundary`` before integrity
    verification; detection and repair belong to the attached
    :class:`~repro.faults.integrity.IntegrityLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "FaultEvent"]

#: Recognized fault kinds, in documentation order.
FAULT_KINDS = (
    "crash", "transient", "corruption", "straggler", "recover", "memflip",
)

#: Kinds whose specs must name an explicit target rank.
_RANKED_KINDS = ("crash", "straggler", "memflip")


def _doc_order(kinds) -> str:
    """Render a subset of kinds in :data:`FAULT_KINDS` documentation
    order (validation messages quote choices in this order)."""
    return ", ".join(k for k in FAULT_KINDS if k in kinds)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    superstep:
        1-based BSP superstep (iteration) during which the fault fires.
    rank:
        Target rank; ``None`` matches any rank (the first collective of
        the superstep triggers it).  Crashes, stragglers, and memflips
        require an explicit rank.
    collective:
        Restrict to one collective kind (``"allreduce"``,
        ``"allgatherv"``, ...); ``None`` matches any.  Boundary faults
        (``recover``, ``memflip``) never match a collective.
    count:
        Failed attempts for ``transient``/``corruption`` (each retried
        with backoff; exceeding the communicator's retry budget turns
        the fault fatal), or bits flipped for ``memflip``.
    delay_s:
        Stall duration for ``straggler`` faults, in virtual seconds.
    bit:
        Bit index flipped by ``corruption`` faults (position within the
        payload's byte stream) and starting bit for ``memflip`` faults
        (position within the rank's state-array byte stream); wrapped
        to the target size in both cases.
    """

    kind: str
    superstep: int
    rank: Optional[int] = None
    collective: Optional[str] = None
    count: int = 1
    delay_s: float = 0.0
    bit: int = 0

    def __post_init__(self) -> None:
        # Every message names the offending field first; messages that
        # hinge on the fault kind quote the relevant choices in
        # FAULT_KINDS documentation order.
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind: unknown fault kind {self.kind!r}; choose from "
                f"{_doc_order(FAULT_KINDS)}"
            )
        if self.superstep < 1:
            raise ValueError(
                f"superstep: must be >= 1, got {self.superstep}"
            )
        if self.count < 1:
            raise ValueError(f"count: must be >= 1, got {self.count}")
        if self.bit < 0:
            raise ValueError(f"bit: must be >= 0, got {self.bit}")
        if self.kind == "straggler" and self.delay_s <= 0:
            raise ValueError(
                f"delay_s: straggler faults need delay_s > 0, "
                f"got {self.delay_s}"
            )
        if self.kind in _RANKED_KINDS and self.rank is None:
            raise ValueError(
                f"rank: {self.kind} faults need an explicit rank "
                f"(as do all of: {_doc_order(_RANKED_KINDS)})"
            )
        if self.kind == "recover" and self.rank is not None:
            # Spares are anonymous until adopted: the grown grid assigns
            # rank numbers, so a targeted recover spec is meaningless.
            raise ValueError(
                "rank: recover specs model anonymous spare arrivals; "
                "rank must be None"
            )
        if self.kind in ("recover", "memflip") and self.collective is not None:
            raise ValueError(
                f"collective: {self.kind} specs fire at the superstep "
                f"boundary, not inside a collective; collective must be "
                f"None (boundary kinds: {_doc_order(('recover', 'memflip'))})"
            )
        if self.rank is not None and self.rank < 0:
            raise ValueError(f"rank: must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence, as observed during a run.

    Events are what surfaces everywhere downstream: trace rows carry
    them per iteration, the ``faults`` CLI prints them, and
    :class:`~repro.faults.injector.RankFailure` embeds the fatal one.
    ``recovery_s`` is the virtual time the event cost (stall seconds or
    accumulated retry backoff); ``retries`` counts retransmission
    attempts; ``fatal`` marks the event that killed the run.
    """

    kind: str
    rank: Optional[int]
    superstep: int
    collective: str
    retries: int = 0
    recovery_s: float = 0.0
    detected: bool = True
    fatal: bool = False

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rank": self.rank,
            "superstep": self.superstep,
            "collective": self.collective,
            "retries": self.retries,
            "recovery_s": self.recovery_s,
            "detected": self.detected,
            "fatal": self.fatal,
        }


@dataclass
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries."""

    specs: list[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.specs = sorted(
            self.specs, key=lambda s: (s.superstep, FAULT_KINDS.index(s.kind))
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    @classmethod
    def random(
        cls,
        seed: int,
        n_supersteps: int,
        n_ranks: int,
        crash_rate: float = 0.0,
        transient_rate: float = 0.1,
        corruption_rate: float = 0.05,
        straggler_rate: float = 0.1,
        straggler_delay_s: float = 1e-3,
        max_crashes: int = 1,
        memflip_rate: float = 0.0,
    ) -> "FaultPlan":
        """Draw a plan from a seeded generator (same seed, same plan).

        Rates are per-superstep Bernoulli probabilities; each drawn
        fault picks a uniform random rank (and bit, for corruption and
        memflip).
        Crashes are capped at ``max_crashes`` — each one ends a run, so
        more than a couple makes a scenario unfinishable even with
        checkpoints at every boundary.
        """
        if n_supersteps < 0:
            raise ValueError(
                f"n_supersteps must be >= 0, got {n_supersteps}"
            )
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        rates = {
            "crash_rate": crash_rate,
            "transient_rate": transient_rate,
            "corruption_rate": corruption_rate,
            "straggler_rate": straggler_rate,
            "memflip_rate": memflip_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {rate}"
                )
        if straggler_rate > 0 and straggler_delay_s <= 0:
            raise ValueError(
                f"straggler_delay_s must be > 0 when straggler_rate > 0, "
                f"got {straggler_delay_s}"
            )
        if max_crashes < 0:
            raise ValueError(f"max_crashes must be >= 0, got {max_crashes}")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        crashes = 0
        for step in range(1, n_supersteps + 1):
            if crashes < max_crashes and rng.random() < crash_rate:
                specs.append(
                    FaultSpec("crash", step, rank=int(rng.integers(n_ranks)))
                )
                crashes += 1
            if rng.random() < transient_rate:
                specs.append(
                    FaultSpec(
                        "transient",
                        step,
                        count=int(rng.integers(1, 3)),
                    )
                )
            if rng.random() < corruption_rate:
                specs.append(
                    FaultSpec(
                        "corruption",
                        step,
                        bit=int(rng.integers(0, 64)),
                    )
                )
            if rng.random() < straggler_rate:
                specs.append(
                    FaultSpec(
                        "straggler",
                        step,
                        rank=int(rng.integers(n_ranks)),
                        delay_s=float(straggler_delay_s * (1 + rng.random())),
                    )
                )
            if rng.random() < memflip_rate:
                specs.append(
                    FaultSpec(
                        "memflip",
                        step,
                        rank=int(rng.integers(n_ranks)),
                        bit=int(rng.integers(0, 4096)),
                    )
                )
        return cls(specs=specs, seed=seed)

    def for_superstep(self, superstep: int) -> list[FaultSpec]:
        """Specs scheduled exactly at ``superstep`` (crashes are
        handled separately: they persist from their superstep on)."""
        return [s for s in self.specs if s.superstep == superstep]

    def describe(self) -> str:
        """Human-readable one-line-per-spec rendering."""
        if not self.specs:
            return "(no faults planned)"
        lines = []
        for s in self.specs:
            where = f"rank {s.rank}" if s.rank is not None else "any rank"
            what = {
                "crash": "crash",
                "transient": f"{s.count}x transient failure",
                "corruption": f"bit {s.bit} flip",
                "straggler": f"stall {s.delay_s * 1e3:.3f} ms",
                "recover": f"{s.count} spare rank(s) arrive",
                "memflip": f"{s.count} state bit(s) flip from bit {s.bit}",
            }[s.kind]
            coll = f" on {s.collective}" if s.collective else ""
            lines.append(f"superstep {s.superstep}: {what} at {where}{coll}")
        return "\n".join(lines)
