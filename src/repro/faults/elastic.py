"""Elastic degraded-mode recovery: regrid onto the surviving GPUs.

PR 4's recovery machinery resumes a crashed run *on the same grid* —
the crashed rank is modeled as replaced.  At the paper's scale
(hundreds of GPUs, multi-hour WDC12 runs) a replacement is not always
available: the honest degraded mode is to **continue the job on fewer
ranks**.  This module implements that path:

1. the latest :class:`~repro.faults.checkpoint.Checkpoint` is opened
   under *its own* recorded 2D layout (grid, permutation, local maps)
   and every per-rank state array is gathered back into a global
   original-GID-order vector — the checkpoint-time analogue of
   :meth:`TwoDPartition.gather_row_state`;
2. a pluggable :class:`GridPolicy` chooses the surviving grid
   ``R'×C'`` from :func:`~repro.comm.grid.factor_pairs` over the
   remaining ranks (or keeps the grid, consuming a hot spare);
3. :meth:`Engine.rebuild_on_grid` re-partitions the graph and carries
   counters, clocks, the fault injector, and the checkpoint manager
   onto the new grid;
4. the global vectors are re-scattered, the algorithm loop state is
   translated between the two GID relabelings (a bijection — covered
   by a Hypothesis round-trip property test), and the run resumes
   from the checkpointed superstep via the ordinary ``resume=True``
   path.

The migration is charged to a dedicated ``regrid`` clock lane
(:meth:`VirtualClocks.charge_regrid`): one checkpoint-sized AllGatherv
to reassemble global state, one edge-list movement to re-partition,
and one scatter of the new per-rank windows, all at ``regrid_bw``.

Exactness: every monotone (min/max-reducing) algorithm — bfs, cc,
sssp, label propagation, pointer jumping, and min/max vertex programs
— finishes with values **bit-identical** to the fault-free run, on any
surviving grid, because min/max reductions are insensitive to the
operand grouping a new grid induces.  PageRank's floating-point *sum*
reductions are grouping-sensitive: values are bit-identical on the
spare-pool (same-grid) path and agree to within ~1 ulp after a shrink
(see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Optional, Union

import numpy as np

from ..comm.clocks import VirtualClocks
from ..comm.grid import Grid2D, squarest_grid
from .checkpoint import Checkpoint
from .injector import RankFailure, SpareArrival

__all__ = [
    "GridPolicy",
    "PreferSquare",
    "KeepRows",
    "SparePool",
    "resolve_policy",
    "ElasticUnrecoverable",
    "ElasticRecovery",
    "CheckpointLayout",
    "gather_checkpoint_state",
    "migrate_checkpoint",
    "drive_elastic",
]


# ----------------------------------------------------------------------
# grid policies
# ----------------------------------------------------------------------
class GridPolicy:
    """Chooses the post-failure grid.

    ``choose`` receives the failed engine's grid and the number of
    surviving ranks; it returns the new :class:`Grid2D`, or ``None``
    to keep the current grid (a hot spare replaces the dead rank).
    """

    name = "grid-policy"

    def choose(self, grid: Grid2D, survivors: int) -> Optional[Grid2D]:
        raise NotImplementedError


class PreferSquare(GridPolicy):
    """Use every survivor on the most square factor pair (the paper's
    default layout preference — square grids minimize the larger of
    the two group sizes)."""

    name = "prefer-square"

    def choose(self, grid: Grid2D, survivors: int) -> Optional[Grid2D]:
        return squarest_grid(survivors)


class KeepRows(GridPolicy):
    """Preserve the number of block-rows ``C`` (and therefore the
    row-group vertex ranges), shrinking each row group to
    ``R' = survivors // C`` ranks.

    Losing one rank never divides evenly (``C`` divides ``p`` so it
    cannot divide ``p - 1``), so this policy deliberately idles the
    ``survivors mod C`` leftover ranks — the trade is stable vertex
    ownership against full utilization.  When fewer than ``C``
    survivors remain it falls back to :class:`PreferSquare`.
    """

    name = "keep-rows"

    def choose(self, grid: Grid2D, survivors: int) -> Optional[Grid2D]:
        R = survivors // grid.C
        if R >= 1:
            return Grid2D(R=R, C=grid.C)
        return squarest_grid(survivors)


class SparePool(GridPolicy):
    """Hold ``spares`` hot standby GPUs: while the pool lasts the grid
    is unchanged (the spare adopts the dead rank's checkpointed state);
    once exhausted, defer to ``fallback`` (default
    :class:`PreferSquare`)."""

    name = "spare-pool"

    def __init__(self, spares: int = 1, fallback: Optional[GridPolicy] = None):
        if spares < 0:
            raise ValueError(f"spares must be >= 0, got {spares}")
        self.spares = spares
        self.fallback = fallback if fallback is not None else PreferSquare()

    def choose(self, grid: Grid2D, survivors: int) -> Optional[Grid2D]:
        if self.spares > 0:
            self.spares -= 1
            return None
        return self.fallback.choose(grid, survivors)


def resolve_policy(spec: Union[GridPolicy, str]) -> GridPolicy:
    """Resolve a policy spec: a :class:`GridPolicy` instance, or one of
    ``"prefer-square"``, ``"keep-rows"``, ``"spare-pool"`` /
    ``"spare-pool:N"`` (a pool of N spares)."""
    if isinstance(spec, GridPolicy):
        return spec
    if not isinstance(spec, str):
        raise ValueError(
            f"grid policy must be a GridPolicy or a string spec, "
            f"got {type(spec).__name__}: {spec!r}"
        )
    name, _, arg = spec.partition(":")
    if name == "prefer-square" and not arg:
        return PreferSquare()
    if name == "keep-rows" and not arg:
        return KeepRows()
    if name == "spare-pool":
        if not arg:
            return SparePool()
        try:
            spares = int(arg)
        except ValueError:
            raise ValueError(
                f"spare-pool size must be an integer, got {spec!r}"
            ) from None
        return SparePool(spares=spares)
    raise ValueError(
        f"unknown grid policy {spec!r}; choose from 'prefer-square', "
        f"'keep-rows', 'spare-pool', 'spare-pool:N'"
    )


class ElasticUnrecoverable(RuntimeError):
    """Elastic recovery cannot continue the run (no checkpoint, no
    survivors, or the regrid budget is exhausted)."""


# ----------------------------------------------------------------------
# checkpoint layout and state migration
# ----------------------------------------------------------------------
class CheckpointLayout:
    """The 2D layout a checkpoint's states were captured under.

    A thin read-only view over the checkpoint's recorded grid,
    permutation, and per-rank local maps — deliberately independent of
    any live engine, because after a previous regrid the engine's
    layout no longer matches an older checkpoint's.
    """

    def __init__(self, ckpt: Checkpoint):
        if ckpt.grid is None or ckpt.perm is None or ckpt.localmaps is None:
            raise ElasticUnrecoverable(
                "checkpoint predates layout recording (no grid/perm/"
                "localmaps); elastic recovery needs a layout-bearing "
                "checkpoint"
            )
        self.grid = Grid2D(R=ckpt.grid[0], C=ckpt.grid[1])
        self.perm = np.asarray(ckpt.perm)
        self.localmaps = list(ckpt.localmaps)
        self.n_vertices = int(self.perm.shape[0])
        inv = np.empty(self.n_vertices, dtype=np.int64)
        inv[self.perm] = np.arange(self.n_vertices, dtype=np.int64)
        self._inv_perm = inv

    def original_gid(self, relabeled) -> np.ndarray:
        return self._inv_perm[np.asarray(relabeled)]

    def relabeled_gid(self, original) -> np.ndarray:
        return self.perm[np.asarray(original)]


def gather_checkpoint_state(ckpt: Checkpoint) -> dict[str, np.ndarray]:
    """Reconstruct every named state as a global original-order vector.

    The checkpoint-time analogue of
    :meth:`~repro.graph.partition.twod.TwoDPartition.gather_row_state`:
    read the row window of the first rank of each row group (row
    groups are consistent at a superstep boundary) and undo the GID
    relabeling via the recorded permutation.
    """
    layout = CheckpointLayout(ckpt)
    names = sorted({name for per_rank in ckpt.states for name in per_rank})
    out: dict[str, np.ndarray] = {}
    for name in names:
        rel: Optional[np.ndarray] = None
        for id_r in range(layout.grid.C):
            rank = layout.grid.rank_of(id_r, 0)
            lm = layout.localmaps[rank]
            arr = ckpt.states[rank].get(name)
            if arr is None:
                raise ValueError(
                    f"state {name!r} missing on rank {rank} of the "
                    f"checkpoint; cannot gather a partial state"
                )
            if arr.shape[0] != lm.n_total:
                raise ValueError(
                    f"state {name!r} on rank {rank} has length "
                    f"{arr.shape[0]}, expected the layout's N_T="
                    f"{lm.n_total}; only per-vertex states migrate"
                )
            if rel is None:
                # Trailing dims (e.g. batched k-lane states of shape
                # (n, k)) ride along: the permutation indexes rows.
                rel = np.zeros(
                    (layout.n_vertices,) + arr.shape[1:], dtype=arr.dtype
                )
            rel[lm.row_start : lm.row_stop] = arr[lm.row_slice]
        assert rel is not None
        out[name] = rel[layout.perm]
    return out


def _queue_to_global_mask(
    queues: list[np.ndarray], layout: CheckpointLayout
) -> np.ndarray:
    """Per-rank row-LID queues -> original-order membership mask."""
    mask = np.zeros(layout.n_vertices, dtype=bool)
    for rank, lids in enumerate(queues):
        lids = np.asarray(lids, dtype=np.int64)
        if lids.size == 0:
            continue
        lm = layout.localmaps[rank]
        rel = lids - lm.row_offset + lm.row_start
        mask[layout.original_gid(rel)] = True
    return mask


def _global_mask_to_queues(mask: np.ndarray, part) -> list[np.ndarray]:
    """Original-order membership mask -> per-rank row-LID queues."""
    rel = part.to_relabeled_order(mask)
    out = []
    for blk in part.blocks:
        lm = blk.localmap
        hits = np.nonzero(rel[lm.row_start : lm.row_stop])[0]
        out.append((hits + lm.row_offset).astype(np.int64))
    return out


def _migrate_policy(policy, new_engine):
    """Rebuild a SwitchPolicy against the new grid, preserving the
    one-way dense->sparse switch state."""
    from ..patterns.switching import SwitchPolicy

    fresh = SwitchPolicy(
        n_vertices=policy.n_vertices,
        grid=new_engine.grid,
        mode=policy.mode,
        threshold_factor=policy.threshold_factor,
    )
    fresh._sparse_now = policy._sparse_now
    return fresh


def _migrate_pointer_jump(
    state: dict, layout: CheckpointLayout, new_engine
) -> dict:
    """Translate the pointer-jumping home tables between relabelings.

    Home sets tile the vertex space (each vertex has exactly one rank
    owning it in both row and column range), and ``home_parent``
    entries are GID *values*, so both the positions and the stored
    pointers must be re-mapped.
    """
    n = layout.n_vertices
    parent_orig = np.empty(n, dtype=np.int64)
    conv_orig = np.zeros(n, dtype=bool)
    for rank, gids in state["home_gids"].items():
        og = layout.original_gid(gids)
        parent_orig[og] = layout.original_gid(state["home_parent"][rank])
        conv_orig[og] = state["converged"][rank]

    part = new_engine.partition
    home_gids: dict[int, np.ndarray] = {}
    home_parent: dict[int, np.ndarray] = {}
    converged: dict[int, np.ndarray] = {}
    for blk in part.blocks:
        lm = blk.localmap
        lo = max(lm.row_start, lm.col_start)
        hi = min(lm.row_stop, lm.col_stop)
        gids = np.arange(lo, max(lo, hi), dtype=np.int64)
        og = part.original_gid(gids)
        home_gids[blk.rank] = gids
        home_parent[blk.rank] = part.perm[parent_orig[og]]
        converged[blk.rank] = conv_orig[og].copy()
    out = dict(state)
    out["home_gids"] = home_gids
    out["home_parent"] = home_parent
    out["converged"] = converged
    return out


def _migrate_algo_state(
    state: dict[str, Any], layout: CheckpointLayout, new_engine
) -> dict[str, Any]:
    """Translate an algorithm's loop state onto the new layout."""
    if "home_gids" in state:
        return _migrate_pointer_jump(state, layout, new_engine)
    out: dict[str, Any] = {}
    for key, value in state.items():
        if key in ("frontier", "active") and isinstance(value, list):
            mask = _queue_to_global_mask(value, layout)
            out[key] = _global_mask_to_queues(mask, new_engine.partition)
        elif key == "policy" and value is not None:
            out[key] = _migrate_policy(value, new_engine)
        else:
            out[key] = copy.deepcopy(value)
    return out


def migrate_checkpoint(
    ckpt: Checkpoint, new_engine, regrid_bw: float = 12e9
) -> tuple[Checkpoint, float]:
    """Re-express a checkpoint on ``new_engine``'s grid.

    Returns the migrated checkpoint and the charged migration time.
    The cost model is one checkpoint-sized AllGatherv (global state
    reassembly), one edge-list movement (re-partition), and one
    scatter of the new per-rank windows, all at ``regrid_bw`` bytes/s.
    The time is charged into the *migrated checkpoint's* clock state
    (synchronizing all new ranks), so the subsequent
    ``Engine.restore`` keeps it — exactly how checkpoint drains embed
    their own cost.  Communication counters are deliberately left
    untouched: like retries, migration traffic describes the weather,
    not the algorithm.
    """
    layout = CheckpointLayout(ckpt)
    part = new_engine.partition
    if part.n_vertices != layout.n_vertices:
        raise ValueError(
            f"cannot migrate a checkpoint of {layout.n_vertices} vertices "
            f"onto a partition of {part.n_vertices}"
        )
    global_state = gather_checkpoint_state(ckpt)

    new_states: list[dict[str, np.ndarray]] = [
        {
            name: part.scatter_global(vec, rank)
            for name, vec in global_state.items()
        }
        for rank in range(new_engine.n_ranks)
    ]

    gather_bytes = sum(vec.nbytes for vec in global_state.values())
    edge_bytes = new_engine.graph.n_edges * 16  # two int64 endpoints
    if part.weighted:
        edge_bytes += new_engine.graph.n_edges * 8
    scatter_bytes = sum(
        arr.nbytes for per_rank in new_states for arr in per_rank.values()
    )
    cost_s = (gather_bytes + edge_bytes + scatter_bytes) / regrid_bw

    clocks = VirtualClocks(new_engine.n_ranks)
    clocks.load_state(
        VirtualClocks.align_state(ckpt.clocks, new_engine.n_ranks)
    )
    clocks.charge_regrid(range(new_engine.n_ranks), cost_s)

    migrated = Checkpoint(
        superstep=ckpt.superstep,
        algo=ckpt.algo,
        states=new_states,
        counters=copy.deepcopy(ckpt.counters),
        clocks=clocks.state_dict(),
        algo_state=_migrate_algo_state(ckpt.algo_state, layout, new_engine),
        grid=(new_engine.grid.R, new_engine.grid.C),
        perm=part.perm.copy(),
        localmaps=[blk.localmap for blk in part.blocks],
    )
    return migrated, cost_s


# ----------------------------------------------------------------------
# the recovery driver
# ----------------------------------------------------------------------
class ElasticRecovery:
    """Policy object turning unrecoverable crashes into regrids.

    Parameters
    ----------
    policy:
        A :class:`GridPolicy` or string spec (see
        :func:`resolve_policy`).
    regrid_bw:
        Modeled migration bandwidth in bytes/s (default 12 GB/s,
        matching the checkpoint drain bandwidth).
    max_regrids:
        Give up (raise :class:`ElasticUnrecoverable`) after this many
        regrids — a cascading-failure brake.
    """

    def __init__(
        self,
        policy: Union[GridPolicy, str] = "prefer-square",
        regrid_bw: float = 12e9,
        max_regrids: int = 4,
    ):
        if regrid_bw <= 0:
            raise ValueError(f"regrid_bw must be > 0, got {regrid_bw}")
        if max_regrids < 1:
            raise ValueError(f"max_regrids must be >= 1, got {max_regrids}")
        self.policy = resolve_policy(policy)
        self.regrid_bw = regrid_bw
        self.max_regrids = max_regrids
        self.regrids = 0
        self.events: list[dict] = []

    def prepare(self, engine) -> None:
        """Hook for subclasses that install per-engine machinery (the
        health monitor and autoscaler of
        :class:`~repro.faults.health.AutoscaleRecovery`).  The base
        recovery is purely reactive — nothing to install."""

    def grow(self, engine, arrival: SpareArrival):
        """Hook for the grow direction.  The base recovery only
        shrinks; spare adoption needs
        :class:`~repro.faults.health.AutoscaleRecovery`."""
        raise ElasticUnrecoverable(
            f"spare arrived at superstep {arrival.superstep} but "
            f"{type(self).__name__} cannot grow; use AutoscaleRecovery"
        )

    def recover(self, engine, failure: RankFailure):
        """Handle one permanent rank loss; returns the engine to resume
        on (a rebuilt engine, or the same one when a spare absorbed the
        loss).  The engine's checkpoint manager is left holding the
        migrated checkpoint, ready for ``resume=True``."""
        mgr = engine.checkpoints
        if mgr is None or mgr.latest() is None:
            raise ElasticUnrecoverable(
                f"rank {failure.rank} lost at superstep {failure.superstep} "
                f"with no checkpoint to migrate from"
            ) from failure
        if self.regrids >= self.max_regrids:
            raise ElasticUnrecoverable(
                f"regrid budget exhausted ({self.max_regrids}); rank "
                f"{failure.rank} lost at superstep {failure.superstep}"
            ) from failure
        survivors = engine.n_ranks - 1
        if survivors < 1:
            raise ElasticUnrecoverable(
                "no surviving ranks to regrid onto"
            ) from failure

        ckpt = mgr.latest()
        new_grid = self.policy.choose(engine.grid, survivors)
        if new_grid is None:
            # Spare path: the grid is unchanged; charge re-materializing
            # the dead rank's state onto the spare (all ranks wait at
            # the BSP boundary while it catches up).
            dead = ckpt.states[failure.rank] if failure.rank is not None else {}
            cost_s = sum(a.nbytes for a in dead.values()) / self.regrid_bw
            migrated = copy.deepcopy(ckpt)
            clocks = VirtualClocks(engine.n_ranks)
            clocks.load_state(migrated.clocks)
            clocks.charge_regrid(range(engine.n_ranks), cost_s)
            migrated.clocks = clocks.state_dict()
            new_engine = engine
            spare = True
        else:
            if new_grid.n_ranks > survivors:
                raise ElasticUnrecoverable(
                    f"policy {self.policy.name!r} chose a "
                    f"{new_grid.n_ranks}-rank grid with only {survivors} "
                    f"survivors"
                ) from failure
            new_engine = engine.rebuild_on_grid(new_grid)
            migrated, cost_s = migrate_checkpoint(
                ckpt, new_engine, regrid_bw=self.regrid_bw
            )
            spare = False
        mgr.adopt(migrated)
        self.regrids += 1
        note_regrid = getattr(self.policy, "note_regrid", None)
        if note_regrid is not None:
            note_regrid(failure.superstep)
        event = {
            "kind": "regrid",
            "rank": failure.rank,
            "superstep": failure.superstep,
            "collective": failure.collective,
            "retries": failure.retries,
            "recovery_s": cost_s,
            "detected": True,
            "fatal": False,
            "from_grid": (engine.grid.R, engine.grid.C),
            "to_grid": (new_engine.grid.R, new_engine.grid.C),
            "policy": self.policy.name,
            "spare": spare,
            "reason": getattr(failure, "fault_kind", "crash"),
        }
        new_engine.record_regrid(event)
        self.events.append(event)
        return new_engine


def _as_recovery(elastic) -> ElasticRecovery:
    if isinstance(elastic, ElasticRecovery):
        return elastic
    if elastic is True:
        return ElasticRecovery()
    return ElasticRecovery(policy=elastic)


def drive_elastic(
    runner: Callable[[Any, bool], Any],
    engine,
    elastic,
    resume: bool = False,
):
    """Run ``runner(engine, resume)`` under an elastic-recovery loop.

    Every :class:`RankFailure` that escapes the resilient
    communicator's retry budget becomes a regrid: the latest
    checkpoint is migrated onto the surviving grid and the runner is
    re-entered with ``resume=True``.  Returns the runner's result with
    ``extra["elastic"]`` describing what happened — including the
    final engine, which holds the post-regrid clocks, counters, and
    trace state (the original engine is stale after a shrink).
    """
    recovery = _as_recovery(elastic)
    current = engine
    use_resume = resume
    recovery.prepare(current)
    while True:
        try:
            result = runner(current, use_resume)
            break
        except SpareArrival as arrival:
            current = recovery.grow(current, arrival)
            use_resume = True
        except RankFailure as failure:
            current = recovery.recover(current, failure)
            use_resume = True
    result.extra["elastic"] = {
        "engine": current,
        "regrids": recovery.regrids,
        "events": list(recovery.events),
        "final_grid": (current.grid.R, current.grid.C),
        "policy": recovery.policy.name,
    }
    return result
