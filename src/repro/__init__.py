"""HPCGraph-GPU reproduction: 2D distributed graph processing on
simulated GPU clusters.

Reproduces "Scaling Distributed Graph Processing to Hundreds of GPUs"
(Slota & Mandulak, ICPP 2025).  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.
"""

from . import (
    algorithms,
    baselines,
    bench,
    cluster,
    comm,
    faults,
    graph,
    patterns,
    queueing,
)
from .core import (
    AlgorithmResult,
    Engine,
    RankContext,
    TimingReport,
    VertexProgram,
    run_vertex_program,
)

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "baselines",
    "bench",
    "cluster",
    "comm",
    "faults",
    "graph",
    "patterns",
    "queueing",
    "AlgorithmResult",
    "Engine",
    "RankContext",
    "TimingReport",
    "VertexProgram",
    "run_vertex_program",
]
