"""Shared "device kernel" layer for the simulator's functional hot path.

The paper's CUDA code funnels every algorithm through a small set of
shared, tuned edge-parallel primitives — the ReduceQueue reduction
(Alg. 5) and the Manhattan-collapse expansion (Alg. 6) — instead of
re-implementing scatter loops per algorithm.  This package is the NumPy
analogue: one fused, sort-based :func:`scatter_reduce` replaces the
``np.unique`` → ``copy`` → ``np.ufunc.at`` → compare idiom at every
call site (algorithms, patterns, baselines), and :func:`segment_reduce`
exposes the underlying segmented reduction for histogram-style kernels.

Everything here is purely functional: kernels never touch the engine's
cost model or counters, so routing a call site through this layer is
observationally pure for the modeled timings — only wall-clock time
changes.
"""

from .buffers import BufferPool
from .scatter import (
    ScatterError,
    scatter_reduce,
    scatter_reduce_lanes,
    scatter_reduce_reference,
    segment_reduce,
    unique_bounded,
)

__all__ = [
    "BufferPool",
    "ScatterError",
    "scatter_reduce",
    "scatter_reduce_lanes",
    "scatter_reduce_reference",
    "segment_reduce",
    "unique_bounded",
]
