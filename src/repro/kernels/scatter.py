"""Fused scatter-reduce kernel (the simulator's ReduceQueue, Alg. 5).

The call sites used to wrap every update in the same idiom:
``np.unique(lids)`` + ``old.copy()`` + ``np.<op>.at`` + compare.  The
``np.unique`` hash/sort pass dominates on edge-sized index arrays
(it costs a full sort of ``lids`` just to learn which entries to
compare), and every call site re-implemented the compare by hand.
:func:`scatter_reduce` centralizes the update and picks a strategy by
*regime*:

* **dense** (``lids`` comparable to or larger than ``state``): snapshot
  the state, run the unbuffered ``np.<op>.at`` (SIMD fast path in
  modern NumPy), and diff the full array — no sort of the edge-sized
  index array at all;
* **sparse** (``lids`` much smaller than ``state``): classic
  ``np.unique`` bookkeeping, where sorting the small queue is cheaper
  than touching the whole state;
* **structured dtypes** (``{value, tiebreak}`` pairs): ufuncs cannot
  reduce structured scalars, so a ``np.lexsort`` + segment pass
  reduces lexicographically over the fields.

Equivalence contract (see ``docs/PERF.md``): both numeric regimes
perform the *identical* ``np.<op>.at`` update as the reference idiom —
the stored state is bit-identical for every op, including the
left-to-right accumulation order of ``sum`` and NaN propagation of
``min``/``max``.  Change detection is always the explicit exact
compare ``new != old``: for ``sum`` a delta of ``0.0`` — or deltas
that cancel exactly — leaves a vertex out of the changed set,
deterministically.

:func:`segment_reduce` exposes the sorted-run reduction separately for
callers that already hold run boundaries (histogram merges, CSR
dedup), where ``reduceat`` beats an indexed scatter outright.

:func:`scatter_reduce_lanes` is the lane-aware 2-D path used by the
batched multi-source traversals: ``k`` query lanes share one
``(n, k)`` state array and one fused update, with per-lane results
bit-identical to ``k`` independent 1-D :func:`scatter_reduce` calls.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ScatterError",
    "scatter_reduce",
    "scatter_reduce_lanes",
    "scatter_reduce_reference",
    "segment_reduce",
    "unique_bounded",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Use the dense full-array diff once lids are at least this fraction
#: of the state length (sorting the queue stops being the cheap part).
_DENSE_FRACTION = 0.25

_UFUNCS = {"min": np.minimum, "max": np.maximum, "sum": np.add}


class ScatterError(ValueError):
    """Unsupported op/dtype combination for :func:`scatter_reduce`."""


#: Largest index domain for which :func:`unique_bounded` builds a
#: presence bitmap instead of falling back to ``np.unique`` (a bitmap
#: this size costs one byte per domain slot).
_UNIQUE_BITMAP_MAX = 1 << 22


def unique_bounded(values: np.ndarray, bound: int) -> np.ndarray:
    """Sorted unique of non-negative ints known to lie in ``[0, bound)``.

    ``np.unique`` pays a hash/sort pass whose per-call overhead
    dominates on the small queues the exchange patterns dedup.  When
    the queue is small relative to the domain, an explicit sort plus
    boundary scan wins; when it is comparable to the domain (local
    state sizes, composite ``lid * k + lane`` indices), a presence
    bitmap plus one boolean scan wins.  Both return the identical
    sorted array; very large domains fall back to ``np.unique``.
    """
    values = np.asarray(values)
    if values.size == 0:
        return _EMPTY_I64
    if values.size * 16 < bound:
        s = np.sort(values)
        keep = np.empty(s.size, dtype=bool)
        keep[0] = True
        np.not_equal(s[1:], s[:-1], out=keep[1:])
        return s[keep]
    if bound > _UNIQUE_BITMAP_MAX:
        return np.unique(values)
    seen = np.zeros(bound, dtype=bool)
    seen[values] = True
    return np.flatnonzero(seen)


def segment_reduce(values: np.ndarray, starts: np.ndarray, op: str) -> np.ndarray:
    """Reduce ``values`` over segments beginning at ``starts``.

    ``starts`` must be strictly increasing positions into ``values``
    (segment ``i`` spans ``starts[i]:starts[i+1]``); the standard
    output of a run-length boundary scan.  Ops: ``min``/``max``/``sum``.
    """
    if op == "min":
        return np.minimum.reduceat(values, starts)
    if op == "max":
        return np.maximum.reduceat(values, starts)
    if op == "sum":
        return np.add.reduceat(values, starts)
    raise ScatterError(f"unsupported segment op {op!r}")


def scatter_reduce(
    state: np.ndarray,
    lids: np.ndarray,
    vals,
    op: str = "min",
) -> np.ndarray:
    """Reduce ``vals`` into ``state`` at ``lids``; return changed LIDs.

    Semantically ``np.<op>.at(state, lids, vals)`` fused with
    change-detection: the returned array holds the sorted unique
    indices whose stored value differs (exact compare) from before the
    reduction.  ``vals`` may be a scalar (broadcast over ``lids``).
    ``sum`` has delta semantics: callers send deltas, not absolutes.

    Supports numeric dtypes for all ops and structured dtypes
    (lexicographic field order) for ``min``/``max``.
    """
    lids = np.asarray(lids)
    if lids.size == 0:
        return _EMPTY_I64
    if not np.issubdtype(lids.dtype, np.integer):
        raise ScatterError(f"lids must be integers, got {lids.dtype}")
    vals = np.asarray(vals)
    if vals.ndim == 0:
        vals = np.broadcast_to(vals, lids.shape)
    if state.dtype.names is not None:
        return _scatter_structured(state, lids, vals, op)
    try:
        ufunc = _UFUNCS[op]
    except KeyError:
        raise ScatterError(f"unsupported scatter op {op!r}") from None

    if lids.size >= _DENSE_FRACTION * state.shape[0]:
        # Dense regime: diff the whole state instead of sorting an
        # edge-sized index array.
        old = state.copy()
        ufunc.at(state, lids, vals)
        return np.flatnonzero(state != old)
    # Sparse regime: the queue is small, unique bookkeeping is cheap.
    uniq = unique_bounded(lids, state.shape[0])
    old = state[uniq].copy()
    ufunc.at(state, lids, vals)
    return uniq[state[uniq] != old]


def scatter_reduce_lanes(
    state: np.ndarray,
    lids: np.ndarray,
    vals,
    op: str = "min",
    lanes: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lane-aware scatter-reduce over a 2-D ``(n, k)`` state array.

    Two entry modes:

    * ``lanes`` given — every update targets one ``(lid, lane)`` cell:
      the update runs over the flattened state through the composite
      index ``lid * k + lane``, so each lane's subsequence of the
      update stream is applied in exactly the order a 1-D
      :func:`scatter_reduce` on that lane's column would use
      (bit-identical per lane, including ``sum`` accumulation order).
    * ``lanes=None`` — ``vals`` is ``(len(lids), k)`` and every update
      applies a full row vector (the dense multi-lane gather used by
      batched PageRank); per column this is the identical unbuffered
      ``np.<op>.at`` sequence of the 1-D kernel.

    Returns ``(changed_lids, changed_lanes)``: the cells whose stored
    value changed (exact compare), sorted by ``(lid, lane)``.
    Requires ``state`` to be C-contiguous (the layout
    :meth:`~repro.core.context.RankContext.alloc` produces).
    """
    if state.ndim != 2:
        raise ScatterError(f"lane scatter needs a 2-D state, got {state.ndim}-D")
    if not state.flags.c_contiguous:
        raise ScatterError("lane scatter needs a C-contiguous state array")
    k = state.shape[1]
    lids = np.asarray(lids)
    if lids.size == 0:
        return _EMPTY_I64, _EMPTY_I64
    if not np.issubdtype(lids.dtype, np.integer):
        raise ScatterError(f"lids must be integers, got {lids.dtype}")

    if lanes is not None:
        lanes = np.asarray(lanes)
        if lanes.shape != lids.shape:
            raise ScatterError(
                f"lanes shape {lanes.shape} must match lids shape {lids.shape}"
            )
        flat = state.reshape(-1)
        if k & (k - 1) == 0:
            # Power-of-two lane count: shift/mask instead of the much
            # slower int64 multiply/divide for the composite index.
            shift = k.bit_length() - 1
            comp = (lids.astype(np.int64) << shift) | lanes
            changed = scatter_reduce(flat, comp, vals, op)
            return changed >> shift, changed & (k - 1)
        comp = lids.astype(np.int64) * k + lanes
        changed = scatter_reduce(flat, comp, vals, op)
        return changed // k, changed % k

    vals = np.asarray(vals)
    if vals.ndim != 2 or vals.shape != (lids.shape[0], k):
        raise ScatterError(
            f"row-vector lane scatter needs vals of shape "
            f"({lids.shape[0]}, {k}), got {vals.shape}"
        )
    try:
        ufunc = _UFUNCS[op]
    except KeyError:
        raise ScatterError(f"unsupported scatter op {op!r}") from None
    if lids.size >= _DENSE_FRACTION * state.shape[0]:
        old = state.copy()
        ufunc.at(state, lids, vals)
        ch_lids, ch_lanes = np.nonzero(state != old)
        return ch_lids.astype(np.int64), ch_lanes.astype(np.int64)
    uniq = np.unique(lids)
    old = state[uniq].copy()
    ufunc.at(state, lids, vals)
    rows, cols = np.nonzero(state[uniq] != old)
    return uniq[rows], cols.astype(np.int64)


def _scatter_structured(
    state: np.ndarray, lids: np.ndarray, vals: np.ndarray, op: str
) -> np.ndarray:
    """min/max over structured dtypes (lexicographic field order).

    Ufuncs cannot compare structured scalars, so reduce by sorting:
    within each lid's segment of a ``(lid, fields...)`` lexsort, the
    first element is the minimum and the last the maximum.
    """
    if op not in ("min", "max"):
        raise ScatterError(f"structured dtypes support min/max, not {op!r}")
    if vals.dtype != state.dtype:
        vals = vals.astype(state.dtype)
    keys = tuple(vals[f] for f in reversed(vals.dtype.names)) + (lids,)
    order = np.lexsort(keys)
    slids = lids[order]
    starts = _segment_starts(slids)
    uniq = slids[starts]
    if op == "min":
        cand = vals[order[starts]]
    else:
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = slids.size
        cand = vals[order[ends - 1]]
    old = state[uniq]
    # Combine candidate with the prior state by sorting each {old, cand}
    # pair (structured sort is lexicographic over fields).
    pair = np.empty((uniq.size, 2), dtype=state.dtype)
    pair[:, 0] = old
    pair[:, 1] = cand
    pair.sort(axis=1)
    new = pair[:, 0] if op == "min" else pair[:, 1]
    state[uniq] = new
    return uniq[new != old]


def _segment_starts(sorted_lids: np.ndarray) -> np.ndarray:
    boundary = np.empty(sorted_lids.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_lids[1:], sorted_lids[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)


def scatter_reduce_reference(
    state: np.ndarray,
    lids: np.ndarray,
    vals,
    op: str = "min",
) -> np.ndarray:
    """The pre-kernel ``np.ufunc.at`` idiom, kept as the test oracle.

    Implements exactly the ``np.unique`` → ``old.copy()`` →
    ``np.<op>.at`` → compare sequence the call sites used before the
    fused kernel existed.
    """
    lids = np.asarray(lids)
    if lids.size == 0:
        return _EMPTY_I64
    uniq = np.unique(lids)
    old = state[uniq].copy()
    if op == "min":
        np.minimum.at(state, lids, vals)
    elif op == "max":
        np.maximum.at(state, lids, vals)
    elif op == "sum":
        np.add.at(state, lids, vals)
    else:
        raise ScatterError(f"unsupported scatter op {op!r}")
    return uniq[state[uniq] != old]
