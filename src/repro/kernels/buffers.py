"""Reusable scratch buffers for queue-pair construction.

The sparse exchanges build one ``{gid, val}`` send buffer per rank per
stage, every iteration — thousands of short-lived structured
allocations per run.  A :class:`BufferPool` recycles them: ``take(n)``
hands out a length-``n`` view of a pooled backing array (growing
geometrically), ``give(buf)`` returns the backing array once the
collective has copied the payload out.

The simulator's collectives always copy (``np.concatenate`` /
``np.empty``), so a send buffer never outlives its exchange; callers
must still only ``give`` back buffers they obtained from ``take`` and
stop using them afterwards.  Returning the same backing array twice is
detected and ignored (a double-give would otherwise let two later
``take`` calls alias the same memory).

A pool instance is **not** thread-safe: under the threaded rank
executor every exchange draws from its rank's own pool
(:meth:`repro.core.context.RankContext.scratch_pool`), and gives
happen in the sequential collective phase — so pools never see
concurrent calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferPool"]

#: Backing arrays retained per pool; beyond this, give() drops buffers.
_MAX_POOLED = 64


class BufferPool:
    """Pool of same-dtype scratch arrays handed out as exact-length views."""

    def __init__(self, dtype):
        self.dtype = np.dtype(dtype)
        self._free: list[np.ndarray] = []
        self._free_ids: set[int] = set()
        self.hits = 0
        self.misses = 0

    def take(self, n: int) -> np.ndarray:
        """A writable length-``n`` array (contents uninitialized)."""
        n = int(n)
        best = -1
        for i, base in enumerate(self._free):
            if base.shape[0] >= n and (
                best < 0 or base.shape[0] < self._free[best].shape[0]
            ):
                best = i
        if best >= 0:
            self.hits += 1
            base = self._free.pop(best)
            self._free_ids.discard(id(base))
            return base[:n]
        self.misses += 1
        capacity = max(16, 1 << max(0, int(n) - 1).bit_length())
        return np.empty(capacity, dtype=self.dtype)[:n]

    def take2d(self, rows: int, cols: int) -> np.ndarray:
        """A writable C-contiguous ``(rows, cols)`` array from the pool.

        Backed by the same 1-D pooled arrays as :meth:`take` — a
        ``rows x cols`` lane buffer given back can later serve a plain
        1-D ``take`` of any length up to its capacity, and vice versa.
        """
        return self.take(int(rows) * int(cols)).reshape(int(rows), int(cols))

    def give(self, *buffers: np.ndarray) -> None:
        """Return buffers obtained from :meth:`take`/:meth:`take2d`.

        A backing array already sitting in the pool is skipped: two
        views of the same base given back twice (or in the same call)
        must not make the base available to two future ``take``
        calls, which would alias their payloads.  2-D views hand their
        (1-D) root backing array back, so the guard keys on the same
        identity regardless of how the view was shaped.
        """
        for buf in buffers:
            base = _root_base(buf)
            if (
                isinstance(base, np.ndarray)
                and base.dtype == self.dtype
                and base.ndim == 1
                and len(self._free) < _MAX_POOLED
                and id(base) not in self._free_ids
            ):
                self._free.append(base)
                self._free_ids.add(id(base))

    def clear(self) -> None:
        self._free.clear()
        self._free_ids.clear()


def _root_base(buf: np.ndarray):
    """Walk the view chain to the owning array.

    NumPy usually collapses ``.base`` chains to the owner, but a
    reshape of a slice view can keep an intermediate view in the
    chain — walking makes the double-give guard independent of how
    many view layers the caller stacked.
    """
    base = buf
    while isinstance(base, np.ndarray) and base.base is not None:
        base = base.base
    return base
