"""Wall-clock performance harness with a persisted trajectory file.

The figure benches report *modeled* (virtual) time; this harness
measures how fast the simulator itself runs on the host — the quantity
the vectorized kernel layer (:mod:`repro.kernels`) exists to improve.
Results append to ``BENCH_simulator.json`` at the repo root so the
wall-clock trajectory of the codebase persists across changes: every
entry records the machine-independent protocol (graph scale, rank
count, repeats) next to best/mean seconds per primitive and per
algorithm, and successive entries make regressions visible as diffs.

Protocol (fixed so entries stay comparable):

* graph: ``rmat(scale, seed=1)`` (default scale 14, ~2.6 M directed
  edges after symmetrization), engine with ``ranks`` ranks;
* primitives: fused ``scatter_reduce`` (min over every edge target),
  ``manhattan_schedule`` over the full degree array, ``expand_csr`` of
  every row, one ``dense_pull`` and one ``sparse_push`` exchange;
* algorithms: BFS from root 0, 20-iteration PageRank, and
  color-propagation CC, each timed end-to-end (engine construction
  excluded, fresh state per repeat).

Run via ``python -m repro perf`` or :func:`run_perf` directly.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable, Optional

import numpy as np

from ..core.engine import Engine
from ..exec import RankExecutor, SerialExecutor, resolve_executor
from ..graph.generators import rmat
from ..kernels import scatter_reduce
from ..patterns.dense import dense_pull
from ..patterns.sparse import sparse_push
from ..queueing.frontier import expand_csr
from ..queueing.manhattan import manhattan_schedule

__all__ = [
    "SCHEMA",
    "run_perf",
    "measure_batched",
    "measure_modeled",
    "append_entry",
    "load_trajectory",
]

#: Trajectory file schema identifier (bump on incompatible change).
SCHEMA = "repro.bench.simulator.v1"


def _timed(fn: Callable[[], object], repeats: int,
           setup: Optional[Callable[[], object]] = None) -> dict:
    """Best/mean wall seconds of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
    }


def measure_primitives(graph, engine: Engine, repeats: int = 5) -> dict:
    """Wall-time the hot primitives on ``graph`` / ``engine``."""
    rng = np.random.default_rng(0)
    n = graph.n_vertices
    lids = graph.indices.astype(np.int64)
    vals = rng.random(lids.size)
    state = np.empty(n)

    def reset_state():
        state[...] = np.inf

    out = {
        "scatter_reduce_min": _timed(
            lambda: scatter_reduce(state, lids, vals, "min"),
            repeats, setup=reset_state,
        ),
        "manhattan_schedule": _timed(
            lambda: manhattan_schedule(graph.degrees()), repeats
        ),
        "expand_csr": _timed(
            lambda: expand_csr(
                graph.indptr, graph.indices,
                np.arange(n, dtype=np.int64),
            ),
            repeats,
        ),
    }

    engine.alloc("perf_x", np.float64, fill=1.0)
    out["dense_pull"] = _timed(
        lambda: dense_pull(engine, "perf_x", op="min"), repeats
    )
    engine.alloc("perf_y", np.float64, fill=10.0)
    queues = []
    for ctx in engine:
        cs = ctx.col_slice
        k = max(1, (cs.stop - cs.start) // 10)
        queues.append(
            np.sort(rng.choice(np.arange(cs.start, cs.stop), k, replace=False))
        )
    out["sparse_push"] = _timed(
        lambda: sparse_push(engine, "perf_y", queues, op="min"), repeats
    )
    engine.free("perf_x")
    engine.free("perf_y")
    return out


def measure_algorithms(engine: Engine, repeats: int = 3) -> dict:
    """Wall-time BFS / PageRank / CC end-to-end on ``engine``."""
    from ..algorithms.bfs import bfs
    from ..algorithms.components import connected_components
    from ..algorithms.pagerank import pagerank

    return {
        "BFS": _timed(lambda: bfs(engine, root=0), repeats),
        "PR": _timed(lambda: pagerank(engine, iterations=20), repeats),
        "CC": _timed(lambda: connected_components(engine), repeats),
    }


def measure_modeled(graph, ranks: int, executor=None) -> dict:
    """Modeled (virtual) clock comparison: blocking vs overlapped.

    Unlike the wall-clock sections, these numbers come from the
    simulator's virtual clocks — the quantity split-phase collectives
    exist to improve.  Each algorithm runs twice on fresh engines, once
    blocking and once with ``overlap=True``; the overlap model
    guarantees identical values/counters/compute/comm lanes, so the
    only legitimate difference is the total (shrunk by the hidden time
    the ``overlap`` lane reports).
    """
    from ..algorithms.bfs import bfs
    from ..algorithms.components import connected_components
    from ..algorithms.pagerank import pagerank
    from ..baselines.spmv import spmv_pagerank

    runners = {
        "BFS": lambda e: bfs(e, root=0),
        "PR": lambda e: pagerank(e, iterations=20),
        "CC": lambda e: connected_components(e),
        "SpMV": lambda e: spmv_pagerank(e, iterations=20),
    }
    out = {}
    for name, run in runners.items():
        modes = {}
        for mode, overlap in (("blocking", False), ("overlapped", True)):
            e = Engine(
                graph,
                n_ranks=ranks,
                executor=resolve_executor(executor),
                overlap=overlap,
            )
            t = run(e).timings
            modes[mode] = {
                "total_s": t.total,
                "compute_s": t.compute,
                "comm_s": t.comm,
                "overlap_s": t.overlap,
                "overlap_fraction": t.overlap_fraction,
            }
        modes["speedup"] = (
            modes["blocking"]["total_s"] / modes["overlapped"]["total_s"]
            if modes["overlapped"]["total_s"]
            else 1.0
        )
        out[name] = modes
    return out


def measure_batched(
    graph,
    ranks: int,
    ks: tuple = (4, 8, 16),
    executor=None,
    repeats: int = 3,
) -> dict:
    """Batched k-source BFS vs k sequential runs (wall clock).

    For each ``k`` the roots are the ``k`` highest-degree vertices
    (stable order, so the protocol is reproducible), and both modes run
    on identically configured engines:

    * **sequential** — ``k`` independent ``bfs`` runs back-to-back;
    * **batched** — one ``bfs_batch`` over all ``k`` roots.

    Each section records wall time, the sparse-collective
    (``allgatherv``) call counts from :class:`~repro.comm.counters.
    CommCounters` — the α-amortization the batch exists to win — and a
    ``bit_identical`` flag confirming per-lane parents/levels match the
    sequential runs exactly.
    """
    from ..algorithms.batch import bfs_batch
    from ..algorithms.bfs import bfs

    deg = graph.degrees()
    order = np.argsort(-deg, kind="stable")
    out = {}
    for k in ks:
        k = int(min(k, graph.n_vertices))
        roots = [int(v) for v in order[:k]]
        engine = Engine(
            graph, n_ranks=ranks, executor=resolve_executor(executor)
        )
        seq_state = {}

        def run_seq():
            calls = 0
            results = []
            for r in roots:
                res = bfs(engine, r)
                calls += res.counters.get("allgatherv", {}).get("calls", 0)
                results.append((res.values, res.extra["levels"]))
            seq_state["calls"] = calls
            seq_state["results"] = results

        seq_t = _timed(run_seq, repeats)

        batch_state = {}

        def run_batch():
            res = bfs_batch(engine, roots)
            batch_state["calls"] = res.counters.get(
                "allgatherv", {}
            ).get("calls", 0)
            batch_state["res"] = res

        batch_t = _timed(run_batch, repeats)

        bres = batch_state["res"]
        identical = all(
            np.array_equal(bres.values[:, j], pv)
            and np.array_equal(bres.extra["levels"][:, j], lv)
            for j, (pv, lv) in enumerate(seq_state["results"])
        )
        seq_calls = seq_state["calls"]
        batch_calls = batch_state["calls"]
        out[f"k{k}"] = {
            "k": k,
            "roots": roots,
            "sequential": seq_t,
            "batched": batch_t,
            "speedup": (
                seq_t["best_s"] / batch_t["best_s"]
                if batch_t["best_s"]
                else 1.0
            ),
            "allgatherv_calls": {
                "sequential": seq_calls,
                "batched": batch_calls,
                "ratio": seq_calls / max(batch_calls, 1),
            },
            "bit_identical": bool(identical),
        }
    return out


def run_perf(
    scale: int = 14,
    ranks: int = 16,
    repeats: int = 3,
    label: str = "",
    primitives: bool = True,
    executor: "RankExecutor | str | None" = None,
    modeled: bool = False,
    batch: bool = False,
    batch_ks: tuple = (4, 8, 16),
) -> dict:
    """Run the full protocol; return one trajectory entry.

    ``executor`` selects the rank-execution backend (an instance, a
    spec string like ``"threads:4"``, or ``None`` for the environment
    default) and is recorded in the entry's protocol so trajectory
    entries from different backends stay distinguishable.

    ``modeled=True`` adds a ``"modeled"`` section comparing the
    virtual-clock totals blocking vs overlapped (see
    :func:`measure_modeled`); it lives outside ``"algorithms"`` so the
    wall-clock trajectory's shape stays stable.

    ``batch=True`` adds a ``"batched"`` section comparing batched
    k-source BFS against k sequential runs for each ``k`` in
    ``batch_ks`` (see :func:`measure_batched`).
    """
    graph = rmat(scale, seed=1)
    ex = resolve_executor(executor)
    engine = Engine(graph, n_ranks=ranks, executor=ex)
    entry = {
        "label": label,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "protocol": {
            "graph": f"rmat({scale}, seed=1)",
            "scale": scale,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "ranks": ranks,
            "repeats": repeats,
            "executor": "serial" if isinstance(ex, SerialExecutor) else "threads",
            "workers": ex.workers,
            "host_cpus": os.cpu_count() or 1,
        },
        "algorithms": measure_algorithms(engine, repeats=repeats),
    }
    if primitives:
        entry["primitives"] = measure_primitives(
            graph, engine, repeats=max(repeats, 5)
        )
    if modeled:
        entry["modeled"] = measure_modeled(graph, ranks, executor=executor)
    if batch:
        entry["batched"] = measure_batched(
            graph, ranks, ks=batch_ks, executor=executor, repeats=repeats
        )
    return entry


def load_trajectory(path) -> dict:
    """Load (or initialize) a trajectory file."""
    path = pathlib.Path(path)
    if path.exists():
        data = json.loads(path.read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path} has schema {data.get('schema')!r}, expected {SCHEMA!r}"
            )
        return data
    return {"schema": SCHEMA, "entries": []}


def append_entry(path, entry: dict) -> dict:
    """Append ``entry`` to the trajectory at ``path`` (created if new)."""
    path = pathlib.Path(path)
    data = load_trajectory(path)
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=1) + "\n")
    return data
