"""Experiment harness reproducing the paper's evaluation runs.

Provides one entry point per experimental axis (strong scaling, weak
scaling, ablations, comparisons) returning :class:`ExperimentRow`
records that the ``benchmarks/`` suite prints in the same layout as the
paper's figures and tables.

All runs place the stand-in dataset on a *scaled* machine
(:meth:`repro.cluster.config.ClusterConfig.scaled`), which restores the
paper's bandwidth/compute-dominated operating regime; modeled times
then read as full-scale estimates (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..algorithms import (
    bfs,
    connected_components,
    label_propagation,
    max_weight_matching,
    pagerank,
    pointer_jumping,
)
from ..cluster.config import AIMOS, ClusterConfig
from ..comm.grid import Grid2D, squarest_grid
from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..core.trace import IterationTrace, TraceRecorder
from ..graph.datasets import LoadedDataset, load

__all__ = [
    "ALGORITHMS",
    "sample_bfs_roots",
    "run_bfs_batch",
    "harmonic_mean_teps",
    "ExperimentRow",
    "run_algorithm",
    "make_engine",
    "strong_scaling",
    "weak_scaling",
    "format_rows",
    "RANK_GRIDS",
]

#: Algorithm runners keyed by the paper's abbreviations (Table 3).
ALGORITHMS: dict[str, Callable[..., AlgorithmResult]] = {
    "PR": lambda engine, **kw: pagerank(engine, iterations=kw.get("iterations", 20)),
    "CC": lambda engine, **kw: connected_components(engine),
    "BFS": lambda engine, **kw: bfs(engine, root=kw.get("root", 0)),
    "LP": lambda engine, **kw: label_propagation(
        engine, iterations=kw.get("iterations", 20)
    ),
    "MWM": lambda engine, **kw: max_weight_matching(engine),
    "PJ": lambda engine, **kw: pointer_jumping(engine),
}

#: Grids used for the paper's rank counts (square where possible;
#: 100/200/400 use the paper's WDC layouts).
RANK_GRIDS: dict[int, Grid2D] = {
    1: Grid2D(1, 1),
    4: Grid2D(2, 2),
    16: Grid2D(4, 4),
    64: Grid2D(8, 8),
    100: Grid2D(10, 10),
    200: Grid2D(R=20, C=10),
    256: Grid2D(16, 16),
    400: Grid2D(20, 20),
}


@dataclass
class ExperimentRow:
    """One measured configuration (one point of a paper figure)."""

    experiment: str
    dataset: str
    algorithm: str
    n_ranks: int
    grid: str
    time_total: float
    time_compute: float
    time_comm: float
    iterations: int
    teps: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)


def grid_for(n_ranks: int) -> Grid2D:
    """The grid a given rank count uses in the paper's experiments.

    Rank counts outside the paper's tables fall back to the most
    square factor pair (the paper's stated layout preference).
    """
    if n_ranks in RANK_GRIDS:
        return RANK_GRIDS[n_ranks]
    return squarest_grid(n_ranks)


def make_engine(
    dataset: LoadedDataset,
    n_ranks: int,
    cluster: ClusterConfig = AIMOS,
    grid: Optional[Grid2D] = None,
    **engine_kwargs,
) -> Engine:
    """Engine for a stand-in dataset on the matching scaled machine."""
    return Engine(
        dataset.graph,
        grid=grid if grid is not None else grid_for(n_ranks),
        cluster=cluster.scaled(dataset.scale_factor),
        memory_scale=dataset.scale_factor,
        **engine_kwargs,
    )


def run_algorithm(
    algo: str,
    engine: Engine,
    experiment: str = "",
    dataset: str = "",
    full_scale_edges: Optional[int] = None,
    **kwargs,
) -> ExperimentRow:
    """Run one algorithm and package the timings as a row.

    The row carries the exact per-iteration trace
    (``extra["trace"]``: a list of
    :class:`~repro.core.trace.IterationTrace`), so comm/comp splits and
    traffic decay curves downstream come from measured counter deltas.
    """
    if algo not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algo!r}; choose from {sorted(ALGORITHMS)}")
    result = ALGORITHMS[algo](engine, **kwargs)
    trace: list[IterationTrace] = TraceRecorder(engine).collect(result)
    edges = full_scale_edges if full_scale_edges else engine.graph.n_edges
    return ExperimentRow(
        experiment=experiment,
        dataset=dataset,
        algorithm=algo,
        n_ranks=engine.n_ranks,
        grid=f"{engine.grid.C}x{engine.grid.R}",
        time_total=result.timings.total,
        time_compute=result.timings.compute,
        time_comm=result.timings.comm,
        iterations=result.iterations,
        teps=result.timings.teps(edges),
        extra={"counters": result.counters, "trace": trace},
    )


def strong_scaling(
    dataset_abbr: str,
    algos: Sequence[str],
    rank_counts: Sequence[int],
    target_edges: int = 1 << 16,
    cluster: ClusterConfig = AIMOS,
    experiment: str = "strong",
    seed: int = 0,
) -> list[ExperimentRow]:
    """Strong scaling: one fixed input, growing rank counts (Fig. 3)."""
    weighted = "MWM" in algos
    ds = load(dataset_abbr, target_edges=target_edges, seed=seed, weighted=weighted)
    rows = []
    for algo in algos:
        for p in rank_counts:
            engine = make_engine(ds, p, cluster=cluster)
            rows.append(
                run_algorithm(
                    algo,
                    engine,
                    experiment=experiment,
                    dataset=dataset_abbr,
                    full_scale_edges=ds.meta.n_edges,
                )
            )
    return rows


def weak_scaling(
    family: str,
    algos: Sequence[str],
    rank_counts: Sequence[int],
    vertices_per_rank: int = 1 << 12,
    edge_factor: int = 16,
    cluster: ClusterConfig = AIMOS,
    experiment: str = "weak",
    seed: int = 0,
) -> list[ExperimentRow]:
    """Weak scaling: problem grows with rank count (Fig. 4).

    The paper uses 2^24 vertices / 2^28 edges per rank; the stand-in
    keeps the per-rank edge factor and scales the machine so the ratio
    of fixed overheads to volume matches the paper's sizes.
    """
    from ..graph.generators import erdos_renyi_gnm, rmat

    paper_edges_per_rank = (1 << 24) * edge_factor
    rows = []
    for p in rank_counts:
        n = vertices_per_rank * p
        m_slots = n * edge_factor
        scale_exp = max(n - 1, 1).bit_length()
        if family.upper() == "RMAT":
            g = rmat(scale_exp, edgefactor=edge_factor, seed=seed)
        elif family.upper() == "RAND":
            g = erdos_renyi_gnm(1 << scale_exp, m_slots, seed=seed)
        else:
            raise ValueError(f"unknown weak-scaling family {family!r}")
        scale_factor = paper_edges_per_rank * p / max(g.n_edges, 1)
        engine = Engine(
            g,
            grid=grid_for(p),
            cluster=cluster.scaled(scale_factor),
            memory_scale=scale_factor,
        )
        for algo in algos:
            rows.append(
                run_algorithm(
                    algo,
                    engine,
                    experiment=experiment,
                    dataset=f"{family.upper()}{scale_exp}",
                    full_scale_edges=int(paper_edges_per_rank * p),
                )
            )
    return rows


def format_rows(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Render rows as the aligned table the benches print."""
    header = (
        f"{'dataset':>8} {'algo':>5} {'ranks':>5} {'grid':>7} "
        f"{'total[s]':>10} {'comp[s]':>10} {'comm[s]':>10} "
        f"{'iters':>6} {'GTEPS':>8}"
    )
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.dataset:>8} {r.algorithm:>5} {r.n_ranks:>5} {r.grid:>7} "
            f"{r.time_total:>10.4f} {r.time_compute:>10.4f} {r.time_comm:>10.4f} "
            f"{r.iterations:>6} {r.teps / 1e9:>8.2f}"
        )
    return "\n".join(lines)


def sample_bfs_roots(graph, k: int = 64, seed: int = 0) -> "np.ndarray":
    """Graph500-style BFS root sampling.

    Roots are drawn uniformly from the giant component with degree >= 1
    (the benchmark's requirement that searches do real work), without
    replacement where possible.
    """
    import numpy as np

    from ..graph.transforms import largest_component

    _, members = largest_component(graph)
    degs = graph.degrees()[members]
    candidates = members[degs > 0]
    if candidates.size == 0:
        raise ValueError("graph has no traversable component")
    rng = np.random.default_rng(seed)
    k = min(k, candidates.size)
    return np.sort(rng.choice(candidates, size=k, replace=False))


def run_bfs_batch(
    engine: Engine, roots, full_scale_edges: Optional[int] = None
) -> list[ExperimentRow]:
    """One BFS per root (the Graph500 measurement protocol).

    Returns a row per search; harmonic-mean TEPS across the batch is
    the benchmark's reported figure, available via
    ``harmonic_mean_teps``.
    """
    rows = []
    for root in roots:
        rows.append(
            run_algorithm(
                "BFS",
                engine,
                experiment="bfs-batch",
                dataset="",
                full_scale_edges=full_scale_edges,
                root=int(root),
            )
        )
    return rows


def harmonic_mean_teps(rows: Sequence[ExperimentRow]) -> float:
    """The Graph500 summary statistic over a batch of searches."""
    if not rows:
        raise ValueError("empty batch")
    return len(rows) / sum(1.0 / r.teps for r in rows)
