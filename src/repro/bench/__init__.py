"""Benchmark harness reproducing the paper's tables and figures."""

from .harness import (
    ALGORITHMS,
    harmonic_mean_teps,
    run_bfs_batch,
    sample_bfs_roots,
    RANK_GRIDS,
    ExperimentRow,
    format_rows,
    grid_for,
    make_engine,
    run_algorithm,
    strong_scaling,
    weak_scaling,
)
from .reporting import comm_split, speedup_table, to_csv, to_json, to_markdown
from .scaling import (
    MemoryEstimate,
    estimate_1d_memory,
    estimate_2d_memory,
    estimate_generic_substrate_memory,
    estimate_la_backend_memory,
    fits,
)

__all__ = [
    "ALGORITHMS",
    "harmonic_mean_teps",
    "run_bfs_batch",
    "sample_bfs_roots",
    "RANK_GRIDS",
    "ExperimentRow",
    "format_rows",
    "grid_for",
    "make_engine",
    "run_algorithm",
    "strong_scaling",
    "weak_scaling",
    "comm_split",
    "speedup_table",
    "to_csv",
    "to_json",
    "to_markdown",
    "MemoryEstimate",
    "estimate_1d_memory",
    "estimate_2d_memory",
    "estimate_generic_substrate_memory",
    "estimate_la_backend_memory",
    "fits",
]
