"""Result export: aligned text, Markdown, CSV, and JSON writers.

The bench harness produces :class:`~repro.bench.harness.ExperimentRow`
records; this module renders them for humans (Markdown tables in the
style of EXPERIMENTS.md) and for downstream tooling (CSV, plus a
structured JSON export carrying the exact per-iteration traces so
``benchmarks/results/`` comm/comp splits come from measured counter
deltas, not time-share apportioning).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

from ..core.trace import TRACE_SCHEMA, IterationTrace
from .harness import ExperimentRow

__all__ = ["to_markdown", "to_csv", "to_json", "comm_split", "speedup_table"]

_COLUMNS = [
    ("dataset", lambda r: r.dataset),
    ("algo", lambda r: r.algorithm),
    ("ranks", lambda r: str(r.n_ranks)),
    ("grid", lambda r: r.grid),
    ("total_s", lambda r: f"{r.time_total:.6g}"),
    ("compute_s", lambda r: f"{r.time_compute:.6g}"),
    ("comm_s", lambda r: f"{r.time_comm:.6g}"),
    ("iterations", lambda r: str(r.iterations)),
    ("gteps", lambda r: f"{r.teps / 1e9:.4g}"),
]


def to_markdown(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    header = "| " + " | ".join(name for name, _ in _COLUMNS) + " |"
    rule = "|" + "|".join("---" for _ in _COLUMNS) + "|"
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines += [header, rule]
    for r in rows:
        lines.append("| " + " | ".join(fn(r) for _, fn in _COLUMNS) + " |")
    return "\n".join(lines)


def to_csv(rows: Sequence[ExperimentRow]) -> str:
    """Render rows as CSV (header + one line per row)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([name for name, _ in _COLUMNS] + ["experiment"])
    for r in rows:
        writer.writerow([fn(r) for _, fn in _COLUMNS] + [r.experiment])
    return buf.getvalue()


def comm_split(row: ExperimentRow) -> dict[str, Any]:
    """Measured comm/comp decomposition of one row.

    Sums the row's exact per-iteration trace (attached by
    :func:`~repro.bench.harness.run_algorithm`); the time sums equal
    the row's clock totals and the traffic sums equal the run's
    ``CommCounters`` totals bit-for-bit.
    """
    trace: Sequence[IterationTrace] = row.extra.get("trace", ())
    if not trace:
        raise ValueError(
            f"row {row.dataset}/{row.algorithm} carries no trace; "
            "was it produced by run_algorithm?"
        )
    return {
        "compute_s": sum(t.compute_s for t in trace),
        "comm_s": sum(t.comm_s for t in trace),
        "bytes": sum(t.bytes for t in trace),
        "serial_messages": sum(t.serial_messages for t in trace),
        "transfers": sum(t.transfers for t in trace),
        "iterations": len(trace),
    }


def to_json(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Structured export: row metrics plus exact per-iteration traces.

    The shape written next to the CSV/text tables under
    ``benchmarks/results/``::

        {"schema": ..., "title": ..., "rows": [
            {"dataset": ..., "algo": ..., ...,
             "counters": {kind: {calls, serial_messages, transfers, bytes}},
             "per_iteration": [<IterationTrace.as_dict() rows>]},
        ]}
    """
    payload: dict[str, Any] = {"schema": TRACE_SCHEMA, "title": title, "rows": []}
    for r in rows:
        entry: dict[str, Any] = {
            "experiment": r.experiment,
            "dataset": r.dataset,
            "algo": r.algorithm,
            "ranks": r.n_ranks,
            "grid": r.grid,
            "total_s": r.time_total,
            "compute_s": r.time_compute,
            "comm_s": r.time_comm,
            "iterations": r.iterations,
            "teps": r.teps,
        }
        counters = r.extra.get("counters")
        if counters:
            entry["counters"] = counters
        trace: Sequence[IterationTrace] = r.extra.get("trace", ())
        if trace:
            entry["per_iteration"] = [t.as_dict() for t in trace]
        payload["rows"].append(entry)
    return json.dumps(payload, indent=2)


def speedup_table(
    rows: Sequence[ExperimentRow], baseline_ranks: int
) -> dict[tuple[str, str], dict[int, float]]:
    """Speedups relative to each series' ``baseline_ranks`` entry.

    Returns ``{(dataset, algo): {ranks: speedup}}`` — the shape of the
    paper's Fig. 3 bottom panel.
    """
    series: dict[tuple[str, str], dict[int, float]] = {}
    for r in rows:
        series.setdefault((r.dataset, r.algorithm), {})[r.n_ranks] = r.time_total
    out: dict[tuple[str, str], dict[int, float]] = {}
    for key, times in series.items():
        if baseline_ranks not in times:
            raise ValueError(
                f"series {key} has no entry at {baseline_ranks} ranks"
            )
        base = times[baseline_ranks]
        out[key] = {p: base / t for p, t in sorted(times.items())}
    return out
