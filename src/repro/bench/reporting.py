"""Result export: aligned text, Markdown, and CSV writers.

The bench harness produces :class:`~repro.bench.harness.ExperimentRow`
records; this module renders them for humans (Markdown tables in the
style of EXPERIMENTS.md) and for downstream tooling (CSV).
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from .harness import ExperimentRow

__all__ = ["to_markdown", "to_csv", "speedup_table"]

_COLUMNS = [
    ("dataset", lambda r: r.dataset),
    ("algo", lambda r: r.algorithm),
    ("ranks", lambda r: str(r.n_ranks)),
    ("grid", lambda r: r.grid),
    ("total_s", lambda r: f"{r.time_total:.6g}"),
    ("compute_s", lambda r: f"{r.time_compute:.6g}"),
    ("comm_s", lambda r: f"{r.time_comm:.6g}"),
    ("iterations", lambda r: str(r.iterations)),
    ("gteps", lambda r: f"{r.teps / 1e9:.4g}"),
]


def to_markdown(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    header = "| " + " | ".join(name for name, _ in _COLUMNS) + " |"
    rule = "|" + "|".join("---" for _ in _COLUMNS) + "|"
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines += [header, rule]
    for r in rows:
        lines.append("| " + " | ".join(fn(r) for _, fn in _COLUMNS) + " |")
    return "\n".join(lines)


def to_csv(rows: Sequence[ExperimentRow]) -> str:
    """Render rows as CSV (header + one line per row)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([name for name, _ in _COLUMNS] + ["experiment"])
    for r in rows:
        writer.writerow([fn(r) for _, fn in _COLUMNS] + [r.experiment])
    return buf.getvalue()


def speedup_table(
    rows: Sequence[ExperimentRow], baseline_ranks: int
) -> dict[tuple[str, str], dict[int, float]]:
    """Speedups relative to each series' ``baseline_ranks`` entry.

    Returns ``{(dataset, algo): {ranks: speedup}}`` — the shape of the
    paper's Fig. 3 bottom panel.
    """
    series: dict[tuple[str, str], dict[int, float]] = {}
    for r in rows:
        series.setdefault((r.dataset, r.algorithm), {})[r.n_ranks] = r.time_total
    out: dict[tuple[str, str], dict[int, float]] = {}
    for key, times in series.items():
        if baseline_ranks not in times:
            raise ValueError(
                f"series {key} has no entry at {baseline_ranks} ranks"
            )
        base = times[baseline_ranks]
        out[key] = {p: base / t for p, t in sorted(times.items())}
    return out
