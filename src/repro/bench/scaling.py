"""Full-scale projections: headline TEPS and memory feasibility.

Two things the paper reports that depend on *absolute* dataset sizes:

* the headline throughput — "26-123 billion edges processed per second
  on 400xV100 GPUs" for WDC12, depending on algorithm complexity
  (paper abstract / §5.3);
* out-of-memory outcomes — Gluon-GPU could not load GSH or ClueWeb on
  AiMOS, CuGraph could not fit RMAT28 on zepy (paper §5.7).

Because the engines run on machines scaled by the dataset's stand-in
factor, modeled run times approximate full-scale times directly, and
TEPS follows from the full dataset edge count.  Memory feasibility is
computed analytically from the distribution's footprint formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.config import ClusterConfig
from ..graph.datasets import DatasetMeta

__all__ = [
    "MemoryEstimate",
    "estimate_2d_memory",
    "estimate_1d_memory",
    "estimate_generic_substrate_memory",
    "estimate_la_backend_memory",
    "fits",
]

_INDEX_BYTES = 8  # int64 adjacency entries
_STATE_BYTES = 8  # float64 state values
_STATE_ARRAYS = 4  # typical live state arrays during an algorithm


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-rank modeled footprint of a distributed graph."""

    bytes_per_rank: int
    capacity: int
    layout: str

    @property
    def fits(self) -> bool:
        return self.bytes_per_rank <= self.capacity

    @property
    def utilization(self) -> float:
        return self.bytes_per_rank / self.capacity


def estimate_2d_memory(
    meta: DatasetMeta,
    n_ranks: int,
    cluster: ClusterConfig,
    overhead_factor: float = 1.0,
) -> MemoryEstimate:
    """Footprint of the paper's 2D layout on ``n_ranks`` devices.

    Per rank: ``M/p`` adjacency entries + ``O(N/sqrt(p))`` local IDs of
    state for both the row and column windows.  ``overhead_factor``
    models heavier frameworks (Gluon's general-purpose metadata).
    """
    import math

    side = max(int(math.sqrt(n_ranks)), 1)
    edges = meta.n_edges / n_ranks * _INDEX_BYTES
    offsets = meta.n_vertices / side * _INDEX_BYTES  # local CSR offsets
    state = 2 * meta.n_vertices / side * _STATE_BYTES * _STATE_ARRAYS
    total = int((edges + offsets + state) * overhead_factor)
    return MemoryEstimate(
        bytes_per_rank=total,
        capacity=cluster.gpu.memory_bytes,
        layout=f"2D ({overhead_factor:g}x overhead)" if overhead_factor != 1.0 else "2D",
    )


def estimate_1d_memory(
    meta: DatasetMeta,
    n_ranks: int,
    cluster: ClusterConfig,
    ghost_fraction: float = 0.5,
) -> MemoryEstimate:
    """Footprint of a 1D layout: owned rows plus ghost directory.

    At scale, nearly every high-degree neighbor is remote, so ghosts
    approach ``ghost_fraction * N`` per rank for skewed graphs — the
    term that makes 1D layouts blow up on wide clusters.
    """
    edges = meta.n_edges / n_ranks * _INDEX_BYTES
    owned = meta.n_vertices / n_ranks * _INDEX_BYTES
    ghosts = ghost_fraction * meta.n_vertices * (_INDEX_BYTES + _STATE_BYTES * _STATE_ARRAYS)
    total = int(edges + owned + ghosts)
    return MemoryEstimate(
        bytes_per_rank=total, capacity=cluster.gpu.memory_bytes, layout="1D"
    )


def estimate_generic_substrate_memory(
    meta: DatasetMeta, n_ranks: int, cluster: ClusterConfig
) -> MemoryEstimate:
    """Footprint of a general-purpose-substrate 2D framework (Gluon-like).

    A substrate supporting arbitrary distributions cannot rely on the
    paper's arithmetic local-ID compaction; its per-host proxy/metadata
    structures scale with the *global* vertex count.  Modeled as the 2D
    edge share plus ``O(N)`` state/metadata words per rank — which
    reproduces exactly the paper's observed pattern: Gluon-GPU loads
    TW, FR and RMAT28 but fails allocation on GSH and ClueWeb (§5.7).
    """
    edges = meta.n_edges / n_ranks * _INDEX_BYTES
    global_state = meta.n_vertices * (_INDEX_BYTES + _STATE_BYTES * _STATE_ARRAYS)
    total = int(edges + global_state)
    return MemoryEstimate(
        bytes_per_rank=total,
        capacity=cluster.gpu.memory_bytes,
        layout="generic-substrate 2D",
    )


def estimate_la_backend_memory(
    meta: DatasetMeta,
    n_ranks: int,
    cluster: ClusterConfig,
    construction_peak_factor: float = 4.0,
    symmetrized: bool = True,
) -> MemoryEstimate:
    """Footprint of a linear-algebra backend (CuGraph-like).

    ETL (renumbering, COO->CSR conversion, weight columns) holds several
    transient copies of the edge list, so the *peak* footprint is a
    multiple of the final CSR.  With the default 4x peak this reproduces
    the paper's zepy observations: RMAT26 runs on 4xA100 but RMAT28 (and
    everything larger) fails (§5.7).
    """
    import math

    stored = meta.n_edges * (2 if symmetrized else 1)
    side = max(int(math.sqrt(n_ranks)), 1)
    edges_peak = stored / n_ranks * _INDEX_BYTES * construction_peak_factor
    vectors = meta.n_vertices / side * _STATE_BYTES * _STATE_ARRAYS
    total = int(edges_peak + vectors)
    return MemoryEstimate(
        bytes_per_rank=total,
        capacity=cluster.gpu.memory_bytes,
        layout=f"LA backend ({construction_peak_factor:g}x ETL peak)",
    )


def fits(estimate: MemoryEstimate) -> bool:
    """Convenience predicate for readability at call sites."""
    return estimate.fits
