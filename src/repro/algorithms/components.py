"""Connected components by color propagation (paper §4, Fig. 6).

Every vertex starts labeled with its own id; labels propagate along
edges taking the minimum until a fixed point.  The paper uses this
algorithm to study its optimizations because its "typical graph
algorithmic pattern" generalizes: push and pull variants, dense and
sparse communications, dense-to-sparse switching, and active-vertex
queues are all implemented here behind keyword arguments, matching the
configurations of the paper's Fig. 6 ablation:

====================  =============================================
paper configuration    call
====================  =============================================
``Base``              ``direction="pull", mode="dense",  use_queue=False``
``+SP``               ``direction="pull", mode="sparse", use_queue=False``
``+SP+SW``            ``direction="pull", mode="switch", use_queue=False``
``+SP+SW+VQ``         ``direction="pull", mode="switch", use_queue=True``
``+All+Push``         ``direction="push", mode="switch", use_queue=True``
====================  =============================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.dense import dense_exchange
from ..patterns.sparse import propagate_active_pull, sparse_pull, sparse_push
from ..patterns.switching import SwitchPolicy

__all__ = ["connected_components", "CC_VARIANTS"]

#: Paper Fig. 6 configurations, in ablation order.
CC_VARIANTS: dict[str, dict] = {
    "Base": dict(direction="pull", mode="dense", use_queue=False),
    "+SP": dict(direction="pull", mode="sparse", use_queue=False),
    "+SP+SW": dict(direction="pull", mode="switch", use_queue=False),
    "+SP+SW+VQ": dict(direction="pull", mode="switch", use_queue=True),
    "+All+Push": dict(direction="push", mode="switch", use_queue=True),
}

_STATE = "cc"


def _init_labels(engine: Engine) -> None:
    # Labels are *original* vertex ids (not relabeled GIDs) so the MIN
    # fixpoint — each component's smallest original id — is independent
    # of the partition's relabeling; a run migrated onto a different
    # grid mid-flight replays bit-identically (docs/ROBUSTNESS.md).
    part = engine.partition

    def init(ctx):
        lm = ctx.localmap
        state = ctx.alloc(_STATE, np.float64)
        state[lm.row_slice] = part.original_gid(
            np.arange(lm.row_start, lm.row_stop)
        )
        state[lm.col_slice] = part.original_gid(
            np.arange(lm.col_start, lm.col_stop)
        )
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(init)


def _compute_push(engine: Engine, rows_per_rank) -> list[np.ndarray]:
    """Local push kernels: labels flow src -> ghost neighbors.

    Returns the per-rank queues of changed column-vertex LIDs.
    """

    def push(ctx):
        rows = rows_per_rank[ctx.rank]
        state = ctx.get(_STATE)
        degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
        engine.charge_edges(ctx.rank, degs)
        src, dst, _ = ctx.expand(rows)
        if dst.size == 0:
            return np.empty(0, dtype=np.int64)
        return scatter_reduce(state, dst, state[src], "min")

    return engine.map_ranks(push)


def _compute_pull(engine: Engine, rows_per_rank) -> list[np.ndarray]:
    """Local pull kernels: each owned vertex gathers its neighbors' min.

    Returns the per-rank queues of changed row-vertex LIDs.
    """

    def pull(ctx):
        rows = rows_per_rank[ctx.rank]
        state = ctx.get(_STATE)
        degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
        engine.charge_edges(ctx.rank, degs)
        src, dst, _ = ctx.expand(rows)
        if src.size == 0:
            return np.empty(0, dtype=np.int64)
        return scatter_reduce(state, src, state[dst], "min")

    return engine.map_ranks(pull)


def connected_components(
    engine: Engine,
    direction: str = "push",
    mode: str = "switch",
    use_queue: bool = True,
    max_iterations: Optional[int] = None,
    switch_threshold_factor: float = 1.0,
    resume: bool = False,
    elastic=None,
    certify: bool = False,
) -> AlgorithmResult:
    """Run color-propagation CC to convergence.

    Parameters
    ----------
    direction:
        ``"push"`` or ``"pull"`` update flavour.
    mode:
        ``"dense"``, ``"sparse"``, or ``"switch"`` communications.
    use_queue:
        Maintain active-vertex queues (paper §3.4.1) instead of
        touching every owned vertex each iteration.
    max_iterations:
        Safety bound; ``None`` runs to convergence (paper setting).
    switch_threshold_factor:
        Scales the ``N / max(R, C)`` dense-to-sparse cutoff (1.0 =
        paper setting; exposed for the ablation bench).
    resume:
        Continue from the engine's latest attached checkpoint instead
        of starting over (falls back to a fresh run when there is
        none); see ``docs/ROBUSTNESS.md``.

    Returns component labels (original GIDs of the winning
    representatives) in original vertex order.  ``elastic=`` survives
    permanent rank loss by regridding onto the surviving GPUs (see
    ``docs/ROBUSTNESS.md``).  ``certify=True`` runs
    :func:`~repro.faults.integrity.certify_cc` (label agreement across
    every edge) on the final labels, charging the ``certify`` clock
    lane.
    """
    if direction not in ("push", "pull"):
        raise ValueError(f"direction must be 'push' or 'pull', got {direction!r}")
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: connected_components(
                e,
                direction=direction,
                mode=mode,
                use_queue=use_queue,
                max_iterations=max_iterations,
                switch_threshold_factor=switch_threshold_factor,
                resume=r,
                certify=certify,
            ),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    all_rows = [ctx.row_lids() for ctx in engine]

    st = engine.resume_from_checkpoint("cc") if resume else None
    if st is None:
        engine.reset_timers()
        _init_labels(engine)
        policy = SwitchPolicy(
            part.n_vertices,
            grid,
            mode=mode,
            threshold_factor=switch_threshold_factor,
        )
        active = list(all_rows)
        iteration = 0
        done = False
    else:
        policy = st["policy"]
        active = st["active"]
        iteration = st["iteration"]
        done = st["done"]

    while not done:
        iteration += 1
        rows = active if use_queue else all_rows
        sparse_now = policy.use_sparse
        if not sparse_now:
            # Snapshot consistent row state before compute so the
            # update count sees local changes too.
            prev = {
                id_r: engine.ctx(ranks[0]).get(_STATE)[
                    engine.ctx(ranks[0]).row_slice
                ].copy()
                for id_r, ranks in engine.row_groups()
            }
        if direction == "push":
            queues = _compute_push(engine, rows)
        else:
            queues = _compute_pull(engine, rows)

        if sparse_now:
            exchange = sparse_push if direction == "push" else sparse_pull
            result = exchange(engine, _STATE, queues, op="min")
            n_updated = result.n_updated
            if use_queue:
                if direction == "push":
                    active = result.active_row
                else:
                    active = propagate_active_pull(engine, result.active_row)
        else:
            dense_exchange(engine, _STATE, direction, op="min")
            n_updated = 0
            changed_rows: dict[int, np.ndarray] = {}
            for id_r, ranks in engine.row_groups():
                now = engine.ctx(ranks[0]).get(_STATE)[engine.ctx(ranks[0]).row_slice]
                diff = np.flatnonzero(now != prev[id_r])
                n_updated += int(diff.size)
                changed_rows[id_r] = diff
            # Convergence check: a 1-word AllReduce over all ranks, as a
            # dense iteration has no other way to learn the update count.
            # No rank consumes the reduced value locally, so an
            # overlapped engine issues it split-phase and hides the
            # active-queue rebuild below behind it.
            flags = [np.array([float(n_updated)]) for _ in range(grid.n_ranks)]
            flags_handle = None
            if engine.overlap:
                flags_handle = engine.comm.start_allreduce(
                    list(range(grid.n_ranks)), flags, op="max"
                )
            else:
                engine.comm.allreduce(list(range(grid.n_ranks)), flags, op="max")
            if use_queue:
                if direction == "push":
                    active = [
                        engine.ctx(r).localmap.row_offset + changed_rows[engine.ctx(r).block.id_r]
                        for r in range(grid.n_ranks)
                    ]
                else:
                    updated = [
                        engine.ctx(r).localmap.row_offset
                        + changed_rows[engine.ctx(r).block.id_r]
                        for r in range(grid.n_ranks)
                    ]
                    active = propagate_active_pull(engine, updated)
            if flags_handle is not None:
                engine.comm.wait(flags_handle)

        policy.observe(n_updated)
        done = n_updated == 0 or (
            max_iterations is not None and iteration >= max_iterations
        )
        engine.superstep_boundary(
            "cc",
            {
                "policy": policy,
                "active": active,
                "iteration": iteration,
                "done": done,
            },
        )

    values = engine.gather(_STATE).astype(np.int64)
    extra = {"n_components": int(np.unique(values).size)}
    if certify:
        from ..faults.integrity import certify_cc

        extra["certification"] = certify_cc(engine, values).as_dict()
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iteration,
        counters=engine.counters.summary(),
        extra=extra,
    )
