"""Distributed graph algorithms (paper Table 3).

==============================  ==========================================
Algorithm                        Entry point
==============================  ==========================================
Breadth-first search (BFS)       :func:`repro.algorithms.bfs.bfs`
PageRank (PR)                    :func:`repro.algorithms.pagerank.pagerank`
Connected components (CC)        :func:`repro.algorithms.components.connected_components`
Label propagation (LP)           :func:`repro.algorithms.labelprop.label_propagation`
Approx. max weight matching      :func:`repro.algorithms.matching.max_weight_matching`
Pointer jumping (PJ)             :func:`repro.algorithms.pointerjump.pointer_jumping`
==============================  ==========================================
"""

from .batch import bfs_batch, pagerank_batch, sssp_batch, validate_roots
from .betweenness import betweenness
from .bfs import ALPHA, BETA, bfs, pseudo_diameter
from .coloring import greedy_coloring, is_proper_coloring
from .components import CC_VARIANTS, connected_components
from .kcore import core_numbers
from .labelprop import label_propagation
from .matching import max_weight_matching
from .pagerank import compute_global_degrees, pagerank
from .pointerjump import initial_parents, pointer_jumping
from .sssp import sssp
from .triangles import triangle_count

__all__ = [
    "ALPHA",
    "BETA",
    "betweenness",
    "bfs",
    "bfs_batch",
    "pagerank_batch",
    "sssp_batch",
    "validate_roots",
    "pseudo_diameter",
    "greedy_coloring",
    "is_proper_coloring",
    "CC_VARIANTS",
    "connected_components",
    "core_numbers",
    "label_propagation",
    "max_weight_matching",
    "compute_global_degrees",
    "pagerank",
    "initial_parents",
    "pointer_jumping",
    "sssp",
    "triangle_count",
]
