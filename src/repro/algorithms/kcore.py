"""K-core decomposition (extension; a second 2.5D complex reduction).

Computes every vertex's *core number* — the largest ``k`` such that the
vertex belongs to a subgraph where all degrees are at least ``k`` — via
the distributed h-index formulation (Montresor, De Pellegrini & Miorandi):
initialize each estimate to the vertex degree, then repeatedly replace
it with the h-index of its neighbors' estimates.  Estimates decrease
monotonically and converge to the exact core numbers.

The per-vertex h-index is a *complex reduction* over the whole
neighborhood (which spans the row group), so the implementation reuses
the paper's 2.5D machinery exactly as Label Propagation does:
per-rank histograms of neighbor estimates -> owner-routed personalized
exchange -> owner-side h-index -> row broadcast -> column ghost
refresh, with active-vertex queues carrying the neighbors of changed
vertices.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..patterns.complex import (
    build_histogram,
    h_index_from_histograms,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
)
from ..patterns.sparse import PAIR_DTYPE, propagate_active_pull
from .pagerank import compute_global_degrees

__all__ = ["core_numbers"]

_STATE = "core"


def _pairs(gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    buf = np.empty(gids.size, dtype=PAIR_DTYPE)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def core_numbers(
    engine: Engine, max_iterations: int | None = None
) -> AlgorithmResult:
    """Exact core numbers of every vertex, in original vertex order."""
    engine.reset_timers()
    part, grid = engine.partition, engine.grid

    # Estimates start at the global degrees (computed with a dense pull
    # over the local degrees, as in PageRank).
    compute_global_degrees(engine)
    for ctx in engine:
        est = ctx.alloc(_STATE, np.float64)
        est[...] = ctx.get("deg")
        engine.charge_vertices(ctx.rank, ctx.n_total)

    all_rows = [ctx.row_lids() for ctx in engine]
    active = list(all_rows)
    iterations = 0

    while True:
        iterations += 1
        # ---- per-rank neighbor-estimate histograms -------------------
        histograms: list[np.ndarray] = []
        for ctx in engine:
            est = ctx.get(_STATE)
            rows = active[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=4.0)
            src, dst, _ = ctx.expand(rows)
            histograms.append(
                build_histogram(ctx.localmap.row_gid(src), est[dst])
            )

        # ---- 2.5D owner exchange + h-index, per row group -------------
        changed_rows: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * grid.n_ranks
        n_changed = 0
        for id_r, ranks in engine.row_groups():
            rs, re = part.row_range(id_r)
            bounds = owner_chunks(rs, re, grid.R)
            send = []
            for r in ranks:
                tri = histograms[r]
                owners = owner_of_vertex(tri["gid"], bounds)
                order = np.argsort(owners, kind="stable")
                tri, owners = tri[order], owners[order]
                cuts = np.searchsorted(owners, np.arange(grid.R + 1))
                send.append([tri[cuts[k] : cuts[k + 1]] for k in range(grid.R)])
                engine.charge_vertices(r, tri.size)
            received = engine.comm.alltoallv(ranks, send)
            finals = []
            for pos, r in enumerate(ranks):
                merged = merge_histograms(received[pos])
                gids, h = h_index_from_histograms(merged)
                engine.charge_vertices(r, merged.size)
                finals.append(_pairs(gids, h.astype(np.float64)))
            rbuf = engine.comm.allgatherv(ranks, finals)
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                est = ctx.get(_STATE)
                lids = lm.row_lid(rbuf["gid"])
                # Monotone: estimates only decrease toward the core number.
                old = est[lids].copy()
                est[lids] = np.minimum(old, rbuf["val"])
                engine.charge_vertices(r, rbuf.size)
                changed_rows[r] = np.asarray(
                    lids[est[lids] < old], dtype=np.int64
                )
            if ranks:
                n_changed += int(changed_rows[ranks[0]].size)

        # ---- refresh ghosts along column groups ----------------------
        for id_c, ranks in engine.col_groups():
            sbufs = []
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                gids = lm.row_gid(changed_rows[r])
                mine = gids[lm.owns_col_gid(gids)]
                est = ctx.get(_STATE)
                sbufs.append(_pairs(mine, est[lm.row_lid(mine)]))
                engine.charge_vertices(r, mine.size)
            rbuf = engine.comm.allgatherv(ranks, sbufs)
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                est = ctx.get(_STATE)
                est[lm.col_lid(rbuf["gid"])] = rbuf["val"]
                engine.charge_vertices(r, rbuf.size)

        # ---- next active queue = neighbors of changed vertices --------
        active = propagate_active_pull(engine, changed_rows)
        engine.clocks.mark_iteration()
        if n_changed == 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break

    values = engine.gather(_STATE).astype(np.int64)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra={"max_core": int(values.max(initial=0))},
    )
