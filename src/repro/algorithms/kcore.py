"""K-core decomposition (extension; a second 2.5D complex reduction).

Computes every vertex's *core number* — the largest ``k`` such that the
vertex belongs to a subgraph where all degrees are at least ``k`` — via
the distributed h-index formulation (Montresor, De Pellegrini & Miorandi):
initialize each estimate to the vertex degree, then repeatedly replace
it with the h-index of its neighbors' estimates.  Estimates decrease
monotonically and converge to the exact core numbers.

The per-vertex h-index is a *complex reduction* over the whole
neighborhood (which spans the row group), so the implementation reuses
the paper's 2.5D machinery exactly as Label Propagation does:
per-rank histograms of neighbor estimates -> owner-routed personalized
exchange -> owner-side h-index -> row broadcast -> column ghost
refresh, with active-vertex queues carrying the neighbors of changed
vertices.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..patterns.complex import (
    build_histogram,
    h_index_from_histograms,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
)
from ..patterns.sparse import PAIR_DTYPE, propagate_active_pull
from .pagerank import compute_global_degrees

__all__ = ["core_numbers"]

_STATE = "core"


def _pairs(gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    buf = np.empty(gids.size, dtype=PAIR_DTYPE)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def core_numbers(
    engine: Engine, max_iterations: int | None = None
) -> AlgorithmResult:
    """Exact core numbers of every vertex, in original vertex order."""
    engine.reset_timers()
    part, grid = engine.partition, engine.grid

    # Estimates start at the global degrees (computed with a dense pull
    # over the local degrees, as in PageRank).
    compute_global_degrees(engine)

    def init_estimates(ctx):
        est = ctx.alloc(_STATE, np.float64)
        est[...] = ctx.get("deg")
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(init_estimates)

    all_rows = [ctx.row_lids() for ctx in engine]
    active = list(all_rows)
    iterations = 0

    while True:
        iterations += 1
        # ---- per-rank neighbor-estimate histograms -------------------
        def local_histogram(ctx):
            est = ctx.get(_STATE)
            rows = active[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=4.0)
            src, dst, _ = ctx.expand(rows)
            return build_histogram(ctx.localmap.row_gid(src), est[dst])

        histograms = engine.map_ranks(local_histogram)

        # ---- 2.5D owner exchange + h-index, per row group -------------
        def route_to_owners(ctx):
            rs, re = part.row_range(ctx.block.id_r)
            bounds = owner_chunks(rs, re, grid.R)
            tri = histograms[ctx.rank]
            owners = owner_of_vertex(tri["gid"], bounds)
            order = np.argsort(owners, kind="stable")
            tri, owners = tri[order], owners[order]
            cuts = np.searchsorted(owners, np.arange(grid.R + 1))
            engine.charge_vertices(ctx.rank, tri.size)
            return [tri[cuts[k] : cuts[k + 1]] for k in range(grid.R)]

        sends = engine.map_ranks(route_to_owners)
        received_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            received = engine.comm.alltoallv(ranks, [sends[r] for r in ranks])
            for pos, r in enumerate(ranks):
                received_of[r] = received[pos]

        def owner_h_index(ctx):
            merged = merge_histograms(received_of[ctx.rank])
            gids, h = h_index_from_histograms(merged)
            engine.charge_vertices(ctx.rank, merged.size)
            return _pairs(gids, h.astype(np.float64))

        finals = engine.map_ranks(owner_h_index)

        rbuf_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            rbuf = engine.comm.allgatherv(ranks, [finals[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_estimates(ctx):
            lm = ctx.localmap
            est = ctx.get(_STATE)
            rbuf = rbuf_of[ctx.rank]
            lids = lm.row_lid(rbuf["gid"])
            # Monotone: estimates only decrease toward the core number.
            old = est[lids].copy()
            est[lids] = np.minimum(old, rbuf["val"])
            engine.charge_vertices(ctx.rank, rbuf.size)
            return np.asarray(lids[est[lids] < old], dtype=np.int64)

        changed_rows = engine.map_ranks(apply_estimates)
        n_changed = 0
        for id_r, ranks in engine.row_groups():
            if ranks:
                n_changed += int(changed_rows[ranks[0]].size)

        # ---- refresh ghosts along column groups ----------------------
        def build_refresh(ctx):
            lm = ctx.localmap
            gids = lm.row_gid(changed_rows[ctx.rank])
            mine = gids[lm.owns_col_gid(gids)]
            est = ctx.get(_STATE)
            engine.charge_vertices(ctx.rank, mine.size)
            return _pairs(mine, est[lm.row_lid(mine)])

        sbufs = engine.map_ranks(build_refresh)
        rbuf_of = [None] * grid.n_ranks
        for id_c, ranks in engine.col_groups():
            rbuf = engine.comm.allgatherv(ranks, [sbufs[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_refresh(ctx):
            lm = ctx.localmap
            est = ctx.get(_STATE)
            rbuf = rbuf_of[ctx.rank]
            est[lm.col_lid(rbuf["gid"])] = rbuf["val"]
            engine.charge_vertices(ctx.rank, rbuf.size)

        engine.foreach(apply_refresh)

        # ---- next active queue = neighbors of changed vertices --------
        active = propagate_active_pull(engine, changed_rows)
        engine.superstep_boundary("kcore")
        if n_changed == 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break

    values = engine.gather(_STATE).astype(np.int64)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra={"max_core": int(values.max(initial=0))},
    )
