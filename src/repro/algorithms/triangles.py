"""Distributed triangle counting (extension; paper §1 cites 2D triangle
counting as a flagship application of 2D distributions [30]).

Algebraic formulation: the triangle count is ``sum(A .* (A @ A)) / 6``
for a symmetric 0/1 adjacency matrix.  In the 2D block layout this is
a masked SUMMA: for each inner step ``k``,

* block ``A[I,k]`` broadcasts along row group ``I`` (root: the rank in
  block-column ``k``),
* block ``A[k,J]`` broadcasts along column group ``J`` (root: the rank
  in block-row ``k``),
* every rank multiplies the pair and accumulates the entries that land
  on the nonzeros of its own local block.

One final one-word AllReduce combines the per-rank partial counts.
Requires a square process grid (the inner dimension must align with
both the row and column partitions, as in the reference 2D algorithms).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.engine import Engine
from ..core.result import AlgorithmResult

__all__ = ["triangle_count"]


def _block_csr(engine: Engine, rank: int) -> sp.csr_matrix:
    """A rank's block as an (N_R x N_C) scipy matrix in *range-local*
    coordinates (row index within the row range, column within the
    column range)."""
    ctx = engine.ctx(rank)
    blk = ctx.block
    lm = blk.localmap
    data = np.ones(blk.indices.size)
    return sp.csr_matrix(
        (data, blk.indices - lm.col_offset, blk.indptr),
        shape=(lm.n_row, lm.n_col),
    )


def triangle_count(engine: Engine) -> AlgorithmResult:
    """Count triangles with a masked SUMMA over the 2D blocks."""
    part, grid = engine.partition, engine.grid
    if not grid.is_square:
        raise ValueError(
            "triangle counting requires a square grid (inner dimension "
            f"must align with both partitions); got {grid.C}x{grid.R}"
        )
    engine.reset_timers()
    side = grid.R
    all_ranks = list(range(grid.n_ranks))
    row_share = engine.stage_nic_sharing("row")
    col_share = engine.stage_nic_sharing("col")

    blocks = dict(
        zip(all_ranks, engine.map_ranks(lambda ctx: _block_csr(engine, ctx.rank)))
    )
    masks = dict(
        zip(all_ranks, engine.map_ranks(lambda ctx: blocks[ctx.rank].astype(bool)))
    )
    partial = np.zeros(grid.n_ranks)

    for k in range(side):
        # Broadcast A[I,k] along each row group (root at block-col k).
        left: dict[int, sp.csr_matrix] = {}
        for id_r, ranks in engine.row_groups():
            root = grid.rank_of(id_r, k)
            payload = blocks[root]
            nbytes = int(payload.nnz * 12 + payload.shape[0] * 8)
            t = engine.costmodel.broadcast_time(ranks, nbytes, nic_sharing=row_share)
            engine.clocks.sync_group(ranks, t)
            engine.counters.record(
                "broadcast",
                serial_messages=len(ranks) - 1,
                transfers=len(ranks) - 1,
                nbytes=nbytes * (len(ranks) - 1),
            )
            for r in ranks:
                left[r] = payload
        # Broadcast A[k,J] along each column group (root at block-row k).
        right: dict[int, sp.csr_matrix] = {}
        for id_c, ranks in engine.col_groups():
            root = grid.rank_of(k, id_c)
            payload = blocks[root]
            nbytes = int(payload.nnz * 12 + payload.shape[0] * 8)
            t = engine.costmodel.broadcast_time(ranks, nbytes, nic_sharing=col_share)
            engine.clocks.sync_group(ranks, t)
            engine.counters.record(
                "broadcast",
                serial_messages=len(ranks) - 1,
                transfers=len(ranks) - 1,
                nbytes=nbytes * (len(ranks) - 1),
            )
            for r in ranks:
                right[r] = payload

        # Local masked multiply-accumulate.
        def multiply_accumulate(ctx):
            r = ctx.rank
            a, b, mask = left[r], right[r], masks[r]
            prod = (a @ b).multiply(mask)
            partial[r] += prod.sum()
            engine.charge_edges(
                r,
                np.array([a.nnz + b.nnz + prod.nnz]),
                work_per_edge=2.0,
            )

        engine.foreach(multiply_accumulate)
        engine.superstep_boundary("tc")

    # Combine partial counts.
    bufs = [np.array([partial[r]]) for r in all_ranks]
    engine.comm.allreduce(all_ranks, bufs, op="sum")
    total = float(bufs[0][0]) / 6.0

    return AlgorithmResult(
        values=None,
        timings=engine.timing_report(),
        iterations=side,
        counters=engine.counters.summary(),
        extra={"n_triangles": int(round(total))},
    )
