"""Distributed greedy graph coloring (extension; Jones-Plassmann).

Jones-Plassmann luby-style coloring: every vertex gets a random (here:
hash-derived, deterministic) priority; each round, every uncolored
vertex that holds the highest priority among its uncolored neighbors
colors itself with the smallest color absent from its neighborhood.
Expected O(log n) rounds on bounded-degree graphs.

On the 2D engine this composes two of the paper's patterns per round:

* the local-maximum test is an element-wise MAX reduction over the
  neighborhood — a plain dense pull on a masked priority array;
* the smallest-absent-color choice needs the *set* of neighbor colors —
  a complex reduction, handled with the 2.5D histogram machinery like
  Label Propagation's mode.

Validated against a serial implementation of the identical rule and
against the proper-coloring invariant.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.complex import (
    build_histogram,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
)
from ..patterns.dense import dense_pull
from ..patterns.sparse import PAIR_DTYPE

__all__ = ["greedy_coloring", "color_priorities", "is_proper_coloring"]

_UNCOLORED = -1.0


def color_priorities(n: int, seed: int = 0) -> np.ndarray:
    """Deterministic pseudo-random vertex priorities (unique)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.float64)


def is_proper_coloring(graph, colors: np.ndarray) -> bool:
    """No edge joins two equal colors, and every vertex is colored."""
    colors = np.asarray(colors)
    if np.any(colors < 0):
        return False
    src = np.repeat(np.arange(graph.n_vertices), graph.degrees())
    return not np.any(colors[src] == colors[graph.indices])


def serial_jones_plassmann(graph, seed: int = 0) -> np.ndarray:
    """Serial reference executing the identical synchronous rule."""
    n = graph.n_vertices
    prio = color_priorities(n, seed)
    colors = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    while np.any(colors < 0):
        new_colors = colors.copy()
        for v in np.flatnonzero(colors < 0):
            nbrs = indices[indptr[v] : indptr[v + 1]]
            unc = nbrs[colors[nbrs] < 0]
            if unc.size and prio[unc].max() > prio[v]:
                continue  # a higher-priority uncolored neighbor waits
            used = set(colors[nbrs][colors[nbrs] >= 0].tolist())
            c = 0
            while c in used:
                c += 1
            new_colors[v] = c
        colors = new_colors
    return colors


def greedy_coloring(
    engine: Engine, seed: int = 0, max_rounds: int | None = None
) -> AlgorithmResult:
    """Color the graph with Jones-Plassmann on the 2D engine.

    Returns colors in original vertex order, identical to
    :func:`serial_jones_plassmann`.
    """
    engine.reset_timers()
    part, grid = engine.partition, engine.grid
    n = part.n_vertices
    prio_global = color_priorities(n, seed)

    engine.scatter_global("prio", prio_global)

    def init_state(ctx):
        ctx.alloc("color", np.float64, fill=_UNCOLORED)
        ctx.alloc("maxp", np.float64)
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(init_state)

    rounds = 0
    while True:
        rounds += 1

        # ---- 1. max uncolored-neighbor priority (dense pull MAX) ------
        def max_uncolored(ctx):
            color = ctx.get("color")
            prio = ctx.get("prio")
            maxp = ctx.get("maxp")
            maxp[...] = -np.inf
            src, dst, _ = ctx.expand_all()
            engine.charge_edges(ctx.rank, ctx.local_degrees(), cache_key="color.full")
            if src.size:
                unc = color[dst] < 0
                scatter_reduce(maxp, src[unc], prio[dst[unc]], "max")

        engine.foreach(max_uncolored)
        dense_pull(engine, "maxp", op="max")

        # ---- 2. winners pick the smallest absent neighborhood color ---
        # Collect neighbor-color histograms for the candidate winners
        # (2.5D owner exchange, exactly the LP machinery).
        def build_winner_histograms(ctx):
            rs, re = part.row_range(ctx.block.id_r)
            bounds = owner_chunks(rs, re, grid.R)
            color = ctx.get("color")
            prio = ctx.get("prio")
            maxp = ctx.get("maxp")
            rows = ctx.row_lids()
            winners = rows[(color[rows] < 0) & (prio[rows] >= maxp[rows])]
            src, dst, _ = ctx.expand(winners)
            engine.charge_edges(
                ctx.rank, ctx.local_degrees()[winners - ctx.localmap.row_offset]
            )
            colored = color[dst] >= 0 if dst.size else np.empty(0, dtype=bool)
            tri = build_histogram(
                ctx.localmap.row_gid(src[colored]), color[dst[colored]]
            )
            # winners with no colored neighbors still need an entry;
            # emit a sentinel color -1 so owners see them
            lonely = winners[
                ~np.isin(winners, src[colored])
            ] if winners.size else winners
            sentinel = build_histogram(
                ctx.localmap.row_gid(lonely), np.full(lonely.size, -1.0)
            )
            tri = np.concatenate([tri, sentinel])
            owners = owner_of_vertex(tri["gid"], bounds)
            order = np.argsort(owners, kind="stable")
            tri, owners = tri[order], owners[order]
            cuts = np.searchsorted(owners, np.arange(grid.R + 1))
            engine.charge_vertices(ctx.rank, tri.size)
            return [tri[cuts[k] : cuts[k + 1]] for k in range(grid.R)]

        sends = engine.map_ranks(build_winner_histograms)
        received_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            received = engine.comm.alltoallv(ranks, [sends[r] for r in ranks])
            for pos, r in enumerate(ranks):
                received_of[r] = received[pos]

        def choose_colors(ctx):
            merged = merge_histograms(received_of[ctx.rank])
            gids, chosen = _smallest_absent(merged)
            engine.charge_vertices(ctx.rank, merged.size)
            buf = np.empty(gids.size, dtype=PAIR_DTYPE)
            buf["gid"] = gids
            buf["val"] = chosen
            return buf

        finals = engine.map_ranks(choose_colors)

        n_colored = 0
        rbuf_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            rbuf = engine.comm.allgatherv(ranks, [finals[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf
            if ranks:
                n_colored += int(np.unique(rbuf["gid"]).size)

        def apply_colors(ctx):
            lm = ctx.localmap
            color = ctx.get("color")
            rbuf = rbuf_of[ctx.rank]
            lids = lm.row_lid(rbuf["gid"])
            color[lids] = rbuf["val"]
            engine.charge_vertices(ctx.rank, rbuf.size)
            return np.asarray(lids, dtype=np.int64)

        changed_rows = engine.map_ranks(apply_colors)

        # ---- 3. refresh ghost colors along column groups ---------------
        def build_refresh(ctx):
            lm = ctx.localmap
            gids = lm.row_gid(changed_rows[ctx.rank])
            mine = gids[lm.owns_col_gid(gids)]
            color = ctx.get("color")
            buf = np.empty(mine.size, dtype=PAIR_DTYPE)
            buf["gid"] = mine
            buf["val"] = color[lm.row_lid(mine)]
            engine.charge_vertices(ctx.rank, mine.size)
            return buf

        sbufs = engine.map_ranks(build_refresh)
        rbuf_of = [None] * grid.n_ranks
        for id_c, ranks in engine.col_groups():
            rbuf = engine.comm.allgatherv(ranks, [sbufs[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_refresh(ctx):
            lm = ctx.localmap
            ctx.get("color")[lm.col_lid(rbuf_of[ctx.rank]["gid"])] = rbuf_of[
                ctx.rank
            ]["val"]
            engine.charge_vertices(ctx.rank, rbuf_of[ctx.rank].size)

        engine.foreach(apply_refresh)

        engine.superstep_boundary("coloring")
        if n_colored == 0:
            break
        if max_rounds is not None and rounds >= max_rounds:
            break

    values = engine.gather("color").astype(np.int64)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=rounds,
        counters=engine.counters.summary(),
        extra={"n_colors": int(values.max(initial=-1)) + 1},
    )


def _smallest_absent(merged: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per gid, the smallest non-negative color absent from the merged
    neighbor-color histogram (sentinel -1 entries mark lonely winners)."""
    if merged.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    order = np.lexsort((merged["label"], merged["gid"]))
    g = merged["gid"][order]
    lab = merged["label"][order].astype(np.int64)
    uniq_g, starts = np.unique(g, return_index=True)
    chosen = np.empty(uniq_g.size, dtype=np.float64)
    bounds = np.append(starts, g.size)
    for i in range(uniq_g.size):
        used = lab[bounds[i] : bounds[i + 1]]
        used = used[used >= 0]
        c = 0
        for u in used:  # used is sorted ascending
            if u == c:
                c += 1
            elif u > c:
                break
        chosen[i] = c
    return uniq_g, chosen
