"""Betweenness centrality (extension; Brandes on the 2D engine).

Brandes' algorithm per source: a level-synchronous forward phase counts
shortest paths (``sigma``), then a backward phase accumulates
dependencies (``delta``) level by level.  Both phases are sums over
one BFS level's neighborhood at a time, so each level maps onto one
dense pull exchange (row-group SUM AllReduce + column broadcast) — the
same pattern PageRank uses, demonstrating that even a multi-phase
centrality fits the paper's communication repertoire unchanged.

Exact when run over all sources; the standard sampled approximation
(Brandes & Pich) scales each sampled source's contribution by ``n/k``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.dense import dense_pull
from .bfs import bfs

__all__ = ["betweenness"]


def _forward_sigma(engine: Engine, levels_local: list[np.ndarray], depth_max: int):
    """Level-synchronous shortest-path counting into state ``sigma``."""
    for d in range(1, depth_max + 1):

        def count_paths(ctx):
            sigma = ctx.get("sigma")
            level = levels_local[ctx.rank]
            acc = ctx.get("acc")
            acc[...] = 0.0
            src, dst, _ = ctx.expand_all()
            engine.charge_edges(ctx.rank, ctx.local_degrees(), cache_key="bc.full")
            if src.size:
                sel = (level[src] == d) & (level[dst] == d - 1)
                scatter_reduce(acc, src[sel], sigma[dst[sel]], "sum")

        engine.foreach(count_paths)
        dense_pull(engine, "acc", op="sum")

        def commit_sigma(ctx):
            sigma = ctx.get("sigma")
            acc = ctx.get("acc")
            level = levels_local[ctx.rank]
            at_d = level == d
            sigma[at_d] = acc[at_d]
            engine.charge_vertices(ctx.rank, ctx.n_total)

        engine.foreach(commit_sigma)


def _backward_delta(engine: Engine, levels_local: list[np.ndarray], depth_max: int):
    """Dependency accumulation into state ``delta`` (descending levels)."""
    for d in range(depth_max, 0, -1):

        def accumulate(ctx):
            sigma = ctx.get("sigma")
            delta = ctx.get("delta")
            level = levels_local[ctx.rank]
            acc = ctx.get("acc")
            acc[...] = 0.0
            src, dst, _ = ctx.expand_all()
            engine.charge_edges(ctx.rank, ctx.local_degrees(), cache_key="bc.full")
            if src.size:
                sel = (level[src] == d - 1) & (level[dst] == d)
                w = dst[sel]
                contrib = (1.0 + delta[w]) / np.maximum(sigma[w], 1.0)
                scatter_reduce(acc, src[sel], contrib, "sum")

        engine.foreach(accumulate)
        dense_pull(engine, "acc", op="sum")

        def commit_delta(ctx):
            sigma = ctx.get("sigma")
            delta = ctx.get("delta")
            acc = ctx.get("acc")
            level = levels_local[ctx.rank]
            at = level == d - 1
            delta[at] = sigma[at] * acc[at]
            engine.charge_vertices(ctx.rank, ctx.n_total)

        engine.foreach(commit_delta)


def betweenness(
    engine: Engine,
    sources: Optional[Sequence[int]] = None,
    k_samples: Optional[int] = None,
    seed: int = 0,
    normalized: bool = False,
) -> AlgorithmResult:
    """Betweenness centrality (exact or source-sampled).

    Parameters
    ----------
    sources:
        Explicit source set (original vertex ids).  Default: all
        vertices (exact Brandes) unless ``k_samples`` is given.
    k_samples:
        Sample this many sources uniformly; contributions are scaled by
        ``n / k`` (Brandes-Pich estimator).
    normalized:
        Divide by ``(n-1)(n-2)`` (the undirected networkx convention
        times the pair factor), mapping scores to ``[0, 1]``.
    """
    engine.reset_timers()
    part = engine.partition
    n = part.n_vertices
    if sources is not None and k_samples is not None:
        raise ValueError("pass either sources or k_samples, not both")
    if k_samples is not None:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=min(k_samples, n), replace=False)
        scale = n / len(sources)
    elif sources is None:
        sources = np.arange(n)
        scale = 1.0
    else:
        sources = np.asarray(sources)
        scale = 1.0

    bc = np.zeros(n)
    total_iterations = 0
    # bfs() resets the engine timers per call, so accumulate manually.
    t_total = t_comp = t_comm = 0.0
    from ..comm.counters import CommCounters

    all_counters = CommCounters()
    for s in sources:
        res = bfs(engine, root=int(s))
        levels_global = res.extra["levels"]
        depth_max = int(levels_global.max(initial=0))
        total_iterations += res.iterations
        # Distribute levels to the ranks once (BFS already left a
        # consistent 'level' state behind, but it is in relabeled LID
        # space and uses inf; rebuild a clean copy locally).
        levels_local = engine.map_ranks(
            lambda ctx: np.where(
                np.isfinite(ctx.get("level")), ctx.get("level"), -1
            ).astype(np.int64)
        )

        def init_brandes(ctx):
            sigma = ctx.alloc("sigma", np.float64)
            ctx.alloc("delta", np.float64)
            ctx.alloc("acc", np.float64)
            sigma[levels_local[ctx.rank] == 0] = 1.0
            engine.charge_vertices(ctx.rank, ctx.n_total)

        engine.foreach(init_brandes)
        if depth_max > 0:
            _forward_sigma(engine, levels_local, depth_max)
            _backward_delta(engine, levels_local, depth_max)
        deltas = engine.gather("delta")
        deltas[int(s)] = 0.0
        bc += scale * deltas
        t = engine.timing_report()
        t_total += t.total
        t_comp += t.compute
        t_comm += t.comm
        all_counters.merge(engine.counters)

    bc /= 2.0  # undirected: each (s, t) pair visited from both ends
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2) / 2.0
    from ..core.result import TimingReport

    return AlgorithmResult(
        values=bc,
        timings=TimingReport(total=t_total, compute=t_comp, comm=t_comm),
        iterations=total_iterations,
        counters=all_counters.summary(),
        extra={"n_sources": len(sources), "scale": scale},
    )
