"""Pointer jumping via packet swapping (paper §3.3.3, §4).

Root-finding over a forest embedded in the graph: each vertex first
instantiates a pointer along an owned edge (deterministically: its
minimum-original-id neighbor, if smaller than itself — strictly
decreasing pointers cannot form cycles, so local minima become roots),
then pointers are repeatedly doubled, ``p[v] <- p[p[v]]``, until every
vertex points at its root.

Pointer updates are not propagated along graph edges — ``p[v]`` may be
an arbitrary vertex — so the structured state exchanges don't apply.
Instead each jump is a *packet swap* (paper §3.3.3): the home rank of
``v`` (the unique rank owning ``v`` in both its row and column range)
sends a query packet to the home rank of ``p[v]``, which replies with
``p[p[v]]``; both hops ride the row-then-column 2D routing of
:func:`repro.patterns.packets.packet_swap`.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.packets import packet_swap
from ..patterns.sparse import PAIR_DTYPE

__all__ = ["pointer_jumping", "initial_parents"]

#: Query/response packet: subject vertex, payload vertex, dest rank.
PJ_DTYPE = np.dtype([("src", np.int64), ("vert", np.int64), ("dest", np.int64)])


def initial_parents(graph) -> np.ndarray:
    """The serial form of the deterministic initial forest.

    ``parent[v] = min(neighbors)`` when that minimum is below ``v``,
    else ``v`` (a root).  Shared rule between the serial reference and
    the distributed implementation.
    """
    n = graph.n_vertices
    parents = np.arange(n, dtype=np.int64)
    degs = np.diff(graph.indptr)
    src = np.repeat(parents, degs)
    if src.size:
        best = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        scatter_reduce(best, src, graph.indices, "min")
        take = best < parents
        parents[take] = best[take]
    return parents


def _home_ranks(engine: Engine, gids: np.ndarray) -> np.ndarray:
    """Home rank of each relabeled GID: the rank owning it in both its
    row range and its column range."""
    part, grid = engine.partition, engine.grid
    id_r = np.searchsorted(part.row_offsets, gids, side="right") - 1
    id_c = np.searchsorted(part.col_offsets, gids, side="right") - 1
    return id_r * grid.R + id_c


def pointer_jumping(
    engine: Engine,
    max_iterations: int | None = None,
    resume: bool = False,
    elastic=None,
) -> AlgorithmResult:
    """Find the forest root of every vertex.

    Returns roots in original vertex order, equal to serially chasing
    :func:`initial_parents` on the input graph.  ``resume=True``
    continues from the engine's latest attached checkpoint;
    ``elastic=`` also survives permanent rank loss by regridding (see
    ``docs/ROBUSTNESS.md``).
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: pointer_jumping(
                e, max_iterations=max_iterations, resume=r
            ),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    n = part.n_vertices
    all_ranks = list(range(grid.n_ranks))

    st = engine.resume_from_checkpoint("pj") if resume else None
    if st is not None:
        return _pointer_jumping_loop(
            engine,
            max_iterations,
            home_gids=st["home_gids"],
            home_parent=st["home_parent"],
            converged=st["converged"],
            iterations=st["iterations"],
            done=st["done"],
        )
    engine.reset_timers()

    # ---- build the initial forest (min-neighbor rule, by orig id) ----
    # Per-rank local minima of neighbor *original* ids, merged along row
    # groups with the generic sparse machinery (a plain MIN reduction).
    def local_minima(ctx):
        lm = ctx.localmap
        rows = ctx.row_lids()
        engine.charge_edges(ctx.rank, ctx.local_degrees(), cache_key="pj.full")
        src, dst, _ = ctx.expand(rows)
        buf = np.empty(0, dtype=PAIR_DTYPE)
        if src.size:
            best = np.full(ctx.n_total, np.iinfo(np.int64).max, dtype=np.int64)
            scatter_reduce(best, src, part.original_gid(lm.col_gid(dst)), "min")
            have = rows[best[rows] < np.iinfo(np.int64).max]
            buf = np.empty(have.size, dtype=PAIR_DTYPE)
            buf["gid"] = lm.row_gid(have)
            buf["val"] = best[have]
        return buf

    cand = engine.map_ranks(local_minima)

    # Home-rank authoritative parent stores (relabeled GIDs).
    group_data: list[tuple[np.ndarray, np.ndarray, int] | None] = [None] * grid.n_ranks
    for id_r, ranks in engine.row_groups():
        rbuf = engine.comm.allgatherv(ranks, [cand[r] for r in ranks])
        rs, re = part.row_range(id_r)
        best = np.full(re - rs, np.iinfo(np.int64).max, dtype=np.int64)
        if rbuf.size:
            scatter_reduce(best, rbuf["gid"] - rs, rbuf["val"].astype(np.int64), "min")
        gids = np.arange(rs, re, dtype=np.int64)
        orig = part.original_gid(gids)
        parent_orig = np.where(best < orig, best, orig)
        parent_rel = part.perm[parent_orig]
        for r in ranks:
            group_data[r] = (gids, parent_rel, int(rbuf.size))

    home_parent: dict[int, np.ndarray] = {}
    home_gids: dict[int, np.ndarray] = {}

    def claim_home_slice(ctx):
        gids, parent_rel, nbuf = group_data[ctx.rank]
        mine = ctx.localmap.owns_col_gid(gids)
        engine.charge_vertices(ctx.rank, nbuf)
        return gids[mine], parent_rel[mine]

    for r, (hg, hp) in enumerate(engine.map_ranks(claim_home_slice)):
        home_gids[r] = hg
        home_parent[r] = hp

    # ---- jump until every pointer reaches a root ----------------------
    # Hot targets (roots accumulate pointers geometrically) would make
    # per-vertex queries converge on a single home rank, so each rank
    # queries every *distinct* target once and fans the answer out to
    # all of its local pointers — the packet carries {requesting rank,
    # target, destination}, matching the paper's owner/state/direction
    # packet layout.  A vertex whose parent answers for itself is at a
    # root and stops participating.
    converged: dict[int, np.ndarray] = {
        r: home_gids[r] == home_parent[r] for r in all_ranks
    }
    return _pointer_jumping_loop(
        engine,
        max_iterations,
        home_gids=home_gids,
        home_parent=home_parent,
        converged=converged,
        iterations=0,
        done=False,
    )


def _pointer_jumping_loop(
    engine: Engine,
    max_iterations: int | None,
    home_gids: dict[int, np.ndarray],
    home_parent: dict[int, np.ndarray],
    converged: dict[int, np.ndarray],
    iterations: int,
    done: bool,
) -> AlgorithmResult:
    """The jump loop plus final gather, entered fresh or from a resumed
    checkpoint (the home-slice dicts are the loop state)."""
    part, grid = engine.partition, engine.grid
    all_ranks = list(range(grid.n_ranks))
    while not done:
        iterations += 1
        def build_queries(ctx):
            r = ctx.rank
            pending = ~converged[r]
            targets = np.unique(home_parent[r][pending])
            q = np.empty(targets.size, dtype=PJ_DTYPE)
            q["src"] = r  # requesting rank
            q["vert"] = targets
            q["dest"] = _home_ranks(engine, targets)
            engine.charge_vertices(r, int(pending.sum()) + targets.size)
            return q

        queries = engine.map_ranks(build_queries)
        arrived = packet_swap(engine, queries)

        # Responses: look up p[target], reply to the requesting rank.
        def build_responses(ctx):
            r = ctx.rank
            inbox = arrived[r]
            lookup = np.searchsorted(home_gids[r], inbox["vert"])
            resp = np.empty(inbox.size, dtype=PJ_DTYPE)
            resp["src"] = inbox["vert"]  # the queried target
            resp["vert"] = home_parent[r][lookup]
            resp["dest"] = inbox["src"]
            engine.charge_vertices(r, inbox.size)
            return resp

        responses = engine.map_ranks(build_responses)
        delivered = packet_swap(engine, responses)

        # Apply jumps; a vertex converges once its parent is a root.
        def apply_jumps(ctx):
            r = ctx.rank
            inbox = delivered[r]
            if inbox.size == 0:
                return 0
            # Sorted arrays of {queried target, its parent}.
            order = np.argsort(inbox["src"], kind="stable")
            t_sorted = inbox["src"][order]
            g_sorted = inbox["vert"][order]
            pending = ~converged[r]
            parents = home_parent[r]
            pos = np.searchsorted(t_sorted, parents[pending])
            new_vals = g_sorted[pos]
            is_root_parent = new_vals == parents[pending]
            old = parents[pending].copy()
            parents[pending] = new_vals
            conv = converged[r].copy()
            conv_idx = np.flatnonzero(pending)
            conv[conv_idx[is_root_parent]] = True
            converged[r] = conv
            engine.charge_vertices(r, inbox.size + int(pending.sum()))
            return int(np.count_nonzero(old != new_vals))

        n_changed = sum(engine.map_ranks(apply_jumps))

        # Global convergence check (one-word AllReduce).
        flags = [np.array([float(n_changed)]) for _ in all_ranks]
        engine.comm.allreduce(all_ranks, flags, op="max")
        done = n_changed == 0 or (
            max_iterations is not None and iterations >= max_iterations
        )
        engine.superstep_boundary(
            "pj",
            {
                "home_gids": home_gids,
                "home_parent": home_parent,
                "converged": converged,
                "iterations": iterations,
                "done": done,
            },
        )

    # ---- sync authoritative slices across row groups, then gather ----
    def build_final(ctx):
        ctx.alloc("pj", np.float64, fill=-1.0)
        r = ctx.rank
        buf = np.empty(home_gids[r].size, dtype=PAIR_DTYPE)
        buf["gid"] = home_gids[r]
        buf["val"] = home_parent[r]
        return buf

    sbufs = engine.map_ranks(build_final)
    rbuf_of: list[np.ndarray | None] = [None] * grid.n_ranks
    for id_r, ranks in engine.row_groups():
        rbuf = engine.comm.allgatherv(ranks, [sbufs[r] for r in ranks])
        for r in ranks:
            rbuf_of[r] = rbuf

    def apply_final(ctx):
        lm = ctx.localmap
        rbuf = rbuf_of[ctx.rank]
        ctx.get("pj")[lm.row_lid(rbuf["gid"])] = rbuf["val"]
        engine.charge_vertices(ctx.rank, rbuf.size)

    engine.foreach(apply_final)

    roots_rel = engine.gather("pj").astype(np.int64)
    values = part.original_gid(roots_rel)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra={"n_roots": int(np.unique(values).size)},
    )
