"""Approximate maximum weight matching (paper §4).

Distributed locally-dominant 1/2-approximation (Preis): each round,
every unmatched vertex points along its heaviest available incident
edge; mutually-pointing pairs commit to the matching; repeat until no
pair commits.  Ties break to the larger neighbor id (original ids), the
same deterministic rule as the serial reference.

This is the paper's showcase for *complex reductions* in the sparse
pattern (§3.3.3): the per-vertex reduction is an argmax over
``(weight, neighbor)`` pairs — not an element-wise op — carried in
structured candidate buffers.  Each round:

1. per-rank local argmax over available local edges (a vertex's full
   adjacency spans its row group);
2. row-group AllGatherv + custom merge -> consistent pointers;
3. pointer/death flags refreshed on ghost copies along column groups;
4. local mutual-pair detection on owned edges (every pair is seen from
   both of its block-transposed sides), committed through a standard
   sparse push on the ``mate`` state.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..patterns.sparse import sparse_push

__all__ = ["max_weight_matching"]

#: Candidate entry for the complex reduction: vertex, weight, neighbor.
CAND_DTYPE = np.dtype([("gid", np.int64), ("w", np.float64), ("nbr", np.int64)])
#: Pointer refresh entry for the ghost update stage.
PTR_DTYPE = np.dtype([("gid", np.int64), ("ptr", np.float64), ("dead", np.float64)])


def max_weight_matching(
    engine: Engine, max_rounds: int | None = None
) -> AlgorithmResult:
    """Run locally-dominant MWM to convergence.

    Requires a weighted graph.  Returns ``mate`` in original vertex
    order (``-1`` for unmatched), identical to the serial reference.
    """
    if not engine.partition.weighted:
        raise ValueError("max weight matching needs an edge-weighted graph")
    engine.reset_timers()
    part, grid = engine.partition, engine.grid

    def init_state(ctx):
        ctx.alloc("mate", np.float64, fill=-1.0)
        ctx.alloc("dead", np.float64, fill=0.0)
        ctx.alloc("ptr", np.float64, fill=-1.0)
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(init_state)

    rounds = 0
    total_matched = 0
    while True:
        rounds += 1

        # ---- 1: local heaviest-available-edge candidates -------------
        def local_candidates(ctx):
            mate, dead = ctx.get("mate"), ctx.get("dead")
            lm = ctx.localmap
            rows = ctx.row_lids()
            rows = rows[(mate[rows] < 0) & (dead[rows] == 0)]
            degs = ctx.local_degrees()[rows - lm.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=2.0)
            src, dst, w = ctx.expand(rows)
            if src.size:
                avail = (mate[dst] < 0) & (dead[dst] == 0)
                src, dst, w = src[avail], dst[avail], w[avail]
            if src.size == 0:
                return rows, np.empty(0, dtype=CAND_DTYPE)
            nbr_orig = part.original_gid(lm.col_gid(dst))
            order = np.lexsort((nbr_orig, w, src))
            s, wo, no = src[order], w[order], nbr_orig[order]
            last = np.ones(s.size, dtype=bool)
            last[:-1] = s[1:] != s[:-1]
            buf = np.empty(int(last.sum()), dtype=CAND_DTYPE)
            buf["gid"] = lm.row_gid(s[last])
            buf["w"] = wo[last]
            buf["nbr"] = no[last]
            return rows, buf

        step1 = engine.map_ranks(local_candidates)
        considered = [rows for rows, _ in step1]
        candidates = [cand for _, cand in step1]

        # ---- 2: row-group consensus pointers (complex reduction) -----
        winners_of: list[np.ndarray | None] = [None] * grid.n_ranks
        rbuf_size_of: list[int] = [0] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            rbuf = engine.comm.allgatherv(ranks, [candidates[r] for r in ranks])
            if rbuf.size:
                order = np.lexsort((rbuf["nbr"], rbuf["w"], rbuf["gid"]))
                rb = rbuf[order]
                last = np.ones(rb.size, dtype=bool)
                last[:-1] = rb["gid"][1:] != rb["gid"][:-1]
                winners = rb[last]
            else:
                winners = rbuf
            for r in ranks:
                winners_of[r] = winners
                rbuf_size_of[r] = rbuf.size

        def apply_pointers(ctx):
            lm = ctx.localmap
            ptr, dead = ctx.get("ptr"), ctx.get("dead")
            rows = considered[ctx.rank]
            winners = winners_of[ctx.rank]
            ptr[rows] = -1.0
            if winners.size:
                ptr[lm.row_lid(winners["gid"])] = winners["nbr"]
            # Vertices with no available edge anywhere are dead.
            newly_dead = rows[ptr[rows] < 0]
            dead[newly_dead] = 1.0
            engine.charge_vertices(ctx.rank, rbuf_size_of[ctx.rank] + rows.size)

        engine.foreach(apply_pointers)

        # ---- 3: refresh ghost pointers/death along column groups -----
        def build_refresh(ctx):
            lm = ctx.localmap
            rows = considered[ctx.rank]
            gids = lm.row_gid(rows)
            mine = rows[lm.owns_col_gid(gids)]
            buf = np.empty(mine.size, dtype=PTR_DTYPE)
            buf["gid"] = lm.row_gid(mine)
            buf["ptr"] = ctx.get("ptr")[mine]
            buf["dead"] = ctx.get("dead")[mine]
            engine.charge_vertices(ctx.rank, mine.size)
            return buf

        sbufs = engine.map_ranks(build_refresh)
        rbuf_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_c, ranks in engine.col_groups():
            rbuf = engine.comm.allgatherv(ranks, [sbufs[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_refresh(ctx):
            lm = ctx.localmap
            rbuf = rbuf_of[ctx.rank]
            lids = lm.col_lid(rbuf["gid"])
            ctx.get("ptr")[lids] = rbuf["ptr"]
            ctx.get("dead")[lids] = rbuf["dead"]
            engine.charge_vertices(ctx.rank, rbuf.size)

        engine.foreach(apply_refresh)

        # ---- 4: mutual-pair detection + commit ------------------------
        def mutual_pairs(ctx):
            mate, ptr = ctx.get("mate"), ctx.get("ptr")
            lm = ctx.localmap
            rows = considered[ctx.rank]
            degs = ctx.local_degrees()[rows - lm.row_offset]
            engine.charge_edges(ctx.rank, degs)
            src, dst, _ = ctx.expand(rows)
            if src.size == 0:
                return np.empty(0, dtype=np.int64)
            src_orig = part.original_gid(lm.row_gid(src))
            dst_orig = part.original_gid(lm.col_gid(dst))
            mutual = (ptr[src] == dst_orig) & (ptr[dst] == src_orig)
            d = dst[mutual]
            so = src_orig[mutual]
            # Push-pattern contract: the compute kernel writes *column*
            # state only.  The row-side mate of each pair is written by
            # the rank holding the transposed edge (the graph is
            # symmetric, so every pair is detected from both sides) and
            # propagated by the exchange below.
            mate[d] = so
            return np.unique(d)

        queues = engine.map_ranks(mutual_pairs)
        result = sparse_push(engine, "mate", queues, op="max")
        total_matched += result.n_updated
        engine.superstep_boundary("mwm")
        if result.n_updated == 0:
            break
        if max_rounds is not None and rounds >= max_rounds:
            break

    mate_vals = engine.gather("mate")
    values = mate_vals.astype(np.int64)
    matched = np.flatnonzero(values >= 0)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=rounds,
        counters=engine.counters.summary(),
        extra={"n_matched_vertices": int(matched.size)},
    )
