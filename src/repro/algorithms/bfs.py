"""Direction-optimizing breadth-first search (paper §4).

A standard hybrid BFS in the style of Beamer et al. with the paper's
static parameters: top-down (push) expansion while the frontier is
small, switching to bottom-up (pull) when the frontier's edge count
exceeds ``m_unvisited / alpha`` (and the frontier is growing), and
back to top-down when it shrinks below ``N / beta``.  Communication
follows the paper's dense/sparse philosophy: top-down iterations are
sparse queue exchanges; bottom-up iterations (which only run when the
frontier covers much of the graph) exchange parent slices densely, the
Graph500-style whole-frontier reduction.  Parent assignments reduce
with MIN over candidate parent GIDs so every rank resolves ties
identically; candidates are *original* ids, so the tie-break — and
therefore the full trajectory — is independent of the partition's
relabeling (a run migrated onto a different grid mid-flight replays
bit-identically; see ``docs/ROBUSTNESS.md``).

State: ``parent`` holds the parent's original GID (``inf`` =
unvisited); ``level`` is maintained locally from the iteration at which
a vertex's parent first appeared (no extra exchange needed, since
parent updates are made consistent each iteration).
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult, TimingReport
from ..kernels import scatter_reduce
from ..patterns.dense import dense_pull
from ..patterns.sparse import sparse_push
from .pagerank import compute_global_degrees

__all__ = ["bfs", "pseudo_diameter", "ALPHA", "BETA"]

#: Beamer et al. static switching parameters (as used by the paper).
ALPHA = 15.0
BETA = 18.0

INF = np.inf


def bfs(
    engine: Engine,
    root: int,
    alpha: float = ALPHA,
    beta: float = BETA,
    hybrid: bool = True,
    resume: bool = False,
    elastic=None,
    certify: bool = False,
) -> AlgorithmResult:
    """BFS from ``root`` (original vertex id).

    Returns a parent array in original ids (root's parent is itself,
    ``-1`` marks unreachable vertices) plus levels in ``extra``.
    ``hybrid=False`` forces pure top-down (for ablations).
    ``resume=True`` continues from the engine's latest attached
    checkpoint instead of starting over (falling back to a fresh run
    when there is none); see ``docs/ROBUSTNESS.md``.  ``elastic=``
    additionally survives permanent rank loss by regridding onto the
    surviving GPUs (an :class:`~repro.faults.elastic.ElasticRecovery`,
    a grid-policy spec string, or ``True`` for the default policy).
    ``certify=True`` runs the distributed result certifier
    (:func:`~repro.faults.integrity.certify_bfs`) on the final answer,
    charging its modeled cost to the ``certify`` clock lane and
    raising :class:`~repro.faults.integrity.IntegrityFailure` if the
    parent tree violates BFS invariants.
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: bfs(
                e,
                root,
                alpha=alpha,
                beta=beta,
                hybrid=hybrid,
                resume=r,
                certify=certify,
            ),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    n = part.n_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    root_rel = int(part.perm[root])

    st = engine.resume_from_checkpoint("bfs") if resume else None
    if st is None:
        engine.reset_timers()
        compute_global_degrees(engine)
        m_total = 0.0

        def alloc_state(ctx):
            ctx.alloc("parent", np.float64, fill=INF)
            ctx.alloc("level", np.float64, fill=INF)

        engine.foreach(alloc_state)
        # Global edge count (sum of global degrees over one row
        # partition).
        for id_r, ranks in engine.row_groups():
            ctx0 = engine.ctx(ranks[0])
            m_total += float(ctx0.get("deg")[ctx0.row_slice].sum())

        # Seed the root everywhere it is visible.
        def seed_root(ctx):
            lm = ctx.localmap
            parent = ctx.get("parent")
            level = ctx.get("level")
            lids = []
            if lm.row_start <= root_rel < lm.row_stop:
                lids.append(lm.row_lid(root_rel))
            if lm.col_start <= root_rel < lm.col_stop:
                lids.append(lm.col_lid(root_rel))
            for lid in lids:
                parent[lid] = root
                level[lid] = 0.0
            deg = float(ctx.get("deg")[lids[0]]) if lids else None
            entry = (
                np.array([lm.row_lid(root_rel)], dtype=np.int64)
                if lm.row_start <= root_rel < lm.row_stop
                else np.empty(0, dtype=np.int64)
            )
            return entry, deg

        seeded = engine.map_ranks(seed_root)
        frontier: list[np.ndarray] = [entry for entry, _ in seeded]
        # Every rank seeing the root reads the same global degree.
        root_deg = next((d for _, d in seeded if d is not None), 0.0)

        n_visited = 1
        m_frontier = root_deg
        m_frontier_prev = 0.0
        m_unvisited = m_total - root_deg
        depth = 0
        bottom_up = False
        done = False
        direction_log: list[str] = []
    else:
        frontier = st["frontier"]
        n_visited = st["n_visited"]
        m_frontier = st["m_frontier"]
        m_frontier_prev = st["m_frontier_prev"]
        m_unvisited = st["m_unvisited"]
        depth = st["depth"]
        bottom_up = st["bottom_up"]
        done = st["done"]
        direction_log = st["direction_log"]

    def _loop_state():
        return {
            "frontier": frontier,
            "n_visited": n_visited,
            "m_frontier": m_frontier,
            "m_frontier_prev": m_frontier_prev,
            "m_unvisited": m_unvisited,
            "depth": depth,
            "bottom_up": bottom_up,
            "done": done,
            "direction_log": direction_log,
        }

    while not done:
        depth += 1
        if hybrid:
            growing = m_frontier > m_frontier_prev
            if not bottom_up and growing and m_frontier > m_unvisited / alpha:
                # Beamer: switch down only while the frontier grows.
                bottom_up = True
            elif bottom_up and (n_visited >= n or _frontier_size(engine, frontier) < n / beta):
                bottom_up = False
        direction_log.append("bottom-up" if bottom_up else "top-down")

        if not bottom_up:
            # Top-down: expand the frontier, claim unvisited ghosts.
            def top_down(ctx):
                parent = ctx.get("parent")
                rows = frontier[ctx.rank]
                degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
                engine.charge_edges(ctx.rank, degs)
                src, dst, _ = ctx.expand(rows)
                if dst.size == 0:
                    return np.empty(0, dtype=np.int64)
                unvisited = parent[dst] == INF
                src, dst = src[unvisited], dst[unvisited]
                cand_parent = part.original_gid(
                    ctx.localmap.row_gid(src)
                ).astype(np.float64)
                return scatter_reduce(parent, dst, cand_parent, "min")

            queues = engine.map_ranks(top_down)
            result = sparse_push(engine, "parent", queues, op="min")
        else:
            # Bottom-up: every unvisited owned vertex scans for a
            # frontier neighbor (level == depth - 1).  Communication is
            # *dense* (a parent-slice MIN reduction over the row group
            # plus the column broadcast) — the Graph500/Beamer-style
            # whole-frontier exchange: bottom-up only runs when the
            # frontier is a large fraction of the graph, exactly the
            # regime where the paper switches to dense communications
            # (§3.3.1), and the dense slice avoids the per-pair
            # duplication a queue exchange would ship.
            def bottom_up_scan(ctx):
                parent = ctx.get("parent")
                level = ctx.get("level")
                lm = ctx.localmap
                row_lids = ctx.row_lids()
                unvisited_rows = row_lids[parent[row_lids] == INF]
                degs = ctx.local_degrees()[unvisited_rows - lm.row_offset]
                engine.charge_edges(ctx.rank, degs)
                src, dst, _ = ctx.expand(unvisited_rows)
                if dst.size:
                    in_frontier = level[dst] == depth - 1
                    src, dst = src[in_frontier], dst[in_frontier]
                    cand_parent = part.original_gid(
                        ctx.localmap.col_gid(dst)
                    ).astype(np.float64)
                    scatter_reduce(parent, src, cand_parent, "min")

            engine.foreach(bottom_up_scan)
            dense_pull(engine, "parent", op="min")
            result = None

        flags_handle = None
        if result is not None:
            n_updated = result.n_updated
        else:
            # Dense path: count freshly visited row vertices (one
            # representative per row group) and share the verdict with
            # a one-word AllReduce, as a real dense iteration must.  No
            # rank consumes the reduced value locally, so an overlapped
            # engine issues it split-phase and hides the level-update
            # compute below behind it.
            n_updated = 0
            for id_r, ranks in engine.row_groups():
                ctx0 = engine.ctx(ranks[0])
                p0 = ctx0.get("parent")[ctx0.row_slice]
                l0 = ctx0.get("level")[ctx0.row_slice]
                n_updated += int(np.count_nonzero(np.isfinite(p0) & ~np.isfinite(l0)))
            flags = [np.array([float(n_updated)]) for _ in range(grid.n_ranks)]
            if engine.overlap:
                flags_handle = engine.comm.start_allreduce(
                    list(range(grid.n_ranks)), flags, op="max"
                )
            else:
                engine.comm.allreduce(list(range(grid.n_ranks)), flags, op="max")

        if n_updated == 0:
            if flags_handle is not None:
                engine.comm.wait(flags_handle)
            done = True
            engine.superstep_boundary("bfs", _loop_state())
            break

        # Record levels of freshly visited vertices and build the next
        # frontier (newly visited owned vertices, consistent per group).
        m_frontier_prev = m_frontier
        m_frontier = 0.0

        def fresh_levels(ctx):
            parent = ctx.get("parent")
            level = ctx.get("level")
            fresh = np.flatnonzero((parent != INF) & (level == INF))
            level[fresh] = depth
            engine.charge_vertices(ctx.rank, ctx.n_total)
            if result is not None:
                return np.asarray(result.active_row[ctx.rank], dtype=np.int64)
            rs = ctx.row_slice
            return fresh[(fresh >= rs.start) & (fresh < rs.stop)]

        new_frontier = engine.map_ranks(fresh_levels)
        if flags_handle is not None:
            engine.comm.wait(flags_handle)
        for id_r, ranks in engine.row_groups():
            ctx0 = engine.ctx(ranks[0])
            rows = new_frontier[ranks[0]]
            m_frontier += float(ctx0.get("deg")[rows].sum())
        frontier = new_frontier
        n_visited += n_updated
        m_unvisited -= m_frontier
        done = n_visited >= n
        engine.superstep_boundary("bfs", _loop_state())

    parent_state = engine.gather("parent")
    levels = engine.gather("level")
    reached = np.isfinite(parent_state)
    parents = np.full(n, -1, dtype=np.int64)
    parents[reached] = parent_state[reached].astype(np.int64)
    out_levels = np.where(np.isfinite(levels), levels, -1).astype(np.int64)
    extra = {
        "levels": out_levels,
        "n_visited": int(n_visited),
        "directions": direction_log,
    }
    if certify:
        from ..faults.integrity import certify_bfs

        extra["certification"] = certify_bfs(
            engine, parents, out_levels, root
        ).as_dict()
    return AlgorithmResult(
        values=parents,
        timings=engine.timing_report(),
        iterations=depth,
        counters=engine.counters.summary(),
        extra=extra,
    )


def _frontier_size(engine: Engine, frontier: list[np.ndarray]) -> int:
    """Global frontier cardinality (one representative per row group)."""
    total = 0
    for id_r, ranks in engine.row_groups():
        total += int(np.asarray(frontier[ranks[0]]).size)
    return total


def pseudo_diameter(
    engine: Engine, start: int = 0, sweeps: int = 3, lanes: int = 1
) -> AlgorithmResult:
    """Lower-bound the graph diameter with repeated BFS sweeps.

    The classic double-sweep heuristic: BFS from ``start``, jump to the
    farthest vertex found, repeat.  The bound is monotone over sweeps
    and exact on trees.  Returns the bound in
    ``extra["diameter_lower_bound"]`` along with the endpoint pair
    realizing it.

    Sweeps run through the batched traversal path
    (:func:`~repro.algorithms.batch.bfs_batch`): with the default
    ``lanes=1`` each sweep degenerates to the single-source code path
    and the estimate is identical to the historical sequential
    implementation (asserted in tests); ``lanes>1`` probes that many
    farthest candidates per sweep in *one* fused traversal, which can
    only tighten the lower bound at a fraction of the sequential cost.
    """
    from .batch import bfs_batch

    part = engine.partition
    n = part.n_vertices
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range")
    lanes = max(1, min(int(lanes), n))
    best = 0
    endpoints = (start, start)
    roots = [start]
    total_iterations = 0
    timings = None
    counters = {}
    for _ in range(max(sweeps, 1)):
        res = bfs_batch(engine, roots)
        levels = res.extra["levels"]
        total_iterations += res.iterations
        timings = res.timings if timings is None else TimingReport(
            total=timings.total + res.timings.total,
            compute=timings.compute + res.timings.compute,
            comm=timings.comm + res.timings.comm,
        )
        counters = res.counters
        # Deepest reached vertex across this sweep's lanes.
        lane_far = [int(np.argmax(levels[:, j])) for j in range(len(roots))]
        lane_depth = [int(levels[lane_far[j], j]) for j in range(len(roots))]
        j = int(np.argmax(lane_depth))
        far, depth = lane_far[j], lane_depth[j]
        if depth > best:
            best = depth
            endpoints = (roots[j], far)
        if far == roots[j] or depth <= best - 1:
            break
        # Next sweep: the `lanes` farthest candidates of the winning
        # lane (stable order, so lanes=1 reproduces argmax exactly).
        order = np.argsort(-levels[:, j], kind="stable")[:lanes]
        roots = [int(v) for v in order]
    assert timings is not None
    return AlgorithmResult(
        values=None,
        timings=timings,
        iterations=total_iterations,
        counters=counters,
        extra={"diameter_lower_bound": best, "endpoints": endpoints},
    )
