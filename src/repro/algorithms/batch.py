"""Lane-batched multi-source traversal: k queries, one superstep stream.

The paper's cost model is dominated at scale by per-collective α terms,
so k independent queries run sequentially pay k traversals' worth of
latency.  These entry points instead run k query *lanes* through one
BSP superstep stream over ``(N_T, k)`` state arrays: every sparse
exchange ships one fused ``{gid, lane, val}`` buffer carrying all live
frontiers (:func:`~repro.patterns.sparse.sparse_push_lanes`), and every
dense sweep/AllReduce carries a k-column slice
(:func:`~repro.patterns.dense.dense_exchange_lanes`) — one α charge per
collective where k sequential runs pay k.  Per-lane convergence masks
retire finished queries mid-stream, shrinking the buffers as lanes
drain; for BFS each lane additionally keeps its *own* hybrid push/pull
switching state, so a lane deep in bottom-up territory can run a dense
slice exchange in the same superstep other lanes still push sparsely.

The correctness contract is strict bit-identity: lane ``l`` of a
batched run produces exactly the arrays of the corresponding
single-source run (same roots, same engine configuration).  Every
fused kernel is built so each lane's update subsequence is applied in
the order the 1-D code would use (see
:func:`~repro.kernels.scatter_reduce_lanes`), queues stay lane-major so
within-lane GID order matches the 1-D sorted queues, and per-lane
scalar reductions (frontier edge counts, dangling mass, deltas) reuse
the exact 1-D operand sequences.

``k == 1`` degenerates to the single-source code path by construction:
each batch function delegates to its scalar counterpart and reshapes
the result, so a batch of one is the single-source run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce_lanes
from ..patterns.dense import dense_exchange_lanes
from ..patterns.sparse import sparse_push_lanes
from .bfs import ALPHA, BETA, bfs
from .pagerank import compute_global_degrees, pagerank
from .sssp import sssp

__all__ = ["bfs_batch", "sssp_batch", "pagerank_batch", "validate_roots"]

INF = np.inf

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def validate_roots(n: int, roots, what: str = "roots") -> np.ndarray:
    """Validate a batch's source list: non-empty, in-range, no dupes.

    Duplicate sources are rejected rather than silently fused — two
    identical lanes would waste a lane's worth of state and bandwidth;
    the caller should deduplicate and fan the result back out.
    """
    roots = np.asarray(roots, dtype=np.int64).ravel()
    if roots.size == 0:
        raise ValueError(f"{what} must be non-empty")
    bad = roots[(roots < 0) | (roots >= n)]
    if bad.size:
        raise ValueError(f"{what} out of range [0, {n}): {bad.tolist()}")
    uniq, counts = np.unique(roots, return_counts=True)
    if (counts > 1).any():
        raise ValueError(f"duplicate {what}: {uniq[counts > 1].tolist()}")
    return roots


def _lane_frontier_sizes(
    engine: Engine, frontier: list, k: int
) -> np.ndarray:
    """Per-lane global frontier cardinality (one row-group rep each)."""
    total = np.zeros(k, dtype=np.int64)
    for id_r, ranks in engine.row_groups():
        lids, lanes = frontier[ranks[0]]
        if lanes.size:
            total += np.bincount(lanes, minlength=k)
    return total


def _check_resumed_sources(saved, requested, what: str) -> None:
    """A batch resumed onto different sources would silently produce
    lanes answering the wrong queries; refuse instead."""
    saved = [int(s) for s in saved]
    requested = [int(r) for r in requested]
    if saved != requested:
        raise ValueError(
            f"checkpoint was taken with {what}={saved}, cannot resume a "
            f"batch over {what}={requested}"
        )


def bfs_batch(
    engine: Engine,
    roots,
    alpha: float = ALPHA,
    beta: float = BETA,
    hybrid: bool = True,
    resume: bool = False,
) -> AlgorithmResult:
    """Hybrid BFS from ``k`` roots in one fused superstep stream.

    ``values`` is an ``(n, k)`` parent matrix (column ``l`` ==
    ``bfs(engine, roots[l]).values``, bit-identical); ``extra`` carries
    the matching ``(n, k)`` ``levels`` plus per-lane ``n_visited`` and
    ``directions`` logs.  Each lane switches push/pull independently
    with the same Beamer heuristic and retires as soon as its frontier
    empties; live lanes keep sharing one exchange per superstep.
    ``resume=True`` continues from the engine's latest attached
    checkpoint (taken at a superstep boundary of a run over the *same*
    roots) instead of starting over, falling back to a fresh run when
    there is none.
    """
    part, grid = engine.partition, engine.grid
    n = part.n_vertices
    roots = validate_roots(n, roots)
    k = roots.size
    if k == 1:
        res = bfs(
            engine,
            int(roots[0]),
            alpha=alpha,
            beta=beta,
            hybrid=hybrid,
            resume=resume,
        )
        return AlgorithmResult(
            values=res.values.reshape(-1, 1),
            timings=res.timings,
            iterations=res.iterations,
            counters=res.counters,
            extra={
                "levels": res.extra["levels"].reshape(-1, 1),
                "n_visited": [res.extra["n_visited"]],
                "directions": [res.extra["directions"]],
                "roots": [int(roots[0])],
            },
        )
    roots_rel = part.perm[roots].astype(np.int64)

    st = engine.resume_from_checkpoint("bfs_batch") if resume else None
    if st is None:
        engine.reset_timers()
        compute_global_degrees(engine)
        m_total = 0.0

        def alloc_state(ctx):
            ctx.alloc("parent", np.float64, fill=INF, width=k)
            ctx.alloc("level", np.float64, fill=INF, width=k)

        engine.foreach(alloc_state)
        for id_r, ranks in engine.row_groups():
            ctx0 = engine.ctx(ranks[0])
            m_total += float(ctx0.get("deg")[ctx0.row_slice].sum())

        # Seed every root in its lane, everywhere it is visible.
        def seed_roots(ctx):
            lm = ctx.localmap
            parent = ctx.get("parent")
            level = ctx.get("level")
            entry_lids, entry_lanes = [], []
            degs = np.full(k, np.nan)
            for lane in range(k):
                rr = int(roots_rel[lane])
                lids = []
                if lm.row_start <= rr < lm.row_stop:
                    lids.append(lm.row_lid(rr))
                if lm.col_start <= rr < lm.col_stop:
                    lids.append(lm.col_lid(rr))
                for lid in lids:
                    parent[lid, lane] = roots[lane]
                    level[lid, lane] = 0.0
                if lids:
                    degs[lane] = float(ctx.get("deg")[lids[0]])
                if lm.row_start <= rr < lm.row_stop:
                    entry_lids.append(lm.row_lid(rr))
                    entry_lanes.append(lane)
            return (
                np.asarray(entry_lids, dtype=np.int64),
                np.asarray(entry_lanes, dtype=np.int64),
            ), degs

        seeded = engine.map_ranks(seed_roots)
        frontier = [entry for entry, _ in seeded]
        root_deg = np.array(
            [
                next(
                    (d[lane] for _, d in seeded if not np.isnan(d[lane])),
                    0.0,
                )
                for lane in range(k)
            ]
        )

        n_visited = np.ones(k, dtype=np.int64)
        m_frontier = root_deg.copy()
        m_frontier_prev = np.zeros(k)
        m_unvisited = m_total - root_deg
        bottom_up = np.zeros(k, dtype=bool)
        lane_done = np.zeros(k, dtype=bool)
        depth = 0
        direction_log: list[list[str]] = [[] for _ in range(k)]
    else:
        _check_resumed_sources(st["roots"], roots, "roots")
        frontier = st["frontier"]
        n_visited = st["n_visited"]
        m_frontier = st["m_frontier"]
        m_frontier_prev = st["m_frontier_prev"]
        m_unvisited = st["m_unvisited"]
        bottom_up = st["bottom_up"]
        lane_done = st["lane_done"]
        depth = st["depth"]
        direction_log = st["direction_log"]

    # Per-rank GID lookup tables (float64, built once): translating a
    # candidate parent in the edge loops becomes a single gather
    # instead of two GID-arithmetic passes plus a cast per superstep.
    # Derived and uncharged, so recomputing on a resume is clock-neutral.
    def gid_tables(ctx):
        lm = ctx.localmap
        rs, cs = ctx.row_slice, ctx.col_slice
        row_tab = part.original_gid(
            lm.row_gid(np.arange(rs.start, rs.stop, dtype=np.int64))
        ).astype(np.float64)
        col_tab = part.original_gid(
            lm.col_gid(np.arange(cs.start, cs.stop, dtype=np.int64))
        ).astype(np.float64)
        return row_tab, col_tab

    gid_tab = engine.map_ranks(gid_tables)

    # Every rank in a row group holds the identical row-window state
    # after each exchange, so frontier lists are computed once by the
    # group's first rank and aliased to the rest.
    row_leader = [0] * grid.n_ranks
    for _id_r, _ranks in engine.row_groups():
        for _r in _ranks:
            row_leader[_r] = _ranks[0]

    def _loop_state():
        return {
            "roots": [int(r) for r in roots],
            "frontier": frontier,
            "n_visited": n_visited,
            "m_frontier": m_frontier,
            "m_frontier_prev": m_frontier_prev,
            "m_unvisited": m_unvisited,
            "bottom_up": bottom_up,
            "lane_done": lane_done,
            "depth": depth,
            "direction_log": direction_log,
        }

    while not lane_done.all():
        depth += 1
        fsize = _lane_frontier_sizes(engine, frontier, k)
        for lane in np.flatnonzero(~lane_done):
            if hybrid:
                growing = m_frontier[lane] > m_frontier_prev[lane]
                if (
                    not bottom_up[lane]
                    and growing
                    and m_frontier[lane] > m_unvisited[lane] / alpha
                ):
                    bottom_up[lane] = True
                elif bottom_up[lane] and (
                    n_visited[lane] >= n or fsize[lane] < n / beta
                ):
                    bottom_up[lane] = False
            direction_log[lane].append(
                "bottom-up" if bottom_up[lane] else "top-down"
            )
        push_set = ~lane_done & ~bottom_up
        pull_lanes = np.flatnonzero(~lane_done & bottom_up)
        n_upd = np.zeros(k, dtype=np.int64)

        result = None
        if push_set.any():
            # Top-down lanes: one fused expansion over every push
            # lane's frontier, one fused sparse exchange.
            def top_down(ctx):
                parent = ctx.get("parent")
                lids, lanes_f = frontier[ctx.rank]
                sel = push_set[lanes_f]
                rows, rlanes = lids[sel], lanes_f[sel]
                degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
                engine.charge_edges(ctx.rank, degs)
                src, dst, _ = ctx.expand(rows)
                if dst.size == 0:
                    return _EMPTY_I64, _EMPTY_I64
                edge_lanes = np.repeat(rlanes, degs)
                unvisited = parent[dst, edge_lanes] == INF
                src = src[unvisited]
                dst = dst[unvisited]
                edge_lanes = edge_lanes[unvisited]
                cand_parent = gid_tab[ctx.rank][0][
                    src - ctx.row_slice.start
                ]
                return scatter_reduce_lanes(
                    parent, dst, cand_parent, "min", lanes=edge_lanes
                )

            queues = engine.map_ranks(top_down)
            result = sparse_push_lanes(engine, "parent", queues, op="min")
            n_upd += result.n_updated

        flags_handle = None
        if pull_lanes.size:
            # Bottom-up lanes share one expansion: the lanes' unvisited
            # sets overlap heavily in this regime, so the union of
            # their rows is expanded once and every lane filters the
            # same edge stream through one 2-D gather — this row reuse
            # (impossible for k sequential runs) is where the batch
            # beats sequential wall-clock, not just collective counts.
            # MIN is order-independent, so sharing cannot perturb the
            # per-lane results.
            L = int(pull_lanes.size)
            n_chunks = (L + 7) // 8
            Lp = 8 * n_chunks

            def bottom_up_scan(ctx):
                parent = ctx.get("parent")
                level = ctx.get("level")
                lm = ctx.localmap
                rs = ctx.row_slice
                cs = ctx.col_slice
                pw = parent[rs]
                lw = level[cs]
                if L != k:
                    pw = pw[:, pull_lanes]
                    lw = lw[:, pull_lanes]
                # Expansion sources live in the row window and targets
                # in the column window, so the per-cell masks only need
                # those slices.  The L per-lane bool masks, padded to a
                # byte multiple, ARE a packed bitmask when reinterpreted
                # as uint64 words (little-endian byte per lane): no
                # arithmetic packs them, the edge stream takes two
                # scalar gathers and one AND per 8-lane word, and the
                # surviving words viewed back as bytes are directly the
                # (edge, lane) candidate matrix.
                rb = np.zeros((pw.shape[0], Lp), dtype=bool)
                cb = np.zeros((lw.shape[0], Lp), dtype=bool)
                np.equal(pw, INF, out=rb[:, :L])
                np.equal(lw, depth - 1, out=cb[:, :L])
                row64 = rb.view(np.uint64)
                col64 = cb.view(np.uint64)
                row_any = row64[:, 0]
                for c in range(1, n_chunks):
                    row_any = row_any | row64[:, c]
                rows_rel = np.flatnonzero(row_any != 0)
                rows = rows_rel + rs.start
                degs = ctx.local_degrees()[rows - lm.row_offset]
                engine.charge_edges(ctx.rank, degs)
                src, dst, _ = ctx.expand(rows)
                if dst.size:
                    gtab = gid_tab[ctx.rank][1]
                    pflat = parent.reshape(-1)
                    src_rel = src - rs.start
                    dst_rel = dst - cs.start
                    for c in range(n_chunks):
                        eb = row64[src_rel, c] & col64[dst_rel, c]
                        ne = np.flatnonzero(eb != 0)
                        if not ne.size:
                            continue
                        # One composite-index MIN over every (edge,
                        # lane) candidate of this 8-lane word: the
                        # surviving words viewed back as bytes are the
                        # flattened (edge, lane) candidate matrix, and
                        # no change set is produced (this scatter's
                        # changed set is never consumed — fresh cells
                        # are recovered from the level stamp
                        # afterwards).  MIN over the same candidate
                        # set is order-independent, so the per-lane
                        # results stay bit-identical.
                        hits = np.flatnonzero(eb[ne].view(bool))
                        pe = hits >> 3
                        pl = hits & 7
                        s_c = src[ne]
                        g_c = gtab[dst_rel[ne]]
                        if L == k:
                            comp = s_c[pe] * k + 8 * c + pl
                        else:
                            comp = s_c[pe] * k + pull_lanes[8 * c + pl]
                        np.minimum.at(pflat, comp, g_c[pe])

            engine.foreach(bottom_up_scan)
            dense_exchange_lanes(engine, "parent", "pull", "min", pull_lanes)
            for id_r, ranks in engine.row_groups():
                ctx0 = engine.ctx(ranks[0])
                p0 = ctx0.get("parent")[ctx0.row_slice]
                l0 = ctx0.get("level")[ctx0.row_slice]
                if L != k:
                    p0 = p0[:, pull_lanes]
                    l0 = l0[:, pull_lanes]
                n_upd[pull_lanes] += np.count_nonzero(
                    (p0 != INF) & (l0 == INF), axis=0
                )
            # One fused per-lane verdict AllReduce for all pull lanes
            # (split-phase on an overlapped engine, exactly as 1-D).
            flags = [
                n_upd[pull_lanes].astype(np.float64)
                for _ in range(grid.n_ranks)
            ]
            if engine.overlap:
                flags_handle = engine.comm.start_allreduce(
                    list(range(grid.n_ranks)), flags, op="max"
                )
            else:
                engine.comm.allreduce(
                    list(range(grid.n_ranks)), flags, op="max"
                )

        cont = ~lane_done & (n_upd > 0)
        lane_done |= ~lane_done & (n_upd == 0)
        if not cont.any():
            if flags_handle is not None:
                engine.comm.wait(flags_handle)
            engine.superstep_boundary("bfs_batch", _loop_state())
            break

        # Record levels of freshly visited cells and build the next
        # frontier (push lanes: exchange's active rows; pull lanes:
        # fresh row-window cells), merged lane-major.
        pull_cont = np.zeros(k, dtype=bool)
        pull_cont[pull_lanes] = True
        pull_cont &= cont

        def fresh_levels(ctx):
            parent = ctx.get("parent")
            level = ctx.get("level")
            fresh = None
            if result is not None and not pull_cont.any():
                # Pure push superstep: the exchange already names every
                # cell it may have written (changed ghosts, the local
                # update queue, and the active owned rows).  Every cell
                # with a finite parent and an unset level was written
                # *this* superstep — earlier supersteps stamped theirs
                # — so stamping the touched cells with ``level == INF``
                # reaches exactly the set the full scan would, without
                # scanning the whole window.
                cl, cn = result.active_col[ctx.rank]
                al, an = result.active_row[ctx.rank]
                tl = np.concatenate([cl, al])
                tn = np.concatenate([cn, an])
                unset = level[tl, tn] == INF
                level[tl[unset], tn[unset]] = depth
            else:
                pflat = parent.reshape(-1)
                lflat = level.reshape(-1)
                mask = (pflat != INF) & (lflat == INF)
                np.copyto(lflat, depth, where=mask)
                if ctx.rank == row_leader[ctx.rank] and pull_cont.any():
                    fresh = np.flatnonzero(mask)
            engine.charge_vertices(ctx.rank, ctx.n_total)
            # Next frontier: push lanes keep the exchange's active rows
            # (lane-major, unique); pull lanes reuse the flat ``fresh``
            # indices just computed — a divmod (shift/mask when k is a
            # power of two) recovers (lid, lane) pairs in lid-major
            # order.  Each lane's entries come from exactly one part
            # (disjoint lane sets) with LIDs ascending within the lane,
            # which is all downstream consumers need: expansion order
            # only matters per lane, and per-lane deg sums extract
            # their own subsequence.  Only row-group leaders extract —
            # the group shares one row window, so the main loop aliases
            # their lists to the other members.
            if ctx.rank != row_leader[ctx.rank]:
                return None
            out_l: list[np.ndarray] = []
            out_n: list[np.ndarray] = []
            if result is not None:
                al, an = result.active_row[ctx.rank]
                keep = cont[an]
                out_l.append(al[keep])
                out_n.append(an[keep])
            if pull_cont.any():
                rs = ctx.row_slice
                if k & (k - 1) == 0:
                    shift = k.bit_length() - 1
                    fl = fresh >> shift
                    fn = fresh & (k - 1)
                else:
                    fl = fresh // k
                    fn = fresh - fl * k
                sel = pull_cont[fn]
                if rs.start > 0 or rs.stop < level.shape[0]:
                    sel &= (fl >= rs.start) & (fl < rs.stop)
                out_l.append(fl[sel])
                out_n.append(fn[sel])
            if not out_l:
                return _EMPTY_I64, _EMPTY_I64
            return np.concatenate(out_l), np.concatenate(out_n)

        leader_frontier = engine.map_ranks(fresh_levels)
        new_frontier = [leader_frontier[row_leader[r]] for r in range(grid.n_ranks)]
        if flags_handle is not None:
            engine.comm.wait(flags_handle)
        m_new = np.zeros(k)
        for id_r, ranks in engine.row_groups():
            ctx0 = engine.ctx(ranks[0])
            lids0, lanes0 = new_frontier[ranks[0]]
            deg0 = ctx0.get("deg")
            if not lanes0.size:
                continue
            # One stable lane sort replaces a boolean mask pass per
            # lane; each lane's segment keeps the original relative
            # order, so the per-lane np.sum sees the identical operand
            # sequence (and the switching trajectory stays
            # bit-identical to the 1-D runs).
            ordr = np.argsort(lanes0, kind="stable")
            sl = lids0[ordr]
            sn = lanes0[ordr]
            starts = np.searchsorted(sn, np.arange(k))
            ends = np.searchsorted(sn, np.arange(k), side="right")
            for lane in np.flatnonzero(cont):
                seg = sl[starts[lane] : ends[lane]]
                if seg.size:
                    m_new[lane] += float(deg0[seg].sum())
        frontier = new_frontier
        m_frontier_prev[cont] = m_frontier[cont]
        m_frontier[cont] = m_new[cont]
        n_visited[cont] += n_upd[cont]
        m_unvisited[cont] -= m_frontier[cont]
        lane_done |= cont & (n_visited >= n)
        engine.superstep_boundary("bfs_batch", _loop_state())

    parent_state = engine.gather("parent")
    levels = engine.gather("level")
    reached = np.isfinite(parent_state)
    parents = np.full((n, k), -1, dtype=np.int64)
    parents[reached] = parent_state[reached].astype(np.int64)
    out_levels = np.where(np.isfinite(levels), levels, -1).astype(np.int64)
    return AlgorithmResult(
        values=parents,
        timings=engine.timing_report(),
        iterations=depth,
        counters=engine.counters.summary(),
        extra={
            "levels": out_levels,
            "n_visited": [int(v) for v in n_visited],
            "directions": [list(d) for d in direction_log],
            "roots": [int(r) for r in roots],
        },
    )


def sssp_batch(
    engine: Engine,
    sources,
    max_iterations: Optional[int] = None,
    resume: bool = False,
) -> AlgorithmResult:
    """Bellman-Ford from ``k`` sources in one fused superstep stream.

    ``values`` is an ``(n, k)`` distance matrix; column ``l`` is
    bit-identical to ``sssp(engine, sources[l]).values``.  Lanes retire
    individually once their relaxation fixpoints are reached.
    ``resume=True`` continues from the engine's latest attached
    checkpoint of a run over the same sources.
    """
    part, grid = engine.partition, engine.grid
    if not part.weighted:
        raise ValueError("sssp_batch needs an edge-weighted graph")
    n = part.n_vertices
    sources = validate_roots(n, sources, "sources")
    k = sources.size
    if k == 1:
        res = sssp(
            engine,
            int(sources[0]),
            max_iterations=max_iterations,
            resume=resume,
        )
        return AlgorithmResult(
            values=res.values.reshape(-1, 1),
            timings=res.timings,
            iterations=res.iterations,
            counters=res.counters,
            extra={
                "n_reached": [res.extra["n_reached"]],
                "iterations": [res.iterations],
                "sources": [int(sources[0])],
            },
        )
    roots_rel = part.perm[sources].astype(np.int64)

    st = engine.resume_from_checkpoint("sssp_batch") if resume else None
    if st is None:
        engine.reset_timers()

        def seed(ctx):
            lm = ctx.localmap
            dist = ctx.alloc("dist", np.float64, fill=INF, width=k)
            entry_lids, entry_lanes = [], []
            for lane in range(k):
                rr = int(roots_rel[lane])
                if lm.row_start <= rr < lm.row_stop:
                    dist[lm.row_lid(rr), lane] = 0.0
                if lm.col_start <= rr < lm.col_stop:
                    dist[lm.col_lid(rr), lane] = 0.0
                if lm.row_start <= rr < lm.row_stop:
                    entry_lids.append(lm.row_lid(rr))
                    entry_lanes.append(lane)
            engine.charge_vertices(ctx.rank, ctx.n_total)
            return (
                np.asarray(entry_lids, dtype=np.int64),
                np.asarray(entry_lanes, dtype=np.int64),
            )

        frontier = engine.map_ranks(seed)
        lane_done = np.zeros(k, dtype=bool)
        lane_iters = np.zeros(k, dtype=np.int64)
        iterations = 0
    else:
        _check_resumed_sources(st["sources"], sources, "sources")
        frontier = st["frontier"]
        lane_done = st["lane_done"]
        lane_iters = st["lane_iters"]
        iterations = st["iterations"]

    def _loop_state():
        return {
            "sources": [int(s) for s in sources],
            "frontier": frontier,
            "lane_done": lane_done,
            "lane_iters": lane_iters,
            "iterations": iterations,
        }

    while not lane_done.all():
        iterations += 1
        active = ~lane_done

        def relax(ctx):
            dist = ctx.get("dist")
            lids, lanes_f = frontier[ctx.rank]
            sel = active[lanes_f]
            rows, rlanes = lids[sel], lanes_f[sel]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=1.5)
            src, dst, w = ctx.expand(rows)
            if dst.size == 0:
                return _EMPTY_I64, _EMPTY_I64
            edge_lanes = np.repeat(rlanes, degs)
            cand = dist[src, edge_lanes] + w
            return scatter_reduce_lanes(dist, dst, cand, "min", lanes=edge_lanes)

        queues = engine.map_ranks(relax)
        result = sparse_push_lanes(engine, "dist", queues, op="min")
        frontier = result.active_row
        lane_iters[active] = iterations
        lane_done |= active & (result.n_updated == 0)
        if max_iterations is not None and iterations >= max_iterations:
            lane_done |= active
        engine.superstep_boundary("sssp_batch", _loop_state())

    values = engine.gather("dist")
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra={
            "n_reached": [
                int(np.count_nonzero(np.isfinite(values[:, lane])))
                for lane in range(k)
            ],
            "iterations": [int(i) for i in lane_iters],
            "sources": [int(s) for s in sources],
        },
    )


def pagerank_batch(
    engine: Engine,
    seeds,
    iterations: int = 20,
    damping: float = 0.85,
    tol: Optional[float] = None,
    resume: bool = False,
) -> AlgorithmResult:
    """Personalized PageRank from ``k`` seed vertices, one lane each.

    Lane ``l`` runs PageRank with a one-hot teleport distribution at
    ``seeds[l]``; ``values`` column ``l`` is bit-identical to
    ``pagerank(engine, personalization=one_hot(seeds[l]), ...)``.
    With ``tol`` set, converged lanes freeze mid-stream and drop out of
    the dense exchanges; the remaining lanes keep sharing one AllReduce
    per group per iteration.  ``resume=True`` continues from the
    engine's latest attached checkpoint of a run over the same seeds.
    """
    n = engine.partition.n_vertices
    grid = engine.grid
    all_ranks = list(range(grid.n_ranks))
    seeds = validate_roots(n, seeds, "seeds")
    k = seeds.size
    if k == 1:
        pers = np.zeros(n)
        pers[int(seeds[0])] = 1.0
        res = pagerank(
            engine,
            iterations=iterations,
            damping=damping,
            personalization=pers,
            tol=tol,
            resume=resume,
        )
        return AlgorithmResult(
            values=res.values.reshape(-1, 1),
            timings=res.timings,
            iterations=res.iterations,
            counters=res.counters,
            extra={
                "damping": damping,
                "iterations": [res.iterations],
                "seeds": [int(seeds[0])],
            },
        )

    st = engine.resume_from_checkpoint("pagerank_batch") if resume else None
    if st is None:
        tele_global = np.zeros((n, k))
        tele_global[seeds, np.arange(k)] = 1.0
        engine.reset_timers()
        engine.scatter_global("tele", tele_global)
        compute_global_degrees(engine)

        def alloc_state(ctx):
            ctx.alloc("pr", np.float64, fill=1.0 / n, width=k)
            ctx.alloc("acc", np.float64, width=k)

        engine.foreach(alloc_state)
        lane_done = np.zeros(k, dtype=bool)
        lane_iters = np.zeros(k, dtype=np.int64)
        iterations_run = 0
    else:
        _check_resumed_sources(st["seeds"], seeds, "seeds")
        lane_done = st["lane_done"]
        lane_iters = st["lane_iters"]
        iterations_run = st["iterations_run"]
    # Derived per-rank degree cache; rebuilt lazily either way (it is a
    # pure function of the restored "deg" array, so the resumed run's
    # contributions are bit-identical).
    deg_dst: list[Optional[tuple[np.ndarray, np.ndarray]]] = [None] * grid.n_ranks

    def _loop_state():
        return {
            "seeds": [int(s) for s in seeds],
            "lane_done": lane_done,
            "lane_iters": lane_iters,
            "iterations_run": iterations_run,
        }

    while iterations_run < iterations and not lane_done.all():
        iterations_run += 1
        act = np.flatnonzero(~lane_done)

        # Dangling mass for every live lane in one (split-phase when
        # overlapped) vector AllReduce; per-lane sums run over exactly
        # the 1-D operand sequence.
        def dangling_share(ctx):
            pr = ctx.get("pr")
            deg = ctx.get("deg")
            rw = ctx.row_slice
            engine.charge_vertices(ctx.rank, ctx.localmap.n_row)
            masked = pr[rw][deg[rw] == 0]
            return (
                np.array([masked[:, lane].copy().sum() for lane in act])
                / grid.R
            )

        partials = engine.map_ranks(dangling_share)
        dangling_handle = (
            engine.comm.start_allreduce(all_ranks, partials, op="sum")
            if engine.overlap
            else None
        )

        # Local partial gathers: one edge pass feeds all k columns
        # (row-vector scatter; per column the 1-D accumulation order).
        def gather_partials(ctx):
            pr = ctx.get("pr")
            deg = ctx.get("deg")
            acc = ctx.get("acc")
            acc[...] = 0.0
            src, dst, w = ctx.expand_all()
            engine.charge_edges(
                ctx.rank, ctx.local_degrees(), cache_key="pr.full"
            )
            if dst.size:
                if deg_dst[ctx.rank] is None:
                    dd = deg[dst]
                    deg_dst[ctx.rank] = (np.maximum(dd, 1e-300), dd == 0)
                dd_safe, dd_zero = deg_dst[ctx.rank]
                contrib = pr[dst] / dd_safe[:, None]
                contrib[dd_zero] = 0.0
                scatter_reduce_lanes(acc, src, contrib, "sum")

        engine.foreach(gather_partials)

        # Complete sums along row groups, refresh ghosts — live lanes
        # only.
        dense_exchange_lanes(engine, "acc", "pull", "sum", act)

        if dangling_handle is not None:
            engine.comm.wait(dangling_handle)
        else:
            engine.comm.allreduce(all_ranks, partials, op="sum")
        dangling = partials[0]

        def damping_update(ctx):
            pr = ctx.get("pr")
            acc = ctx.get("acc")
            tele = ctx.get("tele")
            t_a = tele[:, act]
            new = (1.0 - damping) * t_a + damping * (
                acc[:, act] + dangling[None, :] * t_a
            )
            delta = np.zeros(act.size)
            if tol is not None:
                rw = ctx.row_slice
                delta = np.abs(new[rw] - pr[rw][:, act]).max(
                    axis=0, initial=0.0
                )
            pr[:, act] = new
            engine.charge_vertices(ctx.rank, ctx.n_total)
            return delta

        deltas = engine.map_ranks(damping_update)
        lane_iters[act] = iterations_run
        if tol is not None:
            max_delta = np.max(np.stack(deltas), axis=0)
            flags = [max_delta.copy() for _ in all_ranks]
            engine.comm.allreduce(all_ranks, flags, op="max")
            lane_done[act[max_delta < tol]] = True
        engine.superstep_boundary("pagerank_batch", _loop_state())

    values = engine.gather("pr")
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations_run,
        counters=engine.counters.summary(),
        extra={
            "damping": damping,
            "iterations": [int(i) for i in lane_iters],
            "seeds": [int(s) for s in seeds],
        },
    )
