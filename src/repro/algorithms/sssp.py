"""Single-source shortest paths (extension beyond the paper's Table 3).

Bellman-Ford-style label correcting over the paper's sparse push
pattern: distances relax along local edges (``dist[u] <-
min(dist[u], dist[v] + w(v, u))``), updated ghosts exchange through
the column groups, owners synchronize through the row groups, and the
active-vertex queue carries exactly the vertices whose distance
improved — the same machinery as color-propagation CC with a weighted
reduction, demonstrating how naturally the substrate generalizes to
new vertex-state algorithms.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.sparse import sparse_push

__all__ = ["sssp"]

INF = np.inf


def sssp(
    engine: Engine,
    root: int,
    max_iterations: int | None = None,
    resume: bool = False,
    elastic=None,
    certify: bool = False,
) -> AlgorithmResult:
    """Shortest path distance from ``root`` to every vertex.

    Requires non-negative edge weights.  Returns distances in original
    vertex order (``inf`` for unreachable vertices), exactly equal to a
    serial Bellman-Ford / Dijkstra result.  ``resume=True`` continues
    from the engine's latest attached checkpoint; ``elastic=`` also
    survives permanent rank loss by regridding (see
    ``docs/ROBUSTNESS.md``).  ``certify=True`` runs
    :func:`~repro.faults.integrity.certify_sssp` (relaxation slack
    >= 0 on every edge) on the final distances, charging the
    ``certify`` clock lane.
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: sssp(
                e,
                root,
                max_iterations=max_iterations,
                resume=r,
                certify=certify,
            ),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    if not part.weighted:
        raise ValueError("sssp needs an edge-weighted graph")
    n = part.n_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    root_rel = int(part.perm[root])

    st = engine.resume_from_checkpoint("sssp") if resume else None
    if st is None:
        engine.reset_timers()

        def seed_root(ctx):
            lm = ctx.localmap
            dist = ctx.alloc("dist", np.float64, fill=INF)
            if lm.row_start <= root_rel < lm.row_stop:
                dist[lm.row_lid(root_rel)] = 0.0
            if lm.col_start <= root_rel < lm.col_stop:
                dist[lm.col_lid(root_rel)] = 0.0
            engine.charge_vertices(ctx.rank, ctx.n_total)
            return (
                np.array([lm.row_lid(root_rel)], dtype=np.int64)
                if lm.row_start <= root_rel < lm.row_stop
                else np.empty(0, dtype=np.int64)
            )

        frontier = engine.map_ranks(seed_root)
        iterations = 0
        done = False
    else:
        frontier = st["frontier"]
        iterations = st["iterations"]
        done = st["done"]

    while not done:
        iterations += 1

        def relax(ctx):
            dist = ctx.get("dist")
            rows = frontier[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=1.5)
            src, dst, w = ctx.expand(rows)
            if dst.size == 0:
                return np.empty(0, dtype=np.int64)
            cand = dist[src] + w
            return scatter_reduce(dist, dst, cand, "min")

        queues = engine.map_ranks(relax)
        result = sparse_push(engine, "dist", queues, op="min")
        frontier = result.active_row
        done = result.n_updated == 0 or (
            max_iterations is not None and iterations >= max_iterations
        )
        engine.superstep_boundary(
            "sssp",
            {"frontier": frontier, "iterations": iterations, "done": done},
        )

    values = engine.gather("dist")
    reached = np.isfinite(values)
    extra = {"n_reached": int(np.count_nonzero(reached))}
    if certify:
        from ..faults.integrity import certify_sssp

        extra["certification"] = certify_sssp(engine, values, root).as_dict()
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations,
        counters=engine.counters.summary(),
        extra=extra,
    )
