"""Label Propagation community detection via 2.5D processing
(paper §3.3.3 "2.5D Processing" and §4).

Synchronous label propagation: every vertex adopts the most frequent
label among its neighbors each iteration (ties to the smallest label;
isolated vertices keep their own).  The mode is a *complex reduction* —
too expensive for the generic sparse pattern — so the paper reduces
hierarchically:

1. per-rank label histograms over locally-owned edges (GPU hash
   tables; vectorized run-length triples here — see
   :mod:`repro.patterns.complex`);
2. histograms routed to per-chunk owner ranks inside each row group
   (personalized exchange, one-histogram total volume);
3. owners merge, select modes, and the winners are broadcast back
   across the row group, then to column groups in the standard
   fashion.

Labels are *original* vertex ids so the deterministic tie-break agrees
with the serial reference exactly.  Active-vertex queues (paper
§3.4.1) restrict work to vertices whose neighborhood changed.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..patterns.complex import (
    TRIPLE_DTYPE,
    build_histogram,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
    select_mode,
)
from ..patterns.sparse import PAIR_DTYPE, propagate_active_pull

__all__ = ["label_propagation"]

_STATE = "label"
#: Relative cost of a hash-table insert vs. a simple edge op.
HASH_WORK_PER_EDGE = 4.0


def _init_labels(engine: Engine) -> None:
    part = engine.partition
    for ctx in engine:
        lm = ctx.localmap
        label = ctx.alloc(_STATE, np.float64)
        label[lm.row_slice] = part.original_gid(
            np.arange(lm.row_start, lm.row_stop)
        )
        label[lm.col_slice] = part.original_gid(
            np.arange(lm.col_start, lm.col_stop)
        )
        engine.charge_vertices(ctx.rank, ctx.n_total)


def _pairs(gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    buf = np.empty(gids.size, dtype=PAIR_DTYPE)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def label_propagation(
    engine: Engine,
    iterations: int = 20,
    use_queue: bool = True,
) -> AlgorithmResult:
    """Run up to ``iterations`` synchronous LP steps (paper: 20).

    Stops early once no label changes.  Returns labels in original
    vertex order, identical to the serial reference.
    """
    engine.reset_timers()
    part, grid = engine.partition, engine.grid
    _init_labels(engine)

    all_rows = [ctx.row_lids() for ctx in engine]
    active = list(all_rows)
    iterations_run = 0

    for _ in range(iterations):
        iterations_run += 1
        rows_per_rank = active if use_queue else all_rows

        # ---- phase 1: local histograms over owned edges -------------
        histograms: list[np.ndarray] = []
        for ctx in engine:
            label = ctx.get(_STATE)
            rows = rows_per_rank[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=HASH_WORK_PER_EDGE)
            src, dst, _ = ctx.expand(rows)
            histograms.append(
                build_histogram(ctx.localmap.row_gid(src), label[dst])
            )

        # ---- phase 2: 2.5D owner exchange + mode, per row group -----
        changed_rows: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * grid.n_ranks
        n_changed = 0
        for id_r, ranks in engine.row_groups():
            rs, re = part.row_range(id_r)
            bounds = owner_chunks(rs, re, grid.R)
            # Personalized exchange of histogram triples to owners.
            send = []
            for pos, r in enumerate(ranks):
                tri = histograms[r]
                owners = owner_of_vertex(tri["gid"], bounds)
                order = np.argsort(owners, kind="stable")
                tri, owners = tri[order], owners[order]
                cuts = np.searchsorted(owners, np.arange(grid.R + 1))
                send.append([tri[cuts[k] : cuts[k + 1]] for k in range(grid.R)])
                engine.charge_vertices(r, tri.size)
            received = engine.comm.alltoallv(ranks, send)
            # Owner-side merge + mode selection.
            finals = []
            for pos, r in enumerate(ranks):
                merged = merge_histograms(received[pos])
                gids, modes = select_mode(merged)
                engine.charge_vertices(r, merged.size)
                finals.append(_pairs(gids, modes))
            # Broadcast winners back across the row group.
            rbuf = engine.comm.allgatherv(ranks, finals)
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                label = ctx.get(_STATE)
                lids = lm.row_lid(rbuf["gid"])
                old = label[lids].copy()
                label[lids] = rbuf["val"]
                engine.charge_vertices(r, rbuf.size)
                diff = lids[label[lids] != old]
                changed_rows[r] = np.asarray(diff, dtype=np.int64)
            if ranks:
                n_changed += int(changed_rows[ranks[0]].size)

        # ---- phase 3: refresh ghosts along column groups -------------
        for id_c, ranks in engine.col_groups():
            sbufs = []
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                gids = lm.row_gid(changed_rows[r])
                mine = gids[lm.owns_col_gid(gids)]
                label = ctx.get(_STATE)
                sbufs.append(_pairs(mine, label[lm.row_lid(mine)]))
                engine.charge_vertices(r, mine.size)
            rbuf = engine.comm.allgatherv(ranks, sbufs)
            for r in ranks:
                ctx = engine.ctx(r)
                lm = ctx.localmap
                label = ctx.get(_STATE)
                label[lm.col_lid(rbuf["gid"])] = rbuf["val"]
                engine.charge_vertices(r, rbuf.size)

        # ---- phase 4: next active queue = neighbors of changes -------
        if use_queue:
            active = propagate_active_pull(engine, changed_rows)
        engine.clocks.mark_iteration()
        if n_changed == 0:
            break

    values = engine.gather(_STATE).astype(np.int64)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations_run,
        counters=engine.counters.summary(),
        extra={"n_communities": int(np.unique(values).size)},
    )
