"""Label Propagation community detection via 2.5D processing
(paper §3.3.3 "2.5D Processing" and §4).

Synchronous label propagation: every vertex adopts the most frequent
label among its neighbors each iteration (ties to the smallest label;
isolated vertices keep their own).  The mode is a *complex reduction* —
too expensive for the generic sparse pattern — so the paper reduces
hierarchically:

1. per-rank label histograms over locally-owned edges (GPU hash
   tables; vectorized run-length triples here — see
   :mod:`repro.patterns.complex`);
2. histograms routed to per-chunk owner ranks inside each row group
   (personalized exchange, one-histogram total volume);
3. owners merge, select modes, and the winners are broadcast back
   across the row group, then to column groups in the standard
   fashion.

Labels are *original* vertex ids so the deterministic tie-break agrees
with the serial reference exactly.  Active-vertex queues (paper
§3.4.1) restrict work to vertices whose neighborhood changed.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..patterns.complex import (
    TRIPLE_DTYPE,
    build_histogram,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
    select_mode,
)
from ..patterns.sparse import PAIR_DTYPE, propagate_active_pull

__all__ = ["label_propagation"]

_STATE = "label"
#: Relative cost of a hash-table insert vs. a simple edge op.
HASH_WORK_PER_EDGE = 4.0


def _init_labels(engine: Engine) -> None:
    part = engine.partition

    def init(ctx):
        lm = ctx.localmap
        label = ctx.alloc(_STATE, np.float64)
        label[lm.row_slice] = part.original_gid(
            np.arange(lm.row_start, lm.row_stop)
        )
        label[lm.col_slice] = part.original_gid(
            np.arange(lm.col_start, lm.col_stop)
        )
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(init)


def _pairs(gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    buf = np.empty(gids.size, dtype=PAIR_DTYPE)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def label_propagation(
    engine: Engine,
    iterations: int = 20,
    use_queue: bool = True,
    resume: bool = False,
    elastic=None,
) -> AlgorithmResult:
    """Run up to ``iterations`` synchronous LP steps (paper: 20).

    Stops early once no label changes.  Returns labels in original
    vertex order, identical to the serial reference.  ``resume=True``
    continues from the engine's latest attached checkpoint;
    ``elastic=`` also survives permanent rank loss by regridding (see
    ``docs/ROBUSTNESS.md``).
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: label_propagation(
                e, iterations=iterations, use_queue=use_queue, resume=r
            ),
            engine,
            elastic,
            resume=resume,
        )
    part, grid = engine.partition, engine.grid
    all_rows = [ctx.row_lids() for ctx in engine]

    st = engine.resume_from_checkpoint("lp") if resume else None
    if st is None:
        engine.reset_timers()
        _init_labels(engine)
        active = list(all_rows)
        iterations_run = 0
        done = False
    else:
        active = st["active"]
        iterations_run = st["iterations_run"]
        done = st["done"]

    while iterations_run < iterations and not done:
        iterations_run += 1
        rows_per_rank = active if use_queue else all_rows

        # ---- phase 1: local histograms over owned edges -------------
        def local_histogram(ctx):
            label = ctx.get(_STATE)
            rows = rows_per_rank[ctx.rank]
            degs = ctx.local_degrees()[rows - ctx.localmap.row_offset]
            engine.charge_edges(ctx.rank, degs, work_per_edge=HASH_WORK_PER_EDGE)
            src, dst, _ = ctx.expand(rows)
            return build_histogram(ctx.localmap.row_gid(src), label[dst])

        histograms = engine.map_ranks(local_histogram)

        # ---- phase 2: 2.5D owner exchange + mode, per row group -----
        # Personalized exchange of histogram triples to owners: routing
        # is per-rank compute (each rank's owner chunks follow from its
        # own row group), the exchanges stay sequential per group.
        def route_to_owners(ctx):
            rs, re = part.row_range(ctx.block.id_r)
            bounds = owner_chunks(rs, re, grid.R)
            tri = histograms[ctx.rank]
            owners = owner_of_vertex(tri["gid"], bounds)
            order = np.argsort(owners, kind="stable")
            tri, owners = tri[order], owners[order]
            cuts = np.searchsorted(owners, np.arange(grid.R + 1))
            engine.charge_vertices(ctx.rank, tri.size)
            return [tri[cuts[k] : cuts[k + 1]] for k in range(grid.R)]

        sends = engine.map_ranks(route_to_owners)
        received_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            received = engine.comm.alltoallv(ranks, [sends[r] for r in ranks])
            for pos, r in enumerate(ranks):
                received_of[r] = received[pos]

        # Owner-side merge + mode selection.
        def merge_and_select(ctx):
            merged = merge_histograms(received_of[ctx.rank])
            gids, modes = select_mode(merged)
            engine.charge_vertices(ctx.rank, merged.size)
            return _pairs(gids, modes)

        finals = engine.map_ranks(merge_and_select)

        # Broadcast winners back across each row group.
        rbuf_of: list[np.ndarray | None] = [None] * grid.n_ranks
        for id_r, ranks in engine.row_groups():
            rbuf = engine.comm.allgatherv(ranks, [finals[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_winners(ctx):
            lm = ctx.localmap
            label = ctx.get(_STATE)
            rbuf = rbuf_of[ctx.rank]
            lids = lm.row_lid(rbuf["gid"])
            old = label[lids].copy()
            label[lids] = rbuf["val"]
            engine.charge_vertices(ctx.rank, rbuf.size)
            return np.asarray(lids[label[lids] != old], dtype=np.int64)

        changed_rows = engine.map_ranks(apply_winners)
        n_changed = 0
        for id_r, ranks in engine.row_groups():
            if ranks:
                n_changed += int(changed_rows[ranks[0]].size)

        # ---- phase 3: refresh ghosts along column groups -------------
        def build_refresh(ctx):
            lm = ctx.localmap
            gids = lm.row_gid(changed_rows[ctx.rank])
            mine = gids[lm.owns_col_gid(gids)]
            label = ctx.get(_STATE)
            engine.charge_vertices(ctx.rank, mine.size)
            return _pairs(mine, label[lm.row_lid(mine)])

        sbufs = engine.map_ranks(build_refresh)
        rbuf_of = [None] * grid.n_ranks
        for id_c, ranks in engine.col_groups():
            rbuf = engine.comm.allgatherv(ranks, [sbufs[r] for r in ranks])
            for r in ranks:
                rbuf_of[r] = rbuf

        def apply_refresh(ctx):
            lm = ctx.localmap
            label = ctx.get(_STATE)
            rbuf = rbuf_of[ctx.rank]
            label[lm.col_lid(rbuf["gid"])] = rbuf["val"]
            engine.charge_vertices(ctx.rank, rbuf.size)

        engine.foreach(apply_refresh)

        # ---- phase 4: next active queue = neighbors of changes -------
        if use_queue:
            active = propagate_active_pull(engine, changed_rows)
        done = n_changed == 0
        engine.superstep_boundary(
            "lp",
            {"active": active, "iterations_run": iterations_run, "done": done},
        )

    values = engine.gather(_STATE).astype(np.int64)
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations_run,
        counters=engine.counters.summary(),
        extra={"n_communities": int(np.unique(values).size)},
    )
