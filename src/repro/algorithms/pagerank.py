"""PageRank as a pull-based vertex state program (paper §4).

The paper deliberately implements PageRank in the *general* graph
computational model — a pull update with dense communications — rather
than as an optimized linear-algebra routine (that optimized form is the
CuGraph baseline, :mod:`repro.baselines.spmv`, which the paper finds
~1.47x faster at small scale).

Every iteration:

1. each rank gathers ``pr[u] / deg[u]`` over its local edges into a
   per-owned-vertex accumulator (partial sums — a vertex's full
   neighborhood spans its row group);
2. a dense pull exchange (row-group AllReduce SUM + column-group
   Broadcasts) completes the sums and refreshes ghosts;
3. dangling mass is folded in via a one-word AllReduce and the damping
   update is applied locally.

Vertex degrees are *global* degrees, themselves computed with one
dense pull exchange over the local degrees (paper §3.2: the true
degree is the sum of local degrees across the row group).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import Engine
from ..core.result import AlgorithmResult
from ..kernels import scatter_reduce
from ..patterns.dense import dense_pull

__all__ = ["pagerank", "compute_global_degrees"]


def compute_global_degrees(
    engine: Engine, name: str = "deg", weighted: bool = False
) -> None:
    """Compute each vertex's true (possibly weighted) degree into state
    array ``name``.

    Fills the row window with local degrees and runs a dense pull
    (SUM) exchange; afterwards both windows hold global degrees
    (paper §3.2: the true degree is the row-group sum of local
    degrees).
    """
    def local_degrees(ctx):
        deg = ctx.alloc(name, np.float64)
        if weighted:
            blk = ctx.block
            if blk.weights is None:
                raise ValueError("weighted degrees need an edge-weighted graph")
            sums = np.zeros(ctx.localmap.n_row)
            scatter_reduce(
                sums,
                np.repeat(np.arange(ctx.localmap.n_row), ctx.local_degrees()),
                blk.weights,
                "sum",
            )
            deg[ctx.row_slice] = sums
        else:
            deg[ctx.row_slice] = ctx.local_degrees()
        engine.charge_vertices(ctx.rank, ctx.n_total)

    engine.foreach(local_degrees)
    dense_pull(engine, name, op="sum")


def pagerank(
    engine: Engine,
    iterations: int = 20,
    damping: float = 0.85,
    personalization: Optional[np.ndarray] = None,
    weighted: bool = False,
    tol: Optional[float] = None,
    resume: bool = False,
    elastic=None,
    certify: bool = False,
) -> AlgorithmResult:
    """Run synchronous PageRank (paper default: 20 fixed iterations).

    Parameters
    ----------
    personalization:
        Optional teleport distribution in original vertex order
        (normalized internally); dangling mass follows it.
    weighted:
        Spread rank proportionally to edge weights instead of uniformly
        over neighbors.
    tol:
        Optional early stop once ``max |delta pr| < tol`` (checked with
        a one-word MAX AllReduce each iteration); ``iterations``
        remains the hard bound.
    resume:
        Continue from the engine's latest attached checkpoint instead
        of starting over (falls back to a fresh run when there is
        none); see ``docs/ROBUSTNESS.md``.

    Returns the PageRank vector in original vertex order; it matches
    the serial reference to floating-point roundoff.

    ``elastic=`` survives permanent rank loss by regridding onto the
    surviving GPUs.  Note that PageRank's floating-point sum reductions
    are sensitive to the operand grouping a different grid induces:
    values after a shrink-regrid agree with the fault-free run to
    within ~1 ulp rather than bit-exactly (spare-pool recoveries, which
    keep the grid, stay bit-exact); see ``docs/ROBUSTNESS.md``.
    ``certify=True`` runs
    :func:`~repro.faults.integrity.certify_pagerank` (mass
    conservation + residual bound) on the final vector, charging the
    ``certify`` clock lane.
    """
    if elastic:
        from ..faults.elastic import drive_elastic

        return drive_elastic(
            lambda e, r: pagerank(
                e,
                iterations=iterations,
                damping=damping,
                personalization=personalization,
                weighted=weighted,
                tol=tol,
                resume=r,
                certify=certify,
            ),
            engine,
            elastic,
            resume=resume,
        )
    n = engine.partition.n_vertices
    grid = engine.grid
    all_ranks = list(range(grid.n_ranks))

    if personalization is not None:
        personalization = np.asarray(personalization, dtype=np.float64)
        if personalization.shape != (n,):
            raise ValueError(f"personalization must have shape ({n},)")
        if personalization.min() < 0 or personalization.sum() <= 0:
            raise ValueError("personalization must be non-negative and non-zero")

    st = engine.resume_from_checkpoint("pagerank") if resume else None
    if st is None:
        engine.reset_timers()
        if personalization is not None:
            teleport_global = personalization / personalization.sum()
            engine.scatter_global("tele", teleport_global)
        compute_global_degrees(engine, weighted=weighted)

        def alloc_state(ctx):
            ctx.alloc("pr", np.float64, fill=1.0 / n)
            ctx.alloc("acc", np.float64)

        engine.foreach(alloc_state)
        iterations_run = 0
        done = False
    else:
        iterations_run = st["iterations_run"]
        done = st["done"]

    # deg is static after compute_global_degrees, so the per-edge degree
    # gather (and its zero mask) is iteration-invariant — cache it
    # (per-rank slots; each closure touches only its own).  Rebuilt from
    # the (restored) deg state on resume, so it never needs
    # checkpointing.
    deg_dst: list[Optional[tuple[np.ndarray, np.ndarray]]] = [None] * grid.n_ranks
    while iterations_run < iterations and not done:
        iterations_run += 1

        # Dangling mass: each rank contributes its row window's share
        # divided by the row-group size (R ranks share each window).
        # Depends only on the previous iteration's pr and the static
        # degrees, so it runs *before* the gather: on an overlapped
        # engine its one-word AllReduce is issued split-phase here and
        # completed only where the total is consumed, hiding the whole
        # gather + dense-exchange phase behind it.
        def dangling_share(ctx):
            pr = ctx.get("pr")
            deg = ctx.get("deg")
            rw = ctx.row_slice
            engine.charge_vertices(ctx.rank, ctx.localmap.n_row)
            return np.array([pr[rw][deg[rw] == 0].sum() / grid.R])

        partials = engine.map_ranks(dangling_share)
        dangling_handle = (
            engine.comm.start_allreduce(all_ranks, partials, op="sum")
            if engine.overlap
            else None
        )

        # Local partial gathers.
        def gather_partials(ctx):
            pr = ctx.get("pr")
            deg = ctx.get("deg")
            acc = ctx.get("acc")
            acc[...] = 0.0
            src, dst, w = ctx.expand_all()
            engine.charge_edges(ctx.rank, ctx.local_degrees(), cache_key="pr.full")
            if dst.size:
                if deg_dst[ctx.rank] is None:
                    dd = deg[dst]
                    deg_dst[ctx.rank] = (np.maximum(dd, 1e-300), dd == 0)
                dd_safe, dd_zero = deg_dst[ctx.rank]
                contrib = pr[dst] / dd_safe
                if weighted:
                    contrib = contrib * w
                contrib[dd_zero] = 0.0
                scatter_reduce(acc, src, contrib, "sum")

        engine.foreach(gather_partials)

        # Complete the sums along row groups, refresh ghosts.
        dense_pull(engine, "acc", op="sum")

        # Fold in the dangling total (waiting out the in-flight
        # AllReduce on an overlapped engine).
        if dangling_handle is not None:
            engine.comm.wait(dangling_handle)
        else:
            engine.comm.allreduce(all_ranks, partials, op="sum")
        dangling_total = float(partials[0][0])

        # Damping update (acc is consistent on every LID).
        def damping_update(ctx):
            pr = ctx.get("pr")
            acc = ctx.get("acc")
            if personalization is not None:
                tele = ctx.get("tele")
                new = (1.0 - damping) * tele + damping * (
                    acc + dangling_total * tele
                )
            else:
                new = (1.0 - damping) / n + damping * (acc + dangling_total / n)
            delta = 0.0
            if tol is not None:
                rw = ctx.row_slice
                delta = float(np.abs(new[rw] - pr[rw]).max(initial=0.0))
            pr[...] = new
            engine.charge_vertices(ctx.rank, ctx.n_total)
            return delta

        max_delta = max(engine.map_ranks(damping_update), default=0.0)
        if tol is not None:
            flags = [np.array([max_delta]) for _ in all_ranks]
            engine.comm.allreduce(all_ranks, flags, op="max")
        if tol is not None and max_delta < tol:
            done = True
        engine.superstep_boundary(
            "pagerank", {"iterations_run": iterations_run, "done": done}
        )

    values = engine.gather("pr")
    extra = {"damping": damping}
    if certify:
        from ..faults.integrity import certify_pagerank

        # The residual bound models the uniform-spread update; weighted
        # runs certify mass conservation and non-negativity only.
        extra["certification"] = certify_pagerank(
            engine,
            values,
            damping=damping,
            personalization=personalization,
            resid_tol=None if weighted else 1e-2,
        ).as_dict()
    return AlgorithmResult(
        values=values,
        timings=engine.timing_report(),
        iterations=iterations_run,
        counters=engine.counters.summary(),
        extra=extra,
    )
