"""Complex reductions and 2.5D hierarchical processing (paper §3.3.3).

Some reductions cannot be expressed as an element-wise AllReduce op.
Label Propagation needs the statistical *mode* of a vertex's
neighborhood labels — merging per-rank label histograms, not values.
The paper's "2.5D" scheme for this:

1. each rank of a row group reduces its locally-owned edges into
   per-vertex label histograms (GPU hash tables in the paper; sorted
   ``(vertex, label) -> count`` triples here);
2. the row group's vertices are block-partitioned into ``R`` chunks,
   hierarchically assigning each chunk an *owner* rank within the
   group; histograms are exchanged to owners (a personalized exchange
   whose volume is one histogram total, instead of the ``R``-fold
   volume an AllGather would move);
3. owners perform the final merge + mode selection, and the winners are
   broadcast back across the row group (then to column groups in the
   standard fashion).

This module provides the histogram triples, the owner partition, and
the merge/select kernels.  Three algorithms drive them: Label
Propagation (mode selection), k-core decomposition (neighborhood
h-indices), and Jones-Plassmann coloring (smallest absent color).
"""

from __future__ import annotations

import numpy as np

from ..kernels import segment_reduce

__all__ = [
    "TRIPLE_DTYPE",
    "h_index_from_histograms",
    "build_histogram",
    "merge_histograms",
    "select_mode",
    "owner_of_vertex",
    "owner_chunks",
]

#: One histogram entry: vertex GID, label value, occurrence count.
TRIPLE_DTYPE = np.dtype(
    [("gid", np.int64), ("label", np.float64), ("count", np.int64)]
)


def build_histogram(src_gids: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-(vertex, label) counts from raw edge observations.

    The vectorized stand-in for the paper's space-efficient GPU hash
    table insert phase: ``(gid, label)`` keys are sorted and run-length
    encoded into triples.
    """
    src_gids = np.asarray(src_gids, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.float64)
    if src_gids.size == 0:
        return np.empty(0, dtype=TRIPLE_DTYPE)
    order = np.lexsort((labels, src_gids))
    g, lab = src_gids[order], labels[order]
    new_key = np.empty(g.size, dtype=bool)
    new_key[0] = True
    new_key[1:] = (g[1:] != g[:-1]) | (lab[1:] != lab[:-1])
    group = np.cumsum(new_key) - 1
    counts = np.bincount(group)
    out = np.empty(counts.size, dtype=TRIPLE_DTYPE)
    out["gid"] = g[new_key]
    out["label"] = lab[new_key]
    out["count"] = counts
    return out


def merge_histograms(triples: np.ndarray) -> np.ndarray:
    """Sum counts of equal ``(gid, label)`` keys (owner-side merge)."""
    if triples.size == 0:
        return triples
    order = np.lexsort((triples["label"], triples["gid"]))
    t = triples[order]
    new_key = np.empty(t.size, dtype=bool)
    new_key[0] = True
    new_key[1:] = (t["gid"][1:] != t["gid"][:-1]) | (
        t["label"][1:] != t["label"][:-1]
    )
    out = t[new_key].copy()
    out["count"] = segment_reduce(t["count"], np.flatnonzero(new_key), "sum")
    return out


def select_mode(merged: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pick each vertex's modal label from merged histograms.

    Ties break to the smallest label — the deterministic rule shared
    with the serial reference.  Returns ``(gids, labels)``.
    """
    if merged.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    sel = np.lexsort((merged["label"], -merged["count"], merged["gid"]))
    g_sorted = merged["gid"][sel]
    first = np.ones(sel.size, dtype=bool)
    first[1:] = g_sorted[1:] != g_sorted[:-1]
    winners = sel[first]
    return merged["gid"][winners], merged["label"][winners]


def owner_chunks(row_start: int, row_stop: int, group_size: int) -> np.ndarray:
    """Chunk boundaries block-partitioning a row range over its group.

    Owner ``k`` (the rank with ``Rank_R == k``) is responsible for
    vertices ``[bounds[k], bounds[k+1])``.
    """
    n = row_stop - row_start
    base, extra = divmod(n, group_size)
    sizes = np.full(group_size, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(group_size + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds + row_start


def owner_of_vertex(gids: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Owner index (``Rank_R``) of each GID under ``bounds``."""
    gids = np.asarray(gids, dtype=np.int64)
    return np.searchsorted(bounds, gids, side="right") - 1


def h_index_from_histograms(merged: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex h-index from merged neighbor-value histograms.

    For each ``gid``, the h-index of its ``(value, count)`` entries is
    the largest ``h`` such that at least ``h`` neighbors carry value
    ``>= h``.  Used by the distributed k-core algorithm (Montresor et
    al.'s locality theorem: repeated neighborhood h-indices converge to
    core numbers), which makes it a second showcase of the paper's
    "complex reduction" pattern next to Label Propagation's mode.

    Returns ``(gids, h_values)``; vectorized over all vertices.
    """
    if merged.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # Sort by (gid asc, value desc) so each group's cumulative count at
    # an entry is "number of neighbors with value >= this value".
    order = np.lexsort((-merged["label"], merged["gid"]))
    g = merged["gid"][order]
    val = merged["label"][order].astype(np.int64)
    cnt = merged["count"][order]
    new_group = np.empty(g.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = g[1:] != g[:-1]
    group = np.cumsum(new_group) - 1
    cum = np.cumsum(cnt)
    # subtract each group's starting offset
    starts = np.zeros(group[-1] + 1, dtype=np.int64)
    start_pos = np.flatnonzero(new_group)
    starts[1:] = cum[start_pos[1:] - 1]
    cum_in_group = cum - starts[group]
    # candidate h at each entry: min(value, cumulative count); the
    # h-index is the max candidate within the group.
    cand = np.minimum(val, cum_in_group)
    # floor at 0, as the zero-initialized accumulator did
    h = np.maximum(segment_reduce(cand, start_pos, "max"), 0)
    return g[new_group], h
