"""Sparse queue-based 2D communication (paper §3.3.2, Algs. 3-5).

Sparse exchanges trade queue-building compute for communication volume
proportional to the number of *actual* state updates.  Buffers hold
``{vertex GID, state value}`` pairs; communication uses AllGatherv
along the reduction group followed by the mirrored broadcast stage,
exactly as Alg. 3:

* **push**: queue of updated ghost (column) vertices -> AllGatherv over
  the column group -> ``ReduceQueue`` -> queue of updated *owned* (row)
  vertices -> exchange over the row group -> final assignment.
* **pull**: the same with row/column roles swapped (partial gathers
  reduce over the row group first, ghosts refresh over column groups).

``ReduceQueue`` change-detection (Alg. 5 lines 8-12) runs through the
fused :func:`repro.kernels.scatter_reduce` kernel: one segmented
reduction that applies the op and returns the unique changed LIDs in
the same pass.  A rank's own
locally-updated row vertices are unioned into the second-stage queue
(its own echoes produce ``new == old`` in the reduce, exactly as in
the CUDA code, but their values still must travel to the rest of the
row group).

Each stage runs in three phases shaped for the rank executor
(:mod:`repro.exec`): a **parallel build** of every rank's send buffer
(row and column groups each partition the rank set, so the per-rank
builds touch disjoint state and clock lanes), the **sequential
collectives** over the groups in order (they mutate shared counters
and synchronize group clocks), and a **parallel apply** of each
group's received buffer.  This is bit-identical to the historical
fully-serial interleaving — see docs/PERF.md.

On an overlapped engine (``Engine(overlap=True)``) each stage's group
exchanges are *issued* split-phase instead: data and counters
materialize at issue, the parallel apply runs against the in-flight
buffers, and the comm-time charge lands at the trailing ``wait`` —
hiding the apply compute behind each group's own exchange.  Values,
counters, and the compute/comm lanes stay bit-identical to a blocking
run; only exposed time shrinks (see docs/MODEL.md).

Send buffers are recycled through each rank's own
:meth:`~repro.core.context.RankContext.scratch_pool` (takes happen in
the parallel build, gives in the sequential collective phase, so a
pool never sees concurrent calls).

The functions return a :class:`SparseResult` carrying the per-rank
active row-vertex queues (paper §3.4.1) and the global count of
vertices whose state changed — the quantity the dense/sparse switch
policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.context import RankContext
from ..core.engine import Engine
from ..kernels import scatter_reduce, scatter_reduce_lanes, unique_bounded

__all__ = [
    "LANE_PAIR_DTYPE",
    "PAIR_DTYPE",
    "LaneSparseResult",
    "SparseResult",
    "sparse_push",
    "sparse_push_lanes",
    "sparse_pull",
    "propagate_active_pull",
]

#: One queue entry: {vertex GID, state value} (paper Alg. 4 lines 6-7).
PAIR_DTYPE = np.dtype([("gid", np.int64), ("val", np.float64)])

#: A lane-tagged queue entry for batched multi-source exchanges: the
#: same pair plus the query lane the update belongs to.
LANE_PAIR_DTYPE = np.dtype(
    [("gid", np.int64), ("lane", np.int64), ("val", np.float64)]
)

#: Custom reduction hook: (state, lids, vals) -> unique changed lids.
ReduceFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass
class SparseResult:
    """Outcome of one sparse exchange."""

    active_row: list[np.ndarray]  # per-rank row-vertex LIDs updated
    n_updated: int  # unique vertices whose state changed globally


def _pairs(ctx: RankContext, gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """A ``{gid, val}`` send buffer from the rank's own scratch pool."""
    buf = ctx.scratch_pool(PAIR_DTYPE).take(gids.size)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def _give_back(engine: Engine, sbufs_all: list[np.ndarray], ranks: list[int]) -> None:
    """Return the given ranks' send buffers to their own pools."""
    for r in ranks:
        engine.ctx(r).scratch_pool(PAIR_DTYPE).give(sbufs_all[r])


def _group_allgatherv(
    engine: Engine,
    ranks: list[int],
    sbufs: list[np.ndarray],
    nic_sharing: int,
    handles: list,
) -> np.ndarray:
    """One group's AllGatherv, blocking or split-phase per the engine.

    With ``engine.overlap`` the exchange is *issued* split-phase — data
    and counters materialize now, the comm-time charge is deferred — and
    the handle is appended to ``handles`` for the caller to wait after
    the apply phase, hiding the apply compute behind the in-flight
    exchange.  Blocking engines pay the comm charge here, exactly as
    before; either way the returned buffer is bit-identical.
    """
    if engine.overlap:
        h = engine.comm.start_allgatherv(ranks, sbufs, nic_sharing=nic_sharing)
        handles.append(h)
        return h.result
    return engine.comm.allgatherv(ranks, sbufs, nic_sharing=nic_sharing)


def _wait_all(engine: Engine, handles: list) -> None:
    """Complete every in-flight exchange (no-op on blocking runs)."""
    for h in handles:
        engine.comm.wait(h)


def _apply_op(
    state: np.ndarray,
    lids: np.ndarray,
    vals: np.ndarray,
    op: str,
    reduce_fn: Optional[ReduceFn],
) -> np.ndarray:
    """Apply the reduction; return unique LIDs whose value changed.

    ``op`` is one of ``"min"``/``"max"``/``"sum"`` (``"sum"`` has delta
    semantics: callers send deltas, not absolutes).  Change detection is
    the kernel's exact float compare of the stored value before/after —
    for ``"sum"`` that means a zero delta, or deltas cancelling exactly,
    leave the vertex out of the changed set.
    """
    if reduce_fn is not None:
        return np.asarray(reduce_fn(state, lids, vals), dtype=np.int64)
    return scatter_reduce(state, lids, vals, op)


def sparse_push(
    engine: Engine,
    name: str,
    queues: list[np.ndarray],
    op: str = "min",
    reduce_fn: Optional[ReduceFn] = None,
) -> SparseResult:
    """Sparse push exchange.

    Parameters
    ----------
    queues:
        Per-rank arrays of *column-vertex LIDs* whose state the local
        compute kernel updated (deduplicated, as per the ``q_in``
        convention).
    op / reduce_fn:
        Reduction applied in ``ReduceQueue``; ``reduce_fn`` overrides
        ``op`` for complex reductions (paper §3.3.3).
    """
    grid = engine.grid
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")

    # ---- stage 1: AllGatherv + reduce along each column group -------
    def build_col(ctx: RankContext) -> np.ndarray:
        q = np.asarray(queues[ctx.rank], dtype=np.int64)
        engine.charge_vertices(ctx.rank, q.size)  # BuildQueue kernel
        state = ctx.get(name)
        return _pairs(ctx, ctx.localmap.col_gid(q), state[q])

    sbufs_all = engine.map_ranks(build_col)

    handles: list = []
    rbuf_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    for id_c, ranks in engine.col_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], col_share, handles
        )
        _give_back(engine, sbufs_all, ranks)
        for r in ranks:
            rbuf_of[r] = rbuf

    def apply_col(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        lids = lm.col_lid(rbuf["gid"])
        changed = _apply_op(state, lids, rbuf["val"], op, reduce_fn)
        engine.charge_vertices(ctx.rank, rbuf.size)  # ReduceQueue kernel
        # Row-stage queue: changed ghosts plus this rank's own local
        # updates, restricted to row-owned vertices.
        cand = np.concatenate(
            [
                lm.col_gid(changed),
                lm.col_gid(np.asarray(queues[ctx.rank], dtype=np.int64)),
            ]
        )
        return np.unique(cand[lm.owns_row_gid(cand)])

    row_queues_gids = engine.map_ranks(apply_col)
    _wait_all(engine, handles)

    # ---- stage 2: exchange final values along each row group --------
    def build_row(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        gids = row_queues_gids[ctx.rank]
        engine.charge_vertices(ctx.rank, gids.size)
        state = ctx.get(name)
        return _pairs(ctx, gids, state[lm.row_lid(gids)])

    sbufs_all = engine.map_ranks(build_row)

    handles = []
    rbuf_of = [None] * grid.n_ranks
    uniq_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    n_updated = 0
    for id_r, ranks in engine.row_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], row_share, handles
        )
        _give_back(engine, sbufs_all, ranks)
        uniq_gids = np.unique(rbuf["gid"])
        n_updated += int(uniq_gids.size)
        for r in ranks:
            rbuf_of[r] = rbuf
            uniq_of[r] = uniq_gids

    def apply_row(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        # Values are final after the column reduction; assignment
        # (each vertex appears from exactly one root rank).
        state[lm.row_lid(rbuf["gid"])] = rbuf["val"]
        engine.charge_vertices(ctx.rank, rbuf.size)
        return lm.row_lid(uniq_of[ctx.rank])

    active_row = engine.map_ranks(apply_row)
    _wait_all(engine, handles)
    return SparseResult(active_row=active_row, n_updated=n_updated)


@dataclass
class LaneSparseResult:
    """Outcome of one fused k-lane sparse exchange."""

    #: Per-rank ``(row_lids, lanes)`` of updated owned cells,
    #: lane-major sorted (within each lane, LIDs ascend — exactly the
    #: order the 1-D exchange reports for that lane alone).
    active_row: list[tuple[np.ndarray, np.ndarray]]
    #: Per-lane count of unique vertices whose state changed globally.
    n_updated: np.ndarray
    #: Per-rank ``(col_lids, lanes)`` of every column-window cell this
    #: exchange may have written: the column reduce's changed ghosts
    #: plus the rank's own local update queue.  Unsorted and possibly
    #: duplicated — a superset of the actually-changed column cells,
    #: for callers that track freshness without a full state scan.
    active_col: list[tuple[np.ndarray, np.ndarray]]


def sparse_push_lanes(
    engine: Engine,
    name: str,
    queues: list[tuple[np.ndarray, np.ndarray]],
    op: str = "min",
) -> LaneSparseResult:
    """Sparse push exchange fusing ``k`` query lanes into one stream.

    The lane-batched analogue of :func:`sparse_push` over a 2-D
    ``(N_T, k)`` state: ``queues[rank]`` is a ``(col_lids, lanes)``
    pair naming the cells the local kernel updated, and every group
    exchange ships **one** ``{gid, lane, val}`` buffer carrying all k
    frontiers — one collective (one α charge) per group per stage,
    where k sequential runs would pay k.

    Per lane the exchange is bit-identical to :func:`sparse_push` on
    that lane's column: the reduce runs through the composite-index
    path of :func:`~repro.kernels.scatter_reduce_lanes` (same update
    order per lane as the 1-D kernel), queue dedup is lane-major (so
    within a lane, GIDs sort exactly as the 1-D ``np.unique``), and the
    final row assignment writes values already made final by the column
    reduction.
    """
    grid = engine.grid
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")
    n_v = engine.partition.n_vertices
    k = engine.ctx(0).get(name).shape[1]

    def _lane_pairs(
        ctx: RankContext, gids: np.ndarray, lanes: np.ndarray, vals: np.ndarray
    ) -> np.ndarray:
        buf = ctx.scratch_pool(LANE_PAIR_DTYPE).take(gids.size)
        buf["gid"] = gids
        buf["lane"] = lanes
        buf["val"] = vals
        return buf

    def _give_back_lanes(sbufs_all: list[np.ndarray], ranks: list[int]) -> None:
        for r in ranks:
            engine.ctx(r).scratch_pool(LANE_PAIR_DTYPE).give(sbufs_all[r])

    # ---- stage 1: AllGatherv + lane reduce along each column group --
    def build_col(ctx: RankContext) -> np.ndarray:
        lids = np.asarray(queues[ctx.rank][0], dtype=np.int64)
        lanes = np.asarray(queues[ctx.rank][1], dtype=np.int64)
        engine.charge_vertices(ctx.rank, lids.size)  # BuildQueue kernel
        state = ctx.get(name)
        return _lane_pairs(
            ctx, ctx.localmap.col_gid(lids), lanes, state[lids, lanes]
        )

    sbufs_all = engine.map_ranks(build_col)

    handles: list = []
    rbuf_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    for id_c, ranks in engine.col_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], col_share, handles
        )
        _give_back_lanes(sbufs_all, ranks)
        for r in ranks:
            rbuf_of[r] = rbuf

    def apply_col(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        lids = lm.col_lid(rbuf["gid"])
        ch_lids, ch_lanes = scatter_reduce_lanes(
            state, lids, rbuf["val"], op, lanes=rbuf["lane"]
        )
        engine.charge_vertices(ctx.rank, rbuf.size)  # ReduceQueue kernel
        # Row-stage queue: changed ghosts plus this rank's own local
        # updates, restricted to row-owned cells; dedup on a lane-major
        # composite so each lane's GIDs stay in 1-D sorted order.
        qlids = np.asarray(queues[ctx.rank][0], dtype=np.int64)
        qlanes = np.asarray(queues[ctx.rank][1], dtype=np.int64)
        cand_gid = np.concatenate([lm.col_gid(ch_lids), lm.col_gid(qlids)])
        cand_lane = np.concatenate([ch_lanes, qlanes])
        owned = lm.owns_row_gid(cand_gid)
        comp = cand_lane[owned] * n_v + cand_gid[owned]
        touched = (
            np.concatenate([ch_lids, qlids]),
            np.concatenate([ch_lanes, qlanes]),
        )
        return unique_bounded(comp, k * n_v), touched

    col_results = engine.map_ranks(apply_col)
    row_queue_comps = [r[0] for r in col_results]
    active_col = [r[1] for r in col_results]
    _wait_all(engine, handles)

    # ---- stage 2: exchange final values along each row group --------
    def build_row(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        comp = row_queue_comps[ctx.rank]
        gids = comp % n_v
        lanes = comp // n_v
        engine.charge_vertices(ctx.rank, gids.size)
        state = ctx.get(name)
        return _lane_pairs(ctx, gids, lanes, state[lm.row_lid(gids), lanes])

    sbufs_all = engine.map_ranks(build_row)

    handles = []
    rbuf_of = [None] * grid.n_ranks
    uniq_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    n_updated = np.zeros(k, dtype=np.int64)
    for id_r, ranks in engine.row_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], row_share, handles
        )
        _give_back_lanes(sbufs_all, ranks)
        uniq_comp = unique_bounded(rbuf["lane"] * n_v + rbuf["gid"], k * n_v)
        n_updated += np.bincount(
            (uniq_comp // n_v).astype(np.int64), minlength=k
        )
        for r in ranks:
            rbuf_of[r] = rbuf
            uniq_of[r] = uniq_comp

    def apply_row(ctx: RankContext) -> tuple[np.ndarray, np.ndarray]:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        # Values are final after the column reduction; assignment.
        state[lm.row_lid(rbuf["gid"]), rbuf["lane"]] = rbuf["val"]
        engine.charge_vertices(ctx.rank, rbuf.size)
        uniq_comp = uniq_of[ctx.rank]
        return lm.row_lid(uniq_comp % n_v), uniq_comp // n_v

    active_row = engine.map_ranks(apply_row)
    _wait_all(engine, handles)
    return LaneSparseResult(
        active_row=active_row, n_updated=n_updated, active_col=active_col
    )


def sparse_pull(
    engine: Engine,
    name: str,
    queues: list[np.ndarray],
    op: str = "min",
    reduce_fn: Optional[ReduceFn] = None,
) -> SparseResult:
    """Sparse pull exchange: row-group reduce, column-group refresh.

    ``queues`` hold per-rank *row-vertex LIDs* updated by the local
    (partial) gather kernel.
    """
    grid = engine.grid
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")

    # ---- stage 1: AllGatherv + reduce along each row group ----------
    def build_row(ctx: RankContext) -> np.ndarray:
        q = np.asarray(queues[ctx.rank], dtype=np.int64)
        engine.charge_vertices(ctx.rank, q.size)
        state = ctx.get(name)
        return _pairs(ctx, ctx.localmap.row_gid(q), state[q])

    sbufs_all = engine.map_ranks(build_row)

    handles: list = []
    rbuf_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    for id_r, ranks in engine.row_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], row_share, handles
        )
        _give_back(engine, sbufs_all, ranks)
        for r in ranks:
            rbuf_of[r] = rbuf

    def apply_row(ctx: RankContext) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        lids = lm.row_lid(rbuf["gid"])
        changed = _apply_op(state, lids, rbuf["val"], op, reduce_fn)
        engine.charge_vertices(ctx.rank, rbuf.size)
        cand = np.unique(
            np.concatenate(
                [
                    lm.row_gid(changed),
                    lm.row_gid(np.asarray(queues[ctx.rank], dtype=np.int64)),
                ]
            )
        )
        return cand, cand[lm.owns_col_gid(cand)], lm.row_lid(cand)

    applied = engine.map_ranks(apply_row)
    _wait_all(engine, handles)
    col_queues_gids = [a[1] for a in applied]
    active_row = [a[2] for a in applied]
    # ``cand`` is identical on every member of a row group, so each
    # group contributes its first member's count exactly once.
    n_updated = 0
    for id_r, ranks in engine.row_groups():
        n_updated += int(applied[ranks[0]][0].size)

    # ---- stage 2: refresh ghosts along each column group ------------
    def build_col(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        gids = col_queues_gids[ctx.rank]
        engine.charge_vertices(ctx.rank, gids.size)
        state = ctx.get(name)
        return _pairs(ctx, gids, state[lm.row_lid(gids)])

    sbufs_all = engine.map_ranks(build_col)

    handles = []
    rbuf_of = [None] * grid.n_ranks
    for id_c, ranks in engine.col_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [sbufs_all[r] for r in ranks], col_share, handles
        )
        _give_back(engine, sbufs_all, ranks)
        for r in ranks:
            rbuf_of[r] = rbuf

    def apply_col(ctx: RankContext) -> None:
        lm = ctx.localmap
        state = ctx.get(name)
        rbuf = rbuf_of[ctx.rank]
        state[lm.col_lid(rbuf["gid"])] = rbuf["val"]
        engine.charge_vertices(ctx.rank, rbuf.size)

    engine.foreach(apply_col)
    _wait_all(engine, handles)
    return SparseResult(active_row=active_row, n_updated=n_updated)


def propagate_active_pull(
    engine: Engine, updated_row: list[np.ndarray]
) -> list[np.ndarray]:
    """Build the next pull-iteration active queue (paper §3.4.1).

    For pull updates the next active vertices are the *neighbors* of
    this iteration's updated vertices, not the updated vertices
    themselves.  Each rank expands the local adjacency of its updated
    row vertices into a set of neighbor GIDs, which is then shared
    push-style: across the column groups (to reach the neighbors'
    owners) and then across the row groups (to make the queue
    row-group-consistent).
    """
    grid = engine.grid
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")

    # Expand neighbors locally.
    def expand_neighbors(ctx: RankContext) -> np.ndarray:
        lids = np.asarray(updated_row[ctx.rank], dtype=np.int64)
        degs = ctx.local_degrees()[lids - ctx.localmap.row_offset]
        engine.charge_edges(ctx.rank, degs)
        _, dst, _ = ctx.expand(lids)
        return np.unique(ctx.localmap.col_gid(np.unique(dst)))

    neighbor_gids = engine.map_ranks(expand_neighbors)

    # Column stage: route neighbor GIDs to their row owners.
    handles: list = []
    rbuf_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    for id_c, ranks in engine.col_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [neighbor_gids[r] for r in ranks], col_share, handles
        )
        for r in ranks:
            rbuf_of[r] = rbuf

    def keep_owned(ctx: RankContext) -> np.ndarray:
        lm = ctx.localmap
        rbuf = rbuf_of[ctx.rank]
        engine.charge_vertices(ctx.rank, rbuf.size)
        return np.unique(rbuf[lm.owns_row_gid(rbuf)])

    partial = engine.map_ranks(keep_owned)
    _wait_all(engine, handles)

    # Row stage: union into a row-group-consistent active queue.
    handles = []
    merged_of: list[Optional[np.ndarray]] = [None] * grid.n_ranks
    rbuf_sizes = [0] * grid.n_ranks
    for id_r, ranks in engine.row_groups():
        rbuf = _group_allgatherv(
            engine, ranks, [partial[r] for r in ranks], row_share, handles
        )
        merged = np.unique(rbuf)
        for r in ranks:
            merged_of[r] = merged
            rbuf_sizes[r] = rbuf.size

    def to_active(ctx: RankContext) -> np.ndarray:
        engine.charge_vertices(ctx.rank, rbuf_sizes[ctx.rank])
        return ctx.localmap.row_lid(merged_of[ctx.rank])

    active = engine.map_ranks(to_active)
    _wait_all(engine, handles)
    return active
