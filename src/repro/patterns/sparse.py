"""Sparse queue-based 2D communication (paper §3.3.2, Algs. 3-5).

Sparse exchanges trade queue-building compute for communication volume
proportional to the number of *actual* state updates.  Buffers hold
``{vertex GID, state value}`` pairs; communication uses AllGatherv
along the reduction group followed by the mirrored broadcast stage,
exactly as Alg. 3:

* **push**: queue of updated ghost (column) vertices -> AllGatherv over
  the column group -> ``ReduceQueue`` -> queue of updated *owned* (row)
  vertices -> exchange over the row group -> final assignment.
* **pull**: the same with row/column roles swapped (partial gathers
  reduce over the row group first, ghosts refresh over column groups).

``ReduceQueue`` change-detection (Alg. 5 lines 8-12) runs through the
fused :func:`repro.kernels.scatter_reduce` kernel: one segmented
reduction that applies the op and returns the unique changed LIDs in
the same pass.  A rank's own
locally-updated row vertices are unioned into the second-stage queue
(its own echoes produce ``new == old`` in the reduce, exactly as in
the CUDA code, but their values still must travel to the rest of the
row group).

The functions return a :class:`SparseResult` carrying the per-rank
active row-vertex queues (paper §3.4.1) and the global count of
vertices whose state changed — the quantity the dense/sparse switch
policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.engine import Engine
from ..kernels import BufferPool, scatter_reduce

__all__ = ["PAIR_DTYPE", "SparseResult", "sparse_push", "sparse_pull", "propagate_active_pull"]

#: One queue entry: {vertex GID, state value} (paper Alg. 4 lines 6-7).
PAIR_DTYPE = np.dtype([("gid", np.int64), ("val", np.float64)])

#: Recycled send buffers — the collectives copy the payload, so a pair
#: buffer is dead the moment its allgatherv returns (see kernels.buffers).
_PAIR_POOL = BufferPool(PAIR_DTYPE)

#: Custom reduction hook: (state, lids, vals) -> unique changed lids.
ReduceFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class SparseResult:
    """Outcome of one sparse exchange."""

    active_row: list[np.ndarray]  # per-rank row-vertex LIDs updated
    n_updated: int  # unique vertices whose state changed globally


def _pairs(gids: np.ndarray, vals: np.ndarray) -> np.ndarray:
    buf = _PAIR_POOL.take(gids.size)
    buf["gid"] = gids
    buf["val"] = vals
    return buf


def _apply_op(
    state: np.ndarray,
    lids: np.ndarray,
    vals: np.ndarray,
    op: str,
    reduce_fn: Optional[ReduceFn],
) -> np.ndarray:
    """Apply the reduction; return unique LIDs whose value changed.

    ``op`` is one of ``"min"``/``"max"``/``"sum"`` (``"sum"`` has delta
    semantics: callers send deltas, not absolutes).  Change detection is
    the kernel's exact float compare of the stored value before/after —
    for ``"sum"`` that means a zero delta, or deltas cancelling exactly,
    leave the vertex out of the changed set.
    """
    if reduce_fn is not None:
        return np.asarray(reduce_fn(state, lids, vals), dtype=np.int64)
    return scatter_reduce(state, lids, vals, op)


def sparse_push(
    engine: Engine,
    name: str,
    queues: list[np.ndarray],
    op: str = "min",
    reduce_fn: Optional[ReduceFn] = None,
) -> SparseResult:
    """Sparse push exchange.

    Parameters
    ----------
    queues:
        Per-rank arrays of *column-vertex LIDs* whose state the local
        compute kernel updated (deduplicated, as per the ``q_in``
        convention).
    op / reduce_fn:
        Reduction applied in ``ReduceQueue``; ``reduce_fn`` overrides
        ``op`` for complex reductions (paper §3.3.3).
    """
    part, grid = engine.partition, engine.grid
    row_queues_gids: dict[int, np.ndarray] = {}
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")

    # ---- stage 1: AllGatherv + reduce along each column group -------
    for id_c, ranks in engine.col_groups():
        sbufs = []
        for r in ranks:
            ctx = engine.ctx(r)
            q = np.asarray(queues[r], dtype=np.int64)
            engine.charge_vertices(r, q.size)  # BuildQueue kernel
            state = ctx.get(name)
            sbufs.append(_pairs(ctx.localmap.col_gid(q), state[q]))
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=col_share)
        _PAIR_POOL.give(*sbufs)
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            state = ctx.get(name)
            lids = lm.col_lid(rbuf["gid"])
            changed = _apply_op(state, lids, rbuf["val"], op, reduce_fn)
            engine.charge_vertices(r, rbuf.size)  # ReduceQueue kernel
            # Row-stage queue: changed ghosts plus this rank's own local
            # updates, restricted to row-owned vertices.
            cand = np.concatenate(
                [lm.col_gid(changed), lm.col_gid(np.asarray(queues[r], dtype=np.int64))]
            )
            row_queues_gids[r] = np.unique(cand[lm.owns_row_gid(cand)])

    # ---- stage 2: exchange final values along each row group --------
    active_row: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * grid.n_ranks
    n_updated = 0
    for id_r, ranks in engine.row_groups():
        sbufs = []
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            gids = row_queues_gids.get(r, np.empty(0, dtype=np.int64))
            engine.charge_vertices(r, gids.size)
            state = ctx.get(name)
            sbufs.append(_pairs(gids, state[lm.row_lid(gids)]))
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=row_share)
        _PAIR_POOL.give(*sbufs)
        uniq_gids = np.unique(rbuf["gid"])
        n_updated += int(uniq_gids.size)
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            state = ctx.get(name)
            # Values are final after the column reduction; assignment
            # (each vertex appears from exactly one root rank).
            state[lm.row_lid(rbuf["gid"])] = rbuf["val"]
            engine.charge_vertices(r, rbuf.size)
            active_row[r] = lm.row_lid(uniq_gids)
    return SparseResult(active_row=active_row, n_updated=n_updated)


def sparse_pull(
    engine: Engine,
    name: str,
    queues: list[np.ndarray],
    op: str = "min",
    reduce_fn: Optional[ReduceFn] = None,
) -> SparseResult:
    """Sparse pull exchange: row-group reduce, column-group refresh.

    ``queues`` hold per-rank *row-vertex LIDs* updated by the local
    (partial) gather kernel.
    """
    part, grid = engine.partition, engine.grid
    col_queues_gids: dict[int, np.ndarray] = {}
    active_row: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * grid.n_ranks
    n_updated = 0
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")

    # ---- stage 1: AllGatherv + reduce along each row group ----------
    for id_r, ranks in engine.row_groups():
        sbufs = []
        for r in ranks:
            ctx = engine.ctx(r)
            q = np.asarray(queues[r], dtype=np.int64)
            engine.charge_vertices(r, q.size)
            state = ctx.get(name)
            sbufs.append(_pairs(ctx.localmap.row_gid(q), state[q]))
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=row_share)
        _PAIR_POOL.give(*sbufs)
        group_changed: Optional[np.ndarray] = None
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            state = ctx.get(name)
            lids = lm.row_lid(rbuf["gid"])
            changed = _apply_op(state, lids, rbuf["val"], op, reduce_fn)
            engine.charge_vertices(r, rbuf.size)
            cand = np.unique(
                np.concatenate(
                    [
                        lm.row_gid(changed),
                        lm.row_gid(np.asarray(queues[r], dtype=np.int64)),
                    ]
                )
            )
            if group_changed is None:
                group_changed = cand  # identical on every group member
            col_queues_gids[r] = cand[lm.owns_col_gid(cand)]
            active_row[r] = lm.row_lid(cand)
        if group_changed is not None:
            n_updated += int(group_changed.size)

    # ---- stage 2: refresh ghosts along each column group ------------
    for id_c, ranks in engine.col_groups():
        sbufs = []
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            gids = col_queues_gids.get(r, np.empty(0, dtype=np.int64))
            engine.charge_vertices(r, gids.size)
            state = ctx.get(name)
            sbufs.append(_pairs(gids, state[lm.row_lid(gids)]))
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=col_share)
        _PAIR_POOL.give(*sbufs)
        for r in ranks:
            ctx = engine.ctx(r)
            lm = ctx.localmap
            state = ctx.get(name)
            state[lm.col_lid(rbuf["gid"])] = rbuf["val"]
            engine.charge_vertices(r, rbuf.size)
    return SparseResult(active_row=active_row, n_updated=n_updated)


def propagate_active_pull(
    engine: Engine, updated_row: list[np.ndarray]
) -> list[np.ndarray]:
    """Build the next pull-iteration active queue (paper §3.4.1).

    For pull updates the next active vertices are the *neighbors* of
    this iteration's updated vertices, not the updated vertices
    themselves.  Each rank expands the local adjacency of its updated
    row vertices into a set of neighbor GIDs, which is then shared
    push-style: across the column groups (to reach the neighbors'
    owners) and then across the row groups (to make the queue
    row-group-consistent).
    """
    grid = engine.grid

    # Expand neighbors locally.
    neighbor_gids: list[np.ndarray] = []
    for ctx in engine:
        lids = np.asarray(updated_row[ctx.rank], dtype=np.int64)
        degs = ctx.local_degrees()[lids - ctx.localmap.row_offset]
        engine.charge_edges(ctx.rank, degs)
        _, dst, _ = ctx.expand(lids)
        neighbor_gids.append(np.unique(ctx.localmap.col_gid(np.unique(dst))))

    # Column stage: route neighbor GIDs to their row owners.
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")
    partial: dict[int, np.ndarray] = {}
    for id_c, ranks in engine.col_groups():
        sbufs = [neighbor_gids[r] for r in ranks]
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=col_share)
        for r in ranks:
            lm = engine.ctx(r).localmap
            mine = np.unique(rbuf[lm.owns_row_gid(rbuf)])
            partial[r] = mine
            engine.charge_vertices(r, rbuf.size)

    # Row stage: union into a row-group-consistent active queue.
    active: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * grid.n_ranks
    for id_r, ranks in engine.row_groups():
        sbufs = [partial[r] for r in ranks]
        rbuf = engine.comm.allgatherv(ranks, sbufs, nic_sharing=row_share)
        merged = np.unique(rbuf)
        for r in ranks:
            lm = engine.ctx(r).localmap
            active[r] = lm.row_lid(merged)
            engine.charge_vertices(r, rbuf.size)
    return active
