"""Packet swapping: arbitrary rank-to-rank messaging on the 2D grid
(paper §3.3.3, "Packet Swapping").

Some applications (pointer jumping, least-common-ancestor traversals)
propagate information between vertices that are not graph neighbors, so
the structured row/column state exchanges do not apply.  The paper
wraps such updates in information *packets* — ``{origin, payload,
destination}`` records — and delivers them with one set of row-group
communications followed by one set of column-group communications:
a packet from rank ``(i, j)`` to rank ``(i', j')`` first moves along
row group ``i`` to the rank in block-column ``j'``, then along column
group ``j'`` to block-row ``i'``.  Any pair of ranks is thus reachable
in two group-local hops, preserving the 2D message-count scaling.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import Engine

__all__ = ["make_packets", "packet_swap", "PACKET_DTYPE"]

#: Default packet layout: origin vertex, one float payload, dest rank.
PACKET_DTYPE = np.dtype(
    [("src", np.int64), ("payload", np.float64), ("dest", np.int64)]
)


def make_packets(
    src: np.ndarray, payload: np.ndarray, dest: np.ndarray
) -> np.ndarray:
    """Assemble a packet buffer from parallel columns."""
    src = np.asarray(src, dtype=np.int64)
    out = np.empty(src.size, dtype=PACKET_DTYPE)
    out["src"] = src
    out["payload"] = payload
    out["dest"] = dest
    return out


def _split_by(packets: np.ndarray, keys: np.ndarray, n_bins: int) -> list[np.ndarray]:
    """Partition a packet buffer into ``n_bins`` by integer key."""
    order = np.argsort(keys, kind="stable")
    sorted_pkts = packets[order]
    sorted_keys = keys[order]
    bounds = np.searchsorted(sorted_keys, np.arange(n_bins + 1))
    return [sorted_pkts[bounds[b] : bounds[b + 1]] for b in range(n_bins)]


def packet_swap(engine: Engine, packets: list[np.ndarray]) -> list[np.ndarray]:
    """Deliver per-rank packet buffers to their ``dest`` ranks.

    ``packets[r]`` is a structured array with (at least) a ``dest``
    field holding destination rank ids.  Returns the per-rank received
    buffers.  Routing is row-then-column as described in the module
    docstring; each hop is a personalized exchange within one group.
    """
    grid = engine.grid
    if len(packets) != grid.n_ranks:
        raise ValueError("need one packet buffer per rank")
    for r, buf in enumerate(packets):
        if buf.size and (buf["dest"].min() < 0 or buf["dest"].max() >= grid.n_ranks):
            raise ValueError(f"rank {r}: packet dest out of range")

    row_share = engine.stage_nic_sharing("row")
    col_share = engine.stage_nic_sharing("col")

    # Hop 1: along each row group, move packets to their destination
    # block-column.  Splits are per-rank compute (parallel); the
    # personalized exchanges stay sequential per group.
    def split_cols(ctx) -> list[np.ndarray]:
        buf = packets[ctx.rank]
        dest_cols = (buf["dest"] % grid.R).astype(np.int64)
        engine.charge_vertices(ctx.rank, buf.size)
        return _split_by(buf, dest_cols, grid.R)

    splits = engine.map_ranks(split_cols)
    staged: list[np.ndarray] = [None] * grid.n_ranks  # type: ignore[list-item]
    # On an overlapped engine hop 1 is issued split-phase: the staged
    # buffers materialize at issue, the hop-2 splits compute against
    # them while the exchanges are in flight, and the comm charge lands
    # at the wait below (hiding the split compute).  See docs/MODEL.md.
    handles = []
    for id_r, ranks in engine.row_groups():
        if engine.overlap:
            h = engine.comm.start_alltoallv(
                ranks, [splits[r] for r in ranks], nic_sharing=row_share
            )
            handles.append(h)
            received = h.result
        else:
            received = engine.comm.alltoallv(
                ranks, [splits[r] for r in ranks], nic_sharing=row_share
            )
        for pos, r in enumerate(ranks):
            staged[r] = received[pos]

    # Hop 2: along each column group, move packets to their destination
    # block-row.
    def split_rows(ctx) -> list[np.ndarray]:
        buf = staged[ctx.rank]
        dest_rows = (buf["dest"] // grid.R).astype(np.int64)
        engine.charge_vertices(ctx.rank, buf.size)
        return _split_by(buf, dest_rows, grid.C)

    splits = engine.map_ranks(split_rows)
    for h in handles:
        engine.comm.wait(h)
    delivered: list[np.ndarray] = [None] * grid.n_ranks  # type: ignore[list-item]
    for id_c, ranks in engine.col_groups():
        received = engine.comm.alltoallv(
            ranks, [splits[r] for r in ranks], nic_sharing=col_share
        )
        for pos, r in enumerate(ranks):
            delivered[r] = received[pos]
    return delivered
