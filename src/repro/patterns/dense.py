"""Dense 2D communication pattern (paper §3.3.1, Alg. 2, Fig. 2).

Dense exchanges communicate *every* vertex state along the groups,
whether or not it changed:

* **push** — AllReduce over each *column* group (combining all pushed
  contributions to each ghost vertex, whose matrix column spans the
  column group) followed by Broadcasts over each *row* group to give
  owners the final values;
* **pull** — AllReduce over each *row* group (combining the partial
  gathers of each owned vertex, whose matrix row spans the row group)
  followed by Broadcasts over each *column* group to refresh ghosts.

When ``R == C``, the broadcast root in each group is the diagonal rank
(its row and column GID ranges coincide).  When ``R != C``, a group
needs several broadcasts — one per overlapping range — which the paper
aggregates into one NCCL group call; :func:`_overlap_broadcasts`
computes exactly those overlap segments for any grid shape.

Because local IDs of a group are consecutive (paper Table 2), every
transfer here is a contiguous state-array slice: the whole exchange
needs only offsets and lengths, no index buffers.
"""

from __future__ import annotations

import numpy as np

from ..comm.collectives import BroadcastCall
from ..core.engine import Engine

__all__ = ["dense_push", "dense_pull", "dense_exchange", "dense_exchange_lanes"]


def _col_views(engine: Engine, ranks, name: str) -> list[np.ndarray]:
    return [engine.ctx(r).get(name)[engine.ctx(r).col_slice] for r in ranks]


def _row_views(engine: Engine, ranks, name: str) -> list[np.ndarray]:
    return [engine.ctx(r).get(name)[engine.ctx(r).row_slice] for r in ranks]


def _overlap_broadcasts(
    engine: Engine, name: str, along: str, group_id: int
) -> tuple[list[int], list[BroadcastCall]]:
    """Broadcast calls distributing reduced values across one group.

    ``along="row"``: within row group ``group_id``, each rank holding a
    column range that overlaps the group's row range roots a broadcast
    of that overlap into everyone's *row* window (push second phase).

    ``along="col"``: within column group ``group_id``, each rank whose
    row range overlaps the group's column range roots a broadcast into
    everyone's *col* window (pull second phase).
    """
    part, grid = engine.partition, engine.grid
    calls: list[BroadcastCall] = []
    if along == "row":
        ranks = grid.row_group_ranks(group_id)
        gs, ge = part.row_range(group_id)
        for id_c in range(grid.R):
            cs, ce = part.col_range(id_c)
            lo, hi = max(gs, cs), min(ge, ce)
            if lo >= hi:
                continue
            root = grid.rank_of(group_id, id_c)
            lm_root = engine.ctx(root).localmap
            src = engine.ctx(root).get(name)[
                lm_root.col_offset + (lo - cs) : lm_root.col_offset + (hi - cs)
            ]
            dests = []
            for r in ranks:
                if r == root:
                    # Overlap GIDs share one LID on the root (its map
                    # Type is 1/2 there), so its row window already
                    # holds the reduced values.
                    continue
                lm = engine.ctx(r).localmap
                dests.append(
                    engine.ctx(r).get(name)[
                        lm.row_offset + (lo - gs) : lm.row_offset + (hi - gs)
                    ]
                )
            calls.append(BroadcastCall(src=src, dests=dests))
        return ranks, calls

    if along == "col":
        ranks = grid.col_group_ranks(group_id)
        gs, ge = part.col_range(group_id)
        for id_r in range(grid.C):
            rs, re = part.row_range(id_r)
            lo, hi = max(gs, rs), min(ge, re)
            if lo >= hi:
                continue
            root = grid.rank_of(id_r, group_id)
            lm_root = engine.ctx(root).localmap
            src = engine.ctx(root).get(name)[
                lm_root.row_offset + (lo - rs) : lm_root.row_offset + (hi - rs)
            ]
            dests = []
            for r in ranks:
                if r == root:
                    continue
                lm = engine.ctx(r).localmap
                dests.append(
                    engine.ctx(r).get(name)[
                        lm.col_offset + (lo - gs) : lm.col_offset + (hi - gs)
                    ]
                )
            calls.append(BroadcastCall(src=src, dests=dests))
        return ranks, calls

    raise ValueError(f"along must be 'row' or 'col', got {along!r}")


def dense_push(engine: Engine, name: str, op: str = "min") -> None:
    """Dense push: column-group AllReduce, then row-group Broadcasts."""
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")
    for _, ranks in engine.col_groups():
        engine.comm.allreduce(
            ranks, _col_views(engine, ranks, name), op=op, nic_sharing=col_share
        )
    for id_r, _ in engine.row_groups():
        ranks, calls = _overlap_broadcasts(engine, name, "row", id_r)
        engine.comm.grouped_broadcast(ranks, calls, nic_sharing=row_share)


def dense_pull(engine: Engine, name: str, op: str = "sum") -> None:
    """Dense pull: row-group AllReduce, then column-group Broadcasts."""
    col_share = engine.stage_nic_sharing("col")
    row_share = engine.stage_nic_sharing("row")
    for _, ranks in engine.row_groups():
        engine.comm.allreduce(
            ranks, _row_views(engine, ranks, name), op=op, nic_sharing=row_share
        )
    for id_c, _ in engine.col_groups():
        ranks, calls = _overlap_broadcasts(engine, name, "col", id_c)
        engine.comm.grouped_broadcast(ranks, calls, nic_sharing=col_share)


def dense_exchange(
    engine: Engine, name: str, direction: str, op: str
) -> None:
    """Dispatch to :func:`dense_push` or :func:`dense_pull`."""
    if direction == "push":
        dense_push(engine, name, op=op)
    elif direction == "pull":
        dense_pull(engine, name, op=op)
    else:
        raise ValueError(f"direction must be 'push' or 'pull', got {direction!r}")


def dense_exchange_lanes(
    engine: Engine, name: str, direction: str, op: str, lanes: np.ndarray
) -> None:
    """Dense exchange over a subset of a 2-D state's query lanes.

    Every transfer in the dense patterns is an axis-0 slice of the
    state array, so a full ``(N_T, k)`` lane state flows through
    :func:`dense_exchange` unchanged — one AllReduce per group carries
    all k columns at once (the α amortization of query batching).
    When only some lanes are still live, this wrapper packs the active
    columns into a pooled ``(N_T, L)`` scratch state, runs the ordinary
    exchange on it, and unpacks — still one collective per group, sized
    to the live lanes.

    Per lane the reduction is bit-identical to a 1-D exchange of that
    lane's column: the group AllReduce reduces elementwise over the
    member axis, so each column sees exactly the 1-D combine order.
    """
    lanes = np.asarray(lanes, dtype=np.int64)
    state0 = engine.ctx(0).get(name)
    k = state0.shape[1]
    if lanes.size == k:
        # All lanes live: exchange the state array directly.
        dense_exchange(engine, name, direction, op)
        return
    tmp = f"{name}#lanes"

    def pack(ctx) -> None:
        state = ctx.get(name)
        buf = ctx.scratch_pool(state.dtype).take2d(state.shape[0], lanes.size)
        buf[...] = state[:, lanes]
        ctx.adopt(tmp, buf)

    engine.foreach(pack)
    dense_exchange(engine, tmp, direction, op)

    def unpack(ctx) -> None:
        state = ctx.get(name)
        buf = ctx.get(tmp)
        state[:, lanes] = buf
        ctx.free(tmp)
        ctx.scratch_pool(state.dtype).give(buf)

    engine.foreach(unpack)
