"""2D communication patterns: dense, sparse, switching, complex."""

from .dense import dense_exchange, dense_pull, dense_push
from .sparse import (
    PAIR_DTYPE,
    SparseResult,
    propagate_active_pull,
    sparse_pull,
    sparse_push,
)
from .switching import SwitchPolicy

__all__ = [
    "dense_exchange",
    "dense_pull",
    "dense_push",
    "PAIR_DTYPE",
    "SparseResult",
    "propagate_active_pull",
    "sparse_pull",
    "sparse_push",
    "SwitchPolicy",
]
