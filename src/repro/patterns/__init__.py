"""2D communication patterns: dense, sparse, switching, complex."""

from .dense import dense_exchange, dense_exchange_lanes, dense_pull, dense_push
from .sparse import (
    LANE_PAIR_DTYPE,
    PAIR_DTYPE,
    LaneSparseResult,
    SparseResult,
    propagate_active_pull,
    sparse_pull,
    sparse_push,
    sparse_push_lanes,
)
from .switching import SwitchPolicy

__all__ = [
    "dense_exchange",
    "dense_exchange_lanes",
    "dense_pull",
    "dense_push",
    "LANE_PAIR_DTYPE",
    "PAIR_DTYPE",
    "LaneSparseResult",
    "SparseResult",
    "propagate_active_pull",
    "sparse_pull",
    "sparse_push",
    "sparse_push_lanes",
    "SwitchPolicy",
]
