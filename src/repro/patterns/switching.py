"""Dense-to-sparse communication switching (paper §3.3.1).

Dense exchanges cost a fixed ``O(N / sqrt(p))`` volume per rank; sparse
exchanges cost volume proportional to updates but pay per-entry
metadata (the GID of every pair) and queue-building kernels.  The paper
switches from dense to sparse once fewer than ``N / max(R, C)``
vertices updated in an iteration, which guarantees the sparse volume
(pairs) is below the dense volume (the largest group slice).

:class:`SwitchPolicy` encapsulates that rule so algorithms can run
``mode="dense"``, ``mode="sparse"``, or ``mode="switch"`` (paper's
``+SW`` configurations in Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.grid import Grid2D

__all__ = ["SwitchPolicy"]


@dataclass
class SwitchPolicy:
    """Tracks whether iterations should communicate dense or sparse.

    Parameters
    ----------
    n_vertices:
        Global vertex count ``N``.
    grid:
        The process grid (supplies ``max(R, C)``).
    mode:
        ``"dense"`` — always dense; ``"sparse"`` — always sparse;
        ``"switch"`` — dense until the update count drops under the
        threshold, then sparse for the rest of the run (updates only
        shrink in the long-tail regime the policy targets).
    threshold_factor:
        Scales the ``N / max(R, C)`` cutoff (1.0 = paper setting);
        exposed for the ablation bench.
    """

    n_vertices: int
    grid: Grid2D
    mode: str = "switch"
    threshold_factor: float = 1.0
    _sparse_now: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("dense", "sparse", "switch"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.n_vertices <= 0:
            raise ValueError(f"n_vertices must be positive, got {self.n_vertices}")
        if self.threshold_factor <= 0:
            raise ValueError(
                f"threshold_factor must be positive, got {self.threshold_factor}"
            )
        self._sparse_now = self.mode == "sparse"

    def reset(self) -> None:
        """Return to the initial state so one policy instance can be
        reused across runs (a switched policy otherwise stays sparse
        forever, poisoning the next run's early dense iterations)."""
        self._sparse_now = self.mode == "sparse"

    @property
    def threshold(self) -> float:
        """Update count below which sparse wins (``N / max(R, C)``)."""
        return self.threshold_factor * self.n_vertices / max(self.grid.R, self.grid.C)

    @property
    def use_sparse(self) -> bool:
        """Communication flavour for the *next* exchange."""
        return self._sparse_now

    def observe(self, n_updates: int) -> None:
        """Feed the iteration's global update count into the policy."""
        if self.mode == "switch" and not self._sparse_now:
            if n_updates < self.threshold:
                self._sparse_now = True
