#!/usr/bin/env python
"""Regenerate every paper figure/table and print a one-page summary.

Equivalent to ``pytest benchmarks/ --benchmark-only`` but as a plain
script: runs each bench module's experiment function directly, writes
the tables under ``benchmarks/results/``, and finishes with a summary
of which paper claims were reproduced.

Usage::

    python scripts/run_all_figures.py
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).parent.parent
RESULTS = ROOT / "benchmarks" / "results"


def main() -> int:
    start = time.time()
    print("regenerating all paper figures (pytest benchmarks/ --benchmark-only) ...")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(ROOT / "benchmarks"),
            "--benchmark-only",
            "-q",
            "--no-header",
        ],
        cwd=ROOT,
    )
    elapsed = time.time() - start
    print(f"\nbench suite finished in {elapsed:.0f}s (exit {proc.returncode})")
    if not RESULTS.exists():
        print("no results directory produced")
        return proc.returncode or 1

    print("\n" + "=" * 70)
    print("RESULTS SUMMARY".center(70))
    print("=" * 70)
    for path in sorted(RESULTS.glob("*.txt")):
        text = path.read_text().strip().splitlines()
        print(f"\n--- {path.stem} " + "-" * max(1, 50 - len(path.stem)))
        head = text[:3]
        tail = [ln for ln in text[-6:] if ln not in head]
        for line in head + (["   ..."] if len(text) > 9 else []) + tail:
            print(f"  {line}")
    print()
    print(f"full tables: {RESULTS}/")
    print("paper-vs-measured record: EXPERIMENTS.md")
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
