"""Machine configuration tests."""

import pytest

from repro.cluster import AIMOS, ZEPY, A100, V100, LinkSpec


class TestGPUSpecs:
    def test_v100_capacity_matches_paper(self):
        # AiMOS nodes carry 32 GB V100s (paper §5).
        assert V100.memory_bytes == 32 * 2**30

    def test_a100_is_faster_than_v100(self):
        assert A100.edge_rate > V100.edge_rate
        assert A100.spmv_edge_rate > V100.spmv_edge_rate

    def test_spmv_rate_beats_general_rate(self):
        # The tuned LA kernel must outrun the general model for the
        # Fig. 10 PageRank relation to hold.
        assert V100.spmv_edge_rate > V100.edge_rate
        assert A100.spmv_edge_rate > A100.edge_rate


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec(latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.000001)

    def test_nvlink_faster_than_cpu_path(self):
        node = AIMOS.node
        assert node.nvlink.bandwidth_Bps > node.cpu_path.bandwidth_Bps
        assert node.nvlink.latency_s < node.cpu_path.latency_s

    def test_network_is_slowest_layer(self):
        node = AIMOS.node
        assert node.nic.latency_s > node.cpu_path.latency_s


class TestClusterConfig:
    def test_aimos_matches_paper_node(self):
        # 6 V100s per node, NVLink triples (paper §5).
        assert AIMOS.gpus_per_node == 6
        assert AIMOS.node.nvlink_group_size == 3
        assert AIMOS.gpu is V100

    def test_zepy_matches_paper_workstation(self):
        assert ZEPY.gpus_per_node == 4
        assert ZEPY.gpu is A100

    def test_nodes_for(self):
        assert AIMOS.nodes_for(1) == 1
        assert AIMOS.nodes_for(6) == 1
        assert AIMOS.nodes_for(7) == 2
        assert AIMOS.nodes_for(400) == 67

    def test_with_gpu_swaps_only_gpu(self):
        swapped = AIMOS.with_gpu(A100)
        assert swapped.gpu is A100
        assert swapped.node is AIMOS.node
        assert AIMOS.gpu is V100  # original untouched


class TestDGX:
    def test_nvswitch_single_island(self):
        from repro.cluster import DGX, Topology

        assert DGX.gpus_per_node == 8
        topo = Topology(DGX, 16)
        # all 8 on-node pairs ride NVSwitch (one island)
        assert topo.link(0, 7) == DGX.node.nvlink
        assert topo.link(0, 8) == DGX.node.nic

    def test_dgx_collectives_faster_on_node(self):
        from repro.cluster import AIMOS, DGX, CostModel, Topology

        dgx = CostModel(DGX.gpu, Topology(DGX, 8))
        aimos = CostModel(AIMOS.gpu, Topology(AIMOS, 6))
        # paper §1: latency concerns apply "outside of specialized
        # systems such as the DGX"
        assert dgx.allreduce_time(list(range(8)), 10**7) < aimos.allreduce_time(
            list(range(6)), 10**7
        )

    def test_runs_algorithms(self):
        import numpy as np

        from repro import Engine, algorithms
        from repro.cluster import DGX
        from repro.graph import rmat
        from repro.reference import serial

        g = rmat(7, seed=1)
        res = algorithms.connected_components(Engine(g, 4, cluster=DGX))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(g)),
        )
