"""Rank placement and link resolution tests."""

import pytest

from repro.cluster import AIMOS, ZEPY, Topology


class TestPlacement:
    def test_dense_fill_order(self):
        topo = Topology(AIMOS, 13)
        p = topo.placement(0)
        assert (p.node, p.slot, p.island) == (0, 0, 0)
        p = topo.placement(5)
        assert (p.node, p.slot, p.island) == (0, 5, 1)
        p = topo.placement(6)
        assert (p.node, p.slot, p.island) == (1, 0, 0)

    def test_island_boundaries(self):
        topo = Topology(AIMOS, 6)
        # slots 0-2 on island 0, slots 3-5 on island 1 (NVLink triples)
        assert [topo.placement(r).island for r in range(6)] == [0, 0, 0, 1, 1, 1]

    def test_n_nodes(self):
        assert Topology(AIMOS, 400).n_nodes() == 67
        assert Topology(ZEPY, 4).n_nodes() == 1

    def test_rank_out_of_range(self):
        topo = Topology(AIMOS, 4)
        with pytest.raises(ValueError):
            topo.placement(4)
        with pytest.raises(ValueError):
            topo.placement(-1)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Topology(AIMOS, 0)


class TestLinks:
    def test_same_island_is_nvlink(self):
        topo = Topology(AIMOS, 12)
        assert topo.link(0, 2) == AIMOS.node.nvlink

    def test_cross_island_same_node_is_cpu_path(self):
        topo = Topology(AIMOS, 12)
        assert topo.link(0, 3) == AIMOS.node.cpu_path

    def test_cross_node_is_nic(self):
        topo = Topology(AIMOS, 12)
        assert topo.link(0, 6) == AIMOS.node.nic

    def test_self_link_is_fast(self):
        topo = Topology(AIMOS, 4)
        assert topo.link(1, 1) == AIMOS.node.nvlink

    def test_link_symmetry(self):
        topo = Topology(AIMOS, 24)
        for a, b in [(0, 1), (0, 5), (2, 17), (7, 23)]:
            assert topo.link(a, b) == topo.link(b, a)


class TestGroupProfile:
    def test_single_rank_group(self):
        topo = Topology(AIMOS, 4)
        prof = topo.group_profile([2])
        assert prof.size == 1
        assert not prof.crosses_network

    def test_intra_island_group(self):
        topo = Topology(AIMOS, 6)
        prof = topo.group_profile([0, 1, 2])
        assert prof.bandwidth_Bps == AIMOS.node.nvlink.bandwidth_Bps
        assert not prof.crosses_network

    def test_cross_node_group_bottleneck(self):
        topo = Topology(AIMOS, 12)
        prof = topo.group_profile([0, 6])
        assert prof.crosses_network
        assert prof.bandwidth_Bps <= AIMOS.node.nic.bandwidth_Bps

    def test_single_ring_pays_no_contention(self):
        # A sorted ring crosses each node's NIC once, so a lone
        # collective is limited by its slowest link (here the CPU path
        # between NVLink islands), not by NIC sharing.
        topo = Topology(AIMOS, 24)
        prof = topo.group_profile(list(range(12)))
        assert prof.crosses_network
        assert prof.bandwidth_Bps == pytest.approx(
            AIMOS.node.cpu_path.bandwidth_Bps
        )

    def test_nic_sharing_divides_bandwidth(self):
        # Concurrent stage collectives share the NIC (e.g. 6 column
        # groups with one member each on a node).
        topo = Topology(AIMOS, 24)
        prof = topo.group_profile([0, 6, 12], nic_sharing=6)
        assert prof.bandwidth_Bps == pytest.approx(
            AIMOS.node.nic.bandwidth_Bps / 6
        )

    def test_nic_sharing_validation(self):
        topo = Topology(AIMOS, 4)
        with pytest.raises(ValueError):
            topo.group_profile([0, 1], nic_sharing=0)

    def test_empty_group_rejected(self):
        topo = Topology(AIMOS, 4)
        with pytest.raises(ValueError):
            topo.group_profile([])

    def test_worst_latency_dominates(self):
        topo = Topology(AIMOS, 12)
        prof = topo.group_profile([0, 1, 6])
        assert prof.latency_s == AIMOS.node.nic.latency_s


class TestProfileCache:
    def test_repeat_calls_return_cached_object(self):
        topo = Topology(AIMOS, 12)
        a = topo.group_profile([0, 1, 6], nic_sharing=2)
        b = topo.group_profile([0, 1, 6], nic_sharing=2)
        assert a is b

    def test_cached_profile_matches_fresh_topology(self):
        ranks, sharing = [0, 3, 6, 9], 3
        topo = Topology(AIMOS, 12)
        topo.group_profile(ranks, nic_sharing=sharing)  # warm
        cached = topo.group_profile(ranks, nic_sharing=sharing)
        fresh = Topology(AIMOS, 12).group_profile(ranks, nic_sharing=sharing)
        assert cached == fresh

    def test_distinct_keys_cached_separately(self):
        topo = Topology(AIMOS, 12)
        a = topo.group_profile([0, 1], nic_sharing=1)
        b = topo.group_profile([0, 1], nic_sharing=2)
        c = topo.group_profile([0, 6], nic_sharing=1)
        assert b is not a and c is not a
        assert len(topo._profile_cache) == 3

    def test_single_rank_group_cached(self):
        topo = Topology(AIMOS, 4)
        a = topo.group_profile([2])
        assert topo.group_profile([2]) is a
