"""Scaled machine model tests (the stand-in regime restoration)."""

import pytest

from repro.cluster import AIMOS, ZEPY


class TestScaledConfig:
    def test_throughputs_divided(self):
        s = AIMOS.scaled(100)
        assert s.gpu.edge_rate == pytest.approx(AIMOS.gpu.edge_rate / 100)
        assert s.gpu.vertex_rate == pytest.approx(AIMOS.gpu.vertex_rate / 100)
        assert s.gpu.spmv_edge_rate == pytest.approx(
            AIMOS.gpu.spmv_edge_rate / 100
        )
        assert s.node.nvlink.bandwidth_Bps == pytest.approx(
            AIMOS.node.nvlink.bandwidth_Bps / 100
        )
        assert s.node.nic.bandwidth_Bps == pytest.approx(
            AIMOS.node.nic.bandwidth_Bps / 100
        )

    def test_fixed_overheads_kept(self):
        s = AIMOS.scaled(100)
        assert s.gpu.kernel_launch_s == AIMOS.gpu.kernel_launch_s
        assert s.node.nic.latency_s == AIMOS.node.nic.latency_s
        assert s.node.nvlink.latency_s == AIMOS.node.nvlink.latency_s

    def test_memory_capacity_kept(self):
        # Memory is accounted separately (via memory_scale); the device
        # capacity describes the real hardware.
        s = AIMOS.scaled(1000)
        assert s.gpu.memory_bytes == AIMOS.gpu.memory_bytes

    def test_topology_kept(self):
        s = ZEPY.scaled(10)
        assert s.gpus_per_node == ZEPY.gpus_per_node
        assert s.node.nvlink_group_size == ZEPY.node.nvlink_group_size

    def test_name_annotated(self):
        assert "scaled" in AIMOS.scaled(3).name

    def test_identity_scale(self):
        s = AIMOS.scaled(1)
        assert s.gpu.edge_rate == AIMOS.gpu.edge_rate

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            AIMOS.scaled(0)
        with pytest.raises(ValueError):
            AIMOS.scaled(-2)

    def test_original_untouched(self):
        before = AIMOS.gpu.edge_rate
        AIMOS.scaled(7)
        assert AIMOS.gpu.edge_rate == before

    def test_composition(self):
        s = AIMOS.scaled(10).scaled(10)
        assert s.gpu.edge_rate == pytest.approx(AIMOS.gpu.edge_rate / 100)
