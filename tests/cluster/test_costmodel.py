"""Cost model tests: kernels and ring collectives."""

import pytest

from repro.cluster import (
    AIMOS,
    GENERIC_PROFILE,
    NCCL_PROFILE,
    CostModel,
    Topology,
)


@pytest.fixture
def model():
    return CostModel(AIMOS.gpu, Topology(AIMOS, 24))


@pytest.fixture
def generic_model():
    return CostModel(AIMOS.gpu, Topology(AIMOS, 24), GENERIC_PROFILE)


class TestKernelTime:
    def test_launch_overhead_floor(self, model):
        assert model.kernel_time() == pytest.approx(AIMOS.gpu.kernel_launch_s)

    def test_scales_with_edges(self, model):
        t1 = model.kernel_time(n_edges=10**6)
        t2 = model.kernel_time(n_edges=2 * 10**6)
        assert t2 > t1
        assert (t2 - t1) == pytest.approx(10**6 / AIMOS.gpu.edge_rate)

    def test_balance_penalty(self, model):
        good = model.kernel_time(n_edges=10**6, balance=1.0)
        bad = model.kernel_time(n_edges=10**6, balance=0.1)
        assert bad > good
        # the edge term should inflate exactly 10x
        edge_good = good - AIMOS.gpu.kernel_launch_s
        edge_bad = bad - AIMOS.gpu.kernel_launch_s
        assert edge_bad == pytest.approx(10 * edge_good)

    def test_work_per_edge(self, model):
        t1 = model.kernel_time(n_edges=1000, work_per_edge=1.0)
        t4 = model.kernel_time(n_edges=1000, work_per_edge=4.0)
        assert t4 > t1

    def test_invalid_balance(self, model):
        with pytest.raises(ValueError):
            model.kernel_time(n_edges=10, balance=0.0)
        with pytest.raises(ValueError):
            model.kernel_time(n_edges=10, balance=1.5)

    def test_spmv_faster_per_edge(self, model):
        general = model.kernel_time(n_edges=10**7)
        tuned = model.spmv_time(n_edges=10**7)
        assert tuned < general


class TestCollectives:
    def test_allreduce_single_rank_is_noop(self, model):
        assert model.allreduce_time([0], 10**6) == pytest.approx(
            AIMOS.gpu.kernel_launch_s
        )

    def test_allreduce_grows_with_group(self, model):
        t2 = model.allreduce_time([0, 1], 10**6)
        t6 = model.allreduce_time(list(range(6)), 10**6)
        assert t6 > t2

    def test_allreduce_volume_term(self, model):
        small = model.allreduce_time([0, 1, 2], 10**3)
        big = model.allreduce_time([0, 1, 2], 10**8)
        # small messages are latency-bound, large ones bandwidth-bound
        assert big > 50 * small
        assert (big - small) == pytest.approx(
            2 * (10**8 - 10**3) * 2 / (3 * AIMOS.node.nvlink.bandwidth_Bps)
        )

    def test_broadcast_cheaper_than_allreduce(self, model):
        ranks = list(range(6))
        assert model.broadcast_time(ranks, 10**7) < model.allreduce_time(
            ranks, 10**7
        )

    def test_grouped_broadcast_aggregates_under_nccl(self, model):
        ranks = list(range(6))
        sizes = [10**4] * 8
        grouped = model.grouped_broadcast_time(ranks, sizes)
        separate = sum(model.broadcast_time(ranks, s) for s in sizes)
        assert grouped < separate

    def test_grouped_broadcast_not_aggregated_generic(self, generic_model):
        ranks = list(range(6))
        sizes = [10**4] * 8
        grouped = generic_model.grouped_broadcast_time(ranks, sizes)
        separate = sum(generic_model.broadcast_time(ranks, s) for s in sizes)
        assert grouped == pytest.approx(separate)

    def test_generic_profile_more_expensive(self, model, generic_model):
        ranks = list(range(12))
        assert generic_model.allreduce_time(ranks, 10**6) > model.allreduce_time(
            ranks, 10**6
        )

    def test_alltoall_scales_linearly_in_group(self, model):
        t4 = model.alltoall_time(list(range(4)), 10**4)
        t12 = model.alltoall_time(list(range(12)), 10**4)
        # (k-1) serialized sends per rank
        assert t12 > 2.5 * t4

    def test_network_groups_cost_more(self, model):
        on_node = model.allreduce_time([0, 1, 2], 10**6)
        cross = model.allreduce_time([0, 6, 12], 10**6)
        assert cross > on_node

    def test_empty_grouped_broadcast(self, model):
        assert model.grouped_broadcast_time([0, 1], []) == 0.0

    def test_sendrecv_uses_link(self, model):
        nvl = model.sendrecv_time(0, 1, 10**6)
        net = model.sendrecv_time(0, 6, 10**6)
        assert net > nvl
