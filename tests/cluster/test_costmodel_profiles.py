"""Substrate-profile and stage-sharing cost model tests."""

import pytest

from repro.cluster import (
    AIMOS,
    GENERIC_PROFILE,
    NCCL_PROFILE,
    CommProfile,
    CostModel,
    Topology,
)
from repro.comm.grid import Grid2D
from repro.core.engine import Engine
from repro.graph import rmat


class TestMessageOverhead:
    def test_nccl_flat_overhead(self):
        assert NCCL_PROFILE.message_overhead(True) == NCCL_PROFILE.per_message_s
        assert NCCL_PROFILE.message_overhead(False) == NCCL_PROFILE.per_message_s

    def test_generic_cheaper_on_node(self):
        assert GENERIC_PROFILE.message_overhead(False) < GENERIC_PROFILE.message_overhead(True)

    def test_custom_profile_without_on_node_rate(self):
        p = CommProfile(name="x", per_message_s=1e-5, volume_factor=1.0, grouped_calls=True)
        assert p.message_overhead(False) == 1e-5


class TestSyncOverhead:
    def test_generic_sync_grows_with_ranks(self):
        small = CostModel(AIMOS.gpu, Topology(AIMOS, 8), GENERIC_PROFILE)
        big = CostModel(AIMOS.gpu, Topology(AIMOS, 64), GENERIC_PROFILE)
        # identical 2-rank collective, but the global coordination term
        # scales with the job size
        t_small = small.allreduce_time([0, 1], 1000)
        t_big = big.allreduce_time([0, 1], 1000)
        assert t_big > t_small
        assert (t_big - t_small) == pytest.approx(
            GENERIC_PROFILE.sync_overhead_per_rank_s * (64 - 8)
        )

    def test_nccl_has_no_sync_overhead(self):
        small = CostModel(AIMOS.gpu, Topology(AIMOS, 8))
        big = CostModel(AIMOS.gpu, Topology(AIMOS, 64))
        assert small.allreduce_time([0, 1], 1000) == pytest.approx(
            big.allreduce_time([0, 1], 1000)
        )


class TestNicSharing:
    def test_sharing_slows_network_collectives(self):
        model = CostModel(AIMOS.gpu, Topology(AIMOS, 24))
        ranks = [0, 6, 12]  # strided: all hops cross the network
        lone = model.allreduce_time(ranks, 10**7)
        shared = model.allreduce_time(ranks, 10**7, nic_sharing=6)
        assert shared > 2 * lone

    def test_sharing_ignored_on_node(self):
        model = CostModel(AIMOS.gpu, Topology(AIMOS, 24))
        ranks = [0, 1, 2]  # NVLink island
        assert model.allreduce_time(ranks, 10**6) == pytest.approx(
            model.allreduce_time(ranks, 10**6, nic_sharing=6)
        )


class TestEngineStageSharing:
    def test_square_grid_on_aimos(self):
        engine = Engine(rmat(8, seed=1), grid=Grid2D(4, 4))
        # 16 ranks over 3 six-GPU nodes: a node's 6 consecutive ranks
        # span up to 6 distinct column groups but at most 2 row groups.
        assert engine.stage_nic_sharing("col") >= 4
        assert engine.stage_nic_sharing("row") <= 2

    def test_wide_grid_reverses_sharing(self):
        engine = Engine(rmat(8, seed=1), grid=Grid2D(R=16, C=1))
        # one row group spanning everything: col groups are singletons
        assert engine.stage_nic_sharing("row") == 1

    def test_tall_grid(self):
        engine = Engine(rmat(8, seed=1), grid=Grid2D(R=1, C=16))
        # every rank is its own row group: 6 row groups per node
        assert engine.stage_nic_sharing("row") == 6
        assert engine.stage_nic_sharing("col") == 1

    def test_axis_validation(self):
        engine = Engine(rmat(7, seed=1), 4)
        with pytest.raises(ValueError):
            engine.stage_nic_sharing("diagonal")

    def test_cached(self):
        engine = Engine(rmat(7, seed=1), 4)
        a = engine.stage_nic_sharing("col")
        b = engine.stage_nic_sharing("col")
        assert a == b
