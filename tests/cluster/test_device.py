"""Virtual GPU memory ledger tests."""

import numpy as np
import pytest

from repro.cluster import V100, DeviceMemoryError, VirtualGPU


class TestCharging:
    def test_charge_and_release(self):
        dev = VirtualGPU(rank=0, spec=V100)
        dev.charge("csr", 1000)
        dev.charge("state", 500)
        assert dev.allocated_bytes == 1500
        dev.release("csr")
        assert dev.allocated_bytes == 500

    def test_peak_tracks_high_water(self):
        dev = VirtualGPU(rank=0, spec=V100)
        dev.charge("a", 1000)
        dev.release("a")
        dev.charge("b", 100)
        assert dev.peak_bytes == 1000

    def test_charge_array(self):
        dev = VirtualGPU(rank=0, spec=V100)
        arr = np.zeros(128, dtype=np.float64)
        dev.charge_array("arr", arr)
        assert dev.allocated_bytes == arr.nbytes

    def test_same_label_accumulates(self):
        dev = VirtualGPU(rank=0, spec=V100)
        dev.charge("x", 10)
        dev.charge("x", 20)
        assert dev.ledger["x"] == 30
        dev.release("x")
        assert dev.allocated_bytes == 0

    def test_negative_charge_rejected(self):
        dev = VirtualGPU(rank=0, spec=V100)
        with pytest.raises(ValueError):
            dev.charge("bad", -1)

    def test_release_unknown_label_is_noop(self):
        dev = VirtualGPU(rank=0, spec=V100)
        dev.release("never")
        assert dev.allocated_bytes == 0


class TestOOM:
    def test_enforced_oom_raises(self):
        dev = VirtualGPU(rank=3, spec=V100, enforce=True)
        with pytest.raises(DeviceMemoryError) as exc:
            dev.charge("huge", V100.memory_bytes + 1)
        assert exc.value.device is dev
        assert "rank 3" in str(exc.value)

    def test_unenforced_records_oversubscription(self):
        dev = VirtualGPU(rank=0, spec=V100, enforce=False)
        dev.charge("huge", 2 * V100.memory_bytes)
        assert dev.oversubscribed
        assert dev.utilization() > 1.0

    def test_scale_factor_models_full_size(self):
        # Simulating at 1/1000 scale but accounting full footprints.
        dev = VirtualGPU(rank=0, spec=V100, scale_factor=1000.0, enforce=False)
        dev.charge("csr", V100.memory_bytes // 500)
        assert dev.oversubscribed

    def test_free_bytes(self):
        dev = VirtualGPU(rank=0, spec=V100)
        dev.charge("x", 2**20)
        assert dev.free_bytes == V100.memory_bytes - 2**20
