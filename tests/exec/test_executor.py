"""Unit tests for the pluggable rank-execution subsystem."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.exec import (
    ENV_VAR,
    RankExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)


class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_explicit_serial(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_threads(self):
        ex = resolve_executor("threads")
        assert isinstance(ex, ThreadedExecutor)

    def test_threads_with_count(self):
        ex = resolve_executor("threads:3")
        assert isinstance(ex, ThreadedExecutor)
        assert ex.workers == 3

    def test_instance_passthrough(self):
        ex = ThreadedExecutor(max_workers=2)
        assert resolve_executor(ex) is ex

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threads:2")
        ex = resolve_executor(None)
        assert isinstance(ex, ThreadedExecutor)
        assert ex.workers == 2

    def test_env_var_ignored_when_explicit(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threads:2")
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_unknown_spec_names_offender_and_valid_forms(self):
        with pytest.raises(ValueError) as exc:
            resolve_executor("gpus")
        assert "'gpus'" in str(exc.value)
        assert "valid forms" in str(exc.value)
        assert "threads:N" in str(exc.value)

    def test_non_integer_worker_count(self):
        with pytest.raises(ValueError) as exc:
            resolve_executor("threads:zero")
        assert "'zero'" in str(exc.value)
        assert "not an integer" in str(exc.value)
        assert "valid forms" in str(exc.value)

    def test_nonpositive_worker_count(self):
        with pytest.raises(ValueError) as exc:
            resolve_executor("threads:0")
        assert ">= 1" in str(exc.value)
        assert "got 0" in str(exc.value)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="RankExecutor, a string, or None"):
            resolve_executor(4)


class TestSerialExecutor:
    def test_preserves_order(self):
        ex = SerialExecutor()
        assert ex.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_workers(self):
        assert SerialExecutor().workers == 1

    def test_propagates_errors(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            SerialExecutor().map(boom, [1])


class TestThreadedExecutor:
    @pytest.mark.parametrize("count", [0, -1, -7])
    def test_nonpositive_workers_rejected_naming_spec(self, count):
        """``max_workers=0`` must fail loudly at construction, in the
        same spec-naming style as ``resolve_executor``."""
        with pytest.raises(ValueError) as exc:
            ThreadedExecutor(max_workers=count)
        msg = str(exc.value)
        assert "invalid executor spec" in msg
        assert f"max_workers={count!r}" in msg
        assert "valid forms" in msg

    def test_none_sizes_to_cpu_count(self):
        import os

        ex = ThreadedExecutor(max_workers=None)
        assert ex.workers == (os.cpu_count() or 1)

    def test_preserves_submission_order(self):
        ex = ThreadedExecutor(max_workers=4)
        try:
            out = ex.map(lambda x: x * 10, list(range(32)))
            assert out == [x * 10 for x in range(32)]
        finally:
            ex.close()

    def test_actually_uses_threads(self):
        ex = ThreadedExecutor(max_workers=4)
        names = set()
        barrier = threading.Barrier(2, timeout=10)

        def record(i):
            if i < 2:
                barrier.wait()  # force at least two distinct threads
            names.add(threading.current_thread().name)
            return i

        try:
            ex.map(record, list(range(4)))
            assert any("repro-rank" in n for n in names)
            assert len(names) >= 2
        finally:
            ex.close()

    def test_single_worker_runs_inline(self):
        ex = ThreadedExecutor(max_workers=1)
        main = threading.current_thread().name
        names = ex.map(lambda i: threading.current_thread().name, [1, 2, 3])
        assert set(names) == {main}

    def test_single_item_runs_inline(self):
        ex = ThreadedExecutor(max_workers=4)
        main = threading.current_thread().name
        assert ex.map(lambda i: threading.current_thread().name, [7]) == [main]

    def test_propagates_errors(self):
        ex = ThreadedExecutor(max_workers=2)

        def boom(x):
            if x == 3:
                raise ValueError("bad item")
            return x

        try:
            with pytest.raises(ValueError, match="bad item"):
                ex.map(boom, list(range(8)))
        finally:
            ex.close()

    def test_close_idempotent(self):
        ex = ThreadedExecutor(max_workers=2)
        ex.map(lambda x: x, [1, 2])
        ex.close()
        ex.close()

    def test_is_rank_executor(self):
        assert isinstance(ThreadedExecutor(max_workers=2), RankExecutor)
        assert isinstance(SerialExecutor(), RankExecutor)


class TestEngineIntegration:
    def test_engine_default_serial(self, rmat_graph, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        e = Engine(rmat_graph, 4)
        assert isinstance(e.executor, SerialExecutor)

    def test_engine_accepts_spec_string(self, rmat_graph):
        e = Engine(rmat_graph, 4, executor="threads:2")
        assert isinstance(e.executor, ThreadedExecutor)
        assert e.executor.workers == 2

    def test_engine_env_var(self, rmat_graph, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "threads:2")
        e = Engine(rmat_graph, 4)
        assert isinstance(e.executor, ThreadedExecutor)

    def test_map_ranks_order_and_contexts(self, rmat_graph):
        e = Engine(rmat_graph, 4, executor=ThreadedExecutor(max_workers=4))
        out = e.map_ranks(lambda ctx: ctx.rank)
        assert out == [0, 1, 2, 3]

    def test_map_ranks_subset(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        assert e.map_ranks(lambda ctx: ctx.rank, ranks=[2, 0]) == [2, 0]

    def test_foreach_side_effects(self, rmat_graph):
        e = Engine(rmat_graph, 4, executor=ThreadedExecutor(max_workers=4))
        hits = np.zeros(4, dtype=np.int64)

        def mark(ctx):
            hits[ctx.rank] += 1

        e.foreach(mark)
        assert np.array_equal(hits, np.ones(4, dtype=np.int64))

    def test_stage_sharing_precomputed(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        # Eagerly computed at construction (no lazy hasattr memo).
        assert e._stage_sharing == {
            "row": e.stage_nic_sharing("row"),
            "col": e.stage_nic_sharing("col"),
        }
        with pytest.raises(ValueError):
            e.stage_nic_sharing("diagonal")


class TestResetTimers:
    def test_reset_in_place(self, rmat_graph):
        """reset_timers must reset the existing objects, not rebind them,
        so references held by the Communicator (and traces) stay live."""
        e = Engine(rmat_graph, 4)
        counters = e.counters
        clocks = e.clocks
        comm_counters = e.comm.counters

        from repro.algorithms.bfs import bfs

        bfs(e, root=0)
        assert counters.summary()  # something was recorded
        e.reset_timers()

        assert e.counters is counters
        assert e.clocks is clocks
        assert e.comm.counters is comm_counters
        assert counters.summary() == {}
        assert clocks.clock.sum() == 0.0
        assert clocks.compute.sum() == 0.0
        assert clocks.comm.sum() == 0.0
        assert clocks.iteration_marks == []

    def test_counters_flow_after_reset(self, rmat_graph):
        """Regression: after reset_timers, new communication must land in
        the counters the Engine reports (previously the Engine rebound
        self.counters while comm kept the old object)."""
        from repro.algorithms.bfs import bfs

        e = Engine(rmat_graph, 4)
        bfs(e, root=0)
        e.reset_timers()
        bufs = [np.ones(1) for _ in range(e.n_ranks)]
        e.comm.allreduce(list(range(e.n_ranks)), bufs, op="sum")
        assert "allreduce" in e.counters.summary()
