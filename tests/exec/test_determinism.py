"""Cross-executor determinism suite (the executor's core contract).

Every algorithm, run on the same graph and grid, must produce
bit-identical values, timing totals, and communication-counter
summaries under the serial and the threaded executor.  The threaded
runs force ``max_workers=4`` because the contract must hold regardless
of host core count (``ThreadedExecutor()`` defaults to
``os.cpu_count()``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.exec import SerialExecutor, ThreadedExecutor
from repro.graph import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(10, edgefactor=8, seed=5)


@pytest.fixture(scope="module")
def wgraph(graph):
    return graph.with_random_weights(seed=9)


def _bfs(e):
    from repro.algorithms.bfs import bfs

    return bfs(e, root=0)


def _pagerank(e):
    from repro.algorithms.pagerank import pagerank

    return pagerank(e, iterations=10)


def _components(e):
    from repro.algorithms.components import connected_components

    return connected_components(e)


def _labelprop(e):
    from repro.algorithms.labelprop import label_propagation

    return label_propagation(e, iterations=5)


def _pointerjump(e):
    from repro.algorithms.pointerjump import pointer_jumping

    return pointer_jumping(e)


def _coloring(e):
    from repro.algorithms.coloring import greedy_coloring

    return greedy_coloring(e)


def _kcore(e):
    from repro.algorithms.kcore import core_numbers

    return core_numbers(e)


def _triangles(e):
    from repro.algorithms.triangles import triangle_count

    return triangle_count(e)


def _betweenness(e):
    from repro.algorithms.betweenness import betweenness

    return betweenness(e, k_samples=3)


def _matching(e):
    from repro.algorithms.matching import max_weight_matching

    return max_weight_matching(e)


def _sssp(e):
    from repro.algorithms.sssp import sssp

    return sssp(e, root=0)


def _program(e):
    from repro.core.program import VertexProgram, run_vertex_program

    prog = VertexProgram(
        name="mrl",
        init=lambda og: og.astype(np.float64),
        along_edge=lambda v, w: v,
        op="min",
    )
    return run_vertex_program(e, prog)


def _spmv_pagerank(e):
    from repro.baselines.spmv import spmv_pagerank

    return spmv_pagerank(e, iterations=5)


def _spmv_cc(e):
    from repro.baselines.spmv import spmv_cc

    return spmv_cc(e)


def _spmv_bfs(e):
    from repro.baselines.spmv import spmv_bfs

    return spmv_bfs(e, root=0)


UNWEIGHTED = {
    "bfs": _bfs,
    "pagerank": _pagerank,
    "components": _components,
    "labelprop": _labelprop,
    "pointerjump": _pointerjump,
    "coloring": _coloring,
    "kcore": _kcore,
    "triangles": _triangles,
    "betweenness": _betweenness,
    "program": _program,
    "spmv_pagerank": _spmv_pagerank,
    "spmv_cc": _spmv_cc,
    "spmv_bfs": _spmv_bfs,
}
WEIGHTED = {
    "matching": _matching,
    "sssp": _sssp,
}


def _assert_identical(a, b, name):
    if a.values is None:
        assert b.values is None
    else:
        assert np.array_equal(a.values, b.values), f"{name}: values differ"
    assert a.iterations == b.iterations, f"{name}: iteration counts differ"
    assert a.timings.total == b.timings.total, f"{name}: total time differs"
    assert a.timings.compute == b.timings.compute, f"{name}: compute differs"
    assert a.timings.comm == b.timings.comm, f"{name}: comm time differs"
    assert a.counters == b.counters, f"{name}: comm counters differ"


@pytest.mark.parametrize("name", sorted(UNWEIGHTED))
def test_threaded_matches_serial(graph, name):
    runner = UNWEIGHTED[name]
    a = runner(Engine(graph, 16, executor=SerialExecutor()))
    b = runner(Engine(graph, 16, executor=ThreadedExecutor(max_workers=4)))
    _assert_identical(a, b, name)


@pytest.mark.parametrize("name", sorted(WEIGHTED))
def test_threaded_matches_serial_weighted(wgraph, name):
    runner = WEIGHTED[name]
    a = runner(Engine(wgraph, 16, executor=SerialExecutor()))
    b = runner(Engine(wgraph, 16, executor=ThreadedExecutor(max_workers=4)))
    _assert_identical(a, b, name)


def _assert_overlap_equivalent(blocking, overlapped, name):
    """Blocking vs overlapped: everything bit-identical except the
    total, which may only shrink — by exactly the time the overlap lane
    reports as hidden behind compute."""
    if blocking.values is None:
        assert overlapped.values is None
    else:
        assert np.array_equal(blocking.values, overlapped.values), (
            f"{name}: values differ"
        )
    assert blocking.iterations == overlapped.iterations, f"{name}: iterations"
    assert blocking.timings.compute == overlapped.timings.compute, (
        f"{name}: compute lane differs"
    )
    assert blocking.timings.comm == overlapped.timings.comm, (
        f"{name}: comm lane differs"
    )
    assert blocking.counters == overlapped.counters, f"{name}: counters differ"
    assert blocking.timings.overlap == 0.0, f"{name}: blocking run hid comm"
    assert overlapped.timings.overlap >= 0.0
    assert overlapped.timings.total <= blocking.timings.total, (
        f"{name}: overlapped run slower than blocking"
    )


@pytest.mark.parametrize("name", sorted(UNWEIGHTED))
def test_overlapped_matches_blocking(graph, name):
    # overlap=False explicitly: the blocking reference must stay
    # blocking even when the suite runs under REPRO_OVERLAP=1.
    runner = UNWEIGHTED[name]
    blocking = runner(
        Engine(graph, 16, executor=SerialExecutor(), overlap=False)
    )
    overlapped = runner(
        Engine(graph, 16, executor=SerialExecutor(), overlap=True)
    )
    _assert_overlap_equivalent(blocking, overlapped, name)


@pytest.mark.parametrize("name", sorted(WEIGHTED))
def test_overlapped_matches_blocking_weighted(wgraph, name):
    runner = WEIGHTED[name]
    blocking = runner(
        Engine(wgraph, 16, executor=SerialExecutor(), overlap=False)
    )
    overlapped = runner(
        Engine(wgraph, 16, executor=SerialExecutor(), overlap=True)
    )
    _assert_overlap_equivalent(blocking, overlapped, name)


@pytest.mark.parametrize("name", sorted(UNWEIGHTED))
def test_overlapped_threaded_matches_overlapped_serial(graph, name):
    """Overlap and the threaded executor compose: an overlapped run is
    fully deterministic (totals included) across executors."""
    runner = UNWEIGHTED[name]
    a = runner(Engine(graph, 16, executor=SerialExecutor(), overlap=True))
    b = runner(
        Engine(
            graph, 16, executor=ThreadedExecutor(max_workers=4), overlap=True
        )
    )
    _assert_identical(a, b, name)
    assert a.timings.overlap == b.timings.overlap, f"{name}: overlap differs"


def test_overlap_hides_comm_on_pagerank(graph):
    """PageRank's dangling AllReduce and stage-pipelined exchanges must
    actually hide time, not just stay correct."""
    overlapped = _pagerank(Engine(graph, 16, overlap=True))
    assert overlapped.timings.overlap > 0.0
    assert 0.0 < overlapped.timings.overlap_fraction <= 1.0


def test_overlap_env_var(graph, monkeypatch):
    from repro.core.engine import OVERLAP_ENV_VAR

    monkeypatch.setenv(OVERLAP_ENV_VAR, "1")
    from_env = _pagerank(Engine(graph, 16))
    explicit = _pagerank(Engine(graph, 16, overlap=True))
    _assert_identical(from_env, explicit, "pagerank-env")
    assert from_env.timings.overlap > 0.0


def test_repeated_threaded_runs_identical(graph):
    """The threaded executor is deterministic run-to-run, not just
    serial-vs-threaded."""
    runs = [
        _bfs(Engine(graph, 16, executor=ThreadedExecutor(max_workers=4)))
        for _ in range(2)
    ]
    _assert_identical(runs[0], runs[1], "bfs-repeat")


def test_env_spec_matches_explicit(graph, monkeypatch):
    from repro.exec import ENV_VAR

    monkeypatch.setenv(ENV_VAR, "threads:4")
    a = _bfs(Engine(graph, 16))  # resolved from environment
    b = _bfs(Engine(graph, 16, executor=SerialExecutor()))
    _assert_identical(a, b, "bfs-env")
