"""Cross-module integration tests.

These exercise whole-system behaviours that no single-module test can:
running the full algorithm suite through one engine, determinism of
results *and* virtual timings, dataset-stand-in pipelines, and the
interaction of distributions, grids, and machine models.
"""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.cluster import AIMOS, ZEPY
from repro.comm.grid import Grid2D
from repro.graph import load, rmat, web_graph
from repro.reference import serial


@pytest.fixture(scope="module")
def weighted_graph():
    return rmat(8, seed=21).with_random_weights(seed=3)


class TestFullSuiteOneEngine:
    def test_all_algorithms_share_an_engine(self, weighted_graph):
        """One engine object can run the entire Table 3 suite in
        sequence; reset_timers isolates the runs."""
        g = weighted_graph
        engine = Engine(g, grid=Grid2D(R=3, C=2))
        root = int(np.argmax(g.degrees()))

        res_bfs = algorithms.bfs(engine, root=root)
        res_pr = algorithms.pagerank(engine, iterations=10)
        res_cc = algorithms.connected_components(engine)
        res_lp = algorithms.label_propagation(engine, iterations=10)
        res_mwm = algorithms.max_weight_matching(engine)
        res_pj = algorithms.pointer_jumping(engine)

        assert serial.bfs_parents_valid(g, root, res_bfs.values)
        assert np.allclose(res_pr.values, serial.pagerank(g, 10), atol=1e-12)
        assert np.array_equal(
            serial.canonical_labels(res_cc.values),
            serial.canonical_labels(serial.connected_components(g)),
        )
        assert np.array_equal(res_lp.values, serial.label_propagation(g, 10))
        assert np.array_equal(
            res_mwm.values, serial.locally_dominant_matching(g)
        )
        assert np.array_equal(
            res_pj.values,
            serial.pointer_jumping_roots(algorithms.initial_parents(g)),
        )

    def test_reset_isolates_timings(self, weighted_graph):
        engine = Engine(weighted_graph, 4)
        t1 = algorithms.pagerank(engine, iterations=5).timings.total
        t2 = algorithms.pagerank(engine, iterations=5).timings.total
        assert t1 == pytest.approx(t2)


class TestDeterminism:
    def test_results_and_timings_reproducible(self):
        """Identical inputs give bit-identical results and modeled
        times — the property that makes single-round benches valid."""
        def run():
            g = rmat(8, seed=7)
            engine = Engine(g, grid=Grid2D(R=4, C=2))
            res = algorithms.connected_components(engine)
            return res.values.copy(), res.timings.total, res.counters

        v1, t1, c1 = run()
        v2, t2, c2 = run()
        assert np.array_equal(v1, v2)
        assert t1 == t2
        assert c1 == c2

    def test_grid_shape_does_not_change_results(self):
        g = web_graph(500, 3000, seed=11)
        outs = []
        for grid in [Grid2D(1, 1), Grid2D(4, 4), Grid2D(2, 8), Grid2D(8, 2)]:
            engine = Engine(g, grid=grid)
            outs.append(algorithms.label_propagation(engine, iterations=8).values)
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)

    def test_distribution_does_not_change_results(self):
        g = rmat(8, seed=9)
        ref = None
        for dist in ("striped", "random", "block"):
            engine = Engine(g, 4, distribution=dist, seed=5)
            labels = serial.canonical_labels(
                algorithms.connected_components(engine).values
            )
            if ref is None:
                ref = labels
            else:
                assert np.array_equal(labels, ref), dist


class TestMachineModels:
    def test_cluster_changes_time_not_results(self):
        g = rmat(8, seed=13)
        res_v100 = algorithms.pagerank(Engine(g, 4, cluster=AIMOS), iterations=5)
        res_a100 = algorithms.pagerank(Engine(g, 4, cluster=ZEPY), iterations=5)
        assert np.allclose(res_v100.values, res_a100.values)
        # A100s are strictly faster at everything
        assert res_a100.timings.total < res_v100.timings.total

    def test_scaled_cluster_scales_throughput_terms(self):
        """scaled(k) divides exactly the throughput terms: a large
        edge-bound kernel costs ~k x more, while launch overheads and
        latencies stay fixed."""
        from repro.cluster import CostModel, Topology

        base = CostModel(AIMOS.gpu, Topology(AIMOS, 4))
        scaled_cfg = AIMOS.scaled(100)
        scaled = CostModel(scaled_cfg.gpu, Topology(scaled_cfg, 4))
        t_base = base.kernel_time(n_edges=10**8)
        t_scaled = scaled.kernel_time(n_edges=10**8)
        assert t_scaled / t_base == pytest.approx(100, rel=0.01)
        # latency-bound collective barely changes
        a_base = base.allreduce_time([0, 1], 8)
        a_scaled = scaled.allreduce_time([0, 1], 8)
        assert a_scaled / a_base < 1.5

    def test_load_balance_mode_changes_time_not_results(self):
        g = rmat(9, seed=3)
        rm = algorithms.connected_components(Engine(g, 4, load_balance="manhattan"))
        rv = algorithms.connected_components(Engine(g, 4, load_balance="vertex"))
        assert np.array_equal(rm.values, rv.values)
        assert rm.timings.compute < rv.timings.compute


class TestDatasetPipelines:
    @pytest.mark.parametrize("abbr", ["TW", "FR", "CW", "GSH", "WDC"])
    def test_every_standin_runs_cc_correctly(self, abbr):
        ds = load(abbr, target_edges=1 << 13, seed=2)
        engine = Engine(ds.graph, 4)
        res = algorithms.connected_components(engine)
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(ds.graph)),
        )

    def test_web_standins_have_long_tails(self):
        """The pendant chains must produce the long convergence tails
        that make the paper's queue machinery pay off."""
        ds = load("WDC", target_edges=1 << 14, seed=2)
        engine = Engine(ds.graph, 4)
        res = algorithms.connected_components(engine)
        assert res.iterations > 15

    def test_social_standins_have_short_diameters(self):
        ds = load("TW", target_edges=1 << 14, seed=2)
        engine = Engine(ds.graph, 4)
        res = algorithms.connected_components(engine)
        assert res.iterations < 15


class TestTimingInvariants:
    def test_component_times_bounded_by_total(self, weighted_graph):
        """Per-rank clocks include waiting at group syncs, so the
        reported total may exceed compute + comm — but each component
        (itself a max over ranks) can never exceed the total."""
        engine = Engine(weighted_graph, 4)
        res = algorithms.max_weight_matching(engine)
        t = res.timings
        assert t.total > 0
        assert 0 <= t.compute <= t.total + 1e-12
        assert 0 <= t.comm <= t.total + 1e-12

    def test_iteration_marks_sum_to_total(self, weighted_graph):
        engine = Engine(weighted_graph, 4)
        res = algorithms.pagerank(engine, iterations=6)
        per = res.timings.per_iteration
        assert len(per) == 6
        # cumulative marks: deltas sum to (approximately) the total
        assert sum(p.total for p in per) == pytest.approx(res.timings.total, rel=0.05)

    def test_more_ranks_more_messages(self, weighted_graph):
        small = Engine(weighted_graph, 4)
        algorithms.connected_components(small)
        big = Engine(weighted_graph, 16)
        algorithms.connected_components(big)
        assert (
            big.counters.total_serial_messages
            > small.counters.total_serial_messages
        )
