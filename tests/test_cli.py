"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--algo", "CC"])
        assert args.dataset == "TW"
        assert args.ranks == 16
        assert args.cluster == "aimos"

    def test_invalid_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algo", "NOPE"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WDC12" in out
        assert "V100" in out

    def test_run_cc(self, capsys):
        rc = main(
            ["run", "--algo", "CC", "--dataset", "TW", "--ranks", "4",
             "--target-edges", str(1 << 12)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out
        assert "stand-in" in out

    def test_run_mwm_loads_weighted(self, capsys):
        rc = main(
            ["run", "--algo", "MWM", "--dataset", "FR", "--ranks", "4",
             "--target-edges", str(1 << 11)]
        )
        assert rc == 0

    def test_scaling_text(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1,4",
             "--target-edges", str(1 << 12)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "strong scaling on TW" in out

    def test_scaling_csv(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1",
             "--target-edges", str(1 << 12), "--format", "csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("dataset,algo")

    def test_scaling_markdown(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1",
             "--target-edges", str(1 << 12), "--format", "markdown"]
        )
        assert rc == 0
        assert "|---" in capsys.readouterr().out
