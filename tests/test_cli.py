"""Command-line interface tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--algo", "CC"])
        assert args.dataset == "TW"
        assert args.ranks == 16
        assert args.cluster == "aimos"

    def test_invalid_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algo", "NOPE"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WDC12" in out
        assert "V100" in out

    def test_run_cc(self, capsys):
        rc = main(
            ["run", "--algo", "CC", "--dataset", "TW", "--ranks", "4",
             "--target-edges", str(1 << 12)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out
        assert "stand-in" in out

    def test_run_mwm_loads_weighted(self, capsys):
        rc = main(
            ["run", "--algo", "MWM", "--dataset", "FR", "--ranks", "4",
             "--target-edges", str(1 << 11)]
        )
        assert rc == 0

    def test_scaling_text(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1,4",
             "--target-edges", str(1 << 12)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "strong scaling on TW" in out

    def test_scaling_csv(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1",
             "--target-edges", str(1 << 12), "--format", "csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("dataset,algo")

    def test_scaling_markdown(self, capsys):
        rc = main(
            ["scaling", "--dataset", "TW", "--algos", "CC", "--ranks", "1",
             "--target-edges", str(1 << 12), "--format", "markdown"]
        )
        assert rc == 0
        assert "|---" in capsys.readouterr().out


class TestTraceCommand:
    ARGS = ["trace", "--algo", "PR", "--dataset", "TW", "--ranks", "4",
            "--target-edges", str(1 << 12)]

    def test_trace_both_formats(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("iteration,")
        assert '"schema": "repro.trace.v1"' in captured.out
        assert "(exact)" in captured.err

    def test_trace_csv_only(self, capsys):
        rc = main(self.ARGS + ["--format", "csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("iteration,")
        assert "schema" not in out
        # 20 PageRank iterations + header
        assert len(out.strip().splitlines()) == 21

    def test_trace_json_is_exact(self, capsys):
        rc = main(self.ARGS + ["--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["meta"]["algo"] == "PR"
        assert doc["meta"]["ranks"] == 4
        rows = doc["iterations"]
        assert len(rows) == 20
        assert sum(r["bytes"] for r in rows) == doc["totals"]["bytes"]
        assert all(r["calls_by_kind"] for r in rows)

    def test_trace_out_writes_files(self, capsys, tmp_path):
        prefix = tmp_path / "pr_trace"
        rc = main(self.ARGS + ["--out", str(prefix)])
        assert rc == 0
        csv_text = (tmp_path / "pr_trace.csv").read_text()
        assert csv_text.startswith("iteration,")
        doc = json.loads((tmp_path / "pr_trace.json").read_text())
        assert doc["schema"] == "repro.trace.v1"
        assert "wrote" in capsys.readouterr().out

    def test_trace_requires_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestPerf:
    def test_perf_smoke_appends_trajectory(self, capsys, tmp_path):
        out = tmp_path / "traj.json"
        rc = main(
            ["perf", "--scale", "6", "--ranks", "4", "--repeats", "1",
             "--label", "smoke", "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "algorithms:" in text and "primitives:" in text
        assert "appended entry 1" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench.simulator.v1"
        assert doc["entries"][0]["label"] == "smoke"

    def test_perf_no_primitives_prints_algorithms_only(self, capsys):
        rc = main(
            ["perf", "--scale", "6", "--ranks", "4", "--repeats", "1",
             "--no-primitives"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "algorithms:" in text
        assert "primitives:" not in text

    def test_perf_overlap_prints_modeled_comparison(self, capsys, tmp_path):
        out = tmp_path / "traj.json"
        rc = main(
            ["perf", "--scale", "6", "--ranks", "4", "--repeats", "1",
             "--no-primitives", "--overlap", "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "modeled (virtual clock" in text
        assert "SpMV" in text
        doc = json.loads(out.read_text())
        assert set(doc["entries"][0]["modeled"]) == {"BFS", "PR", "CC", "SpMV"}


class TestPerfBatch:
    def test_perf_batch_prints_section(self, capsys, tmp_path):
        out = tmp_path / "traj.json"
        rc = main(
            ["perf", "--scale", "6", "--ranks", "4", "--repeats", "1",
             "--no-primitives", "--batch", "--batch-ks", "2",
             "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "batched k-source BFS" in text
        assert "bit-identical" in text
        doc = json.loads(out.read_text())
        entry = doc["entries"][0]["batched"]["k2"]
        assert entry["bit_identical"] is True
