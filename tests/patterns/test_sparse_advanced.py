"""Advanced sparse-pattern paths: custom reductions and delta sums."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.graph import rmat
from repro.patterns import sparse_pull, sparse_push

from ..conftest import GRIDS


def _consistent_init(engine, name, seed, fill=None):
    rng = np.random.default_rng(seed)
    n = engine.partition.n_vertices
    vec = (
        np.full(n, fill, dtype=float)
        if fill is not None
        else rng.integers(10, 100, size=n).astype(float)
    )
    engine.scatter_global(name, vec)
    return vec


class TestCustomReduceFn:
    def test_reduce_fn_overrides_op(self):
        """A custom reduction (clamp-to-even minimum) flows through the
        ReduceQueue hook (paper §3.3.3, 'Complex Reductions')."""
        g = rmat(7, seed=3)
        engine = Engine(g, 4)
        _consistent_init(engine, "s", 1)

        def clamp_min(state, lids, vals):
            # like MIN but only accepts even values
            keep = (vals % 2) == 0
            lids, vals = lids[keep], vals[keep]
            if lids.size == 0:
                return np.empty(0, dtype=np.int64)
            uniq = np.unique(lids)
            old = state[uniq].copy()
            np.minimum.at(state, lids, vals)
            return uniq[state[uniq] != old]

        ctx = engine.ctx(0)
        lid = ctx.col_slice.start
        state = ctx.get("s")
        state[lid] = 4.0  # even: should propagate
        queues = [
            np.array([lid]) if r == 0 else np.empty(0, dtype=np.int64)
            for r in range(4)
        ]
        result = sparse_push(engine, "s", queues, reduce_fn=clamp_min)
        assert result.n_updated >= 0  # ran through the custom path
        # the even value reached the other ranks in the column group
        gid = ctx.localmap.col_gid(lid)
        for r in engine.grid.col_group_of(0):
            other = engine.ctx(r)
            if other.localmap.owns_col_gid(np.array([gid]))[0]:
                assert other.get("s")[other.localmap.col_lid(gid)] == 4.0

    def test_odd_values_blocked(self):
        g = rmat(6, seed=3)
        engine = Engine(g, 4)
        vec = _consistent_init(engine, "s", 1, fill=50.0)

        def only_even(state, lids, vals):
            keep = (vals % 2) == 0
            lids, vals = lids[keep], vals[keep]
            if lids.size == 0:
                return np.empty(0, dtype=np.int64)
            uniq = np.unique(lids)
            old = state[uniq].copy()
            np.minimum.at(state, lids, vals)
            return uniq[state[uniq] != old]

        ctx = engine.ctx(0)
        lid = ctx.col_slice.start
        ctx.get("s")[lid] = 3.0  # odd: blocked by the reduction
        queues = [
            np.array([lid]) if r == 0 else np.empty(0, dtype=np.int64)
            for r in range(4)
        ]
        sparse_push(engine, "s", queues, reduce_fn=only_even)
        # other ranks never accepted the odd value
        gid = ctx.localmap.col_gid(lid)
        for r in engine.grid.col_group_of(0):
            if r == 0:
                continue
            other = engine.ctx(r)
            if other.localmap.owns_col_gid(np.array([gid]))[0]:
                assert other.get("s")[other.localmap.col_lid(gid)] == 50.0


class TestDeltaSums:
    def test_sum_op_applies_deltas(self):
        """op='sum' has delta semantics: queued values accumulate."""
        g = rmat(6, seed=5)
        engine = Engine(g, 4)
        _consistent_init(engine, "s", 0, fill=0.0)
        ctx = engine.ctx(0)
        lid = ctx.col_slice.start
        gid = int(ctx.localmap.col_gid(lid))
        # rank 0 contributes a delta of 7 on one ghost
        ctx.get("s")[lid] = 7.0
        queues = [
            np.array([lid]) if r == 0 else np.empty(0, dtype=np.int64)
            for r in range(4)
        ]
        sparse_push(engine, "s", queues, op="sum")
        # every member of the column group holding gid accumulated it...
        for r in engine.grid.col_group_of(0):
            other = engine.ctx(r)
            mask = other.localmap.owns_col_gid(np.array([gid]))
            if mask[0]:
                got = other.get("s")[other.localmap.col_lid(gid)]
                # rank 0's own copy held 7 already and then accumulated
                # its echo (7 + 7); others started at 0 (0 + 7).
                assert got in (7.0, 14.0)


class TestEmptyGroupPaths:
    @pytest.mark.parametrize("grid", [GRIDS[2], GRIDS[3]], ids=("1x4", "4x1"))
    def test_degenerate_grids(self, grid):
        """Single-row-group / single-column-group grids exercise the
        degenerate group paths (k=1 collectives)."""
        g = rmat(7, seed=2)
        engine = Engine(g, grid=grid)
        _consistent_init(engine, "s", 3)
        queues = [np.empty(0, dtype=np.int64)] * grid.n_ranks
        for fn in (sparse_push, sparse_pull):
            result = fn(engine, "s", queues, op="min")
            assert result.n_updated == 0
