"""Dense->sparse switch policy tests (paper §3.3.1)."""

import pytest

from repro.comm.grid import Grid2D
from repro.patterns import SwitchPolicy


class TestSwitchPolicy:
    def test_threshold_is_n_over_max_rc(self):
        p = SwitchPolicy(n_vertices=1000, grid=Grid2D(R=8, C=2))
        assert p.threshold == pytest.approx(1000 / 8)

    def test_switch_mode_starts_dense(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="switch")
        assert not p.use_sparse

    def test_switches_below_threshold_and_sticks(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="switch")
        p.observe(900)
        assert not p.use_sparse
        p.observe(100)  # < 250
        assert p.use_sparse
        p.observe(10_000)  # never switches back
        assert p.use_sparse

    def test_dense_mode_never_switches(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="dense")
        p.observe(0)
        assert not p.use_sparse

    def test_sparse_mode_always_sparse(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="sparse")
        assert p.use_sparse

    def test_threshold_factor_scales(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), threshold_factor=2.0)
        assert p.threshold == pytest.approx(500)

    def test_exact_threshold_not_yet_sparse(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="switch")
        p.observe(250)  # not strictly under N/max(R,C)
        assert not p.use_sparse

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            SwitchPolicy(10, Grid2D(R=1, C=1), mode="auto")

    def test_nonpositive_vertices_rejected(self):
        with pytest.raises(ValueError, match="n_vertices"):
            SwitchPolicy(0, Grid2D(R=2, C=2))
        with pytest.raises(ValueError, match="n_vertices"):
            SwitchPolicy(-5, Grid2D(R=2, C=2))

    def test_nonpositive_threshold_factor_rejected(self):
        with pytest.raises(ValueError, match="threshold_factor"):
            SwitchPolicy(10, Grid2D(R=2, C=2), threshold_factor=0.0)
        with pytest.raises(ValueError, match="threshold_factor"):
            SwitchPolicy(10, Grid2D(R=2, C=2), threshold_factor=-1.0)

    def test_reset_reuses_policy_across_runs(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="switch")
        p.observe(10)  # run 1 switches to sparse
        assert p.use_sparse
        p.reset()  # run 2 must start dense again
        assert not p.use_sparse
        p.observe(900)
        assert not p.use_sparse

    def test_reset_keeps_sparse_mode_sparse(self):
        p = SwitchPolicy(1000, Grid2D(R=4, C=4), mode="sparse")
        p.reset()
        assert p.use_sparse
