"""Sparse exchange pattern tests (paper Algs. 3-5)."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.graph import rmat
from repro.patterns import (
    dense_pull,
    dense_push,
    propagate_active_pull,
    sparse_pull,
    sparse_push,
)

from ..conftest import GRIDS


def _consistent_init(engine, name, seed):
    """Globally consistent random state (scattered from one vector)."""
    rng = np.random.default_rng(seed)
    vec = rng.integers(10, 100, size=engine.partition.n_vertices).astype(float)
    engine.scatter_global(name, vec)
    return vec


def _apply_local_updates(engine, name, seed, window):
    """Emulate a compute kernel: each rank lowers a few vertices in the
    given window ('col' for push, 'row' for pull).  Returns the queues."""
    rng = np.random.default_rng(seed)
    queues = []
    for ctx in engine:
        s = ctx.get(name)
        sl = ctx.col_slice if window == "col" else ctx.row_slice
        size = sl.stop - sl.start
        k = int(rng.integers(0, max(size // 4, 1)))
        lids = rng.choice(np.arange(sl.start, sl.stop), size=k, replace=False)
        s[lids] = np.minimum(s[lids], rng.integers(0, 9, size=k).astype(float))
        queues.append(np.sort(lids))
    return queues


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
def test_sparse_push_equals_dense_push(grid):
    """The sparse exchange must reach exactly the state the dense
    exchange reaches from identical local updates."""
    g = rmat(7, seed=2)
    e1 = Engine(g, grid=grid)
    e2 = Engine(g, grid=grid)
    _consistent_init(e1, "s", 5)
    _consistent_init(e2, "s", 5)
    q1 = _apply_local_updates(e1, "s", 6, "col")
    q2 = _apply_local_updates(e2, "s", 6, "col")
    for a, b in zip(q1, q2):
        assert np.array_equal(a, b)

    sparse_push(e1, "s", q1, op="min")
    dense_push(e2, "s", op="min")
    for r in range(grid.n_ranks):
        assert np.array_equal(e1.ctx(r).get("s"), e2.ctx(r).get("s"))


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
def test_sparse_pull_equals_dense_pull(grid):
    g = rmat(7, seed=2)
    e1 = Engine(g, grid=grid)
    e2 = Engine(g, grid=grid)
    _consistent_init(e1, "s", 7)
    _consistent_init(e2, "s", 7)
    q1 = _apply_local_updates(e1, "s", 8, "row")
    q2 = _apply_local_updates(e2, "s", 8, "row")

    sparse_pull(e1, "s", q1, op="min")
    dense_pull(e2, "s", op="min")
    for r in range(grid.n_ranks):
        assert np.array_equal(e1.ctx(r).get("s"), e2.ctx(r).get("s"))


def test_sparse_push_counts_updates():
    g = rmat(7, seed=2)
    engine = Engine(g, 4)
    vec = _consistent_init(engine, "s", 1)
    # lower exactly one vertex on one rank
    ctx = engine.ctx(0)
    lid = ctx.col_slice.start
    ctx.get("s")[lid] = -1.0
    queues = [
        np.array([lid]) if r == 0 else np.empty(0, dtype=np.int64)
        for r in range(4)
    ]
    result = sparse_push(engine, "s", queues, op="min")
    assert result.n_updated == 1
    out = engine.gather("s")
    gid = ctx.localmap.col_gid(lid)
    changed = np.flatnonzero(out != vec)
    assert changed.size == 1
    assert out[engine.partition.original_gid(np.array([gid]))[0]] == -1.0


def test_sparse_no_updates_is_cheap_and_stable():
    g = rmat(6, seed=2)
    engine = Engine(g, 4)
    vec = _consistent_init(engine, "s", 1)
    empty = [np.empty(0, dtype=np.int64)] * 4
    result = sparse_push(engine, "s", empty, op="min")
    assert result.n_updated == 0
    assert np.array_equal(engine.gather("s"), vec)


def test_sparse_volume_below_dense_volume():
    """The point of sparse comms: volume proportional to updates."""
    g = rmat(8, seed=2)
    e_sparse = Engine(g, 16)
    e_dense = Engine(g, 16)
    _consistent_init(e_sparse, "s", 1)
    _consistent_init(e_dense, "s", 1)
    # tiny update set
    queues = [np.empty(0, dtype=np.int64)] * 16
    queues[3] = np.array([e_sparse.ctx(3).col_slice.start])
    e_sparse.ctx(3).get("s")[queues[3][0]] = 0.0
    sparse_push(e_sparse, "s", queues, op="min")
    dense_push(e_dense, "s", op="min")
    assert e_sparse.counters.total_bytes < e_dense.counters.total_bytes / 10


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
def test_propagate_active_pull_marks_neighbors(grid):
    """Active queue after a pull = neighbors of the updated vertices,
    consistent across each row group."""
    g = rmat(7, seed=4)
    engine = Engine(g, grid=grid)
    part = engine.partition
    rng = np.random.default_rng(0)
    updated_orig = rng.choice(g.n_vertices, size=5, replace=False)
    updated_rel = part.perm[updated_orig]

    updated_rows = []
    for ctx in engine:
        lm = ctx.localmap
        mine = updated_rel[(updated_rel >= lm.row_start) & (updated_rel < lm.row_stop)]
        updated_rows.append(lm.row_lid(np.sort(mine)))
    active = propagate_active_pull(engine, updated_rows)

    # expected: all neighbors (relabeled) of the updated set
    relabeled = g.permute(part.perm)
    expect = set()
    for v in updated_rel:
        expect.update(relabeled.neighbors(v).tolist())
    for ctx in engine:
        lm = ctx.localmap
        got = set(lm.row_gid(active[ctx.rank]).tolist())
        mine = {v for v in expect if lm.row_start <= v < lm.row_stop}
        assert got == mine
