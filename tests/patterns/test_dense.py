"""Dense exchange pattern tests (paper Alg. 2)."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.graph import rmat
from repro.patterns import dense_pull, dense_push

from ..conftest import GRIDS


def _fill_random(engine, name, seed):
    rng = np.random.default_rng(seed)
    for ctx in engine:
        arr = ctx.alloc(name, np.float64)
        arr[...] = rng.integers(0, 100, size=arr.size).astype(np.float64)


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
@pytest.mark.parametrize("op", ["min", "sum"])
def test_dense_push_reduces_col_groups(grid, op):
    """After a push: every vertex's value everywhere equals the ``op``
    reduction of its column group's pre-exchange *col-window* values."""
    g = rmat(7, seed=9)
    engine = Engine(g, grid=grid)
    _fill_random(engine, "s", seed=3)
    part = engine.partition
    n = part.n_vertices

    expected = np.zeros(n) if op == "sum" else np.full(n, np.inf)
    for id_c, ranks in engine.col_groups():
        cs, ce = part.col_range(id_c)
        vals = np.stack(
            [engine.ctx(r).get("s")[engine.ctx(r).col_slice] for r in ranks]
        )
        red = vals.sum(axis=0) if op == "sum" else vals.min(axis=0)
        expected[cs:ce] = red

    dense_push(engine, "s", op=op)

    for ctx in engine:
        lm = ctx.localmap
        s = ctx.get("s")
        assert np.allclose(s[lm.col_slice], expected[lm.col_start : lm.col_stop])
        assert np.allclose(s[lm.row_slice], expected[lm.row_start : lm.row_stop])


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
@pytest.mark.parametrize("op", ["min", "sum"])
def test_dense_pull_reduces_row_groups(grid, op):
    """Mirror of the push test with row-window reductions."""
    g = rmat(7, seed=9)
    engine = Engine(g, grid=grid)
    _fill_random(engine, "s", seed=4)
    part = engine.partition
    n = part.n_vertices

    expected = np.zeros(n) if op == "sum" else np.full(n, np.inf)
    for id_r, ranks in engine.row_groups():
        rs, re = part.row_range(id_r)
        vals = np.stack(
            [engine.ctx(r).get("s")[engine.ctx(r).row_slice] for r in ranks]
        )
        red = vals.sum(axis=0) if op == "sum" else vals.min(axis=0)
        expected[rs:re] = red

    dense_pull(engine, "s", op=op)

    for ctx in engine:
        lm = ctx.localmap
        s = ctx.get("s")
        assert np.allclose(s[lm.row_slice], expected[lm.row_start : lm.row_stop])
        assert np.allclose(s[lm.col_slice], expected[lm.col_start : lm.col_stop])


def test_dense_charges_comm_time():
    g = rmat(7, seed=9)
    engine = Engine(g, 4)
    engine.alloc("s", np.float64)
    before = engine.clocks.snapshot()
    dense_push(engine, "s", op="min")
    after = engine.clocks.snapshot()
    assert after.comm > before.comm
    assert engine.counters.by_kind["allreduce"].calls == engine.grid.R


def test_dense_exchange_dispatch():
    from repro.patterns import dense_exchange

    g = rmat(6, seed=1)
    engine = Engine(g, 4)
    engine.alloc("s", np.float64)
    dense_exchange(engine, "s", "push", "min")
    dense_exchange(engine, "s", "pull", "min")
    with pytest.raises(ValueError):
        dense_exchange(engine, "s", "sideways", "min")
