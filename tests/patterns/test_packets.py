"""Packet swapping tests (paper §3.3.3)."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.graph import rmat
from repro.patterns.packets import PACKET_DTYPE, make_packets, packet_swap

from ..conftest import GRIDS


def _engine(grid):
    return Engine(rmat(6, seed=1), grid=grid)


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
def test_all_pairs_delivery(grid):
    """Every rank sends one tagged packet to every rank; everyone must
    receive exactly one packet from each sender, unmodified."""
    engine = _engine(grid)
    p = grid.n_ranks
    packets = []
    for r in range(p):
        dests = np.arange(p, dtype=np.int64)
        packets.append(
            make_packets(
                src=np.full(p, r, dtype=np.int64),
                payload=r * 1000 + dests.astype(np.float64),
                dest=dests,
            )
        )
    delivered = packet_swap(engine, packets)
    for r in range(p):
        inbox = delivered[r]
        assert inbox.size == p
        senders = np.sort(inbox["src"])
        assert np.array_equal(senders, np.arange(p))
        for pkt in inbox:
            assert pkt["payload"] == pkt["src"] * 1000 + r


def test_empty_buffers_flow_through():
    engine = _engine(GRIDS[4])  # 2x4
    packets = [np.empty(0, dtype=PACKET_DTYPE) for _ in range(8)]
    delivered = packet_swap(engine, packets)
    assert all(d.size == 0 for d in delivered)


def test_uneven_fanout():
    engine = _engine(GRIDS[5])  # 4x2
    p = 8
    packets = [np.empty(0, dtype=PACKET_DTYPE) for _ in range(p)]
    # rank 3 floods rank 6 with 17 packets
    packets[3] = make_packets(
        src=np.arange(17, dtype=np.int64),
        payload=np.arange(17, dtype=np.float64),
        dest=np.full(17, 6, dtype=np.int64),
    )
    delivered = packet_swap(engine, packets)
    assert delivered[6].size == 17
    assert np.array_equal(np.sort(delivered[6]["payload"]), np.arange(17.0))
    for r in range(p):
        if r != 6:
            assert delivered[r].size == 0


def test_out_of_range_dest_rejected():
    engine = _engine(GRIDS[1])  # 2x2
    packets = [np.empty(0, dtype=PACKET_DTYPE) for _ in range(4)]
    packets[0] = make_packets(
        src=np.array([0]), payload=np.array([1.0]), dest=np.array([9])
    )
    with pytest.raises(ValueError):
        packet_swap(engine, packets)


def test_needs_buffer_per_rank():
    engine = _engine(GRIDS[1])
    with pytest.raises(ValueError):
        packet_swap(engine, [np.empty(0, dtype=PACKET_DTYPE)])


def test_custom_dtype_supported():
    """Routing only needs a 'dest' field; extra fields ride along."""
    engine = _engine(GRIDS[1])  # 2x2
    dt = np.dtype([("src", np.int64), ("a", np.int64), ("b", np.int64), ("dest", np.int64)])
    packets = [np.empty(0, dtype=dt) for _ in range(4)]
    pkt = np.empty(1, dtype=dt)
    pkt["src"], pkt["a"], pkt["b"], pkt["dest"] = 0, 42, 43, 3
    packets[0] = pkt
    delivered = packet_swap(engine, packets)
    assert delivered[3].size == 1
    assert delivered[3]["a"][0] == 42
    assert delivered[3]["b"][0] == 43


def test_two_hop_message_accounting():
    engine = _engine(GRIDS[7])  # 4x4
    packets = [np.empty(0, dtype=PACKET_DTYPE) for _ in range(16)]
    packets[0] = make_packets(np.array([0]), np.array([1.0]), np.array([15]))
    packet_swap(engine, packets)
    # one alltoallv per row group + one per column group
    assert engine.counters.by_kind["alltoallv"].calls == 8
