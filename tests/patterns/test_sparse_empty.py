"""Sparse exchanges with all-empty queues (the dtype-loss path).

A group whose members all send zero-length buffers must still produce
structured ``PAIR_DTYPE`` receive buffers — a plain float64
``np.empty(0)`` breaks every ``rbuf["gid"]`` consumer — and the
exchange must leave state untouched while reporting zero updates.
"""

import numpy as np
import pytest

from repro import Engine
from repro.comm import Grid2D
from repro.core.trace import TraceRecorder
from repro.graph import rmat
from repro.patterns.sparse import (
    PAIR_DTYPE,
    propagate_active_pull,
    sparse_pull,
    sparse_push,
)

GRIDS = [
    pytest.param(Grid2D(2, 2), id="square-2x2"),
    pytest.param(Grid2D(R=3, C=2), id="nonsquare-3x2"),
    pytest.param(Grid2D(R=2, C=4), id="nonsquare-2x4"),
]


def _engine(grid: Grid2D) -> Engine:
    return Engine(rmat(7, seed=5), grid=grid)


def _empty_queues(engine: Engine) -> list[np.ndarray]:
    return [np.empty(0, dtype=np.int64) for _ in range(engine.n_ranks)]


class TestAllEmptyQueues:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("exchange", [sparse_push, sparse_pull])
    def test_state_untouched_and_no_updates(self, grid, exchange):
        engine = _engine(grid)
        engine.alloc("x", np.float64, fill=7.0)
        before = [ctx.get("x").copy() for ctx in engine]
        res = exchange(engine, "x", _empty_queues(engine))
        assert res.n_updated == 0
        for ctx, prev in zip(engine, before):
            np.testing.assert_array_equal(ctx.get("x"), prev)
        assert all(q.size == 0 for q in res.active_row)

    @pytest.mark.parametrize("grid", GRIDS)
    def test_propagate_active_pull_all_empty(self, grid):
        engine = _engine(grid)
        active = propagate_active_pull(engine, _empty_queues(engine))
        assert len(active) == engine.n_ranks
        assert all(a.size == 0 for a in active)

    @pytest.mark.parametrize("grid", GRIDS)
    def test_trace_stays_exact_through_empty_exchanges(self, grid):
        """Per-iteration trace bytes/messages sum exactly to the
        CommCounters run totals even when iterations move nothing."""
        engine = _engine(grid)
        engine.reset_timers()
        engine.alloc("x", np.float64, fill=1.0)
        for _ in range(3):
            sparse_push(engine, "x", _empty_queues(engine))
            engine.clocks.mark_iteration()
        rows = TraceRecorder(engine).collect()
        c = engine.counters
        assert sum(r.bytes for r in rows) == c.total_bytes
        assert sum(r.serial_messages for r in rows) == c.total_serial_messages
        assert sum(r.transfers for r in rows) == c.total_transfers


class TestDtypePreservation:
    def test_allgatherv_empty_preserves_structured_dtype(self):
        engine = _engine(Grid2D(2, 2))
        ranks = [0, 1]
        sbufs = [np.empty(0, dtype=PAIR_DTYPE) for _ in ranks]
        rbuf = engine.comm.allgatherv(ranks, sbufs)
        assert rbuf.dtype == PAIR_DTYPE
        assert rbuf["gid"].size == 0  # field access must not raise

    def test_alltoallv_empty_preserves_structured_dtype(self):
        engine = _engine(Grid2D(2, 2))
        k = 2
        sm = [[np.empty(0, dtype=PAIR_DTYPE) for _ in range(k)] for _ in range(k)]
        received = engine.comm.alltoallv([0, 1], sm)
        for rbuf in received:
            assert rbuf.dtype == PAIR_DTYPE
            assert rbuf["gid"].size == 0

    def test_alltoallv_mixed_empty_nonempty(self):
        engine = _engine(Grid2D(2, 2))
        pairs = np.zeros(3, dtype=PAIR_DTYPE)
        sm = [
            [np.empty(0, dtype=PAIR_DTYPE), pairs],
            [np.empty(0, dtype=PAIR_DTYPE), np.empty(0, dtype=PAIR_DTYPE)],
        ]
        received = engine.comm.alltoallv([0, 1], sm)
        assert received[0].dtype == PAIR_DTYPE
        assert received[0].size == 0
        assert received[1].dtype == PAIR_DTYPE
        assert received[1].size == 3
