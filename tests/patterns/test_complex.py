"""2.5D complex-reduction helper tests (paper §3.3.3)."""

import numpy as np
import pytest

from repro.patterns.complex import (
    build_histogram,
    merge_histograms,
    owner_chunks,
    owner_of_vertex,
    select_mode,
)


class TestHistogram:
    def test_counts_pairs(self):
        src = np.array([0, 0, 0, 1, 1])
        lab = np.array([5.0, 5.0, 7.0, 5.0, 5.0])
        h = build_histogram(src, lab)
        as_dict = {(int(t["gid"]), float(t["label"])): int(t["count"]) for t in h}
        assert as_dict == {(0, 5.0): 2, (0, 7.0): 1, (1, 5.0): 2}

    def test_empty(self):
        h = build_histogram(np.empty(0), np.empty(0))
        assert h.size == 0

    def test_merge_sums_counts(self):
        a = build_histogram(np.array([0, 0]), np.array([1.0, 2.0]))
        b = build_histogram(np.array([0, 1]), np.array([1.0, 1.0]))
        merged = merge_histograms(np.concatenate([a, b]))
        as_dict = {
            (int(t["gid"]), float(t["label"])): int(t["count"]) for t in merged
        }
        assert as_dict == {(0, 1.0): 2, (0, 2.0): 1, (1, 1.0): 1}

    def test_merge_empty(self):
        assert merge_histograms(build_histogram(np.empty(0), np.empty(0))).size == 0


class TestModeSelection:
    def test_max_count_wins(self):
        h = build_histogram(
            np.array([0, 0, 0]), np.array([3.0, 3.0, 9.0])
        )
        gids, labels = select_mode(h)
        assert gids.tolist() == [0]
        assert labels.tolist() == [3.0]

    def test_tie_breaks_to_smaller_label(self):
        h = build_histogram(np.array([4, 4]), np.array([9.0, 2.0]))
        gids, labels = select_mode(h)
        assert labels.tolist() == [2.0]

    def test_multiple_vertices(self):
        h = build_histogram(
            np.array([0, 0, 1, 1, 1]), np.array([1.0, 1.0, 8.0, 8.0, 2.0])
        )
        gids, labels = select_mode(h)
        assert dict(zip(gids.tolist(), labels.tolist())) == {0: 1.0, 1: 8.0}

    def test_empty(self):
        gids, labels = select_mode(merge_histograms(build_histogram(np.empty(0), np.empty(0))))
        assert gids.size == 0


class TestOwnership:
    def test_chunks_partition_range(self):
        bounds = owner_chunks(10, 30, 4)
        assert bounds[0] == 10 and bounds[-1] == 30
        assert np.all(np.diff(bounds) >= 0)
        assert bounds.size == 5

    def test_ragged_chunks(self):
        bounds = owner_chunks(0, 10, 3)
        assert np.array_equal(np.diff(bounds), [4, 3, 3])

    def test_owner_lookup(self):
        bounds = owner_chunks(0, 12, 3)  # [0,4,8,12]
        owners = owner_of_vertex(np.array([0, 3, 4, 11]), bounds)
        assert owners.tolist() == [0, 0, 1, 2]

    def test_every_vertex_owned_once(self):
        bounds = owner_chunks(7, 29, 5)
        gids = np.arange(7, 29)
        owners = owner_of_vertex(gids, bounds)
        assert owners.min() >= 0 and owners.max() < 5
        # contiguous non-decreasing ownership
        assert np.all(np.diff(owners) >= 0)
