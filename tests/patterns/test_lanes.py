"""Fused k-lane exchange patterns vs k independent 1-D exchanges.

``sparse_push_lanes`` and ``dense_exchange_lanes`` promise per-lane
bit-identity to their 1-D counterparts: lane ``l`` of the fused
``(N_T, k)`` state must end exactly where a separate 1-D exchange of
that lane's column would leave it, while the fused path issues one
collective per group where k separate exchanges issue k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.patterns import (
    dense_exchange,
    dense_exchange_lanes,
    sparse_push,
    sparse_push_lanes,
)

RANKS = 4


def _setup(graph, k: int, seed: int = 0) -> Engine:
    """Engine with a k-lane state ``x`` and 1-D copies ``y0..y{k-1}``.

    Each rank's local window gets its own reproducible values, so group
    reductions genuinely combine different member contributions.
    """
    engine = Engine(graph, RANKS)

    def fill(ctx):
        rng = np.random.default_rng(1000 * seed + ctx.rank)
        x = ctx.alloc("x", np.float64, width=k)
        x[...] = rng.integers(0, 100, size=x.shape).astype(np.float64)
        for lane in range(k):
            y = ctx.alloc(f"y{lane}", np.float64)
            y[...] = x[:, lane]

    engine.foreach(fill)
    return engine


def _lane_queues(engine: Engine, k: int, seed: int):
    """Per-lane 1-D queues plus their lane-major fused counterpart."""
    rng = np.random.default_rng(seed)
    per_lane = []  # per_lane[lane][rank] -> sorted col LIDs
    for lane in range(k):
        qs = []
        for ctx in engine:
            cs = ctx.col_slice
            m = int(rng.integers(1, max(2, (cs.stop - cs.start) // 4)))
            qs.append(
                np.sort(
                    rng.choice(
                        np.arange(cs.start, cs.stop), m, replace=False
                    )
                )
            )
        per_lane.append(qs)
    fused = []
    for rank in range(engine.grid.n_ranks):
        lids = np.concatenate([per_lane[lane][rank] for lane in range(k)])
        lanes = np.concatenate(
            [
                np.full(per_lane[lane][rank].size, lane, dtype=np.int64)
                for lane in range(k)
            ]
        )
        fused.append((lids, lanes))
    return per_lane, fused


class TestSparsePushLanes:
    @pytest.mark.parametrize("op", ["min", "max", "sum"])
    def test_matches_k_independent_pushes(self, rmat_graph, op):
        k = 3
        engine = _setup(rmat_graph, k, seed=2)
        per_lane, fused = _lane_queues(engine, k, seed=7)

        singles = [
            sparse_push(engine, f"y{lane}", per_lane[lane], op=op)
            for lane in range(k)
        ]
        result = sparse_push_lanes(engine, "x", fused, op=op)

        for ctx in engine:
            x = ctx.get("x")
            for lane in range(k):
                np.testing.assert_array_equal(
                    x[:, lane], ctx.get(f"y{lane}"), strict=True
                )
        for lane in range(k):
            assert result.n_updated[lane] == singles[lane].n_updated
            for rank in range(engine.grid.n_ranks):
                lids, lanes = result.active_row[rank]
                np.testing.assert_array_equal(
                    lids[lanes == lane], singles[lane].active_row[rank]
                )

    def test_active_row_is_lane_major_sorted(self, rmat_graph):
        k = 2
        engine = _setup(rmat_graph, k, seed=3)
        _, fused = _lane_queues(engine, k, seed=11)
        result = sparse_push_lanes(engine, "x", fused, op="min")
        for lids, lanes in result.active_row:
            comp = lanes * engine.partition.n_vertices + lids
            assert np.array_equal(comp, np.sort(comp))

    def test_one_collective_per_group_regardless_of_k(self, rmat_graph):
        """The α amortization itself: the fused exchange's allgatherv
        call count equals a single 1-D exchange's, independent of k."""
        k = 4
        engine = _setup(rmat_graph, k, seed=4)
        per_lane, fused = _lane_queues(engine, k, seed=13)
        sparse_push(engine, "y0", per_lane[0], op="min")
        single_calls = engine.counters.summary()["allgatherv"]["calls"]
        sparse_push_lanes(engine, "x", fused, op="min")
        fused_calls = (
            engine.counters.summary()["allgatherv"]["calls"] - single_calls
        )
        assert fused_calls == single_calls

    def test_overlap_engine_matches_blocking(self, rmat_graph):
        k = 2
        blocking = _setup(rmat_graph, k, seed=5)
        overlapped = Engine(rmat_graph, RANKS, overlap=True)

        def copy_from_blocking(ctx):
            src = blocking.ctx(ctx.rank)
            ctx.alloc("x", np.float64, width=k)[...] = src.get("x")

        overlapped.foreach(copy_from_blocking)
        _, fused = _lane_queues(blocking, k, seed=17)
        rb = sparse_push_lanes(blocking, "x", fused, op="min")
        ro = sparse_push_lanes(overlapped, "x", fused, op="min")
        np.testing.assert_array_equal(rb.n_updated, ro.n_updated)
        for rank in range(RANKS):
            np.testing.assert_array_equal(
                blocking.ctx(rank).get("x"), overlapped.ctx(rank).get("x")
            )


class TestDenseExchangeLanes:
    @pytest.mark.parametrize("direction,op", [("pull", "min"), ("push", "max")])
    def test_full_lane_set_matches_per_lane(self, rmat_graph, direction, op):
        k = 3
        engine = _setup(rmat_graph, k, seed=6)
        dense_exchange_lanes(engine, "x", direction, op, np.arange(k))
        for lane in range(k):
            dense_exchange(engine, f"y{lane}", direction, op)
        for ctx in engine:
            x = ctx.get("x")
            for lane in range(k):
                np.testing.assert_array_equal(
                    x[:, lane], ctx.get(f"y{lane}"), strict=True
                )

    def test_subset_packs_only_live_lanes(self, rmat_graph):
        k = 4
        live = np.array([0, 2, 3])
        engine = _setup(rmat_graph, k, seed=8)
        before = [ctx.get("x")[:, 1].copy() for ctx in engine]
        dense_exchange_lanes(engine, "x", "pull", "min", live)
        for lane in live:
            dense_exchange(engine, f"y{lane}", "pull", "min")
        for i, ctx in enumerate(engine):
            x = ctx.get("x")
            for lane in live:
                np.testing.assert_array_equal(
                    x[:, lane], ctx.get(f"y{lane}"), strict=True
                )
            # the retired lane's column must not move
            np.testing.assert_array_equal(x[:, 1], before[i], strict=True)

    def test_subset_buffer_is_recycled(self, rmat_graph):
        """The packed lane slice comes from (and returns to) the rank's
        scratch pool: a second exchange of the same shape is a pool hit."""
        k = 4
        live = np.array([1, 3])
        engine = _setup(rmat_graph, k, seed=9)
        dense_exchange_lanes(engine, "x", "pull", "sum", live)
        pools = [ctx.scratch_pool(np.float64) for ctx in engine]
        hits = [p.hits for p in pools]
        dense_exchange_lanes(engine, "x", "pull", "sum", live)
        assert all(p.hits > h for p, h in zip(pools, hits))

    def test_tmp_state_is_freed(self, rmat_graph):
        engine = _setup(rmat_graph, 3, seed=10)
        dense_exchange_lanes(engine, "x", "pull", "min", np.array([0, 2]))
        for ctx in engine:
            with pytest.raises(KeyError):
                ctx.get("x#lanes")
