"""GPU hash-table emulation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.complex import build_histogram
from repro.queueing.hashtable import HashTable, histogram_via_hash_table


class TestHashTable:
    def test_insert_and_accumulate(self):
        t = HashTable(16)
        t.insert(np.array([1, 1, 2]), np.array([5, 5, 5]))
        k1, k2, c = t.items()
        entries = {(a, b): n for a, b, n in zip(k1, k2, c)}
        assert entries == {(1, 5): 2, (2, 5): 1}

    def test_counts_parameter(self):
        t = HashTable(16)
        t.insert(np.array([3]), np.array([4]), counts=np.array([7]))
        t.insert(np.array([3]), np.array([4]), counts=np.array([2]))
        _, _, c = t.items()
        assert c.tolist() == [9]

    def test_collisions_resolved(self):
        # force heavy collisions with a tiny table
        t = HashTable(64)
        keys = np.arange(30)
        t.insert(keys, np.zeros(30, dtype=np.int64))
        assert t.n_entries == 30
        assert t.probe_rounds >= 1

    def test_duplicate_claims_within_batch(self):
        # many copies of the same new key in one batch: one claim,
        # everyone accumulates
        t = HashTable(8)
        t.insert(np.full(5, 9), np.full(5, 9))
        k1, _, c = t.items()
        assert k1.tolist() == [9]
        assert c.tolist() == [5]

    def test_overflow_raises(self):
        t = HashTable(2)  # rounds to capacity 2
        with pytest.raises(RuntimeError, match="overflow"):
            t.insert(np.arange(10), np.arange(10))

    def test_load_factor(self):
        t = HashTable(16)
        t.insert(np.arange(4), np.arange(4))
        assert t.load_factor == pytest.approx(4 / 16)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            HashTable(0)

    def test_empty_insert(self):
        t = HashTable(8)
        t.insert(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert t.n_entries == 0


class TestHistogramEquivalence:
    def test_matches_sorted_formulation(self):
        src = np.array([0, 0, 1, 1, 1, 2])
        lab = np.array([3.0, 3.0, 5.0, 5.0, 2.0, 3.0])
        a = build_histogram(src, lab)
        b = histogram_via_hash_table(src, lab)
        assert np.array_equal(a["gid"], b["gid"])
        assert np.array_equal(a["label"], b["label"])
        assert np.array_equal(a["count"], b["count"])

    def test_empty(self):
        assert histogram_via_hash_table(np.empty(0), np.empty(0)).size == 0

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 200),
        seed=st.integers(0, 10_000),
    )
    def test_property_equivalence(self, n, seed):
        """The hash-table path and the sorted run-length path produce
        identical histograms for any input."""
        rng = np.random.default_rng(seed)
        src = rng.integers(0, 20, size=n)
        lab = rng.integers(0, 10, size=n).astype(float)
        a = build_histogram(src, lab)
        b = histogram_via_hash_table(src, lab)
        assert np.array_equal(a, b)
