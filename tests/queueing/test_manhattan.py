"""Load-balance schedule model tests (paper Alg. 6)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    manhattan_schedule,
    vertex_per_thread_balance,
)


class TestManhattanSchedule:
    def test_uniform_degrees_perfectly_balanced(self):
        degs = np.full(256, 8, dtype=np.int64)
        stats = manhattan_schedule(degs, block_size=256)
        assert stats.balance == 1.0
        assert stats.total_edges == 256 * 8

    def test_skew_within_block_still_balanced(self):
        # One hub among 255 leaves: the collapse spreads the hub's
        # edges over the whole block.
        degs = np.array([10_000] + [1] * 255, dtype=np.int64)
        stats = manhattan_schedule(degs, block_size=256)
        assert stats.balance > 0.95

    def test_empty_queue(self):
        stats = manhattan_schedule(np.empty(0, dtype=np.int64))
        assert stats.balance == 1.0
        assert stats.total_edges == 0

    def test_block_count(self):
        stats = manhattan_schedule(np.ones(1000, dtype=np.int64), block_size=256)
        assert stats.n_blocks == 4

    def test_negative_degree_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            manhattan_schedule(np.array([-1]))


class TestVertexPerThread:
    def test_uniform_degrees_balanced(self):
        stats = vertex_per_thread_balance(np.full(64, 5, dtype=np.int64))
        assert stats.balance == 1.0

    def test_hub_collapses_warp(self):
        # One hub in a warp of degree-1 vertices: warp runs at hub speed.
        degs = np.array([1000] + [1] * 31, dtype=np.int64)
        stats = vertex_per_thread_balance(degs)
        assert stats.balance < 0.05
        assert stats.max_thread_edges == 1000

    def test_manhattan_beats_naive_on_powerlaw(self):
        rng = np.random.default_rng(0)
        degs = (1.0 / rng.random(4096) ** 0.7).astype(np.int64) + 1
        m = manhattan_schedule(degs)
        v = vertex_per_thread_balance(degs)
        assert m.balance > v.balance

    def test_empty(self):
        stats = vertex_per_thread_balance(np.empty(0, dtype=np.int64))
        assert stats.balance == 1.0


@settings(max_examples=50, deadline=None)
@given(
    degs=st.lists(st.integers(0, 500), min_size=1, max_size=600),
    block=st.sampled_from([32, 128, 256]),
)
def test_property_balance_bounds(degs, block):
    """Balance is always in (0, 1] and work totals are preserved."""
    degs = np.array(degs, dtype=np.int64)
    for stats in (
        manhattan_schedule(degs, block_size=block),
        vertex_per_thread_balance(degs),
    ):
        assert 0 < stats.balance <= 1.0
        assert stats.total_edges == int(degs.sum())
