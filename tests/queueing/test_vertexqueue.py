"""Active-vertex queue tests (q_in dedup semantics)."""

import numpy as np

from repro.queueing import VertexQueue, unique_new


class TestUniqueNew:
    def test_dedups_and_flags(self):
        q_in = np.zeros(10, dtype=bool)
        fresh = unique_new(np.array([3, 3, 5]), q_in)
        assert fresh.tolist() == [3, 5]
        assert q_in[3] and q_in[5]

    def test_flagged_entries_skipped(self):
        q_in = np.zeros(10, dtype=bool)
        q_in[3] = True
        fresh = unique_new(np.array([3, 4]), q_in)
        assert fresh.tolist() == [4]

    def test_empty_input(self):
        q_in = np.zeros(4, dtype=bool)
        assert unique_new(np.empty(0, dtype=np.int64), q_in).size == 0


class TestVertexQueue:
    def test_push_drain_cycle(self):
        q = VertexQueue(8)
        q.push(np.array([1, 2]))
        q.push(np.array([2, 5]))  # 2 deduplicated
        assert len(q) == 3
        drained = q.drain()
        assert drained.tolist() == [1, 2, 5]
        assert q.empty
        # flags lowered: re-insertion allowed next iteration
        assert q.push(np.array([2])).size == 1

    def test_peek_keeps_contents(self):
        q = VertexQueue(8)
        q.push(np.array([4, 1]))
        assert q.peek().tolist() == [1, 4]
        assert len(q) == 2

    def test_drain_empty(self):
        q = VertexQueue(4)
        assert q.drain().size == 0

    def test_push_returns_only_fresh(self):
        q = VertexQueue(10)
        assert q.push(np.array([7])).tolist() == [7]
        assert q.push(np.array([7])).size == 0


class TestLaneVertexQueue:
    def test_lane_major_drain_order(self):
        from repro.queueing import LaneVertexQueue

        q = LaneVertexQueue(8, 3)
        q.push(np.array([5, 1]), np.array([1, 0]))
        q.push(np.array([2]), np.array([1]))
        lids, lanes = q.drain()
        assert lids.tolist() == [1, 2, 5]
        assert lanes.tolist() == [0, 1, 1]

    def test_same_vertex_distinct_lanes_kept(self):
        from repro.queueing import LaneVertexQueue

        q = LaneVertexQueue(4, 2)
        q.push(np.array([3, 3]), np.array([0, 1]))
        lids, lanes = q.drain()
        assert lids.tolist() == [3, 3]
        assert lanes.tolist() == [0, 1]

    def test_same_cell_deduplicated(self):
        from repro.queueing import LaneVertexQueue

        q = LaneVertexQueue(4, 2)
        q.push(np.array([3]), np.array([1]))
        fresh_lids, fresh_lanes = q.push(np.array([3]), np.array([1]))
        assert fresh_lids.size == 0 and fresh_lanes.size == 0
        assert len(q) == 1

    def test_drain_resets_flags(self):
        from repro.queueing import LaneVertexQueue

        q = LaneVertexQueue(4, 2)
        q.push(np.array([2]), np.array([0]))
        q.drain()
        assert q.empty
        fresh, _ = q.push(np.array([2]), np.array([0]))
        assert fresh.size == 1

    def test_k1_matches_vertexqueue(self):
        from repro.queueing import LaneVertexQueue

        q1 = VertexQueue(10)
        qk = LaneVertexQueue(10, 1)
        q1.push(np.array([4, 2, 4]))
        qk.push(np.array([4, 2, 4]), np.zeros(3, dtype=np.int64))
        lids, lanes = qk.drain()
        assert lids.tolist() == q1.drain().tolist()
        assert lanes.tolist() == [0, 0]
