"""CSR frontier expansion tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.grid import Grid2D
from repro.graph import partition_2d, path_graph, rmat
from repro.queueing import expand_block, expand_csr

from ..conftest import random_graph


class TestExpandCSR:
    def test_matches_manual_expansion(self):
        g = rmat(6, seed=3)
        rows = np.array([0, 5, 17], dtype=np.int64)
        src, dst, eidx = expand_csr(g.indptr, g.indices, rows)
        manual_src, manual_dst = [], []
        for r in rows:
            for u in g.neighbors(r):
                manual_src.append(r)
                manual_dst.append(u)
        assert np.array_equal(src, manual_src)
        assert np.array_equal(dst, manual_dst)
        assert np.array_equal(g.indices[eidx], dst)

    def test_empty_queue(self):
        g = path_graph(5)
        src, dst, eidx = expand_csr(g.indptr, g.indices, np.empty(0, dtype=np.int64))
        assert src.size == dst.size == eidx.size == 0

    def test_isolated_vertices(self):
        from repro.graph import Graph

        g = Graph.from_edges([0], [1], 4)  # vertices 2, 3 isolated
        src, dst, _ = expand_csr(g.indptr, g.indices, np.array([2, 3]))
        assert src.size == 0

    def test_duplicate_queue_entries_expand_twice(self):
        g = path_graph(3)
        src, dst, _ = expand_csr(g.indptr, g.indices, np.array([1, 1]))
        assert src.size == 4  # degree-2 vertex expanded twice


class TestExpandBlock:
    def test_lid_space_and_weights(self):
        g = rmat(6, seed=1).with_random_weights(seed=2)
        part = partition_2d(g, Grid2D(R=2, C=2))
        blk = part.blocks[1]
        lids = blk.row_lids()[:5]
        src, dst, w = expand_block(blk, lids)
        lm = blk.localmap
        assert np.all((src >= lm.row_offset) & (src < lm.row_offset + lm.n_row))
        if dst.size:
            assert np.all((dst >= lm.col_offset) & (dst < lm.col_offset + lm.n_col))
            assert w.shape == dst.shape

    def test_unweighted_block(self):
        g = rmat(5, seed=1)
        part = partition_2d(g, Grid2D(R=2, C=1))
        blk = part.blocks[0]
        _, _, w = expand_block(blk, blk.row_lids())
        assert w is None


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_expansion_counts(seed):
    """Expanded edge count equals the summed degrees of the queue."""
    g = random_graph(seed, n_max=60)
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, g.n_vertices))
    rows = rng.choice(g.n_vertices, size=k, replace=False).astype(np.int64)
    src, dst, _ = expand_csr(g.indptr, g.indices, rows)
    assert src.size == int(g.degrees()[rows].sum())
    # every (src, dst) pair is a real edge
    for s, d in zip(src[:50], dst[:50]):
        assert d in g.neighbors(s)
