"""1.5D hybrid-distribution baseline tests."""

import numpy as np
import pytest

from repro.baselines.onefive import OneFiveDEngine, cc_15d, default_hub_threshold
from repro.graph import chung_lu_powerlaw, path_graph, rmat, star_graph
from repro.reference import serial

from ..conftest import random_graph


class TestLayout:
    def test_hubs_selected_by_degree(self, rmat_graph):
        eng = OneFiveDEngine(rmat_graph, 4, hub_threshold=50)
        rel = rmat_graph.permute(eng.perm)
        assert np.array_equal(
            eng.hub_gids, np.flatnonzero(rel.degrees() > 50)
        )

    def test_no_hub_in_ghost_directories(self, rmat_graph):
        eng = OneFiveDEngine(rmat_graph, 4)
        for share in eng.shares:
            assert not eng.is_hub[share.ghost_gids].any()

    def test_default_threshold_scales_with_density(self):
        sparse = path_graph(1000)
        dense = chung_lu_powerlaw(1000, 20_000, seed=1)
        assert default_hub_threshold(dense, 4) > default_hub_threshold(sparse, 4)

    def test_hub_ghosts_removed_vs_1d(self):
        """The point of 1.5D: hub sharing shrinks the ghost directory."""
        from repro.baselines import OneDEngine

        g = chung_lu_powerlaw(2000, 30_000, gamma=1.9, seed=2)
        oned = OneDEngine(g, 8)
        onefive = OneFiveDEngine(g, 8)
        assert onefive.n_hubs > 0
        ghosts_1d = sum(p.ghost_gids.size for p in oned.parts)
        ghosts_15d = sum(s.ghost_gids.size for s in onefive.shares)
        assert ghosts_15d < ghosts_1d

    def test_lid_space_partition(self, rmat_graph):
        eng = OneFiveDEngine(rmat_graph, 4)
        share = eng.shares[1]
        lids = eng._lid(share, share.own_gids)
        assert np.array_equal(lids, np.arange(share.own_gids.size))
        hub_lids = eng._lid(share, eng.hub_gids)
        base = share.own_gids.size + share.ghost_gids.size
        assert np.array_equal(hub_lids, base + np.arange(eng.n_hubs))


class TestCC:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_serial(self, rmat_graph, p):
        res = cc_15d(OneFiveDEngine(rmat_graph, p))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(rmat_graph)),
        )

    def test_star_single_hub(self):
        g = star_graph(200)
        eng = OneFiveDEngine(g, 4)
        res = cc_15d(eng)
        assert res.extra["n_hubs"] == 1
        assert np.unique(res.values).size == 1

    def test_no_hubs_degrades_to_1d(self):
        g = path_graph(40)
        eng = OneFiveDEngine(g, 4)
        assert eng.n_hubs == 0
        res = cc_15d(eng)
        assert np.unique(res.values).size == 1

    def test_threshold_zero_shares_everything(self, rmat_graph):
        eng = OneFiveDEngine(rmat_graph, 2, hub_threshold=0)
        res = cc_15d(eng)
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(rmat_graph)),
        )

    def test_random_sweep(self):
        for seed in range(4):
            g = random_graph(seed + 91, n_max=100)
            res = cc_15d(OneFiveDEngine(g, 4))
            assert np.array_equal(
                serial.canonical_labels(res.values),
                serial.canonical_labels(serial.connected_components(g)),
            )

    def test_max_iterations(self):
        g = path_graph(60)
        res = cc_15d(OneFiveDEngine(g, 4), max_iterations=2)
        assert res.iterations == 2
