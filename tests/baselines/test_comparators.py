"""Gluon-like and SpMV (CuGraph-like) comparator tests."""

import numpy as np
import pytest

from repro.algorithms import bfs, connected_components, pagerank
from repro.baselines import (
    gluon_engine,
    spmv_bfs,
    spmv_cc,
    spmv_engine,
    spmv_pagerank,
)
from repro.cluster import ZEPY
from repro.core.engine import Engine
from repro.graph import rmat
from repro.reference import serial


class TestGluonBaseline:
    def test_same_results_as_ours(self, rmat_graph):
        ours = connected_components(Engine(rmat_graph, 4))
        theirs = connected_components(gluon_engine(rmat_graph, 4))
        assert np.array_equal(
            serial.canonical_labels(ours.values),
            serial.canonical_labels(theirs.values),
        )

    def test_single_rank_parity(self, rmat_graph):
        """Paper Fig. 9: identical compute => parity at one rank."""
        ours = connected_components(Engine(rmat_graph, 1))
        theirs = connected_components(gluon_engine(rmat_graph, 1))
        assert theirs.timings.compute == pytest.approx(ours.timings.compute)

    def test_substrate_overhead_grows_with_scale(self, rmat_graph):
        """Paper Fig. 9: overhead multiplies once the network appears."""
        ratios = {}
        for p in (4, 16):
            ours = connected_components(Engine(rmat_graph, p)).timings.total
            theirs = connected_components(gluon_engine(rmat_graph, p)).timings.total
            ratios[p] = theirs / ours
        assert ratios[16] > ratios[4] > 1.0


class TestSpmvBaseline:
    def test_pagerank_exact(self, rmat_graph):
        res = spmv_pagerank(spmv_engine(rmat_graph, 4), iterations=15)
        assert np.allclose(
            res.values, serial.pagerank(rmat_graph, iterations=15), atol=1e-12
        )

    def test_cc_exact(self, rmat_graph):
        res = spmv_cc(spmv_engine(rmat_graph, 4))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(rmat_graph)),
        )

    def test_bfs_levels_exact(self, rmat_graph):
        res = spmv_bfs(spmv_engine(rmat_graph, 4), root=0)
        assert np.array_equal(res.values, serial.bfs_levels(rmat_graph, 0))

    def test_fig10_relation_on_zepy(self):
        """Paper Fig. 10 directions: the LA backend wins PageRank; the
        general model wins CC and BFS."""
        g = rmat(11, seed=6)  # large enough for compute to dominate
        root = int(np.argmax(g.degrees()))
        ours_pr = pagerank(Engine(g, 4, cluster=ZEPY), iterations=20)
        la_pr = spmv_pagerank(spmv_engine(g, 4), iterations=20)
        assert la_pr.timings.total < ours_pr.timings.total

        ours_cc = connected_components(Engine(g, 4, cluster=ZEPY))
        la_cc = spmv_cc(spmv_engine(g, 4))
        assert ours_cc.timings.total < la_cc.timings.total

        ours_bfs = bfs(Engine(g, 4, cluster=ZEPY), root=root)
        la_bfs = spmv_bfs(spmv_engine(g, 4), root=root)
        assert ours_bfs.timings.total < la_bfs.timings.total
