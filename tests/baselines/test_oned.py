"""1D baseline engine tests."""

import numpy as np
import pytest

from repro.baselines import OneDEngine, bfs_1d, cc_1d, pagerank_1d
from repro.reference import serial

from ..conftest import random_graph


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_cc_matches_serial(self, rmat_graph, p):
        res = cc_1d(OneDEngine(rmat_graph, p))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(rmat_graph)),
        )

    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_pagerank_matches_serial(self, rmat_graph, p):
        res = pagerank_1d(OneDEngine(rmat_graph, p), iterations=12)
        ref = serial.pagerank(rmat_graph, iterations=12)
        assert np.allclose(res.values, ref, atol=1e-12)

    @pytest.mark.parametrize("p", [1, 4, 5])
    def test_bfs_valid(self, rmat_graph, p):
        res = bfs_1d(OneDEngine(rmat_graph, p), root=0)
        assert serial.bfs_parents_valid(rmat_graph, 0, res.values)

    def test_random_sweep(self):
        for seed in range(4):
            g = random_graph(seed + 77, n_max=80)
            res = cc_1d(OneDEngine(g, 3))
            assert np.array_equal(
                serial.canonical_labels(res.values),
                serial.canonical_labels(serial.connected_components(g)),
            )


class TestScalingBehaviour:
    def test_quadratic_message_growth(self, rmat_graph):
        """The 1D all-to-all issues O(p^2) messages (paper §2.1) — the
        quantity the 2D layout reduces to O(p)."""
        for p in (2, 4, 8):
            eng = OneDEngine(rmat_graph, p)
            cc_1d(eng)
            per_call = (
                eng.counters.by_kind["alltoallv"].serial_messages
                / eng.counters.by_kind["alltoallv"].calls
            )
            assert per_call == p * (p - 1)

    def test_ghost_directory_consistency(self, rmat_graph):
        eng = OneDEngine(rmat_graph, 4)
        for part in eng.parts:
            gids = part.ghost_gids
            assert np.all((gids < part.start) | (gids >= part.stop))
            # lid/gid round trip
            assert np.array_equal(part.gid(part.lid(gids)), gids)

    def test_subscriptions_cover_ghosts(self, rmat_graph):
        eng = OneDEngine(rmat_graph, 4)
        for r, part in enumerate(eng.parts):
            subscribed = np.concatenate(
                [eng.subscriptions[o][r] for o in range(eng.n_ranks)]
            )
            assert np.array_equal(np.sort(subscribed), part.ghost_gids)
