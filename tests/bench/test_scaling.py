"""Memory estimator / projection tests."""

import pytest

from repro.bench import (
    estimate_1d_memory,
    estimate_2d_memory,
    estimate_generic_substrate_memory,
    estimate_la_backend_memory,
    fits,
)
from repro.cluster import AIMOS, ZEPY
from repro.graph.datasets import REGISTRY, DatasetMeta


class TestTwoDEstimate:
    def test_wdc_fits_paper_configuration(self):
        est = estimate_2d_memory(REGISTRY["WDC"], 400, AIMOS)
        assert est.fits
        assert 0.2 < est.utilization < 0.9

    def test_small_graphs_fit_one_device(self):
        # paper §5.1: "TW and FR both fully fit within the memory of a
        # single V100 GPU"
        assert estimate_2d_memory(REGISTRY["TW"], 1, AIMOS).fits
        assert estimate_2d_memory(REGISTRY["FR"], 1, AIMOS).fits

    def test_wdc_does_not_fit_one_device(self):
        assert not estimate_2d_memory(REGISTRY["WDC"], 1, AIMOS).fits

    def test_more_ranks_less_per_rank(self):
        small = estimate_2d_memory(REGISTRY["GSH"], 400, AIMOS)
        big = estimate_2d_memory(REGISTRY["GSH"], 16, AIMOS)
        assert small.bytes_per_rank < big.bytes_per_rank

    def test_overhead_factor(self):
        base = estimate_2d_memory(REGISTRY["TW"], 16, AIMOS)
        heavy = estimate_2d_memory(REGISTRY["TW"], 16, AIMOS, overhead_factor=3.0)
        assert heavy.bytes_per_rank == pytest.approx(3 * base.bytes_per_rank, rel=0.01)


class TestOneDEstimate:
    def test_ghost_term_dominates_at_scale(self):
        """The O(N) ghost directory makes wide 1D layouts blow up —
        the paper's motivation for 2D."""
        oned = estimate_1d_memory(REGISTRY["WDC"], 400, AIMOS)
        twod = estimate_2d_memory(REGISTRY["WDC"], 400, AIMOS)
        assert oned.bytes_per_rank > 3 * twod.bytes_per_rank
        assert not oned.fits


class TestComparatorEstimates:
    def test_paper_gluon_pattern(self):
        ok = {"TW": True, "FR": True, "CW": False, "GSH": False}
        for abbr, want in ok.items():
            est = estimate_generic_substrate_memory(REGISTRY[abbr], 256, AIMOS)
            assert est.fits == want, abbr

    def test_paper_cugraph_pattern(self):
        def meta(scale):
            return DatasetMeta(
                f"rmat{scale}", f"RMAT{scale}", 1 << scale, 16 << scale, "rmat"
            )

        assert estimate_la_backend_memory(meta(26), 4, ZEPY).fits
        assert not estimate_la_backend_memory(meta(28), 4, ZEPY).fits

    def test_fits_helper(self):
        est = estimate_2d_memory(REGISTRY["TW"], 16, AIMOS)
        assert fits(est) == est.fits
