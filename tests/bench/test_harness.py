"""Experiment harness tests."""

import numpy as np
import pytest

from repro.bench import (
    ALGORITHMS,
    ExperimentRow,
    format_rows,
    grid_for,
    make_engine,
    run_algorithm,
    strong_scaling,
    weak_scaling,
)
from repro.cluster import ZEPY
from repro.core.engine import Engine
from repro.graph import load, rmat


class TestGridFor:
    def test_paper_rank_counts(self):
        assert (grid_for(256).R, grid_for(256).C) == (16, 16)
        assert (grid_for(200).R, grid_for(200).C) == (20, 10)
        assert (grid_for(400).R, grid_for(400).C) == (20, 20)

    def test_falls_back_to_square(self):
        g = grid_for(36)
        assert g.R == g.C == 6

    def test_non_square_counts_use_squarest_factor_pair(self):
        g = grid_for(12)
        assert (g.R, g.C) == (3, 4)
        assert grid_for(7).n_ranks == 7


class TestMakeEngine:
    def test_scales_cluster_by_dataset_factor(self):
        ds = load("TW", target_edges=1 << 13)
        engine = make_engine(ds, 4)
        assert "scaled" in engine.cluster.name
        # rates reduced by the scale factor
        from repro.cluster import AIMOS

        assert engine.cluster.gpu.edge_rate == pytest.approx(
            AIMOS.gpu.edge_rate / ds.scale_factor
        )

    def test_custom_cluster_and_grid(self):
        from repro.comm.grid import Grid2D

        ds = load("FR", target_edges=1 << 12)
        engine = make_engine(ds, 8, cluster=ZEPY, grid=Grid2D(R=4, C=2))
        assert engine.grid.R == 4


class TestRunAlgorithm:
    def test_all_table3_algorithms_registered(self):
        assert set(ALGORITHMS) == {"PR", "CC", "BFS", "LP", "MWM", "PJ"}

    def test_row_fields(self):
        engine = Engine(rmat(7, seed=1), 4)
        row = run_algorithm("CC", engine, experiment="x", dataset="d")
        assert row.algorithm == "CC"
        assert row.n_ranks == 4
        assert row.grid == "2x2"
        assert row.time_total > 0
        assert row.teps > 0

    def test_full_scale_edges_drive_teps(self):
        engine = Engine(rmat(7, seed=1), 4)
        row = run_algorithm("CC", engine, full_scale_edges=10**12)
        assert row.teps == pytest.approx(10**12 / row.time_total)

    def test_unknown_algorithm(self):
        engine = Engine(rmat(6, seed=1), 1)
        with pytest.raises(ValueError):
            run_algorithm("FLOYD", engine)


class TestSweeps:
    def test_strong_scaling_row_shape(self):
        rows = strong_scaling("TW", ["CC"], [1, 4], target_edges=1 << 12)
        assert len(rows) == 2
        assert {r.n_ranks for r in rows} == {1, 4}
        assert all(r.dataset == "TW" for r in rows)

    def test_strong_scaling_weighted_for_mwm(self):
        rows = strong_scaling("TW", ["MWM"], [1], target_edges=1 << 11)
        assert rows[0].iterations >= 1

    def test_weak_scaling_grows_problem(self):
        rows = weak_scaling("RMAT", ["CC"], [1, 4], vertices_per_rank=1 << 8)
        assert rows[0].dataset == "RMAT8"
        assert rows[1].dataset == "RMAT10"

    def test_weak_scaling_unknown_family(self):
        with pytest.raises(ValueError):
            weak_scaling("KRONECKER", ["CC"], [1])


class TestFormatting:
    def test_format_rows_layout(self):
        row = ExperimentRow(
            experiment="e",
            dataset="TW",
            algorithm="CC",
            n_ranks=4,
            grid="2x2",
            time_total=1.0,
            time_compute=0.6,
            time_comm=0.4,
            iterations=3,
            teps=2e9,
        )
        text = format_rows([row], title="T")
        assert "T" in text.splitlines()[0]
        assert "TW" in text
        assert "2.00" in text  # GTEPS column


class TestBfsBatch:
    def test_roots_sampled_from_giant_component(self):
        from repro.bench import sample_bfs_roots
        from repro.graph import Graph
        from repro.reference import serial

        # two triangles + isolated vertices; giant is ambiguous in
        # size, so just assert membership in one component and deg > 0
        g = Graph.from_edges([0, 1, 2, 4, 5, 6], [1, 2, 0, 5, 6, 4], 9)
        roots = sample_bfs_roots(g, k=3, seed=1)
        labels = serial.connected_components(g)
        assert np.unique(labels[roots]).size == 1
        assert np.all(g.degrees()[roots] > 0)

    def test_batch_rows_and_harmonic_mean(self):
        from repro.bench import harmonic_mean_teps, run_bfs_batch, sample_bfs_roots
        from repro.core.engine import Engine

        g = rmat(8, seed=2)
        engine = Engine(g, 4)
        roots = sample_bfs_roots(g, k=4, seed=0)
        rows = run_bfs_batch(engine, roots)
        assert len(rows) == 4
        hm = harmonic_mean_teps(rows)
        assert min(r.teps for r in rows) <= hm <= max(r.teps for r in rows)

    def test_empty_batch_rejected(self):
        from repro.bench import harmonic_mean_teps

        with pytest.raises(ValueError):
            harmonic_mean_teps([])

    def test_no_traversable_component(self):
        from repro.bench import sample_bfs_roots
        from repro.graph import Graph

        g = Graph.from_edges([], [], 5)
        with pytest.raises(ValueError):
            sample_bfs_roots(g, k=2)
