"""Result export tests."""

import json

import pytest

from repro.bench import (
    ExperimentRow,
    comm_split,
    speedup_table,
    to_csv,
    to_json,
    to_markdown,
)
from repro.core.trace import IterationTrace


def _row(ranks, total, dataset="TW", algo="CC", extra=None):
    return ExperimentRow(
        experiment="e",
        dataset=dataset,
        algorithm=algo,
        n_ranks=ranks,
        grid="2x2",
        time_total=total,
        time_compute=total * 0.6,
        time_comm=total * 0.4,
        iterations=5,
        teps=1e9 / total,
        extra=extra or {},
    )


def _trace_rows():
    return [
        IterationTrace(
            iteration=i + 1, total_s=1.0, compute_s=0.6, comm_s=0.4,
            bytes=100 * (i + 1), serial_messages=4, transfers=8,
            calls_by_kind={"allreduce": 2},
            by_kind={"allreduce": {
                "calls": 2, "serial_messages": 4, "transfers": 8,
                "bytes": 100 * (i + 1),
            }},
        )
        for i in range(3)
    ]


class TestMarkdown:
    def test_table_structure(self):
        md = to_markdown([_row(4, 1.0)], title="T")
        lines = md.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| dataset |")
        assert lines[3].startswith("|---")
        assert "| TW | CC | 4 |" in lines[4]

    def test_no_title(self):
        md = to_markdown([_row(4, 1.0)])
        assert md.splitlines()[0].startswith("| dataset")


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv([_row(4, 2.0), _row(16, 1.0)])
        lines = text.strip().splitlines()
        assert lines[0].startswith("dataset,algo,ranks")
        assert len(lines) == 3
        assert lines[1].split(",")[2] == "4"

    def test_experiment_column(self):
        text = to_csv([_row(4, 2.0)])
        assert text.strip().splitlines()[1].endswith("e")


class TestJson:
    def test_rows_with_traces(self):
        row = _row(4, 3.0, extra={"trace": _trace_rows(), "counters": {"allreduce": {"calls": 6, "serial_messages": 12, "transfers": 24, "bytes": 600}}})
        doc = json.loads(to_json([row], title="t"))
        assert doc["title"] == "t"
        entry = doc["rows"][0]
        assert entry["algo"] == "CC"
        assert len(entry["per_iteration"]) == 3
        assert entry["per_iteration"][2]["bytes"] == 300
        assert entry["counters"]["allreduce"]["bytes"] == 600

    def test_rows_without_traces_still_export(self):
        doc = json.loads(to_json([_row(4, 3.0)]))
        assert "per_iteration" not in doc["rows"][0]
        assert doc["rows"][0]["ranks"] == 4


class TestCommSplit:
    def test_sums_trace_columns(self):
        row = _row(4, 3.0, extra={"trace": _trace_rows()})
        split = comm_split(row)
        assert split["compute_s"] == pytest.approx(1.8)
        assert split["comm_s"] == pytest.approx(1.2)
        assert split["bytes"] == 600
        assert split["serial_messages"] == 12
        assert split["transfers"] == 24
        assert split["iterations"] == 3

    def test_missing_trace_rejected(self):
        with pytest.raises(ValueError, match="no trace"):
            comm_split(_row(4, 3.0))

    def test_harness_rows_carry_exact_traces(self):
        """End to end: run_algorithm's attached trace sums to the
        engine counters and the clock split."""
        from repro.bench import make_engine, run_algorithm
        from repro.graph import load

        ds = load("TW", target_edges=1 << 12, seed=0)
        engine = make_engine(ds, 4)
        row = run_algorithm("CC", engine, experiment="t", dataset="TW")
        split = comm_split(row)
        assert split["comm_s"] == pytest.approx(row.time_comm, rel=1e-12)
        assert split["compute_s"] == pytest.approx(row.time_compute, rel=1e-12)
        assert split["bytes"] == engine.counters.total_bytes
        assert split["serial_messages"] == engine.counters.total_serial_messages


class TestSpeedups:
    def test_relative_to_baseline(self):
        rows = [_row(1, 8.0), _row(4, 4.0), _row(16, 2.0)]
        table = speedup_table(rows, baseline_ranks=1)
        s = table[("TW", "CC")]
        assert s[1] == pytest.approx(1.0)
        assert s[4] == pytest.approx(2.0)
        assert s[16] == pytest.approx(4.0)

    def test_multiple_series(self):
        rows = [
            _row(1, 8.0),
            _row(4, 4.0),
            _row(1, 6.0, algo="PR"),
            _row(4, 2.0, algo="PR"),
        ]
        table = speedup_table(rows, baseline_ranks=1)
        assert table[("TW", "PR")][4] == pytest.approx(3.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup_table([_row(4, 1.0)], baseline_ranks=1)
