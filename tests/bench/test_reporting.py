"""Result export tests."""

import pytest

from repro.bench import ExperimentRow, speedup_table, to_csv, to_markdown


def _row(ranks, total, dataset="TW", algo="CC"):
    return ExperimentRow(
        experiment="e",
        dataset=dataset,
        algorithm=algo,
        n_ranks=ranks,
        grid="2x2",
        time_total=total,
        time_compute=total * 0.6,
        time_comm=total * 0.4,
        iterations=5,
        teps=1e9 / total,
    )


class TestMarkdown:
    def test_table_structure(self):
        md = to_markdown([_row(4, 1.0)], title="T")
        lines = md.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| dataset |")
        assert lines[3].startswith("|---")
        assert "| TW | CC | 4 |" in lines[4]

    def test_no_title(self):
        md = to_markdown([_row(4, 1.0)])
        assert md.splitlines()[0].startswith("| dataset")


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv([_row(4, 2.0), _row(16, 1.0)])
        lines = text.strip().splitlines()
        assert lines[0].startswith("dataset,algo,ranks")
        assert len(lines) == 3
        assert lines[1].split(",")[2] == "4"

    def test_experiment_column(self):
        text = to_csv([_row(4, 2.0)])
        assert text.strip().splitlines()[1].endswith("e")


class TestSpeedups:
    def test_relative_to_baseline(self):
        rows = [_row(1, 8.0), _row(4, 4.0), _row(16, 2.0)]
        table = speedup_table(rows, baseline_ranks=1)
        s = table[("TW", "CC")]
        assert s[1] == pytest.approx(1.0)
        assert s[4] == pytest.approx(2.0)
        assert s[16] == pytest.approx(4.0)

    def test_multiple_series(self):
        rows = [
            _row(1, 8.0),
            _row(4, 4.0),
            _row(1, 6.0, algo="PR"),
            _row(4, 2.0, algo="PR"),
        ]
        table = speedup_table(rows, baseline_ranks=1)
        assert table[("TW", "PR")][4] == pytest.approx(3.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup_table([_row(4, 1.0)], baseline_ranks=1)
