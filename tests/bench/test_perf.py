"""Wall-clock perf harness and trajectory-file tests (tiny protocol)."""

import json

import pytest

from repro.bench.perf import SCHEMA, append_entry, load_trajectory, run_perf


@pytest.fixture(scope="module")
def entry():
    return run_perf(scale=6, ranks=4, repeats=1, label="test")


class TestRunPerf:
    def test_entry_shape(self, entry):
        assert entry["label"] == "test"
        assert entry["protocol"]["graph"] == "rmat(6, seed=1)"
        assert entry["protocol"]["ranks"] == 4
        assert set(entry["algorithms"]) == {"BFS", "PR", "CC"}
        for t in entry["algorithms"].values():
            assert 0 < t["best_s"] <= t["mean_s"]
            assert t["repeats"] == 1

    def test_primitive_sections(self, entry):
        prim = entry["primitives"]
        assert {
            "scatter_reduce_min", "manhattan_schedule", "expand_csr",
            "dense_pull", "sparse_push",
        } <= set(prim)
        assert all(t["best_s"] > 0 for t in prim.values())

    def test_no_primitives(self):
        entry = run_perf(scale=6, ranks=4, repeats=1, primitives=False)
        assert "primitives" not in entry

    def test_no_modeled_by_default(self, entry):
        assert "modeled" not in entry

    def test_modeled_section(self):
        entry = run_perf(
            scale=6, ranks=4, repeats=1, primitives=False, modeled=True
        )
        m = entry["modeled"]
        assert set(m) == {"BFS", "PR", "CC", "SpMV"}
        for name, algo in m.items():
            blk, ovl = algo["blocking"], algo["overlapped"]
            # bit-identity contract: only the total may shrink
            assert blk["comm_s"] == ovl["comm_s"], name
            assert blk["compute_s"] == ovl["compute_s"], name
            assert ovl["total_s"] <= blk["total_s"], name
            assert blk["overlap_s"] == 0.0, name
            assert 0.0 <= ovl["overlap_fraction"] <= 1.0, name
            assert algo["speedup"] >= 1.0, name
        assert m["PR"]["overlapped"]["overlap_fraction"] > 0
        assert m["SpMV"]["overlapped"]["overlap_fraction"] > 0
        json.dumps(entry)

    def test_entry_is_json_serializable(self, entry):
        json.dumps(entry)


class TestTrajectory:
    def test_initialize_and_append(self, tmp_path, entry):
        path = tmp_path / "bench.json"
        data = append_entry(path, entry)
        assert data["schema"] == SCHEMA
        assert len(data["entries"]) == 1
        # second append accumulates
        data = append_entry(path, dict(entry, label="again"))
        assert [e["label"] for e in data["entries"]] == ["test", "again"]
        on_disk = json.loads(path.read_text())
        assert on_disk == data

    def test_load_missing_initializes(self, tmp_path):
        data = load_trajectory(tmp_path / "nope.json")
        assert data == {"schema": SCHEMA, "entries": []}

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other.v9", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)


def test_repo_trajectory_is_valid():
    """The committed BENCH_simulator.json must parse under the schema."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    path = root / "BENCH_simulator.json"
    data = load_trajectory(path)
    assert data["schema"] == SCHEMA
    assert len(data["entries"]) >= 2
    for e in data["entries"]:
        assert e["protocol"]["ranks"] > 0
        assert set(e["algorithms"]) == {"BFS", "PR", "CC"}


class TestBatched:
    def test_no_batched_by_default(self, entry):
        assert "batched" not in entry

    def test_batched_section_shape(self):
        entry = run_perf(
            scale=7, ranks=4, repeats=1, primitives=False,
            batch=True, batch_ks=(2,),
        )
        b = entry["batched"]["k2"]
        assert b["k"] == 2 and len(b["roots"]) == 2
        assert b["bit_identical"] is True
        calls = b["allgatherv_calls"]
        assert calls["sequential"] > calls["batched"] > 0
        assert calls["ratio"] > 1.0
        assert b["sequential"]["best_s"] > 0 and b["batched"]["best_s"] > 0
        json.dumps(entry)
