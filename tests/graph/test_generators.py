"""Graph generator tests."""

import numpy as np
import pytest

from repro.graph import (
    chung_lu_powerlaw,
    erdos_renyi_gnm,
    grid_graph,
    path_graph,
    rmat,
    rmat_edges,
    star_graph,
)


class TestRMAT:
    def test_sizes(self):
        src, dst, n = rmat_edges(scale=8, edgefactor=16, seed=1)
        assert n == 256
        assert src.size == dst.size == 16 * 256
        assert src.min() >= 0 and src.max() < n

    def test_deterministic(self):
        a = rmat(7, seed=42)
        b = rmat(7, seed=42)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_output(self):
        a = rmat(7, seed=1)
        b = rmat(7, seed=2)
        assert not np.array_equal(a.indptr, b.indptr) or not np.array_equal(
            a.indices, b.indices
        )

    def test_skewed_degrees(self):
        # Graph500 parameters produce heavy degree skew vs. flat RAND.
        g_rmat = rmat(11, seed=1)
        g_rand = erdos_renyi_gnm(2**11, 16 * 2**11, seed=1)
        assert g_rmat.degrees().max() > 3 * g_rand.degrees().max()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=-1)
        with pytest.raises(ValueError):
            rmat_edges(scale=4, a=0.9, b=0.2, c=0.2)

    def test_scale_zero(self):
        src, dst, n = rmat_edges(scale=0, edgefactor=4)
        assert n == 1
        assert np.all(src == 0) and np.all(dst == 0)


class TestErdosRenyi:
    def test_size_close_to_requested(self):
        g = erdos_renyi_gnm(500, 3000, seed=0)
        assert g.n_vertices == 500
        # symmetrized and deduped: close to 2 * m
        assert 0.8 * 6000 < g.n_edges <= 6000

    def test_deterministic(self):
        a = erdos_renyi_gnm(100, 400, seed=9)
        b = erdos_renyi_gnm(100, 400, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_needs_vertices(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(0, 10)


class TestChungLu:
    def test_powerlaw_skew(self):
        g = chung_lu_powerlaw(2000, 16000, gamma=2.0, seed=1)
        degs = np.sort(g.degrees())[::-1]
        # hub should dominate the median by a wide margin
        assert degs[0] > 10 * max(np.median(degs), 1)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            chung_lu_powerlaw(100, 400, gamma=1.0)

    def test_hubs_not_clustered_at_low_ids(self):
        g = chung_lu_powerlaw(1000, 8000, gamma=2.0, seed=3)
        degs = g.degrees()
        top = np.argsort(degs)[-10:]
        assert top.max() > 100  # relabeling spread the hubs out


class TestSmallGraphs:
    def test_path(self):
        g = path_graph(4)
        assert g.n_edges == 6  # 3 undirected edges stored twice
        assert list(g.neighbors(0)) == [1]
        assert sorted(g.neighbors(1)) == [0, 2]

    def test_star(self):
        g = star_graph(5)
        assert g.degrees()[0] == 4
        assert np.all(g.degrees()[1:] == 1)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n_vertices == 12
        # corner has 2 neighbors, interior 4
        assert g.degrees()[0] == 2
        assert g.degrees()[5] == 4
