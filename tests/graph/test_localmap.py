"""Local ID mapping tests (paper Tables 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import LocalMap


class TestTypes:
    def test_type0_disjoint(self):
        lm = LocalMap(row_start=0, row_stop=10, col_start=20, col_stop=30)
        assert lm.type == 0
        assert lm.row_offset == 0
        assert lm.col_offset == 10  # packed right after rows
        assert lm.n_total == 20

    def test_type0_adjacent_ranges(self):
        # Touching but not overlapping ranges are still Type 0.
        lm = LocalMap(row_start=0, row_stop=10, col_start=10, col_stop=20)
        assert lm.type == 0

    def test_type1_row_leads(self):
        lm = LocalMap(row_start=0, row_stop=10, col_start=5, col_stop=15)
        assert lm.type == 1
        diff = 5
        assert lm.row_offset == 0
        assert lm.col_offset == diff
        assert lm.n_total == 15  # union [0, 15)

    def test_type2_col_leads(self):
        lm = LocalMap(row_start=5, row_stop=15, col_start=0, col_stop=10)
        assert lm.type == 2
        assert lm.col_offset == 0
        assert lm.row_offset == 5
        assert lm.n_total == 15

    def test_identical_ranges_type1(self):
        # Diagonal blocks of square grids: full overlap.
        lm = LocalMap(row_start=10, row_stop=20, col_start=10, col_stop=20)
        assert lm.type == 1
        assert lm.row_offset == lm.col_offset == 0
        assert lm.n_total == 10

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            LocalMap(row_start=5, row_stop=4, col_start=0, col_stop=1)


class TestConversions:
    def test_roundtrip_rows(self):
        lm = LocalMap(row_start=7, row_stop=19, col_start=3, col_stop=11)
        gids = np.arange(7, 19)
        assert np.array_equal(lm.row_gid(lm.row_lid(gids)), gids)

    def test_roundtrip_cols(self):
        lm = LocalMap(row_start=7, row_stop=19, col_start=3, col_stop=11)
        gids = np.arange(3, 11)
        assert np.array_equal(lm.col_gid(lm.col_lid(gids)), gids)

    def test_overlap_gids_share_lids(self):
        # The crucial property: a GID in both ranges maps to ONE LID.
        lm = LocalMap(row_start=5, row_stop=15, col_start=10, col_stop=20)
        overlap = np.arange(10, 15)
        assert np.array_equal(lm.row_lid(overlap), lm.col_lid(overlap))

    def test_ownership_masks(self):
        lm = LocalMap(row_start=5, row_stop=10, col_start=0, col_stop=7)
        gids = np.array([0, 5, 6, 9, 10])
        assert np.array_equal(
            lm.owns_row_gid(gids), [False, True, True, True, False]
        )
        assert np.array_equal(
            lm.owns_col_gid(gids), [True, True, True, False, False]
        )

    def test_slices_cover_windows(self):
        lm = LocalMap(row_start=0, row_stop=4, col_start=2, col_stop=8)
        state = np.zeros(lm.n_total)
        state[lm.row_slice] = 1
        state[lm.col_slice] += 2
        # union covers everything; overlap got both writes
        assert np.all(state > 0)
        assert np.count_nonzero(state == 3) == 2  # gids 2, 3 overlap


@settings(max_examples=100, deadline=None)
@given(
    rs=st.integers(0, 50),
    rlen=st.integers(0, 30),
    cs=st.integers(0, 50),
    clen=st.integers(0, 30),
)
def test_property_mapping_consistency(rs, rlen, cs, clen):
    """For any ranges: LIDs are in [0, N_T), windows cover exactly the
    union, and overlapping GIDs share a single LID."""
    lm = LocalMap(row_start=rs, row_stop=rs + rlen, col_start=cs, col_stop=cs + clen)
    row_gids = np.arange(rs, rs + rlen)
    col_gids = np.arange(cs, cs + clen)
    row_lids = lm.row_lid(row_gids)
    col_lids = lm.col_lid(col_gids)
    all_lids = np.union1d(row_lids, col_lids)
    if all_lids.size:
        assert all_lids.min() >= 0
        assert all_lids.max() < lm.n_total
    # unique GID count == unique LID count (bijection on the union)
    assert np.union1d(row_gids, col_gids).size == all_lids.size
    # round trips
    assert np.array_equal(lm.row_gid(row_lids), row_gids)
    assert np.array_equal(lm.col_gid(col_lids), col_gids)
    # consecutive windows (Table 2: groups are compact)
    if rlen:
        assert np.array_equal(row_lids, np.arange(lm.row_offset, lm.row_offset + rlen))
    if clen:
        assert np.array_equal(col_lids, np.arange(lm.col_offset, lm.col_offset + clen))
