"""Partition quality metric tests."""

import numpy as np
import pytest

from repro.comm.grid import Grid2D
from repro.graph import partition_2d, rmat
from repro.graph.partition.metrics import evaluate_partition


class TestMetrics:
    def test_balance_near_one_for_striped_rmat(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(4, 4))
        m = evaluate_partition(part)
        assert 1.0 <= m.edge_balance < 2.0
        assert m.compute_efficiency == pytest.approx(1.0 / m.edge_balance)

    def test_single_rank_perfect(self, rmat_graph):
        m = evaluate_partition(partition_2d(rmat_graph, Grid2D(1, 1)))
        assert m.edge_balance == 1.0
        assert m.max_block_edges == rmat_graph.n_edges
        assert m.max_state_vertices == rmat_graph.n_vertices

    def test_state_shrinks_with_sqrt_p(self, rmat_graph):
        """The O(N/sqrt(p)) state term (paper §2.2)."""
        m4 = evaluate_partition(partition_2d(rmat_graph, Grid2D(2, 2)))
        m16 = evaluate_partition(partition_2d(rmat_graph, Grid2D(4, 4)))
        # doubling sqrt(p) halves the per-rank state (approximately)
        assert m16.max_state_vertices == pytest.approx(
            m4.max_state_vertices / 2, rel=0.1
        )

    def test_dense_volumes_reflect_grid_shape(self, rmat_graph):
        """Wide grids shrink column slices (push volume), tall grids
        shrink row slices (pull volume)."""
        wide = evaluate_partition(partition_2d(rmat_graph, Grid2D(R=8, C=2)))
        tall = evaluate_partition(partition_2d(rmat_graph, Grid2D(R=2, C=8)))
        assert wide.dense_push_bytes_per_rank < tall.dense_push_bytes_per_rank
        assert wide.dense_pull_bytes_per_rank > tall.dense_pull_bytes_per_rank

    def test_block_distribution_worse_on_clustered_hubs(self):
        """Metrics expose the distribution effect the ablation bench
        measures (paper §3.4.2)."""
        rng = np.random.default_rng(3)
        n, medges = 2000, 30_000
        w = (np.arange(n) + 5.0) ** -0.7
        cdf = np.cumsum(w) / w.sum()
        from repro.graph import Graph

        g = Graph.from_edges(
            np.searchsorted(cdf, rng.random(medges)),
            np.searchsorted(cdf, rng.random(medges)),
            n,
        )
        striped = evaluate_partition(partition_2d(g, Grid2D(4, 4), "striped"))
        block = evaluate_partition(partition_2d(g, Grid2D(4, 4), "block"))
        assert block.edge_balance > 1.5 * striped.edge_balance
