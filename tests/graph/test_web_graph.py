"""Web-crawl stand-in generator tests (power-law core + pendant chains)."""

import numpy as np
import pytest

from repro.graph import web_graph
from repro.reference import serial


class TestStructure:
    def test_sizes(self):
        g = web_graph(2000, 10_000, chain_fraction=0.1, seed=1)
        assert g.n_vertices == 2000
        assert g.n_edges > 10_000

    def test_chain_vertices_have_low_degree(self):
        g = web_graph(2000, 10_000, chain_fraction=0.1, chain_length=20, seed=1)
        chain = g.degrees()[1800:]
        # interior chain vertices have degree 2, ends 1-2 (+anchor link)
        assert chain.max() <= 3
        assert chain.min() >= 1

    def test_core_keeps_powerlaw_skew(self):
        g = web_graph(2000, 20_000, seed=2)
        core_degs = g.degrees()[: int(2000 * 0.95)]
        assert core_degs.max() > 10 * max(np.median(core_degs), 1)

    def test_chains_connected_to_core(self):
        g = web_graph(1000, 8_000, chain_fraction=0.2, chain_length=25, seed=3)
        labels = serial.connected_components(g)
        core_label_of_chain = labels[int(1000 * 0.8) :]
        # every chain hangs off some core vertex, so no chain vertex is
        # in a chain-only component of size 1
        sizes = np.bincount(labels)
        assert np.all(sizes[core_label_of_chain] > 1)

    def test_long_convergence_tail(self):
        """The chains create the long CC tails the queue machinery
        targets — the property the Fig. 6 bench depends on."""
        from repro import Engine, algorithms

        g = web_graph(3000, 30_000, chain_fraction=0.05, chain_length=40, seed=4)
        res = algorithms.connected_components(Engine(g, 4))
        assert res.iterations > 12

    def test_deterministic(self):
        a = web_graph(500, 2000, seed=9)
        b = web_graph(500, 2000, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_chain_fraction_validation(self):
        with pytest.raises(ValueError):
            web_graph(10, 100, chain_fraction=1.0)

    def test_zero_chains_is_pure_powerlaw(self):
        g = web_graph(600, 3000, chain_fraction=0.0, seed=5)
        assert g.n_vertices == 600
