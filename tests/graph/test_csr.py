"""CSR graph container tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, path_graph


class TestConstruction:
    def test_from_edges_symmetrizes(self):
        g = Graph.from_edges([0], [1], 2)
        assert g.n_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_no_symmetrize(self):
        g = Graph.from_edges([0], [1], 2, symmetrize=False)
        assert g.n_edges == 1
        assert list(g.neighbors(1)) == []

    def test_self_loops_removed(self):
        g = Graph.from_edges([0, 1], [0, 1], 2)
        assert g.n_edges == 0

    def test_self_loops_kept_when_asked(self):
        g = Graph.from_edges(
            [0], [0], 1, remove_self_loops=False, symmetrize=False, dedup=False
        )
        assert g.n_edges == 1

    def test_duplicates_merged(self):
        g = Graph.from_edges([0, 0, 0], [1, 1, 1], 2)
        assert g.n_edges == 2

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0], [5], 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0, 1], [1], 3)

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            Graph(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(ValueError):
            Graph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    def test_empty_graph(self):
        g = Graph.from_edges([], [], 5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert g.degrees().sum() == 0


class TestWeights:
    def test_weights_follow_edges(self):
        g = Graph.from_edges([0, 1], [1, 2], 3, weights=[0.5, 0.25])
        assert g.is_weighted
        w01 = g.edge_weights(0)[list(g.neighbors(0)).index(1)]
        assert w01 == 0.5

    def test_symmetrized_weights_match_both_directions(self):
        g = Graph.from_edges([0], [1], 2, weights=[0.7])
        assert g.edge_weights(0)[0] == g.edge_weights(1)[0] == 0.7

    def test_duplicate_weighted_edges_keep_max(self):
        g = Graph.from_edges([0, 0], [1, 1], 2, weights=[0.2, 0.9])
        assert g.edge_weights(0)[0] == 0.9

    def test_random_weights_symmetric(self):
        g = path_graph(50).with_random_weights(seed=3)
        for v in range(50):
            for i, u in enumerate(g.neighbors(v)):
                w_vu = g.edge_weights(v)[i]
                back = list(g.neighbors(u)).index(v)
                assert g.edge_weights(u)[back] == w_vu

    def test_random_weights_deterministic(self):
        a = path_graph(20).with_random_weights(seed=3)
        b = path_graph(20).with_random_weights(seed=3)
        assert np.array_equal(a.weights, b.weights)

    def test_unweighted_weight_access_raises(self):
        with pytest.raises(ValueError):
            path_graph(3).edge_weights(0)

    def test_mismatched_weight_length(self):
        with pytest.raises(ValueError):
            Graph.from_edges([0], [1], 2, weights=[0.1, 0.2])


class TestTransforms:
    def test_permute_preserves_structure(self):
        g = path_graph(5)
        perm = np.array([4, 3, 2, 1, 0])
        h = g.permute(perm)
        # vertex 0 (now 4) still has one neighbor: old 1 -> new 3
        assert list(h.neighbors(4)) == [3]
        assert h.n_edges == g.n_edges

    def test_permute_identity(self):
        g = path_graph(6)
        h = g.permute(np.arange(6))
        assert np.array_equal(h.indptr, g.indptr)
        assert np.array_equal(h.indices, g.indices)

    def test_permute_rejects_non_permutation(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            g.permute(np.array([0, 0, 1, 2]))
        with pytest.raises(ValueError):
            g.permute(np.array([0, 1]))

    def test_scipy_roundtrip(self):
        g = path_graph(7)
        h = Graph.from_scipy(g.to_scipy())
        assert np.array_equal(g.indptr, h.indptr)
        assert np.array_equal(g.indices, h.indices)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 60),
    seed=st.integers(0, 10_000),
)
def test_property_symmetry_and_bounds(n, seed):
    """Every from_edges graph is symmetric with in-range adjacency."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, 4 * n))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    g = Graph.from_edges(src, dst, n)
    mat = g.to_scipy()
    assert (mat != mat.T).nnz == 0  # symmetric
    if g.n_edges:
        assert g.indices.min() >= 0 and g.indices.max() < n
    # degrees match indptr diffs
    assert np.array_equal(g.degrees(), np.diff(g.indptr))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 1000))
def test_property_permute_isomorphism(n, seed):
    """Permutation preserves the edge multiset under relabeling."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 3 * n))
    g = Graph.from_edges(
        rng.integers(0, n, size=m), rng.integers(0, n, size=m), n
    )
    perm = rng.permutation(n)
    h = g.permute(perm)
    assert h.n_edges == g.n_edges
    for v in range(n):
        expect = np.sort(perm[g.neighbors(v)])
        got = np.sort(h.neighbors(perm[v]))
        assert np.array_equal(expect, got)


class TestScipyExportSafety:
    def test_mutating_export_does_not_corrupt_weights(self):
        """Regression: scipy idioms like ``mat.data[:] = 1.0`` must not
        write through into the graph's weight array."""
        g = path_graph(6).with_random_weights(seed=1)
        before = g.weights.copy()
        mat = g.to_scipy()
        mat.data[:] = 1.0
        assert np.array_equal(g.weights, before)
