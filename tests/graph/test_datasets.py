"""Dataset registry / stand-in tests (paper Table 4)."""

import pytest

from repro.graph import REGISTRY, available, load


class TestRegistry:
    def test_table4_entries_present(self):
        assert set(available()) == {"TW", "FR", "CW", "GSH", "WDC"}

    def test_full_sizes_match_table4(self):
        assert REGISTRY["WDC"].n_edges == 128_000_000_000
        assert REGISTRY["WDC"].n_vertices == 3_500_000_000
        assert REGISTRY["TW"].n_vertices == 41_000_000
        assert REGISTRY["GSH"].n_edges == 33_000_000_000

    def test_kinds(self):
        assert REGISTRY["TW"].kind == "social"
        assert REGISTRY["WDC"].kind == "web"


class TestLoading:
    def test_standin_size_near_target(self):
        ds = load("TW", target_edges=1 << 15)
        assert 0.3 * (1 << 15) < ds.graph.n_edges < 3 * (1 << 15)

    def test_scale_factor_recorded(self):
        ds = load("WDC", target_edges=1 << 14)
        assert ds.scale_factor == pytest.approx(
            REGISTRY["WDC"].n_edges / ds.graph.n_edges
        )
        assert "scale factor" in ds.note

    def test_deterministic(self):
        import numpy as np

        a = load("FR", target_edges=1 << 13, seed=5)
        b = load("FR", target_edges=1 << 13, seed=5)
        assert np.array_equal(a.graph.indices, b.graph.indices)

    def test_rmat_code(self):
        ds = load("RMAT26", target_edges=1 << 14)
        assert ds.meta.n_vertices == 1 << 26
        assert ds.meta.kind == "rmat"
        assert ds.graph.n_edges <= 1 << 15

    def test_rand_code(self):
        ds = load("RAND24", target_edges=1 << 14)
        assert ds.meta.kind == "rand"

    def test_weighted_loading(self):
        ds = load("TW", target_edges=1 << 12, weighted=True)
        assert ds.graph.is_weighted

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load("NOPE")

    def test_edge_factor_preserved(self):
        # WDC has M/N ~ 36; the stand-in should be much denser than TW
        # (M/N ~ 34) is a weak check, so compare against a sparse one.
        wdc = load("WDC", target_edges=1 << 15)
        ef = wdc.graph.n_edges / wdc.graph.n_vertices
        assert ef > 10
