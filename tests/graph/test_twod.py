"""2D block partition tests (paper §3.2)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.grid import Grid2D
from repro.graph import Graph, partition_2d, rmat

from ..conftest import GRIDS, random_graph


def reconstruct(part) -> sp.csr_matrix:
    """Rebuild the full relabeled adjacency matrix from the blocks."""
    n = part.n_vertices
    rows, cols = [], []
    for blk in part.blocks:
        lm = blk.localmap
        degs = np.diff(blk.indptr)
        r_local = np.repeat(np.arange(lm.n_row), degs)
        rows.append(r_local + lm.row_start)
        cols.append(lm.col_gid(blk.indices))
    rows = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    return sp.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(n, n)
    ).tocsr()


class TestPartition:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_blocks_reconstruct_graph(self, rmat_graph, grid):
        part = partition_2d(rmat_graph, grid)
        relabeled = rmat_graph.permute(part.perm).to_scipy()
        relabeled.data[:] = 1.0
        rebuilt = reconstruct(part)
        assert (rebuilt != relabeled).nnz == 0

    def test_edge_counts_partition(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(R=4, C=2))
        assert sum(b.n_local_edges for b in part.blocks) == rmat_graph.n_edges

    def test_local_degrees_sum_to_global(self, rmat_graph):
        """Paper §3.2: true degree = sum of local degrees across the
        row group."""
        grid = Grid2D(R=3, C=2)
        part = partition_2d(rmat_graph, grid)
        global_degs = rmat_graph.permute(part.perm).degrees()
        for id_r in range(grid.C):
            rs, re = part.row_range(id_r)
            acc = np.zeros(re - rs, dtype=np.int64)
            for id_c in range(grid.R):
                blk = part.blocks[grid.rank_of(id_r, id_c)]
                acc += blk.local_row_degrees()
            assert np.array_equal(acc, global_degs[rs:re])

    def test_block_ranks_ordered(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(R=2, C=3))
        assert [b.rank for b in part.blocks] == list(range(6))
        for b in part.blocks:
            assert b.rank == b.id_r * 2 + b.id_c

    def test_weighted_blocks_carry_weights(self):
        g = rmat(7, seed=2).with_random_weights(seed=1)
        part = partition_2d(g, Grid2D(R=2, C=2))
        assert part.weighted
        total = sum(b.weights.size for b in part.blocks)
        assert total == g.n_edges

    def test_unknown_distribution_rejected(self, rmat_graph):
        with pytest.raises(ValueError):
            partition_2d(rmat_graph, Grid2D(R=2, C=2), distribution="zigzag")

    def test_distributions_all_valid(self, rmat_graph):
        for dist in ("striped", "random", "block"):
            part = partition_2d(rmat_graph, Grid2D(R=2, C=2), distribution=dist)
            part.validate()


class TestVectors:
    def test_scatter_gather_roundtrip(self, rmat_graph, any_grid):
        part = partition_2d(rmat_graph, any_grid)
        vec = np.arange(rmat_graph.n_vertices, dtype=np.float64) * 0.5
        states = [part.scatter_global(vec, r) for r in range(any_grid.n_ranks)]
        out = part.gather_row_state(states)
        assert np.array_equal(out, vec)

    def test_scatter_fills_both_windows(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(R=2, C=2))
        vec = np.random.default_rng(0).random(rmat_graph.n_vertices)
        relabeled = part.to_relabeled_order(vec)
        for blk in part.blocks:
            local = part.scatter_global(vec, blk.rank)
            lm = blk.localmap
            assert np.array_equal(
                local[lm.row_slice], relabeled[lm.row_start : lm.row_stop]
            )
            assert np.array_equal(
                local[lm.col_slice], relabeled[lm.col_start : lm.col_stop]
            )

    def test_order_conversions_inverse(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(R=2, C=2))
        vec = np.random.default_rng(1).random(rmat_graph.n_vertices)
        assert np.allclose(
            part.to_original_order(part.to_relabeled_order(vec)), vec
        )

    def test_original_gid_inverts_perm(self, rmat_graph):
        part = partition_2d(rmat_graph, Grid2D(R=2, C=2))
        v = np.arange(rmat_graph.n_vertices)
        assert np.array_equal(part.original_gid(part.perm[v]), v)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    r=st.integers(1, 5),
    c=st.integers(1, 5),
    dist=st.sampled_from(["striped", "random", "block"]),
)
def test_property_partition_reconstructs(seed, r, c, dist):
    """Any graph x any grid x any distribution partitions losslessly."""
    g = random_graph(seed, n_max=80)
    grid = Grid2D(R=r, C=c)
    part = partition_2d(g, grid, distribution=dist, seed=seed)
    relabeled = g.permute(part.perm).to_scipy()
    relabeled.data[:] = 1.0
    assert (reconstruct(part) != relabeled).nnz == 0
