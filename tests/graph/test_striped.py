"""Vertex distribution (striping) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    block_permutation,
    group_ranges,
    random_permutation,
    striped_permutation,
)


class TestGroupRanges:
    def test_even_split(self):
        assert np.array_equal(group_ranges(12, 4), [0, 3, 6, 9, 12])

    def test_ragged_split_front_loads_extras(self):
        assert np.array_equal(group_ranges(10, 4), [0, 3, 6, 8, 10])

    def test_more_groups_than_items(self):
        r = group_ranges(2, 5)
        assert r[-1] == 2
        assert np.all(np.diff(r) >= 0)

    def test_needs_positive_groups(self):
        with pytest.raises(ValueError):
            group_ranges(5, 0)


class TestStriped:
    def test_round_robin_assignment(self):
        # With 2 groups over 6 vertices: evens to group 0, odds to 1.
        perm = striped_permutation(6, 2)
        ranges = group_ranges(6, 2)
        for v in range(6):
            group = v % 2
            assert ranges[group] <= perm[v] < ranges[group + 1]

    def test_order_preserved_within_group(self):
        perm = striped_permutation(20, 3)
        for g in range(3):
            members = [v for v in range(20) if v % 3 == g]
            new_ids = perm[members]
            assert np.all(np.diff(new_ids) == 1)

    def test_is_permutation(self):
        perm = striped_permutation(17, 5)
        assert np.array_equal(np.sort(perm), np.arange(17))

    def test_single_group_is_identity(self):
        assert np.array_equal(striped_permutation(9, 1), np.arange(9))

    def test_balances_hub_clusters(self):
        # Consecutive hub ids land in distinct groups.
        perm = striped_permutation(100, 4)
        ranges = group_ranges(100, 4)
        groups = np.searchsorted(ranges, perm[:4], side="right") - 1
        assert len(set(groups)) == 4


class TestOtherDistributions:
    def test_random_is_permutation_and_seeded(self):
        a = random_permutation(50, 4, seed=1)
        b = random_permutation(50, 4, seed=1)
        c = random_permutation(50, 4, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.array_equal(np.sort(a), np.arange(50))

    def test_block_is_identity(self):
        assert np.array_equal(block_permutation(8, 3), np.arange(8))


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 300), g=st.integers(1, 20))
def test_property_striped_group_sizes_match_ranges(n, g):
    """Striping fills exactly the contiguous ranges group_ranges makes."""
    perm = striped_permutation(n, g)
    ranges = group_ranges(n, g)
    assert np.array_equal(np.sort(perm), np.arange(n))
    counts = np.zeros(g, dtype=int)
    for v in range(n):
        grp = np.searchsorted(ranges, perm[v], side="right") - 1
        assert grp == v % g
        counts[grp] += 1
    assert np.array_equal(counts, np.diff(ranges))
