"""Graph file I/O tests."""

import numpy as np
import pytest

from repro.graph import rmat
from repro.graph.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = rmat(7, seed=4)
        path = tmp_path / "g.el"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.n_vertices == g.n_vertices
        assert np.array_equal(h.indptr, g.indptr)
        assert np.array_equal(h.indices, g.indices)

    def test_weighted_roundtrip(self, tmp_path):
        g = rmat(6, seed=4).with_random_weights(seed=2)
        path = tmp_path / "g.wel"
        write_edge_list(g, path)
        h = read_edge_list(path, weighted=True)
        assert h.is_weighted
        assert np.allclose(h.weights, g.weights)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n_vertices == 3
        assert g.n_edges == 4  # two undirected edges

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n")
        g = read_edge_list(path, n_vertices=10)
        assert g.n_vertices == 10

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="bad.el:1"):
            read_edge_list(path)

    def test_weighted_needs_three_columns(self, tmp_path):
        path = tmp_path / "bad.wel"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            read_edge_list(path, weighted=True)

    def test_header_written(self, tmp_path):
        g = rmat(5, seed=1)
        path = tmp_path / "g.el"
        write_edge_list(g, path, header="my graph")
        assert path.read_text().startswith("# my graph")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.el"
        path.write_text("# nothing\n")
        g = read_edge_list(path)
        assert g.n_vertices == 1
        assert g.n_edges == 0


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        g = rmat(6, seed=3)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        h = read_matrix_market(path)
        assert np.array_equal(h.indptr, g.indptr)
        assert np.array_equal(h.indices, g.indices)

    def test_weighted_roundtrip(self, tmp_path):
        g = rmat(5, seed=3).with_random_weights(seed=1)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        h = read_matrix_market(path, weighted=True)
        assert np.allclose(h.weights, g.weights)

    def test_nonsquare_rejected(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp

        path = tmp_path / "rect.mtx"
        scipy.io.mmwrite(str(path), sp.coo_matrix(np.ones((2, 3))))
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)


class TestLoaderEngineIntegration:
    def test_loaded_graph_runs_distributed(self, tmp_path):
        from repro import Engine, algorithms
        from repro.reference import serial

        g = rmat(7, seed=8)
        path = tmp_path / "g.el"
        write_edge_list(g, path)
        h = read_edge_list(path)
        res = algorithms.connected_components(Engine(h, 4))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(g)),
        )
