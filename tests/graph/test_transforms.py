"""Graph transform tests."""

import numpy as np
import pytest

from repro.graph import Graph, grid_graph, path_graph, rmat, star_graph
from repro.graph.transforms import (
    cap_degrees,
    induced_subgraph,
    kcore_subgraph,
    largest_component,
)
from repro.reference import serial


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = path_graph(6)
        sub, keep = induced_subgraph(g, [1, 2, 4])
        assert keep.tolist() == [1, 2, 4]
        # only edge 1-2 survives (4 is detached from the pair)
        assert sub.n_edges == 2
        assert list(sub.neighbors(0)) == [1]
        assert list(sub.neighbors(2)) == []

    def test_weights_carried(self):
        g = path_graph(5).with_random_weights(seed=1)
        sub, keep = induced_subgraph(g, [0, 1])
        assert sub.is_weighted
        assert sub.edge_weights(0)[0] == g.edge_weights(0)[0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            induced_subgraph(path_graph(4), [0, 9])

    def test_full_set_is_identity(self, rmat_graph):
        sub, keep = induced_subgraph(rmat_graph, np.arange(rmat_graph.n_vertices))
        assert sub.n_edges == rmat_graph.n_edges
        assert np.array_equal(sub.indptr, rmat_graph.indptr)


class TestLargestComponent:
    def test_extracts_giant(self):
        # two triangles + path of 2: giant is a triangle (tie broken by
        # bincount argmax = first)
        g = Graph.from_edges([0, 1, 2, 3, 4, 5, 6], [1, 2, 0, 4, 5, 3, 7], 8)
        sub, keep = largest_component(g)
        assert sub.n_vertices == 3
        labels = serial.connected_components(sub)
        assert np.unique(labels).size == 1

    def test_connected_graph_unchanged(self):
        g = grid_graph(4, 4)
        sub, keep = largest_component(g)
        assert sub.n_vertices == 16
        assert sub.n_edges == g.n_edges

    def test_algorithms_run_on_component(self, rmat_graph):
        from repro import Engine, algorithms

        sub, keep = largest_component(rmat_graph)
        res = algorithms.bfs(Engine(sub, 4), root=0)
        assert res.extra["n_visited"] == sub.n_vertices  # fully reachable


class TestKCoreSubgraph:
    def test_peels_leaves(self):
        g = star_graph(6)
        sub, keep = kcore_subgraph(g, 2)
        assert sub.n_vertices == 0  # a star has no 2-core

    def test_matches_core_numbers(self, rmat_graph):
        from repro import Engine
        from repro.algorithms import core_numbers

        cores = core_numbers(Engine(rmat_graph, 4)).values
        for k in (1, 2, 3):
            sub, keep = kcore_subgraph(rmat_graph, k)
            assert np.array_equal(keep, np.flatnonzero(cores >= k))
            if sub.n_vertices:
                assert sub.degrees().min() >= k

    def test_k_zero_is_identity(self, rmat_graph):
        sub, keep = kcore_subgraph(rmat_graph, 0)
        assert sub.n_vertices == rmat_graph.n_vertices

    def test_negative_k_rejected(self, rmat_graph):
        with pytest.raises(ValueError):
            kcore_subgraph(rmat_graph, -1)


class TestCapDegrees:
    def test_caps_hubs(self):
        g = star_graph(50)
        capped = cap_degrees(g, 10, seed=1)
        # the center kept <= 10 of its own picks, but symmetrization
        # restores each kept leaf's reverse edge only
        assert capped.degrees()[0] <= 50
        assert capped.degrees().max() <= max(10 + 1, capped.degrees()[0])

    def test_low_degree_untouched(self):
        g = path_graph(10)
        capped = cap_degrees(g, 5)
        assert capped.n_edges == g.n_edges

    def test_still_symmetric(self, rmat_graph):
        capped = cap_degrees(rmat_graph, 8, seed=2)
        mat = capped.to_scipy()
        assert (mat != mat.T).nnz == 0

    def test_validation(self, rmat_graph):
        with pytest.raises(ValueError):
            cap_degrees(rmat_graph, -1)
