"""Smoke tests: every example script runs end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py", "9", "4")
        assert proc.returncode == 0, proc.stderr
        assert "matches serial reference: True" in proc.stdout
        assert "PageRank" in proc.stdout

    def test_webgraph_analysis(self):
        proc = _run("webgraph_analysis.py", "16")
        assert proc.returncode == 0, proc.stderr
        assert "connected components:" in proc.stdout
        assert "GTEPS projected" in proc.stdout

    def test_matching_and_forests(self):
        proc = _run("matching_and_forests.py", "4")
        assert proc.returncode == 0, proc.stderr
        assert "validity check passed" in proc.stdout
        assert "pointer jumping" in proc.stdout

    def test_extensions_tour(self):
        proc = _run("extensions_tour.py", "4")
        assert proc.returncode == 0, proc.stderr
        assert "k-core decomposition" in proc.stdout
        assert "triangles:" in proc.stdout
        assert "widest-path" in proc.stdout
