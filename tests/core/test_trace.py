"""Execution trace tests."""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.core.trace import TraceRecorder
from repro.graph import rmat


@pytest.fixture
def traced_run():
    engine = Engine(rmat(8, seed=4), 4)
    rec = TraceRecorder(engine)
    result = algorithms.pagerank(engine, iterations=6)
    return engine, rec, result


class TestTraces:
    def test_one_row_per_iteration(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert len(rows) == 6
        assert [r.iteration for r in rows] == [1, 2, 3, 4, 5, 6]

    def test_deltas_sum_to_totals(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert sum(r.total_s for r in rows) == pytest.approx(
            result.timings.total, rel=1e-9
        )
        assert sum(r.comm_s for r in rows) == pytest.approx(
            result.timings.comm, rel=1e-9
        )

    def test_byte_apportioning_sums_to_total(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert sum(r.bytes for r in rows) == pytest.approx(
            engine.counters.total_bytes, rel=0.01
        )

    def test_csv_export(self, traced_run):
        engine, rec, result = traced_run
        text = TraceRecorder.to_csv(rec.collect(result))
        lines = text.strip().splitlines()
        assert lines[0].startswith("iteration,")
        assert len(lines) == 7

    def test_tail_decay_visible_for_cc(self):
        """CC's iteration tail: later iterations move fewer bytes."""
        from repro.graph import web_graph

        g = web_graph(2000, 12_000, seed=3)
        engine = Engine(g, 4)
        rec = TraceRecorder(engine)
        algorithms.connected_components(engine)
        rows = rec.collect()
        assert len(rows) > 5
        first_half = sum(r.comm_s for r in rows[: len(rows) // 2])
        second_half = sum(r.comm_s for r in rows[len(rows) // 2 :])
        assert second_half < first_half
