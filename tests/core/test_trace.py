"""Execution trace tests: per-iteration rows must be exact."""

import json

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.comm import CommCounters, VirtualClocks
from repro.core.trace import TRACE_SCHEMA, TraceRecorder
from repro.graph import rmat


@pytest.fixture
def traced_run():
    engine = Engine(rmat(8, seed=4), 4)
    rec = TraceRecorder(engine)
    result = algorithms.pagerank(engine, iterations=6)
    return engine, rec, result


class TestTraces:
    def test_one_row_per_iteration(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert len(rows) == 6
        assert [r.iteration for r in rows] == [1, 2, 3, 4, 5, 6]

    def test_deltas_sum_to_totals(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert sum(r.total_s for r in rows) == pytest.approx(
            result.timings.total, rel=1e-9
        )
        assert sum(r.comm_s for r in rows) == pytest.approx(
            result.timings.comm, rel=1e-9
        )

    def test_counter_columns_sum_exactly(self, traced_run):
        """Rows reproduce the run's CommCounters totals bit-for-bit."""
        engine, rec, result = traced_run
        rows = rec.collect(result)
        c = engine.counters
        assert sum(r.bytes for r in rows) == c.total_bytes
        assert sum(r.serial_messages for r in rows) == c.total_serial_messages
        assert sum(r.transfers for r in rows) == c.total_transfers

    def test_per_kind_sums_exactly(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        agg: dict[str, dict[str, int]] = {}
        for r in rows:
            for kind, stats in r.by_kind.items():
                a = agg.setdefault(kind, dict.fromkeys(stats, 0))
                for key, v in stats.items():
                    a[key] += v
        assert agg == engine.counters.summary()

    def test_rows_own_their_dicts(self, traced_run):
        """No aliasing: each row gets its own per-kind dicts."""
        engine, rec, result = traced_run
        rows = rec.collect(result)
        assert len({id(r.calls_by_kind) for r in rows}) == len(rows)
        assert len({id(r.by_kind) for r in rows}) == len(rows)
        # every iteration reports its own calls, not just the last row
        assert all(r.calls_by_kind for r in rows)

    def test_csv_export(self, traced_run):
        engine, rec, result = traced_run
        text = TraceRecorder.to_csv(rec.collect(result))
        lines = text.strip().splitlines()
        assert lines[0].startswith("iteration,")
        assert "transfers" in lines[0]
        assert len(lines) == 7

    def test_json_export(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        doc = json.loads(TraceRecorder.to_json(rows, meta={"algo": "PR"}))
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["meta"]["algo"] == "PR"
        assert len(doc["iterations"]) == len(rows)
        assert doc["totals"]["bytes"] == engine.counters.total_bytes
        by_kind = doc["totals"]["by_kind"]
        assert by_kind == engine.counters.summary()

    def test_jsonl_export(self, traced_run):
        engine, rec, result = traced_run
        rows = rec.collect(result)
        lines = TraceRecorder.to_jsonl(rows).strip().splitlines()
        assert len(lines) == len(rows)
        assert json.loads(lines[0])["iteration"] == 1

    def test_tail_row_catches_post_mark_comm(self):
        """Comm after the last mark lands in a trailing row, so sums
        stay exact."""
        engine = Engine(rmat(7, seed=1), 4)
        engine.reset_timers()
        ranks = list(range(4))
        bufs = [np.zeros(8) for _ in ranks]
        engine.comm.allreduce(ranks, bufs)
        engine.clocks.mark_iteration()
        engine.comm.allreduce(ranks, bufs)  # after the final mark
        rows = TraceRecorder(engine).collect()
        assert len(rows) == 2
        assert rows[1].iteration == 2
        assert sum(r.bytes for r in rows) == engine.counters.total_bytes
        without_tail = TraceRecorder(engine).collect(include_tail=False)
        assert len(without_tail) == 1

    def test_counterless_clocks_rejected(self):
        engine = Engine(rmat(7, seed=1), 4)
        engine.clocks = VirtualClocks(4)  # no counters attached
        engine.clocks.mark_iteration()
        with pytest.raises(ValueError, match="counter snapshots"):
            TraceRecorder(engine).collect()

    def test_tail_decay_visible_for_cc(self):
        """CC's iteration tail: later iterations move fewer bytes."""
        from repro.graph import web_graph

        g = web_graph(2000, 12_000, seed=3)
        engine = Engine(g, 4)
        rec = TraceRecorder(engine)
        algorithms.connected_components(engine)
        rows = rec.collect()
        assert len(rows) > 5
        first_half = sum(r.comm_s for r in rows[: len(rows) // 2])
        second_half = sum(r.comm_s for r in rows[len(rows) // 2 :])
        assert second_half < first_half
        # with exact rows the byte decay is visible too, not estimated
        first_bytes = sum(r.bytes for r in rows[: len(rows) // 2])
        second_bytes = sum(r.bytes for r in rows[len(rows) // 2 :])
        assert second_bytes < first_bytes


class TestExactnessAcrossAlgorithms:
    @pytest.mark.parametrize(
        "algo", ["bfs", "connected_components", "label_propagation"]
    )
    def test_totals_reproduced(self, algo):
        engine = Engine(rmat(8, seed=2), 4)
        fn = getattr(algorithms, algo)
        fn(engine, root=0) if algo == "bfs" else fn(engine)
        rows = TraceRecorder(engine).collect()
        c = engine.counters
        assert sum(r.bytes for r in rows) == c.total_bytes
        assert sum(r.serial_messages for r in rows) == c.total_serial_messages
        assert sum(r.transfers for r in rows) == c.total_transfers
        calls = {}
        for r in rows:
            for k, v in r.calls_by_kind.items():
                calls[k] = calls.get(k, 0) + v
        assert calls == {k: s.calls for k, s in c.by_kind.items()}
