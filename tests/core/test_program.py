"""Generic vertex-program API tests (paper Alg. 1 generalization).

Expresses known algorithms as two-line programs and cross-validates
them against both the dedicated implementations and the serial
references — the executable form of the paper's generality claim.
"""

import numpy as np
import pytest

from repro.algorithms import connected_components, sssp
from repro.core.engine import Engine
from repro.core.program import VertexProgram, run_vertex_program
from repro.graph import rmat
from repro.reference import serial

from ..conftest import GRIDS, random_graph


def cc_program(**kw) -> VertexProgram:
    return VertexProgram(
        name="cc_prog",
        init=lambda gids: gids.astype(np.float64),
        along_edge=lambda vals, w: vals,
        op="min",
        **kw,
    )


def sssp_program(root: int, **kw) -> VertexProgram:
    return VertexProgram(
        name="sssp_prog",
        init=lambda gids: np.where(gids == root, 0.0, np.inf),
        along_edge=lambda vals, w: vals + w,
        op="min",
        **kw,
    )


def widest_path_program(root: int) -> VertexProgram:
    """Maximum-bottleneck path capacity from the root (a max-min
    program none of the dedicated algorithms implement)."""
    return VertexProgram(
        name="widest",
        init=lambda gids: np.where(gids == root, np.inf, -np.inf),
        along_edge=lambda vals, w: np.minimum(vals, w),
        op="max",
    )


class TestCCAsProgram:
    @pytest.mark.parametrize("grid", GRIDS[:5], ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_dedicated_cc(self, rmat_graph, grid):
        prog_res = run_vertex_program(Engine(rmat_graph, grid=grid), cc_program())
        dedicated = connected_components(Engine(rmat_graph, grid=grid))
        # Program labels are min-GID representatives directly.
        assert np.array_equal(
            serial.canonical_labels(prog_res.values.astype(np.int64)),
            serial.canonical_labels(dedicated.values),
        )

    @pytest.mark.parametrize("direction", ["push", "pull"])
    @pytest.mark.parametrize("mode", ["dense", "sparse", "switch"])
    def test_all_configurations(self, rmat_graph, direction, mode):
        res = run_vertex_program(
            Engine(rmat_graph, 4),
            cc_program(direction=direction, mode=mode),
        )
        assert np.array_equal(
            serial.canonical_labels(res.values.astype(np.int64)),
            serial.canonical_labels(serial.connected_components(rmat_graph)),
        )


class TestSSSPAsProgram:
    def test_matches_dedicated_sssp(self, rmat_graph):
        g = rmat_graph.with_random_weights(seed=2, low=0.1, high=1.0)
        prog = run_vertex_program(Engine(g, 4), sssp_program(root=0))
        dedicated = sssp(Engine(g, 4), root=0)
        both_finite = np.isfinite(prog.values) & np.isfinite(dedicated.values)
        assert np.array_equal(np.isfinite(prog.values), np.isfinite(dedicated.values))
        assert np.allclose(prog.values[both_finite], dedicated.values[both_finite])

    def test_matches_dijkstra(self):
        for seed in range(3):
            g = random_graph(seed + 5, n_max=60).with_random_weights(seed=seed)
            res = run_vertex_program(Engine(g, 4), sssp_program(root=0))
            ref = serial.sssp_distances(g, 0)
            finite = np.isfinite(ref)
            assert np.array_equal(np.isfinite(res.values), finite)
            assert np.allclose(res.values[finite], ref[finite])


class TestNovelPrograms:
    def test_widest_path(self):
        """A program with no dedicated implementation: verify against a
        simple serial fixpoint."""
        g = rmat(7, seed=9).with_random_weights(seed=4)
        res = run_vertex_program(Engine(g, 4), widest_path_program(root=0))

        # serial max-min fixpoint
        n = g.n_vertices
        cap = np.full(n, -np.inf)
        cap[0] = np.inf
        src = np.repeat(np.arange(n), g.degrees())
        while True:
            cand = np.minimum(cap[src], g.weights)
            new = cap.copy()
            np.maximum.at(new, g.indices, cand)
            if np.array_equal(new, cap):
                break
            cap = new
        assert np.array_equal(np.isfinite(res.values), np.isfinite(cap))
        both = np.isfinite(cap) & (cap != np.inf)
        assert np.allclose(res.values[both], cap[both])

    def test_max_reachable_id(self, rmat_graph):
        """'Largest vertex id in my component' — the op="max" mirror of
        CC, checked against the serial component structure."""
        prog = VertexProgram(
            name="maxid",
            init=lambda gids: gids.astype(np.float64),
            along_edge=lambda vals, w: vals,
            op="max",
        )
        res = run_vertex_program(Engine(rmat_graph, 4), prog)
        comp = serial.connected_components(rmat_graph)
        for c in np.unique(comp):
            members = np.flatnonzero(comp == c)
            assert np.all(res.values[members] == members.max())


class TestValidation:
    def test_sum_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            VertexProgram(
                name="x",
                init=lambda g: g,
                along_edge=lambda v, w: v,
                op="sum",
            )

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            VertexProgram(
                name="x",
                init=lambda g: g,
                along_edge=lambda v, w: v,
                direction="sideways",
            )

    def test_max_iterations(self, rmat_graph):
        res = run_vertex_program(
            Engine(rmat_graph, 4), cc_program(max_iterations=1)
        )
        assert res.iterations == 1
