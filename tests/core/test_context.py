"""RankContext tests."""

import numpy as np
import pytest

from repro.comm.grid import Grid2D
from repro.core.engine import Engine
from repro.graph import rmat


@pytest.fixture
def engine():
    return Engine(rmat(8, seed=3), grid=Grid2D(R=3, C=2))


class TestStateArrays:
    def test_alloc_spans_lid_space(self, engine):
        ctx = engine.ctx(0)
        arr = ctx.alloc("x", np.float64, fill=2.0)
        assert arr.shape == (ctx.n_total,)
        assert np.all(arr == 2.0)

    def test_alloc_custom_length(self, engine):
        ctx = engine.ctx(0)
        arr = ctx.alloc("small", np.int64, length=7)
        assert arr.shape == (7,)

    def test_dtype_change_reallocates(self, engine):
        ctx = engine.ctx(0)
        a = ctx.alloc("y", np.float64)
        b = ctx.alloc("y", np.int64)
        assert a is not b
        assert b.dtype == np.int64

    def test_has_and_free(self, engine):
        ctx = engine.ctx(1)
        ctx.alloc("z", np.float64)
        assert ctx.has("z")
        ctx.free("z")
        assert not ctx.has("z")
        # freeing again is a no-op
        ctx.free("z")

    def test_memory_charged_and_released(self, engine):
        ctx = engine.ctx(2)
        base = ctx.device.allocated_bytes
        ctx.alloc("w", np.float64)
        assert ctx.device.allocated_bytes == base + ctx.n_total * 8
        ctx.free("w")
        assert ctx.device.allocated_bytes == base

    def test_graph_structure_charged_on_construction(self, engine):
        ctx = engine.ctx(0)
        assert "graph.indptr" in ctx.device.ledger
        assert "graph.indices" in ctx.device.ledger


class TestGraphAccess:
    def test_local_degrees_cached_and_correct(self, engine):
        ctx = engine.ctx(3)
        degs = ctx.local_degrees()
        assert degs is ctx.local_degrees()
        assert np.array_equal(degs, np.diff(ctx.block.indptr))

    def test_row_col_lids_cover_windows(self, engine):
        ctx = engine.ctx(0)
        lm = ctx.localmap
        assert ctx.row_lids().size == lm.n_row
        assert ctx.col_lids().size == lm.n_col
        assert ctx.row_lids()[0] == lm.row_offset

    def test_expand_subset_consistent_with_expand_all(self, engine):
        ctx = engine.ctx(4)
        src_all, dst_all, _ = ctx.expand_all()
        rows = ctx.row_lids()[:3]
        src, dst, _ = ctx.expand(rows)
        mask = np.isin(src_all, rows)
        assert np.array_equal(np.sort(dst), np.sort(dst_all[mask]))

    def test_expand_all_cached(self, engine):
        ctx = engine.ctx(5)
        a = ctx.expand_all()
        b = ctx.expand_all()
        assert a[0] is b[0]

    def test_weighted_expansion(self):
        g = rmat(7, seed=1).with_random_weights(seed=2)
        engine = Engine(g, 4)
        ctx = engine.ctx(0)
        _, dst, w = ctx.expand_all()
        assert w is not None and w.shape == dst.shape

    def test_slices_match_localmap(self, engine):
        ctx = engine.ctx(1)
        assert ctx.row_slice == ctx.localmap.row_slice
        assert ctx.col_slice == ctx.localmap.col_slice


class TestExpandCache:
    def test_expansion_charged_against_ledger(self, engine):
        ctx = engine.ctx(2)
        base = ctx.device.allocated_bytes
        src, dst, w = ctx.expand_all()
        expect = src.nbytes + dst.nbytes + (w.nbytes if w is not None else 0)
        assert ctx.device.ledger["cache.expand_all"] == expect
        assert ctx.device.allocated_bytes == base + expect

    def test_free_releases_charge_and_cache(self, engine):
        ctx = engine.ctx(2)
        first = ctx.expand_all()
        base = ctx.device.allocated_bytes
        charge = ctx.device.ledger["cache.expand_all"]
        ctx.free_expand_cache()
        assert "cache.expand_all" not in ctx.device.ledger
        assert ctx.device.allocated_bytes == base - charge
        # freeing twice is a no-op
        ctx.free_expand_cache()
        # re-expansion recomputes (and re-charges)
        again = ctx.expand_all()
        assert again[0] is not first[0]
        assert np.array_equal(again[1], first[1])
        assert "cache.expand_all" in ctx.device.ledger

    def test_engine_frees_every_rank(self, engine):
        for ctx in engine:
            ctx.expand_all()
        engine.free_expand_caches()
        assert all(
            "cache.expand_all" not in ctx.device.ledger for ctx in engine
        )
