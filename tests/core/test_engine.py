"""Engine API tests."""

import numpy as np
import pytest

from repro.cluster import ZEPY, DeviceMemoryError, GENERIC_PROFILE
from repro.comm.grid import Grid2D
from repro.core.engine import Engine
from repro.graph import rmat


class TestConstruction:
    def test_square_from_n_ranks(self, rmat_graph):
        e = Engine(rmat_graph, 16)
        assert e.grid.R == e.grid.C == 4
        assert e.n_ranks == 16

    def test_nonsquare_needs_explicit_grid(self, rmat_graph):
        with pytest.raises(ValueError):
            Engine(rmat_graph, 12)
        e = Engine(rmat_graph, grid=Grid2D(R=4, C=3))
        assert e.n_ranks == 12

    def test_conflicting_args(self, rmat_graph):
        with pytest.raises(ValueError):
            Engine(rmat_graph, 8, grid=Grid2D(R=2, C=2))

    def test_needs_some_layout(self, rmat_graph):
        with pytest.raises(ValueError):
            Engine(rmat_graph)

    def test_load_balance_validation(self, rmat_graph):
        with pytest.raises(ValueError):
            Engine(rmat_graph, 4, load_balance="chaotic")

    def test_cluster_selection(self, rmat_graph):
        e = Engine(rmat_graph, 4, cluster=ZEPY)
        assert e.cluster.name == "zepy"


class TestState:
    def test_alloc_and_gather_roundtrip(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        vec = np.random.default_rng(0).random(rmat_graph.n_vertices)
        e.scatter_global("x", vec)
        assert np.allclose(e.gather("x"), vec)

    def test_alloc_fill(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        for arr in e.alloc("y", np.float64, fill=3.5):
            assert np.all(arr == 3.5)

    def test_missing_state_keyerror(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        with pytest.raises(KeyError, match="no state array"):
            e.ctx(0).get("nope")

    def test_states_typo_lists_allocated_names(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        e.alloc("pr", np.float64)
        e.alloc("acc", np.float64)
        with pytest.raises(KeyError) as exc:
            e.states("pagerank")
        msg = str(exc.value)
        assert "'pagerank'" in msg
        assert "'acc'" in msg and "'pr'" in msg  # sorted listing

    def test_free_typo_lists_allocated_names(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        e.alloc("depth", np.int64)
        with pytest.raises(KeyError, match=r"allocated states: \['depth'\]"):
            e.free("depht")

    def test_gather_typo_lists_allocated_names(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        with pytest.raises(KeyError, match=r"allocated states: \[\]"):
            e.gather("missing")

    def test_free_releases_memory(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        e.alloc("z", np.float64)
        used = e.ctx(0).device.allocated_bytes
        e.free("z")
        assert e.ctx(0).device.allocated_bytes < used

    def test_realloc_same_shape_reuses(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        a = e.ctx(0).alloc("w", np.float64, fill=1.0)
        b = e.ctx(0).alloc("w", np.float64, fill=2.0)
        assert a is b
        assert np.all(b == 2.0)


class TestAccounting:
    def test_charges_accumulate_and_reset(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        e.charge_vertices(0, 10_000)
        assert e.clocks.elapsed > 0
        e.reset_timers()
        assert e.clocks.elapsed == 0
        assert e.counters.total_calls == 0

    def test_manhattan_vs_vertex_balance(self):
        """The naive schedule charges more time on skewed queues."""
        g = rmat(10, seed=1)
        degs = None
        e_m = Engine(g, 1, load_balance="manhattan")
        e_v = Engine(g, 1, load_balance="vertex")
        q = e_m.ctx(0).local_degrees()
        e_m.charge_edges(0, q)
        e_v.charge_edges(0, q)
        assert e_v.clocks.elapsed > e_m.clocks.elapsed

    def test_memory_report(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        rep = e.memory_report()
        assert set(rep) == {0, 1, 2, 3}
        assert all(0 <= u < 1 for u in rep.values())

    def test_memory_scale_and_enforcement(self, rmat_graph):
        # Model a footprint 10^7x bigger than the stand-in: must OOM.
        with pytest.raises(DeviceMemoryError):
            Engine(rmat_graph, 4, memory_scale=1e7, enforce_memory=True)

    def test_profile_swapping(self, rmat_graph):
        e = Engine(rmat_graph, 4, profile=GENERIC_PROFILE)
        assert e.costmodel.profile.name == "generic"

    def test_group_iterators(self, rmat_graph):
        e = Engine(rmat_graph, grid=Grid2D(R=3, C=2))
        rows = dict(e.row_groups())
        cols = dict(e.col_groups())
        assert len(rows) == 2 and len(cols) == 3
        assert rows[0] == [0, 1, 2]
        assert cols[2] == [2, 5]


class TestScheduleCache:
    def test_memoized_per_rank_and_key(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        degs = e.ctx(0).local_degrees()
        a = e.schedule_stats(degs, cache_key="pr.full", rank=0)
        b = e.schedule_stats(degs, cache_key="pr.full", rank=0)
        assert a is b
        # different rank or key computes its own entry
        c = e.schedule_stats(degs, cache_key="pr.full", rank=1)
        d = e.schedule_stats(degs, cache_key="cc.full", rank=0)
        assert c is not a and d is not a

    def test_uncached_matches_cached(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        degs = e.ctx(2).local_degrees()
        cached = e.schedule_stats(degs, cache_key="x.full", rank=2)
        fresh = e.schedule_stats(degs)
        assert fresh.total_edges == cached.total_edges
        assert fresh.balance == cached.balance

    def test_no_key_never_populates_cache(self, rmat_graph):
        e = Engine(rmat_graph, 4)
        e.schedule_stats(e.ctx(0).local_degrees())
        assert e._schedule_cache == {}


class TestScheduleCacheAcrossRegrids:
    @staticmethod
    def _count_schedules(monkeypatch):
        import repro.core.engine as engine_mod

        calls = {"n": 0}
        real = engine_mod.manhattan_schedule

        def counting(degrees):
            calls["n"] += 1
            return real(degrees)

        monkeypatch.setattr(engine_mod, "manhattan_schedule", counting)
        return calls

    def test_shrink_revisiting_grid_hits_warm_cache(self, rmat_graph, monkeypatch):
        from repro.comm.grid import square_grid

        calls = self._count_schedules(monkeypatch)
        e16 = Engine(rmat_graph, 16)
        for rank in range(16):
            e16.schedule_stats(
                e16.ctx(rank).local_degrees(), cache_key="pr.full", rank=rank
            )
        assert calls["n"] == 16

        # A regrid onto a different grid is a different scope: cold.
        e4 = e16.rebuild_on_grid(square_grid(4))
        for rank in range(4):
            e4.schedule_stats(
                e4.ctx(rank).local_degrees(), cache_key="pr.full", rank=rank
            )
        assert calls["n"] == 20

        # Regridding back onto the original grid finds that grid's
        # entries warm — the cache is shared across generations, not
        # rebuilt from cold (the pre-fix behavior).
        e16b = e4.rebuild_on_grid(square_grid(16))
        for rank in range(16):
            e16b.schedule_stats(
                e16b.ctx(rank).local_degrees(), cache_key="pr.full", rank=rank
            )
        assert calls["n"] == 20
        assert e16b._schedule_cache is e16._schedule_cache

    def test_grid_scopes_never_collide(self, rmat_graph, monkeypatch):
        from repro.comm.grid import square_grid

        calls = self._count_schedules(monkeypatch)
        e16 = Engine(rmat_graph, 16)
        degs = e16.ctx(0).local_degrees()
        e16.schedule_stats(degs, cache_key="x.full", rank=0)
        e4 = e16.rebuild_on_grid(square_grid(4))
        # same rank + key but a different grid must not reuse the entry
        # (the degree arrays differ between partitions).
        e4.schedule_stats(e4.ctx(0).local_degrees(), cache_key="x.full", rank=0)
        assert calls["n"] == 2


class TestOverlapConfig:
    def test_rebuild_preserves_overlap(self, rmat_graph):
        from repro.comm.grid import square_grid

        e = Engine(rmat_graph, 16, overlap=True)
        assert e.overlap is True
        new = e.rebuild_on_grid(square_grid(4))
        assert new.overlap is True

    def test_env_var_enables_overlap(self, rmat_graph, monkeypatch):
        from repro.core.engine import OVERLAP_ENV_VAR

        monkeypatch.setenv(OVERLAP_ENV_VAR, "true")
        assert Engine(rmat_graph, 4).overlap is True
        monkeypatch.setenv(OVERLAP_ENV_VAR, "0")
        assert Engine(rmat_graph, 4).overlap is False
        monkeypatch.delenv(OVERLAP_ENV_VAR)
        assert Engine(rmat_graph, 4).overlap is False
        # an explicit argument wins over the environment
        monkeypatch.setenv(OVERLAP_ENV_VAR, "1")
        assert Engine(rmat_graph, 4, overlap=False).overlap is False
