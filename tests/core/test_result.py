"""Timing/result container tests."""

import numpy as np
import pytest

from repro.comm.clocks import PhaseTimes
from repro.core.result import AlgorithmResult, TimingReport


class TestTimingReport:
    def test_comm_fraction(self):
        t = TimingReport(total=2.0, compute=1.5, comm=0.5)
        assert t.comm_fraction == pytest.approx(0.25)

    def test_comm_fraction_zero_total(self):
        t = TimingReport(total=0.0, compute=0.0, comm=0.0)
        assert t.comm_fraction == 0.0

    def test_teps(self):
        t = TimingReport(total=2.0, compute=1.0, comm=1.0)
        assert t.teps(10**9) == pytest.approx(5e8)

    def test_teps_zero_time(self):
        t = TimingReport(total=0.0, compute=0.0, comm=0.0)
        assert t.teps(100) == float("inf")

    def test_from_phase(self):
        phase = PhaseTimes(total=1.0, compute=0.7, comm=0.3)
        t = TimingReport.from_phase(phase, per_iteration=(phase,))
        assert t.total == 1.0
        assert len(t.per_iteration) == 1


class TestAlgorithmResult:
    def test_defaults(self):
        res = AlgorithmResult(
            values=np.arange(3),
            timings=TimingReport(1.0, 0.5, 0.5),
            iterations=4,
        )
        assert res.counters == {}
        assert res.extra == {}
        assert res.iterations == 4

    def test_values_optional(self):
        res = AlgorithmResult(
            values=None,
            timings=TimingReport(0.0, 0.0, 0.0),
            iterations=0,
            extra={"pairs": [(0, 1)]},
        )
        assert res.values is None
        assert res.extra["pairs"] == [(0, 1)]
