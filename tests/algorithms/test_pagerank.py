"""PageRank tests."""

import numpy as np
import pytest

from repro.algorithms import compute_global_degrees, pagerank
from repro.core.engine import Engine
from repro.graph import Graph, star_graph
from repro.reference import serial

from ..conftest import GRIDS, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_serial_all_grids(self, rmat_graph, grid):
        res = pagerank(Engine(rmat_graph, grid=grid), iterations=20)
        ref = serial.pagerank(rmat_graph, iterations=20)
        assert np.allclose(res.values, ref, atol=1e-12)

    def test_mass_conserved(self, rmat_graph):
        res = pagerank(Engine(rmat_graph, 4), iterations=20)
        assert res.values.sum() == pytest.approx(1.0)

    def test_dangling_vertices(self):
        # isolated vertices hold and redistribute mass
        g = Graph.from_edges([0, 1], [1, 2], 6)  # vertices 3-5 dangling
        res = pagerank(Engine(g, 4), iterations=15)
        ref = serial.pagerank(g, iterations=15)
        assert np.allclose(res.values, ref, atol=1e-12)

    def test_star_hub_dominates(self):
        g = star_graph(30)
        res = pagerank(Engine(g, 4), iterations=20)
        assert res.values[0] == res.values.max()

    def test_damping_parameter(self, rmat_graph):
        res = pagerank(Engine(rmat_graph, 4), iterations=10, damping=0.5)
        ref = serial.pagerank(rmat_graph, iterations=10, damping=0.5)
        assert np.allclose(res.values, ref, atol=1e-12)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = random_graph(seed + 100, n_max=100)
            res = pagerank(Engine(g, 4), iterations=8)
            ref = serial.pagerank(g, iterations=8)
            assert np.allclose(res.values, ref, atol=1e-12)


class TestDegrees:
    def test_global_degrees_via_row_reduce(self, rmat_graph):
        """Paper §3.2: true degree = summed local degrees of the row
        group; verified through the dense pull exchange."""
        engine = Engine(rmat_graph, grid=GRIDS[6])  # 5x3
        compute_global_degrees(engine)
        expect = engine.partition.to_relabeled_order(
            rmat_graph.degrees().astype(float)
        )
        for ctx in engine:
            lm = ctx.localmap
            deg = ctx.get("deg")
            assert np.array_equal(deg[lm.row_slice], expect[lm.row_start : lm.row_stop])
            assert np.array_equal(deg[lm.col_slice], expect[lm.col_start : lm.col_stop])


class TestAccounting:
    def test_dense_only_communication(self, rmat_graph):
        """PageRank uses dense comms exclusively (paper §3.3.1)."""
        engine = Engine(rmat_graph, 4)
        res = pagerank(engine, iterations=5)
        assert "allgatherv" not in res.counters  # no sparse queues
        assert res.counters["allreduce"]["calls"] > 0

    def test_iteration_marks(self, rmat_graph):
        res = pagerank(Engine(rmat_graph, 4), iterations=7)
        assert len(res.timings.per_iteration) == 7
        assert res.timings.total > 0


class TestExtensions:
    def test_personalized_matches_serial(self, rmat_graph):
        rng = np.random.default_rng(1)
        pers = rng.random(rmat_graph.n_vertices)
        res = pagerank(Engine(rmat_graph, 4), iterations=12, personalization=pers)
        ref = serial.pagerank(rmat_graph, 12, personalization=pers)
        assert np.allclose(res.values, ref, atol=1e-12)

    def test_personalization_biases_ranks(self, rmat_graph):
        n = rmat_graph.n_vertices
        pers = np.zeros(n)
        pers[7] = 1.0  # all teleports land on vertex 7
        res = pagerank(Engine(rmat_graph, 4), iterations=20, personalization=pers)
        assert np.argmax(res.values) == 7

    def test_personalization_validation(self, rmat_graph):
        with pytest.raises(ValueError):
            pagerank(Engine(rmat_graph, 4), personalization=np.zeros(3))
        with pytest.raises(ValueError):
            pagerank(
                Engine(rmat_graph, 4),
                personalization=np.zeros(rmat_graph.n_vertices),
            )

    def test_weighted_matches_serial(self, rmat_graph):
        g = rmat_graph.with_random_weights(seed=2)
        res = pagerank(Engine(g, 4), iterations=12, weighted=True)
        ref = serial.pagerank(g, 12, weighted=True)
        assert np.allclose(res.values, ref, atol=1e-12)

    def test_weighted_needs_weights(self, rmat_graph):
        with pytest.raises(ValueError):
            pagerank(Engine(rmat_graph, 4), weighted=True)

    def test_tolerance_early_stop(self, rmat_graph):
        res = pagerank(Engine(rmat_graph, 4), iterations=500, tol=1e-9)
        assert res.iterations < 500
        # the converged vector is a fixed point of further iteration
        more = pagerank(Engine(rmat_graph, 4), iterations=res.iterations + 5)
        assert np.allclose(res.values, more.values, atol=1e-7)

    def test_tolerance_respects_iteration_bound(self, rmat_graph):
        res = pagerank(Engine(rmat_graph, 4), iterations=3, tol=1e-30)
        assert res.iterations == 3
