"""Triangle counting (extension algorithm) tests."""

import numpy as np
import pytest

from repro.algorithms import triangle_count
from repro.comm.grid import Grid2D
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, rmat
from repro.reference import serial

from ..conftest import random_graph


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_matches_algebraic_count(self, rmat_graph, p):
        res = triangle_count(Engine(rmat_graph, p))
        assert res.extra["n_triangles"] == serial.triangle_count(rmat_graph)

    def test_single_triangle(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], 3)
        res = triangle_count(Engine(g, 1))
        assert res.extra["n_triangles"] == 1

    def test_triangle_free_lattice(self):
        res = triangle_count(Engine(grid_graph(6, 6), 4))
        assert res.extra["n_triangles"] == 0

    def test_complete_graph(self):
        n = 8
        src, dst = np.triu_indices(n, k=1)
        g = Graph.from_edges(src, dst, n)
        res = triangle_count(Engine(g, 4))
        assert res.extra["n_triangles"] == n * (n - 1) * (n - 2) // 6

    def test_two_disjoint_triangles(self):
        g = Graph.from_edges([0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3], 6)
        res = triangle_count(Engine(g, 4))
        assert res.extra["n_triangles"] == 2

    def test_nonsquare_grid_rejected(self, rmat_graph):
        with pytest.raises(ValueError, match="square grid"):
            triangle_count(Engine(rmat_graph, grid=Grid2D(R=4, C=2)))

    def test_random_graph_sweep(self):
        for seed in range(6):
            g = random_graph(seed + 61, n_max=60)
            res = triangle_count(Engine(g, 4))
            assert res.extra["n_triangles"] == serial.triangle_count(g)


class TestBehaviour:
    def test_summa_iterations_equal_grid_side(self, rmat_graph):
        res = triangle_count(Engine(rmat_graph, 16))
        assert res.iterations == 4

    def test_broadcast_volume_recorded(self, rmat_graph):
        engine = Engine(rmat_graph, 4)
        res = triangle_count(engine)
        assert res.counters["broadcast"]["bytes"] > 0

    def test_values_is_none_count_in_extra(self, rmat_graph):
        res = triangle_count(Engine(rmat_graph, 1))
        assert res.values is None
        assert isinstance(res.extra["n_triangles"], int)
