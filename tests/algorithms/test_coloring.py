"""Jones-Plassmann coloring (extension algorithm) tests."""

import numpy as np
import pytest

from repro.algorithms.coloring import (
    color_priorities,
    greedy_coloring,
    is_proper_coloring,
    serial_jones_plassmann,
)
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, path_graph, rmat, star_graph

from ..conftest import GRIDS, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_serial_all_grids(self, rmat_graph, grid):
        ref = serial_jones_plassmann(rmat_graph, seed=1)
        res = greedy_coloring(Engine(rmat_graph, grid=grid), seed=1)
        assert np.array_equal(res.values, ref)
        assert is_proper_coloring(rmat_graph, res.values)

    def test_path_needs_few_colors(self):
        res = greedy_coloring(Engine(path_graph(30), 4))
        assert is_proper_coloring(path_graph(30), res.values)
        assert res.extra["n_colors"] <= 3

    def test_star_two_colors(self):
        res = greedy_coloring(Engine(star_graph(25), 4))
        assert res.extra["n_colors"] == 2

    def test_clique_needs_n_colors(self):
        n = 6
        src, dst = np.triu_indices(n, k=1)
        g = Graph.from_edges(src, dst, n)
        res = greedy_coloring(Engine(g, 4))
        assert res.extra["n_colors"] == n
        assert is_proper_coloring(g, res.values)

    def test_lattice_bipartite_bound(self):
        g = grid_graph(6, 6)
        res = greedy_coloring(Engine(g, 4))
        assert is_proper_coloring(g, res.values)
        # greedy on a bipartite lattice stays within a small constant
        assert res.extra["n_colors"] <= 4

    def test_isolated_vertices_colored_zero(self):
        g = Graph.from_edges([0], [1], 5)
        res = greedy_coloring(Engine(g, 4))
        assert np.all(res.values[2:] == 0)
        assert is_proper_coloring(g, res.values)

    def test_seed_changes_coloring_not_validity(self, rmat_graph):
        a = greedy_coloring(Engine(rmat_graph, 4), seed=1)
        b = greedy_coloring(Engine(rmat_graph, 4), seed=2)
        assert is_proper_coloring(rmat_graph, a.values)
        assert is_proper_coloring(rmat_graph, b.values)
        assert not np.array_equal(a.values, b.values)

    def test_random_sweep(self):
        for seed in range(4):
            g = random_graph(seed + 23, n_max=70)
            ref = serial_jones_plassmann(g, seed=seed)
            res = greedy_coloring(Engine(g, 4), seed=seed)
            assert np.array_equal(res.values, ref)


class TestHelpers:
    def test_priorities_unique(self):
        p = color_priorities(100, seed=5)
        assert np.unique(p).size == 100

    def test_proper_coloring_detects_conflicts(self):
        g = path_graph(3)
        assert is_proper_coloring(g, np.array([0, 1, 0]))
        assert not is_proper_coloring(g, np.array([0, 0, 1]))
        assert not is_proper_coloring(g, np.array([0, -1, 0]))

    def test_max_rounds(self, rmat_graph):
        res = greedy_coloring(Engine(rmat_graph, 4), max_rounds=1)
        assert res.iterations == 1
