"""Connected components tests: all paper Fig. 6 variants."""

import numpy as np
import pytest

from repro.algorithms import CC_VARIANTS, connected_components
from repro.core.engine import Engine
from repro.graph import Graph, rmat
from repro.reference import serial

from ..conftest import GRIDS, random_graph


def _check(g, engine_kwargs=None, **cc_kwargs):
    engine = Engine(g, **(engine_kwargs or {"n_ranks": 4}))
    res = connected_components(engine, **cc_kwargs)
    ref = serial.canonical_labels(serial.connected_components(g))
    got = serial.canonical_labels(res.values)
    assert np.array_equal(got, ref)
    return res


class TestVariants:
    @pytest.mark.parametrize("name", list(CC_VARIANTS))
    def test_variant_correct(self, rmat_graph, name):
        res = _check(rmat_graph, **CC_VARIANTS[name])
        assert res.iterations >= 1

    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_push_switch_queue_all_grids(self, rmat_graph, grid):
        _check(rmat_graph, engine_kwargs={"grid": grid})

    @pytest.mark.parametrize("grid", GRIDS[:4], ids=lambda g: f"{g.C}x{g.R}")
    def test_pull_dense_all_grids(self, rmat_graph, grid):
        _check(
            rmat_graph,
            engine_kwargs={"grid": grid},
            direction="pull",
            mode="dense",
            use_queue=False,
        )

    def test_direction_validation(self, rmat_graph):
        with pytest.raises(ValueError):
            connected_components(Engine(rmat_graph, 4), direction="diagonal")


class TestStructures:
    def test_disconnected_components_found(self):
        # two separate triangles + isolated vertex
        g = Graph.from_edges([0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3], 7)
        res = _check(g)
        assert res.extra["n_components"] == 3

    def test_single_vertex(self):
        g = Graph.from_edges([], [], 1)
        res = _check(g, engine_kwargs={"n_ranks": 1})
        assert res.extra["n_components"] == 1

    def test_all_isolated(self):
        g = Graph.from_edges([], [], 12)
        res = _check(g)
        assert res.extra["n_components"] == 12
        assert res.iterations == 1  # converges immediately

    def test_labels_are_member_vertices(self, rmat_graph):
        engine = Engine(rmat_graph, 4)
        res = connected_components(engine)
        ref = serial.connected_components(rmat_graph)
        # each label must be a vertex inside its own component
        for v in range(0, rmat_graph.n_vertices, 37):
            assert ref[res.values[v]] == ref[v]

    def test_max_iterations_bounds_work(self):
        from repro.graph import path_graph

        g = path_graph(100)
        engine = Engine(g, 4)
        res = connected_components(engine, max_iterations=3)
        assert res.iterations == 3


class TestAblationOrdering:
    def test_variants_get_faster_with_optimizations(self):
        """Paper Fig. 6: each added optimization reduces modeled time,
        about an order of magnitude Base -> +All+Push, on a web-like
        input in the paper's (bandwidth-dominated) operating regime."""
        from repro.cluster import AIMOS
        from repro.graph import web_graph

        g = web_graph(8000, 120_000, seed=3)
        cluster = AIMOS.scaled(33e9 / g.n_edges)
        times = {}
        for name, kw in CC_VARIANTS.items():
            engine = Engine(g, 16, cluster=cluster)
            times[name] = connected_components(engine, **kw).timings.total
        order = ["Base", "+SP", "+SP+SW", "+SP+SW+VQ", "+All+Push"]
        for earlier, later in zip(order, order[1:]):
            assert times[later] < times[earlier], (earlier, later, times)
        assert times["+All+Push"] < times["Base"] / 5

    def test_sweep_many_random_graphs(self):
        for seed in range(6):
            g = random_graph(seed, n_max=120)
            _check(g, engine_kwargs={"n_ranks": 4})
