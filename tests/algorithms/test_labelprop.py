"""Label propagation (2.5D) tests."""

import numpy as np
import pytest

from repro.algorithms import label_propagation
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, star_graph
from repro.reference import serial

from ..conftest import GRIDS, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_serial_all_grids(self, rmat_graph, grid):
        res = label_propagation(Engine(rmat_graph, grid=grid), iterations=20)
        ref = serial.label_propagation(rmat_graph, iterations=20)
        assert np.array_equal(res.values, ref)

    @pytest.mark.parametrize("use_queue", [True, False])
    def test_queue_variants_agree(self, rmat_graph, use_queue):
        res = label_propagation(
            Engine(rmat_graph, 4), iterations=20, use_queue=use_queue
        )
        ref = serial.label_propagation(rmat_graph, iterations=20)
        assert np.array_equal(res.values, ref)

    def test_fewer_iterations(self, rmat_graph):
        res = label_propagation(Engine(rmat_graph, 4), iterations=3)
        ref = serial.label_propagation(rmat_graph, iterations=3)
        assert np.array_equal(res.values, ref)

    def test_isolated_vertices_keep_label(self):
        g = Graph.from_edges([0], [1], 5)
        res = label_propagation(Engine(g, 4), iterations=5)
        assert res.values[2] == 2 and res.values[3] == 3 and res.values[4] == 4

    def test_star_converges_to_min_leaf_dynamics(self):
        g = star_graph(10)
        res = label_propagation(Engine(g, 4), iterations=20)
        ref = serial.label_propagation(g, iterations=20)
        assert np.array_equal(res.values, ref)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = random_graph(seed + 31, n_max=120)
            res = label_propagation(Engine(g, 4), iterations=10)
            ref = serial.label_propagation(g, iterations=10)
            assert np.array_equal(res.values, ref)


class TestBehaviour:
    def test_communities_found_on_lattice(self):
        g = grid_graph(6, 6)
        res = label_propagation(Engine(g, 4), iterations=20)
        assert 1 <= res.extra["n_communities"] <= g.n_vertices

    def test_early_convergence_stops(self):
        # a triangle settles on label 0 everywhere in 3 iterations
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], 3)
        res = label_propagation(Engine(g, 1), iterations=20)
        assert res.iterations < 20
        assert np.all(res.values == 0)

    def test_owner_exchange_used(self, rmat_graph):
        """2.5D: the histogram exchange is a personalized alltoallv."""
        engine = Engine(rmat_graph, 4)
        res = label_propagation(engine, iterations=5)
        assert res.counters["alltoallv"]["calls"] > 0
