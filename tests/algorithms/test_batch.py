"""Lane-batched multi-source traversal: the bit-identity suite.

The batch contract is strict: lane ``l`` of ``bfs_batch`` /
``sssp_batch`` / ``pagerank_batch`` must reproduce *exactly* the arrays
of the corresponding single-source run — under the serial and threaded
executors, with communication overlap on and off.  Single-source runs
are themselves executor- and overlap-invariant (the determinism suite's
contract), so each batched configuration is checked against one fixed
serial blocking reference per root.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    bfs,
    bfs_batch,
    pagerank,
    pagerank_batch,
    pseudo_diameter,
    sssp,
    sssp_batch,
    validate_roots,
)
from repro.core.engine import Engine
from repro.exec import SerialExecutor, ThreadedExecutor
from repro.graph import grid_graph, path_graph, rmat
from repro.reference import serial as ref_serial

RANKS = 16

#: (executor factory, overlap) — the full batched execution matrix.
MODES = {
    "serial": (SerialExecutor, False),
    "serial-overlap": (SerialExecutor, True),
    "threads4": (lambda: ThreadedExecutor(max_workers=4), False),
    "threads4-overlap": (lambda: ThreadedExecutor(max_workers=4), True),
}

ROOT1 = [17]
ROOTS2 = [3, 640]
# Includes vertex 0, which is isolated in this graph: an immediately
# retiring lane must not disturb the others.
ROOTS8 = [0, 3, 17, 42, 100, 256, 513, 640]

KS = {"k1": ROOT1, "k2": ROOTS2, "k8": ROOTS8}

# 16 lanes span two 8-lane words in the bottom-up bitmask scan; the
# second word's chunk offset in the composite scatter index is what
# this set guards (a k<=8 batch never leaves word 0).
ROOTS16 = [0, 3, 9, 17, 33, 42, 77, 100, 128, 256, 300, 401, 513, 640, 700, 901]


def make_engine(graph, mode: str) -> Engine:
    ex, overlap = MODES[mode]
    return Engine(graph, RANKS, executor=ex(), overlap=overlap)


@pytest.fixture(scope="module")
def graph():
    return rmat(10, edgefactor=8, seed=5)


@pytest.fixture(scope="module")
def wgraph(graph):
    return graph.with_random_weights(seed=9)


@pytest.fixture(scope="module")
def bfs_refs(graph):
    return {r: bfs(Engine(graph, RANKS), root=r) for r in ROOTS8}


@pytest.fixture(scope="module")
def sssp_refs(wgraph):
    return {r: sssp(Engine(wgraph, RANKS), root=r) for r in ROOTS8}


@pytest.fixture(scope="module")
def pr_refs(graph):
    out = {}
    for r in ROOTS8:
        pers = np.zeros(graph.n_vertices)
        pers[r] = 1.0
        out[r] = pagerank(
            Engine(graph, RANKS), iterations=10, personalization=pers
        )
    return out


class TestBFSEquivalence:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("kname", sorted(KS))
    def test_bit_identical_per_lane(self, graph, bfs_refs, mode, kname):
        roots = KS[kname]
        res = bfs_batch(make_engine(graph, mode), roots)
        assert res.values.shape == (graph.n_vertices, len(roots))
        for lane, root in enumerate(roots):
            single = bfs_refs[root]
            np.testing.assert_array_equal(
                res.values[:, lane], single.values, strict=True
            )
            np.testing.assert_array_equal(
                res.extra["levels"][:, lane],
                single.extra["levels"],
                strict=True,
            )
            assert res.extra["n_visited"][lane] == single.extra["n_visited"]
            assert res.extra["directions"][lane] == single.extra["directions"]

    def test_k1_degenerates_to_single_source(self, graph, bfs_refs):
        """A batch of one IS the single-source run: values, timings and
        counters all match because the code path delegates."""
        res = bfs_batch(Engine(graph, RANKS), ROOT1)
        single = bfs_refs[ROOT1[0]]
        np.testing.assert_array_equal(res.values[:, 0], single.values)
        assert res.iterations == single.iterations
        assert res.timings.total == single.timings.total
        assert res.counters == single.counters

    def test_hybrid_off_stays_top_down(self, graph):
        res = bfs_batch(Engine(graph, RANKS), ROOTS2, hybrid=False)
        for lane, root in enumerate(ROOTS2):
            single = bfs(Engine(graph, RANKS), root=root, hybrid=False)
            np.testing.assert_array_equal(res.values[:, lane], single.values)
            assert set(res.extra["directions"][lane]) <= {"top-down"}

    def test_k16_multi_chunk_bit_identical(self, graph):
        """k>8 exercises the second uint64 lane word of the bottom-up
        scan; every lane must still match its single-source run."""
        res = bfs_batch(Engine(graph, RANKS), ROOTS16)
        assert any(
            "bottom-up" in dirs for dirs in res.extra["directions"]
        ), "k16 batch never entered the bottom-up scan; guard is vacuous"
        for lane, root in enumerate(ROOTS16):
            single = bfs(Engine(graph, RANKS), root=root)
            np.testing.assert_array_equal(
                res.values[:, lane], single.values, strict=True
            )
            np.testing.assert_array_equal(
                res.extra["levels"][:, lane],
                single.extra["levels"],
                strict=True,
            )

    def test_lanes_against_serial_reference(self, graph):
        res = bfs_batch(Engine(graph, RANKS), ROOTS2)
        for lane, root in enumerate(ROOTS2):
            np.testing.assert_array_equal(
                res.extra["levels"][:, lane],
                ref_serial.bfs_levels(graph, root),
            )
            assert ref_serial.bfs_parents_valid(
                graph, root, res.values[:, lane]
            )


class TestSSSPEquivalence:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("kname", sorted(KS))
    def test_bit_identical_per_lane(self, wgraph, sssp_refs, mode, kname):
        sources = KS[kname]
        res = sssp_batch(make_engine(wgraph, mode), sources)
        assert res.values.shape == (wgraph.n_vertices, len(sources))
        for lane, src in enumerate(sources):
            single = sssp_refs[src]
            np.testing.assert_array_equal(
                res.values[:, lane], single.values, strict=True
            )
            assert res.extra["n_reached"][lane] == single.extra["n_reached"]
            assert res.extra["iterations"][lane] == single.iterations

    def test_unweighted_graph_rejected(self, graph):
        with pytest.raises(ValueError, match="weighted"):
            sssp_batch(Engine(graph, RANKS), ROOTS2)

    def test_max_iterations_caps_every_lane(self, wgraph):
        res = sssp_batch(Engine(wgraph, RANKS), ROOTS2, max_iterations=2)
        assert all(i <= 2 for i in res.extra["iterations"])
        for lane, src in enumerate(ROOTS2):
            single = sssp(Engine(wgraph, RANKS), root=src, max_iterations=2)
            np.testing.assert_array_equal(res.values[:, lane], single.values)


class TestPageRankEquivalence:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("kname", sorted(KS))
    def test_bit_identical_per_lane(self, graph, pr_refs, mode, kname):
        seeds = KS[kname]
        res = pagerank_batch(make_engine(graph, mode), seeds, iterations=10)
        assert res.values.shape == (graph.n_vertices, len(seeds))
        for lane, seed in enumerate(seeds):
            np.testing.assert_array_equal(
                res.values[:, lane], pr_refs[seed].values, strict=True
            )

    def test_tol_retires_lanes_at_single_source_iterations(self, graph):
        """Converged lanes must freeze exactly where the single-source
        run stops — mid-stream retirement cannot perturb the values."""
        seeds = ROOTS8[:4]
        res = pagerank_batch(
            Engine(graph, RANKS), seeds, iterations=60, tol=1e-6
        )
        for lane, seed in enumerate(seeds):
            pers = np.zeros(graph.n_vertices)
            pers[seed] = 1.0
            single = pagerank(
                Engine(graph, RANKS),
                iterations=60,
                personalization=pers,
                tol=1e-6,
            )
            np.testing.assert_array_equal(
                res.values[:, lane], single.values, strict=True
            )
            assert res.extra["iterations"][lane] == single.iterations

    def test_lane_columns_are_distributions(self, graph):
        res = pagerank_batch(Engine(graph, RANKS), ROOTS2, iterations=10)
        sums = res.values.sum(axis=0)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-9)


class TestValidation:
    def test_duplicate_roots_rejected(self, graph, wgraph):
        with pytest.raises(ValueError, match="duplicate"):
            bfs_batch(Engine(graph, RANKS), [3, 17, 3])
        with pytest.raises(ValueError, match="duplicate"):
            sssp_batch(Engine(wgraph, RANKS), [5, 5])
        with pytest.raises(ValueError, match="duplicate"):
            pagerank_batch(Engine(graph, RANKS), [9, 9])

    def test_out_of_range_rejected(self, graph):
        n = graph.n_vertices
        with pytest.raises(ValueError, match="out of range"):
            bfs_batch(Engine(graph, RANKS), [0, n])
        with pytest.raises(ValueError, match="out of range"):
            pagerank_batch(Engine(graph, RANKS), [-1])

    def test_empty_rejected(self, graph):
        with pytest.raises(ValueError, match="non-empty"):
            bfs_batch(Engine(graph, RANKS), [])

    def test_validate_roots_returns_int64(self):
        out = validate_roots(10, [3, 1, 7])
        assert out.dtype == np.int64
        assert out.tolist() == [3, 1, 7]


class TestCounterAmortization:
    """The point of the fusion: one α charge per collective, not k."""

    def test_bfs_k8_shares_sparse_collectives(self, graph):
        seq_calls = sum(
            bfs(Engine(graph, RANKS), root=r)
            .counters["allgatherv"]["calls"]
            for r in ROOTS8
        )
        batched = bfs_batch(Engine(graph, RANKS), ROOTS8)
        batch_calls = batched.counters["allgatherv"]["calls"]
        assert 0 < batch_calls
        # Exactly k-fold amortization needs every lane pushing in the
        # same supersteps; even on this small graph the fused stream
        # must at least halve the call count.
        assert batch_calls * 2 <= seq_calls

    def test_sssp_k8_shares_sparse_collectives(self, wgraph):
        seq_calls = sum(
            sssp(Engine(wgraph, RANKS), root=r)
            .counters["allgatherv"]["calls"]
            for r in ROOTS8
        )
        batched = sssp_batch(Engine(wgraph, RANKS), ROOTS8)
        batch_calls = batched.counters["allgatherv"]["calls"]
        assert 0 < batch_calls
        assert batch_calls * 2 <= seq_calls

    def test_pagerank_k8_one_allreduce_per_group(self, graph):
        """Batched PR pays the same *number* of AllReduce calls as a
        single run: the k columns ride one collective."""
        pers = np.zeros(graph.n_vertices)
        pers[ROOTS8[1]] = 1.0
        single = pagerank(
            Engine(graph, RANKS), iterations=10, personalization=pers
        )
        batched = pagerank_batch(Engine(graph, RANKS), ROOTS8, iterations=10)
        assert (
            batched.counters["allreduce"]["calls"]
            == single.counters["allreduce"]["calls"]
        )


class TestPseudoDiameterBatched:
    def test_path_exact_with_lanes(self):
        res = pseudo_diameter(Engine(path_graph(30), 4), start=10, lanes=4)
        assert res.extra["diameter_lower_bound"] == 29
        a, b = res.extra["endpoints"]
        assert {a, b} == {0, 29}

    def test_lattice_lanes_match_single_lane(self):
        g = grid_graph(6, 9)
        one = pseudo_diameter(Engine(g, 4), start=20, lanes=1)
        four = pseudo_diameter(Engine(g, 4), start=20, lanes=4)
        assert one.extra["diameter_lower_bound"] == 5 + 8
        assert four.extra["diameter_lower_bound"] == 5 + 8

    def test_bound_is_realized_depth(self, graph):
        res = pseudo_diameter(Engine(graph, RANKS), start=640, lanes=4)
        levels = ref_serial.bfs_levels(graph, res.extra["endpoints"][0])
        assert levels.max() >= res.extra["diameter_lower_bound"]
