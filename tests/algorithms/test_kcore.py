"""K-core decomposition (extension algorithm) tests."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import core_numbers
from repro.core.engine import Engine
from repro.graph import Graph, chung_lu_powerlaw, grid_graph, path_graph, star_graph
from repro.reference import serial

from ..conftest import GRIDS, random_graph


def nx_core_numbers(g) -> np.ndarray:
    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    src = np.repeat(np.arange(g.n_vertices), g.degrees())
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    cn = nx.core_number(G)
    return np.array([cn[v] for v in range(g.n_vertices)], dtype=np.int64)


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_networkx_all_grids(self, rmat_graph, grid):
        res = core_numbers(Engine(rmat_graph, grid=grid))
        assert np.array_equal(res.values, nx_core_numbers(rmat_graph))

    def test_path_is_1_core(self):
        res = core_numbers(Engine(path_graph(20), 4))
        assert np.all(res.values == 1)

    def test_star_center_and_leaves(self):
        res = core_numbers(Engine(star_graph(30), 4))
        assert np.all(res.values == 1)  # star is a tree: 1-core everywhere

    def test_lattice_is_2_core(self):
        res = core_numbers(Engine(grid_graph(6, 6), 4))
        ref = nx_core_numbers(grid_graph(6, 6))
        assert np.array_equal(res.values, ref)
        assert res.extra["max_core"] == 2

    def test_clique_core(self):
        n = 7
        src, dst = np.triu_indices(n, k=1)
        g = Graph.from_edges(src, dst, n)
        res = core_numbers(Engine(g, 4))
        assert np.all(res.values == n - 1)

    def test_isolated_vertices_core_zero(self):
        g = Graph.from_edges([0], [1], 5)
        res = core_numbers(Engine(g, 4))
        assert res.values[0] == res.values[1] == 1
        assert np.all(res.values[2:] == 0)

    def test_powerlaw_matches(self):
        g = chung_lu_powerlaw(400, 3000, seed=6)
        res = core_numbers(Engine(g, 4))
        assert np.array_equal(res.values, nx_core_numbers(g))

    def test_random_sweep(self):
        for seed in range(4):
            g = random_graph(seed + 71, n_max=80)
            res = core_numbers(Engine(g, 4))
            assert np.array_equal(res.values, nx_core_numbers(g))


class TestBehaviour:
    def test_monotone_below_degree(self, rmat_graph):
        res = core_numbers(Engine(rmat_graph, 4))
        assert np.all(res.values <= rmat_graph.degrees())

    def test_uses_owner_exchange(self, rmat_graph):
        res = core_numbers(Engine(rmat_graph, 4))
        assert res.counters["alltoallv"]["calls"] > 0

    def test_max_iterations(self):
        g = path_graph(100)
        res = core_numbers(Engine(g, 4), max_iterations=1)
        assert res.iterations == 1
