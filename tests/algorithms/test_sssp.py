"""SSSP (extension algorithm) tests."""

import numpy as np
import pytest

from repro.algorithms import sssp
from repro.core.engine import Engine
from repro.graph import Graph, path_graph, rmat
from repro.reference import serial

from ..conftest import GRIDS, random_graph


def _weighted(g, seed=1):
    return g.with_random_weights(seed=seed, low=0.1, high=1.0)


def _match(values, ref):
    return np.allclose(
        np.where(np.isfinite(values), values, -1.0),
        np.where(np.isfinite(ref), ref, -1.0),
    )


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_dijkstra_all_grids(self, rmat_graph, grid):
        g = _weighted(rmat_graph)
        res = sssp(Engine(g, grid=grid), root=0)
        assert _match(res.values, serial.sssp_distances(g, 0))

    @pytest.mark.parametrize("root", [0, 17, 200])
    def test_various_roots(self, rmat_graph, root):
        g = _weighted(rmat_graph)
        res = sssp(Engine(g, 4), root=root)
        assert _match(res.values, serial.sssp_distances(g, root))

    def test_root_distance_zero(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = sssp(Engine(g, 4), root=5)
        assert res.values[5] == 0.0

    def test_unreachable_infinite(self):
        g = Graph.from_edges([0], [1], 4, weights=[0.5])
        res = sssp(Engine(g, 4), root=0)
        assert res.values[1] == 0.5
        assert not np.isfinite(res.values[2])
        assert res.extra["n_reached"] == 2

    def test_path_distances_accumulate(self):
        g = _weighted(path_graph(12), seed=4)
        res = sssp(Engine(g, 4), root=0)
        assert _match(res.values, serial.sssp_distances(g, 0))
        assert np.all(np.diff(res.values) > 0)  # monotone along the path

    def test_unweighted_rejected(self, rmat_graph):
        with pytest.raises(ValueError):
            sssp(Engine(rmat_graph, 4), root=0)

    def test_bad_root(self, rmat_graph):
        g = _weighted(rmat_graph)
        with pytest.raises(ValueError):
            sssp(Engine(g, 4), root=10**9)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = _weighted(random_graph(seed + 41, n_max=80), seed=seed)
            root = seed % g.n_vertices
            res = sssp(Engine(g, 4), root=root)
            assert _match(res.values, serial.sssp_distances(g, root))


class TestBehaviour:
    def test_uses_sparse_pattern(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = sssp(Engine(g, 4), root=0)
        assert res.counters["allgatherv"]["calls"] > 0

    def test_max_iterations(self):
        g = _weighted(path_graph(50), seed=2)
        res = sssp(Engine(g, 4), root=0, max_iterations=3)
        assert res.iterations == 3
